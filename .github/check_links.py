#!/usr/bin/env python3
"""Markdown link checker for the repository's tracked documentation.

Usage: check_links.py FILE.md [FILE.md ...]

For every inline link ``[text](target)`` in the given files:

- ``http(s)://`` targets are skipped (no network in CI);
- a relative path must name a file or directory that exists, resolved
  against the linking file's directory;
- a ``#anchor`` (same-file or after a path) must match a heading in the
  target file under GitHub's slugification (lowercase, spaces to
  hyphens, punctuation dropped).

Exits non-zero listing every broken link.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.M)
CODE_FENCE = re.compile(r"```.*?```", re.S)


def slugify(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, drop punctuation."""
    text = re.sub(r"[`*_]|\[([^\]]*)\]\([^)]*\)", r"\1", heading).strip()
    text = text.lower().replace(" ", "-")
    return re.sub(r"[^\w\-§]", "", text, flags=re.UNICODE)


def anchors_of(path: Path) -> set:
    body = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {slugify(m.group(1)) for m in HEADING.finditer(body)}


def main(files):
    broken = []
    for name in files:
        src = Path(name)
        body = CODE_FENCE.sub("", src.read_text(encoding="utf-8"))
        for m in LINK.finditer(body):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            dest = src if not path_part else (src.parent / path_part)
            if not dest.exists():
                broken.append(f"{name}: broken path {target!r}")
                continue
            if anchor and dest.suffix == ".md":
                if slugify(anchor) not in anchors_of(dest):
                    broken.append(f"{name}: missing anchor {target!r}")
    if broken:
        print("\n".join(broken))
        return 1
    print(f"checked {len(files)} file(s), all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
