//! Shared helpers for the cross-crate integration tests (the tests live in
//! sibling `.rs` files declared as `[[test]]` targets).

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::Rng;
use xic::prelude::*;

/// Deterministic RNG for reproducible tests.
pub fn rng(seed: u64) -> SmallRng {
    use rand::SeedableRng;
    SmallRng::seed_from_u64(seed)
}

/// Generates a random `L_u` constraint set over `n_types` types with one
/// key attribute `k` and one reference attribute `r` each: a mix of keys,
/// unary FKs (targeting keys), set-valued FKs, and inverse constraints,
/// well-formed by construction.
pub fn random_lu_sigma(rng: &mut SmallRng, n_types: usize, n_fks: usize) -> Vec<Constraint> {
    let types: Vec<String> = (0..n_types).map(|i| format!("t{i}")).collect();
    let mut sigma: Vec<Constraint> = types
        .iter()
        .map(|t| Constraint::unary_key(t.as_str(), "k"))
        .collect();
    for _ in 0..n_fks {
        let a = rng.gen_range(0..n_types);
        let b = rng.gen_range(0..n_types);
        match rng.gen_range(0..10) {
            0..=5 => sigma.push(Constraint::unary_fk(
                types[a].as_str(),
                "k",
                types[b].as_str(),
                "k",
            )),
            6..=7 => sigma.push(Constraint::set_fk(
                types[a].as_str(),
                "r",
                types[b].as_str(),
                "k",
            )),
            _ => sigma.push(Constraint::InverseU {
                tau: types[a].as_str().into(),
                key: Field::attr("k"),
                attr: "r".into(),
                target: types[b].as_str().into(),
                target_key: Field::attr("k"),
                target_attr: "r".into(),
            }),
        }
    }
    sigma.sort_by_key(|c| c.to_string());
    sigma.dedup();
    sigma
}

/// Inverse-constraint queries over [`random_lu_sigma`]'s vocabulary.
pub fn lu_inverse_queries(n_types: usize) -> Vec<Constraint> {
    let mut out = Vec::new();
    for a in 0..n_types.min(3) {
        for b in 0..n_types.min(3) {
            out.push(Constraint::InverseU {
                tau: format!("t{a}").as_str().into(),
                key: Field::attr("k"),
                attr: "r".into(),
                target: format!("t{b}").as_str().into(),
                target_key: Field::attr("k"),
                target_attr: "r".into(),
            });
        }
    }
    out
}
