//! Section-4 decision procedures cross-checked against model-level truth:
//! implied path constraints must hold on every valid generated document.

use rand::Rng;
use xic::prelude::*;

/// All paths of `db` up to the given length over a small label vocabulary,
/// kept only when they type-check.
fn paths_up_to(solver: &PathSolver<'_>, anchor: &Name, labels: &[&str], len: usize) -> Vec<Path> {
    let mut out = vec![Path::empty()];
    let mut frontier = vec![Path::empty()];
    for _ in 0..len {
        let mut next = Vec::new();
        for p in &frontier {
            for l in labels {
                let q = p.concat(&Path::new([*l]));
                if solver.is_path(anchor, &q) {
                    next.push(q.clone());
                    out.push(q);
                }
            }
        }
        frontier = next;
    }
    out
}

#[test]
fn implied_inclusions_hold_on_generated_documents() {
    let schema = ObjSchema::person_dept();
    let dtdc = schema.to_dtdc();
    let solver = PathSolver::new(&dtdc);
    let labels = [
        "person",
        "dept",
        "name",
        "dname",
        "manager",
        "in_dept",
        "has_staff",
    ];
    let anchors: Vec<Name> = vec!["db".into(), "person".into(), "dept".into()];

    let mut rng = xic_integration_tests::rng(200);
    let mut implied_checked = 0usize;
    for seed in 0..4u64 {
        let inst = schema.generate_instance(3 + seed as usize, &mut rng);
        let tree = schema.export(&inst);
        assert!(validate(&tree, &dtdc).is_valid());
        let idx = ExtIndex::build(&tree);
        for t1 in &anchors {
            for t2 in &anchors {
                let lhs_paths = paths_up_to(&solver, t1, &labels, 3);
                let rhs_paths = paths_up_to(&solver, t2, &labels, 2);
                for r1 in &lhs_paths {
                    for r2 in &rhs_paths {
                        if !solver.inclusion_implied(t1, r1, t2, r2) {
                            continue;
                        }
                        let lhs = ext_of_path(&solver, &tree, &idx, t1, r1);
                        let rhs = ext_of_path(&solver, &tree, &idx, t2, r2);
                        assert!(
                            lhs.is_subset(&rhs),
                            "implied {t1}.{r1} <= {t2}.{r2} fails on instance"
                        );
                        implied_checked += 1;
                    }
                }
            }
        }
    }
    assert!(implied_checked > 50, "checked only {implied_checked}");
}

#[test]
fn implied_functionals_hold_on_generated_documents() {
    let schema = ObjSchema::person_dept();
    let dtdc = schema.to_dtdc();
    let solver = PathSolver::new(&dtdc);
    let labels = [
        "name",
        "dname",
        "manager",
        "in_dept",
        "has_staff",
        "address",
    ];
    let anchors: Vec<Name> = vec!["person".into(), "dept".into()];

    let mut rng = xic_integration_tests::rng(201);
    let mut implied_checked = 0usize;
    for _ in 0..3 {
        let inst = schema.generate_instance(4, &mut rng);
        let tree = schema.export(&inst);
        assert!(validate(&tree, &dtdc).is_valid());
        let idx = ExtIndex::build(&tree);
        for tau in &anchors {
            let ps = paths_up_to(&solver, tau, &labels, 2);
            for rho in &ps {
                for varrho in &ps {
                    if rho.is_empty() || !solver.functional_implied(tau, rho, varrho) {
                        continue;
                    }
                    // Semantic FD: equal nodes(x.ρ) ⇒ equal nodes(x.ϱ).
                    let elems: Vec<_> = idx.ext(tau).to_vec();
                    for &x in &elems {
                        for &y in &elems {
                            let nx = nodes_of(&solver, &tree, &idx, x, rho);
                            let ny = nodes_of(&solver, &tree, &idx, y, rho);
                            if nx == ny && !nx.is_empty() {
                                let vx = nodes_of(&solver, &tree, &idx, x, varrho);
                                let vy = nodes_of(&solver, &tree, &idx, y, varrho);
                                assert_eq!(
                                    vx, vy,
                                    "FD {tau}.{rho} -> {tau}.{varrho} fails: {x:?} vs {y:?}"
                                );
                            }
                        }
                    }
                    implied_checked += 1;
                }
            }
        }
    }
    assert!(implied_checked > 10, "checked only {implied_checked}");
}

#[test]
fn implied_inverses_hold_on_generated_documents() {
    let schema = ObjSchema::person_dept();
    let dtdc = schema.to_dtdc();
    let solver = PathSolver::new(&dtdc);
    let mut rng = xic_integration_tests::rng(202);
    let inst = schema.generate_instance(5, &mut rng);
    let tree = schema.export(&inst);
    assert!(validate(&tree, &dtdc).is_valid());
    let idx = ExtIndex::build(&tree);

    let person: Name = "person".into();
    let dept: Name = "dept".into();
    let rho1 = Path::from("in_dept");
    let rho2 = Path::from("has_staff");
    assert!(solver.inverse_implied(&person, &rho1, &dept, &rho2));
    // Semantics: y ∈ nodes(x.ρ1) ⇒ x ∈ nodes(y.ρ2), both directions.
    for &x in idx.ext(&person) {
        let forward = nodes_of(&solver, &tree, &idx, x, &rho1);
        for &y in &forward.nodes {
            let back = nodes_of(&solver, &tree, &idx, y, &rho2);
            assert!(back.nodes.contains(&x), "echo missing for {x:?} → {y:?}");
        }
    }
    for &y in idx.ext(&dept) {
        let forward = nodes_of(&solver, &tree, &idx, y, &rho2);
        for &x in &forward.nodes {
            let back = nodes_of(&solver, &tree, &idx, x, &rho1);
            assert!(back.nodes.contains(&y), "echo missing for {y:?} → {x:?}");
        }
    }
}

#[test]
fn non_implied_constraints_fail_on_some_adversarial_document() {
    // Completeness spot-check: for a handful of NOT-implied path
    // constraints, hand-build a valid document violating them.
    let schema = ObjSchema::person_dept();
    let dtdc = schema.to_dtdc();
    let solver = PathSolver::new(&dtdc);

    // dept.manager -> dept.dname is NOT implied (manager is not a key of
    // dept): two depts sharing a manager but with different names.
    assert!(!solver.functional_implied(
        &"dept".into(),
        &Path::from("manager"),
        &Path::from("dname")
    ));
    let mut b = TreeBuilder::new();
    let db = b.node("db");
    let p = b.child_node(db, "person").unwrap();
    b.attr(p, "oid", AttrValue::single("p1")).unwrap();
    b.attr(p, "in_dept", AttrValue::set(["d1", "d2"])).unwrap();
    b.leaf(p, "name", "A").unwrap();
    b.leaf(p, "address", "x").unwrap();
    for (oid, dn) in [("d1", "Sales"), ("d2", "R&D")] {
        let d = b.child_node(db, "dept").unwrap();
        b.attr(d, "oid", AttrValue::single(oid)).unwrap();
        b.attr(d, "manager", AttrValue::single("p1")).unwrap();
        b.attr(d, "has_staff", AttrValue::set(["p1"])).unwrap();
        b.leaf(d, "dname", dn).unwrap();
    }
    let tree = b.finish(db).unwrap();
    let report = validate(&tree, &dtdc);
    assert!(report.is_valid(), "{report}");
    let idx = ExtIndex::build(&tree);
    // The two depts agree on nodes(manager) but differ on dname text —
    // i.e. the FD genuinely fails semantically.
    let depts: Vec<_> = idx.ext("dept").to_vec();
    let m0 = nodes_of(&solver, &tree, &idx, depts[0], &Path::from("manager"));
    let m1 = nodes_of(&solver, &tree, &idx, depts[1], &Path::from("manager"));
    assert_eq!(m0, m1);
    let n0 = nodes_of(&solver, &tree, &idx, depts[0], &Path::from("dname"));
    let n1 = nodes_of(&solver, &tree, &idx, depts[1], &Path::from("dname"));
    assert_ne!(n0, n1);
}

#[test]
fn random_paths_never_panic() {
    let dtdc = xic::constraints::examples::company_dtdc();
    let solver = PathSolver::new(&dtdc);
    let labels = [
        "db",
        "person",
        "dept",
        "name",
        "dname",
        "address",
        "manager",
        "in_dept",
        "has_staff",
        "oid",
        "bogus",
    ];
    let mut rng = xic_integration_tests::rng(203);
    for _ in 0..300 {
        let len = rng.gen_range(0..5);
        let steps: Vec<&str> = (0..len)
            .map(|_| labels[rng.gen_range(0..labels.len())])
            .collect();
        let p = Path::new(steps.clone());
        let q = Path::new(steps.into_iter().rev());
        let t1: Name = labels[rng.gen_range(0..labels.len())].into();
        let t2: Name = labels[rng.gen_range(0..labels.len())].into();
        let _ = solver.type_of(&t1, &p);
        let _ = solver.functional_implied(&t1, &p, &q);
        let _ = solver.inclusion_implied(&t1, &p, &t2, &q);
        let _ = solver.inverse_implied(&t1, &p, &t2, &q);
    }
}
