//! Randomized agreement between the implication solvers and the
//! brute-force model-search oracle, plus the theorem-level invariants:
//!
//! * soundness — whenever a solver says `Implied` (finite), no small
//!   countermodel exists, and the attached derivation verifies;
//! * refutation — whenever the oracle finds a countermodel, the solver
//!   says `NotImplied` (for both finite and unrestricted modes);
//! * Theorem 3.4 — under the primary-key restriction, finite and
//!   unrestricted `L_u` implication coincide;
//! * monotonicity — implication is preserved when `Σ` grows.

use rand::Rng;
use xic::implication::bruteforce::{find_countermodel, Bounds};
use xic::prelude::*;
use xic_integration_tests::{lu_inverse_queries, random_lu_sigma};

fn small_bounds() -> Bounds {
    Bounds {
        max_per_type: 2,
        max_values: 2,
        budget: 150_000,
    }
}

/// Candidate queries over the same vocabulary as `random_lu_sigma`.
fn lu_queries(n_types: usize) -> Vec<Constraint> {
    let mut out = Vec::new();
    for a in 0..n_types.min(3) {
        let ta = format!("t{a}");
        out.push(Constraint::unary_key(ta.as_str(), "k"));
        out.push(Constraint::unary_key(ta.as_str(), "r"));
        for b in 0..n_types.min(3) {
            let tb = format!("t{b}");
            out.push(Constraint::unary_fk(ta.as_str(), "k", tb.as_str(), "k"));
            out.push(Constraint::set_fk(ta.as_str(), "r", tb.as_str(), "k"));
        }
    }
    out
}

#[test]
fn lu_solver_agrees_with_bruteforce_oracle() {
    let mut rng = xic_integration_tests::rng(100);
    let mut implied = 0usize;
    let mut refuted = 0usize;
    for round in 0..15 {
        let n_types = rng.gen_range(2..4);
        let n_fks = rng.gen_range(0..5);
        let sigma = random_lu_sigma(&mut rng, n_types, n_fks);
        let solver = LuSolver::new(&sigma).unwrap();
        for phi in lu_queries(n_types) {
            if sigma.contains(&phi) {
                continue;
            }
            let fin = solver.implies(&phi, LuMode::Finite).unwrap();
            let unr = solver.implies(&phi, LuMode::Unrestricted).unwrap();
            let cm = find_countermodel(&sigma, &phi, small_bounds());
            match (&fin, &cm) {
                (Verdict::Implied(proof), Some(m)) => {
                    panic!(
                        "solver claims Σ ⊨f {phi} but oracle found countermodel:\n{m}\nΣ = {sigma:?}\nproof:\n{proof}"
                    );
                }
                (Verdict::Implied(proof), None) => {
                    implied += 1;
                    proof
                        .verify(&sigma, None)
                        .unwrap_or_else(|e| panic!("round {round}: bad proof for {phi}: {e}"));
                }
                (Verdict::NotImplied(_), Some(_)) => refuted += 1,
                (Verdict::NotImplied(_), None) => {}
            }
            // Unrestricted implication is at most finite implication.
            if unr.is_implied() {
                assert!(
                    fin.is_implied(),
                    "unrestricted implies finite for {phi} under {sigma:?}"
                );
            }
            // A finite countermodel refutes unrestricted implication too.
            if cm.is_some() {
                assert!(!unr.is_implied(), "{phi} under {sigma:?}");
            }
        }
    }
    // The test is vacuous if generation never produces interesting cases.
    assert!(implied > 5, "too few implied cases: {implied}");
    assert!(refuted > 5, "too few refuted cases: {refuted}");
}

#[test]
fn lu_inverse_verdicts_match_small_oracle() {
    let mut rng = xic_integration_tests::rng(106);
    let mut implied = 0usize;
    for _ in 0..9 {
        let n_types = rng.gen_range(2..4);
        let n_fks = rng.gen_range(1..5);
        let sigma = random_lu_sigma(&mut rng, n_types, n_fks);
        let solver = LuSolver::new(&sigma).unwrap();
        for phi in lu_inverse_queries(n_types) {
            let fin = solver.implies(&phi, LuMode::Finite).unwrap();
            let cm = find_countermodel(&sigma, &phi, small_bounds());
            match (&fin, &cm) {
                (Verdict::Implied(p), Some(m)) => {
                    panic!("inverse claimed implied but refuted:\n{m}\nΣ = {sigma:?}\nproof:\n{p}")
                }
                (Verdict::Implied(p), None) => {
                    implied += 1;
                    p.verify(&sigma, None).unwrap();
                }
                _ => {}
            }
        }
    }
    assert!(implied >= 3, "too few implied inverse cases: {implied}");
}

#[test]
fn lu_countermodels_from_solver_verify() {
    let mut rng = xic_integration_tests::rng(101);
    let mut checked = 0usize;
    for _ in 0..15 {
        let n_types = rng.gen_range(2..4);
        let n_fks = rng.gen_range(0..4);
        let sigma = random_lu_sigma(&mut rng, n_types, n_fks);
        let solver = LuSolver::new(&sigma).unwrap();
        for phi in lu_queries(n_types) {
            if let Verdict::NotImplied(Some(m)) = solver.implies(&phi, LuMode::Finite).unwrap() {
                assert!(
                    m.satisfies_all(&sigma),
                    "Σ fails on solver countermodel\n{m}"
                );
                assert!(
                    !m.satisfies(&phi),
                    "{phi} holds on solver countermodel\n{m}"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 10, "too few countermodels checked: {checked}");
}

#[test]
fn theorem_3_4_finite_equals_unrestricted_under_primary_restriction() {
    let mut rng = xic_integration_tests::rng(102);
    let mut agreements = 0usize;
    for _ in 0..40 {
        // Primary-restricted Σ: one key per type, FK targets always `k`.
        let n_types = rng.gen_range(2..5);
        let types: Vec<String> = (0..n_types).map(|i| format!("t{i}")).collect();
        let mut sigma: Vec<Constraint> = types
            .iter()
            .map(|t| Constraint::unary_key(t.as_str(), "k"))
            .collect();
        for _ in 0..rng.gen_range(0..6) {
            let a = rng.gen_range(0..n_types);
            let b = rng.gen_range(0..n_types);
            sigma.push(Constraint::unary_fk(
                types[a].as_str(),
                "k",
                types[b].as_str(),
                "k",
            ));
        }
        sigma.dedup();
        let solver = LuSolver::new(&sigma).unwrap();
        solver.check_primary(None).unwrap();
        for phi in lu_queries(n_types) {
            // Skip queries that would break the restriction (keys on r).
            if matches!(&phi, Constraint::Key { fields, .. } if fields[0] == Field::attr("r")) {
                continue;
            }
            let fin = solver.implies(&phi, LuMode::Finite).unwrap().is_implied();
            let unr = solver
                .implies(&phi, LuMode::Unrestricted)
                .unwrap()
                .is_implied();
            assert_eq!(fin, unr, "Thm 3.4 violated for {phi} under {sigma:?}");
            agreements += 1;
        }
    }
    assert!(agreements > 100);
}

#[test]
fn lid_solver_sound_against_oracle() {
    // Random L_id Σ over a small vocabulary with single-target reference
    // attributes (see DESIGN.md §"known edge").
    let mut rng = xic_integration_tests::rng(103);
    for _ in 0..20 {
        let n_types = rng.gen_range(2..4);
        let types: Vec<String> = (0..n_types).map(|i| format!("c{i}")).collect();
        let mut sigma: Vec<Constraint> = Vec::new();
        for (i, t) in types.iter().enumerate() {
            if rng.gen_bool(0.7) {
                sigma.push(Constraint::Id {
                    tau: t.as_str().into(),
                });
            }
            if rng.gen_bool(0.5) {
                let target = &types[rng.gen_range(0..n_types)];
                // Reference attribute rᵢ is used once per type: single
                // target by construction.
                sigma.push(Constraint::SetFkToId {
                    tau: t.as_str().into(),
                    attr: format!("r{i}").as_str().into(),
                    target: target.as_str().into(),
                });
            }
        }
        let solver = LidSolver::new(&sigma, None);
        let mut queries: Vec<Constraint> = Vec::new();
        for t in &types {
            queries.push(Constraint::Id {
                tau: t.as_str().into(),
            });
            queries.push(Constraint::unary_key(t.as_str(), "u"));
        }
        for phi in queries {
            let v = solver.implies(&phi);
            let cm = find_countermodel(&sigma, &phi, small_bounds());
            if v.is_implied() {
                assert!(
                    cm.is_none(),
                    "L_id solver claims Σ ⊨ {phi}, oracle disagrees; Σ = {sigma:?}"
                );
                v.proof().unwrap().verify(&sigma, None).unwrap();
            }
            if let Some(m) = v.countermodel() {
                assert!(m.satisfies_all(&sigma) && !m.satisfies(&phi));
            }
        }
    }
}

#[test]
fn implication_is_monotone_in_sigma() {
    let mut rng = xic_integration_tests::rng(104);
    for _ in 0..15 {
        let sigma = random_lu_sigma(&mut rng, 3, 4);
        if sigma.len() < 2 {
            continue;
        }
        let smaller = &sigma[..sigma.len() - 1];
        let s_small = LuSolver::new(smaller).unwrap();
        let s_big = LuSolver::new(&sigma).unwrap();
        for phi in lu_queries(3) {
            for mode in [LuMode::Finite, LuMode::Unrestricted] {
                if s_small.implies(&phi, mode).unwrap().is_implied() {
                    assert!(
                        s_big.implies(&phi, mode).unwrap().is_implied(),
                        "monotonicity broken for {phi} ({mode:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn chase_agrees_with_lp_solver_on_primary_schemas() {
    let mut rng = xic_integration_tests::rng(105);
    let mut compared = 0usize;
    for _ in 0..10 {
        // Chains of multi-attribute FKs over distinct relations (acyclic:
        // the chase terminates).
        let arity = rng.gen_range(1..4);
        let cols: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
        let n_rel = rng.gen_range(2..5);
        let rels: Vec<String> = (0..n_rel).map(|i| format!("r{i}")).collect();
        let mut sigma: Vec<Constraint> = rels
            .iter()
            .map(|r| Constraint::key(r.as_str(), cols.iter().map(String::as_str)))
            .collect();
        for w in rels.windows(2) {
            if rng.gen_bool(0.8) {
                sigma.push(Constraint::fk(
                    w[0].as_str(),
                    cols.iter().map(String::as_str),
                    w[1].as_str(),
                    cols.iter().map(String::as_str),
                ));
            }
        }
        let lp = LpSolver::new(&sigma).unwrap();
        let chase = Chase::new(&sigma, xic::implication::chase::ChaseLimits::default()).unwrap();
        for i in 0..n_rel {
            for j in 0..n_rel {
                if i == j {
                    continue;
                }
                let phi = Constraint::fk(
                    rels[i].as_str(),
                    cols.iter().map(String::as_str),
                    rels[j].as_str(),
                    cols.iter().map(String::as_str),
                );
                let a = lp.implies(&phi).is_implied();
                match chase.implies(&phi) {
                    ChaseOutcome::Implied => assert!(a, "{phi}"),
                    ChaseOutcome::NotImplied(m) => {
                        assert!(!a, "{phi}");
                        assert!(m.satisfies_all(&sigma) && !m.satisfies(&phi));
                    }
                    ChaseOutcome::ResourceLimit => {}
                }
                compared += 1;
            }
        }
    }
    assert!(compared > 20);
}
