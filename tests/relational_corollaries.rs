//! The paper's relational corollaries, read natively: the flat instances
//! of the implication engine *are* relational instances (a typed extent =
//! a relation, single-valued fields = columns), so Corollaries 3.5, 3.7
//! and 3.9 are exercised directly over relational schemas.

use xic::prelude::*;

/// Corollary 3.5 — in relational databases, implication and finite
/// implication of primary **unary** keys and foreign keys coincide and are
/// decidable in linear time.
#[test]
fn corollary_3_5_unary_primary_relational() {
    // employee(dept_id → department.id), department(id), each with one key.
    let sigma = vec![
        Constraint::unary_key("employee", "eid"),
        Constraint::unary_key("department", "did"),
        Constraint::unary_fk("employee", "eid", "department", "did"),
    ];
    let solver = LuSolver::new(&sigma).unwrap();
    solver.check_primary(None).unwrap();
    let queries = [
        Constraint::unary_key("employee", "eid"),
        Constraint::unary_key("department", "did"),
        Constraint::unary_fk("employee", "eid", "department", "did"),
        Constraint::unary_fk("department", "did", "employee", "eid"),
        Constraint::unary_fk("employee", "eid", "employee", "eid"),
    ];
    for phi in queries {
        let fin = solver.implies(&phi, LuMode::Finite).unwrap().is_implied();
        let unr = solver
            .implies(&phi, LuMode::Unrestricted)
            .unwrap()
            .is_implied();
        assert_eq!(fin, unr, "Cor 3.5: modes must coincide for {phi}");
    }
}

/// Corollary 3.7's context — general relational keys + foreign keys are
/// undecidable; the chase semi-decides and its divergence is confined to
/// cyclic inclusion families, while acyclic relational schemas terminate.
#[test]
fn corollary_3_7_chase_behaviour_on_relational_schemas() {
    // A classic normalized schema: orders → customers, order_items →
    // orders and products. Acyclic: the chase decides everything.
    let sigma = vec![
        Constraint::key("customers", ["cid"]),
        Constraint::key("orders", ["oid"]),
        Constraint::key("products", ["pid"]),
        Constraint::key("order_items", ["oid", "pid"]),
        Constraint::fk("orders", ["cid"], "customers", ["cid"]),
        Constraint::fk("order_items", ["oid"], "orders", ["oid"]),
        Constraint::fk("order_items", ["pid"], "products", ["pid"]),
    ];
    let chase = Chase::new(&sigma, xic::implication::chase::ChaseLimits::default()).unwrap();
    // Superkey of a key relation: implied.
    assert!(chase
        .implies(&Constraint::key("order_items", ["oid", "pid", "qty"]))
        .is_implied());
    // Column subset of a composite key: not implied, with countermodel.
    match chase.implies(&Constraint::key("order_items", ["oid"])) {
        ChaseOutcome::NotImplied(m) => {
            assert!(m.satisfies_all(&sigma));
        }
        other => panic!("expected NotImplied, got {other:?}"),
    }
    // Transitive reference through two hops is NOT an FK fact here (the
    // columns do not compose: order_items.oid targets orders.oid, and
    // orders has no FK on oid) — the chase agrees.
    assert!(!chase
        .implies(&Constraint::fk(
            "order_items",
            ["oid"],
            "customers",
            ["cid"]
        ))
        .is_implied());
}

/// Corollary 3.9 — in relational databases, implication and finite
/// implication of (multi-attribute) primary keys and foreign keys coincide
/// and are decidable; `I_p` decides them.
#[test]
fn corollary_3_9_primary_multiattribute_relational() {
    let schema = RelSchema::publishers_editors();
    let dtdc = schema.to_dtdc();
    let lp = LpSolver::new(dtdc.constraints()).unwrap();
    // Decidable: every query answered, derivations verify.
    let phi = Constraint::fk(
        "editor",
        ["country", "pname"],
        "publisher",
        ["country", "pname"],
    );
    let v = lp.implies(&phi);
    assert!(v.is_implied());
    v.proof().unwrap().verify(dtdc.constraints(), None).unwrap();
    // The chase — which conflates nothing about finiteness (it builds
    // finite universal models) — agrees on this decidable fragment,
    // witnessing the coincidence of the two problems.
    let chase = Chase::new(
        dtdc.constraints(),
        xic::implication::chase::ChaseLimits::default(),
    )
    .unwrap();
    assert!(chase.implies(&phi).is_implied());
    let bad = Constraint::fk(
        "editor",
        ["pname", "country"],
        "publisher",
        ["country", "pname"],
    );
    assert!(!lp.implies(&bad).is_implied());
    assert!(!chase.implies(&bad).is_implied());
}

/// The flat-instance ↔ relational reading, made concrete: a generated
/// relational instance satisfies exactly the constraints its schema
/// declares, when read as a flat `Instance`.
#[test]
fn relational_instances_are_flat_instances() {
    let schema = RelSchema::publishers_editors();
    let dtdc = schema.to_dtdc();
    let mut rng = xic_integration_tests::rng(300);
    let rel = schema.generate_instance(6, &mut rng);

    // Rebuild as a flat Instance: one element per row, columns as fields.
    let mut inst = Instance::new();
    let mut value_ids = std::collections::HashMap::new();
    let mut intern = |v: &str| -> u32 {
        let next = value_ids.len() as u32;
        *value_ids.entry(v.to_string()).or_insert(next)
    };
    for (rel_name, rows) in &rel.rows {
        for row in rows {
            let mut e = xic::implication::semantics::Element::default();
            for (col, val) in row {
                e.single.insert(Field::attr(col.as_str()), intern(val));
            }
            inst.push(rel_name.clone(), e);
        }
    }
    assert!(inst.satisfies_all(dtdc.constraints()));
    // And breaking a key value breaks exactly the key.
    let editors: Vec<_> = inst.ext("editor").to_vec();
    if editors.len() >= 2 {
        let clone_of_first = editors[0].clone();
        inst.exts.get_mut("editor").unwrap()[1] = clone_of_first;
        assert!(!inst.satisfies(&Constraint::key("editor", ["name"])));
    }
}
