//! Round-trip properties across crates: XML ↔ data trees, DTD text ↔
//! structures, constraint syntax ↔ ASTs, and countermodel instances ↔
//! real validated documents.

use rand::Rng;
use xic::prelude::*;

#[test]
fn generated_object_documents_round_trip_through_xml() {
    let schema = ObjSchema::person_dept();
    let dtdc = schema.to_dtdc();
    let mut rng = xic_integration_tests::rng(7);
    for n in [1, 3, 9] {
        let inst = schema.generate_instance(n, &mut rng);
        let tree = schema.export(&inst);
        let xml = format!(
            "<!DOCTYPE db [\n{}]>\n{}",
            serialize_dtd(dtdc.structure()),
            serialize_document(&tree)
        );
        let doc = parse_document(&xml).unwrap();
        // Same shape, same validity.
        assert_eq!(doc.tree.len(), tree.len());
        let report = validate(&doc.tree, &dtdc);
        assert!(report.is_valid(), "n={n}: {report}");
        // The embedded DTD also parses to an equivalent structure.
        let dtd = doc.dtd.unwrap();
        assert_eq!(dtd.root(), dtdc.structure().root());
        for tau in dtdc.structure().element_types() {
            assert_eq!(
                dtd.content_model(tau).map(ToString::to_string),
                dtdc.structure().content_model(tau).map(ToString::to_string)
            );
        }
    }
}

#[test]
fn generated_relational_documents_round_trip_through_xml() {
    let schema = RelSchema::publishers_editors();
    let dtdc = schema.to_dtdc();
    let mut rng = xic_integration_tests::rng(8);
    let inst = schema.generate_instance(6, &mut rng);
    let tree = schema.export(&inst);
    let xml = format!(
        "<!DOCTYPE db [\n{}]>\n{}",
        serialize_dtd(dtdc.structure()),
        serialize_document(&tree)
    );
    let doc = parse_document(&xml).unwrap();
    assert_eq!(doc.tree.len(), tree.len());
    assert!(validate(&doc.tree, &dtdc).is_valid());
}

#[test]
fn constraint_syntax_round_trips_for_all_forms() {
    let s = xic::constraints::examples::company_structure();
    for src in [
        "person.oid ->id person",
        "person.name -> person",
        "dept.manager <= person.oid",
        "person.in_dept <=s dept.oid",
        "dept.has_staff <=> person.in_dept",
    ] {
        let c = Constraint::parse(src, &s, Language::Lid).unwrap();
        let printed = c.to_string();
        let again = Constraint::parse(&printed, &s, Language::Lid).unwrap();
        assert_eq!(c, again, "{src} → {printed}");
    }
}

#[test]
fn countermodels_become_real_validated_documents() {
    // Take L_id countermodels from the solver, materialize them as data
    // trees, and check the structural half of Definition 2.4 accepts them.
    let sigma = xic::constraints::examples::company_dtdc()
        .constraints()
        .to_vec();
    let structure = xic::constraints::examples::company_structure();
    let solver = LidSolver::new(&sigma, Some(&structure));
    let non_implied = [
        Constraint::unary_key("person", "address"),
        Constraint::Id { tau: "db".into() },
    ];
    for phi in non_implied {
        let v = solver.implies_with(&phi, Some(&structure));
        let m = v.countermodel().expect("countermodel");
        let (gen_structure, tree) = xic::implication::semantics::instance_to_tree(m);
        let dtdc = DtdC::new(gen_structure, Language::Lid, vec![]).unwrap();
        let report = Validator::new(&dtdc).validate_structure(&tree);
        assert!(report.is_valid(), "{phi}: {report}");
    }
}

#[test]
fn random_content_models_round_trip_and_agree() {
    // Random content models: parse(display(m)) == m, and all three
    // matchers agree on sampled words plus mutations.
    let mut rng = xic_integration_tests::rng(9);
    for _ in 0..60 {
        let m = random_model(&mut rng, 4);
        let printed = m.to_string();
        let again =
            ContentModel::parse(&printed).unwrap_or_else(|e| panic!("reparse {printed}: {e}"));
        // The parser left-associates, so trees may differ structurally —
        // but printing is stable and the languages must coincide.
        assert_eq!(again.to_string(), printed);
        let again_dfa = Dfa::from_model(&again);

        let nfa = Nfa::build(&m);
        let dfa = Dfa::build(&nfa);
        for _ in 0..20 {
            let mut w = m.sample(&mut rng, 0.4);
            assert!(dfa.matches(&w) && nfa.matches(&w) && m.matches_derivative(&w));
            // Mutate: push/pop a random symbol.
            if rng.gen_bool(0.5) {
                w.push(Symbol::elem(format!("e{}", rng.gen_range(0..3))));
            } else {
                w.pop();
            }
            let d = m.matches_derivative(&w);
            assert_eq!(dfa.matches(&w), d, "{printed} / {w:?}");
            assert_eq!(nfa.matches(&w), d, "{printed} / {w:?}");
            assert_eq!(again_dfa.matches(&w), d, "reparsed {printed} / {w:?}");
        }
    }
}

fn random_model(rng: &mut impl Rng, depth: usize) -> ContentModel {
    if depth == 0 || rng.gen_bool(0.35) {
        return match rng.gen_range(0..5) {
            0 => ContentModel::S,
            1 => ContentModel::Epsilon,
            _ => ContentModel::elem(format!("e{}", rng.gen_range(0..3))),
        };
    }
    match rng.gen_range(0..3) {
        0 => ContentModel::alt(random_model(rng, depth - 1), random_model(rng, depth - 1)),
        1 => ContentModel::seq(random_model(rng, depth - 1), random_model(rng, depth - 1)),
        _ => ContentModel::star(random_model(rng, depth - 1)),
    }
}
