//! End-to-end checks of the paper's three running examples (§1, §2.4):
//! the book document (`L_u`), the person/dept object database (`L_id`),
//! and the publishers/editors relational database (`L`).

use xic::prelude::*;

const BOOK_DTD_TEXT: &str = r#"
  <!ELEMENT book (entry, author*, section*, ref)>
  <!ELEMENT entry (title, publisher)>
  <!ELEMENT title (#PCDATA)> <!ELEMENT publisher (#PCDATA)>
  <!ELEMENT author (#PCDATA)> <!ELEMENT text (#PCDATA)>
  <!ELEMENT section (title, (text | section)*)>
  <!ELEMENT ref EMPTY>
  <!ATTLIST entry isbn CDATA #REQUIRED>
  <!ATTLIST section sid CDATA #REQUIRED>
  <!ATTLIST ref to NMTOKENS #IMPLIED>
"#;

/// The DTD parsed from text matches the programmatic structure.
#[test]
fn book_dtd_text_matches_programmatic_structure() {
    let parsed = parse_dtd(BOOK_DTD_TEXT, "book").unwrap();
    let built = xic::constraints::examples::book_structure();
    assert_eq!(parsed.root(), built.root());
    for tau in built.element_types() {
        assert_eq!(
            parsed.content_model(tau).map(ToString::to_string),
            built.content_model(tau).map(ToString::to_string),
            "content model of {tau}"
        );
        for (l, ty) in built.attributes(tau) {
            assert_eq!(parsed.attr_type(tau, l), Some(ty), "attr {tau}.{l}");
        }
    }
}

#[test]
fn book_document_lifecycle() {
    let dtdc = xic::constraints::examples::book_dtdc();
    let doc = parse_document(
        r#"<book>
             <entry isbn="1-55860-622-X">
               <title>Data on the Web</title><publisher>MK</publisher>
             </entry>
             <author>A</author>
             <section sid="s1"><title>T1</title>
               <section sid="s2"><title>T2</title></section>
             </section>
             <ref to="1-55860-622-X"/>
           </book>"#,
    )
    .unwrap();
    let report = validate(&doc.tree, &dtdc);
    assert!(report.is_valid(), "{report}");

    // Serialize and re-validate (round trip preserves validity).
    let xml = serialize_document(&doc.tree);
    let again = parse_document(&xml).unwrap();
    assert!(validate(&again.tree, &dtdc).is_valid());

    // Σ implication: keys hold where declared, and the scoping point of
    // §1 — isbn is NOT a key of book.
    let solver = LuSolver::new(dtdc.constraints()).unwrap();
    assert!(solver
        .implies(&Constraint::unary_key("entry", "isbn"), LuMode::Finite)
        .unwrap()
        .is_implied());
    assert!(!solver
        .implies(&Constraint::unary_key("book", "isbn"), LuMode::Finite)
        .unwrap()
        .is_implied());
}

#[test]
fn company_database_lifecycle() {
    let schema = ObjSchema::person_dept();
    let dtdc = schema.to_dtdc();
    let mut rng = xic_integration_tests::rng(42);
    let inst = schema.generate_instance(8, &mut rng);
    let tree = schema.export(&inst);
    assert!(validate(&tree, &dtdc).is_valid());

    // The L_id solver answers the paper's motivating questions.
    let solver = LidSolver::new(dtdc.constraints(), Some(dtdc.structure()));
    // (i) in_dept refers to departments only — declared.
    assert!(solver
        .implies(&Constraint::SetFkToId {
            tau: "person".into(),
            attr: "in_dept".into(),
            target: "dept".into(),
        })
        .is_implied());
    // (ii) more than one key per type: oid (via →_id) and name.
    assert!(solver
        .implies_with(
            &Constraint::unary_key("person", "oid"),
            Some(dtdc.structure())
        )
        .is_implied());
    assert!(solver
        .implies(&Constraint::sub_key("person", "name"))
        .is_implied());
    // (iii) inverse relationship — declared, and its symmetric form too.
    assert!(solver
        .implies(&Constraint::InverseId {
            tau: "person".into(),
            attr: "in_dept".into(),
            target: "dept".into(),
            target_attr: "has_staff".into(),
        })
        .is_implied());

    // Every Implied answer carries a verifiable derivation.
    for phi in [
        Constraint::Id { tau: "dept".into() },
        Constraint::sub_key("dept", "dname"),
    ] {
        let v = solver.implies(&phi);
        v.proof()
            .unwrap_or_else(|| panic!("{phi} should be implied"))
            .verify(solver.sigma(), Some(dtdc.structure()))
            .unwrap();
    }
}

#[test]
fn publishers_database_lifecycle() {
    let schema = RelSchema::publishers_editors();
    let dtdc = schema.to_dtdc();
    let mut rng = xic_integration_tests::rng(43);
    let inst = schema.generate_instance(10, &mut rng);
    let tree = schema.export(&inst);
    assert!(validate(&tree, &dtdc).is_valid());

    // The exported Σ matches the paper's constraints.
    assert!(dtdc
        .constraints()
        .contains(&Constraint::key("publisher", ["pname", "country"])));
    assert!(dtdc.constraints().contains(&Constraint::fk(
        "editor",
        ["pname", "country"],
        "publisher",
        ["pname", "country"]
    )));

    // Primary-key reasoning and the chase agree on this schema.
    let lp = LpSolver::new(dtdc.constraints()).unwrap();
    let chase = Chase::new(
        dtdc.constraints(),
        xic::implication::chase::ChaseLimits::default(),
    )
    .unwrap();
    let queries = [
        Constraint::fk(
            "editor",
            ["country", "pname"],
            "publisher",
            ["country", "pname"],
        ),
        Constraint::fk(
            "editor",
            ["pname", "country"],
            "publisher",
            ["country", "pname"],
        ),
        Constraint::key("publisher", ["pname", "country"]),
        Constraint::key("editor", ["name"]),
    ];
    for phi in queries {
        let a = lp.implies(&phi).is_implied();
        let b = chase.implies(&phi).is_implied();
        assert_eq!(a, b, "LpSolver vs chase on {phi}");
    }
}

#[test]
fn figure1_and_figure2_reproduce() {
    // Figure 1: FO² equivalence with key separation.
    let (g, h) = figure1(2);
    assert!(two_pebble_equivalent(&g, &h));
    assert!(g.satisfies_unary_key("l"));
    assert!(!h.satisfies_unary_key("l"));

    // Figure 2: the rendered book data tree shows the annotated structure.
    let doc = parse_document(
        r#"<book><entry isbn="i"><title>T</title><publisher>P</publisher></entry>
           <ref to="i"/></book>"#,
    )
    .unwrap();
    let rendered = render_tree(&doc.tree, &RenderOptions::default());
    assert!(rendered.contains("book"));
    assert!(rendered.contains("@isbn = \"i\""));
    assert!(rendered.lines().count() >= 6);
}
