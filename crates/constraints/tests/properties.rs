//! Property tests for the constraint syntax: arbitrary well-formed
//! constraints round-trip through `Display` → `parse`, and well-formedness
//! checking never panics on arbitrary constraint sets.

use proptest::prelude::*;
use xic_constraints::{examples, Constraint, DtdC, Field, Language};

/// Arbitrary constraints over the company structure's vocabulary.
fn constraint_strategy() -> impl Strategy<Value = (Constraint, Language)> {
    let types = prop_oneof![Just("person"), Just("dept"), Just("db")];
    let attrs = prop_oneof![
        Just("oid"),
        Just("manager"),
        Just("in_dept"),
        Just("has_staff")
    ];
    let subs = prop_oneof![Just("name"), Just("address"), Just("dname")];
    let field = prop_oneof![
        attrs.clone().prop_map(|a: &str| Field::attr(a)),
        subs.prop_map(|s: &str| Field::sub(s)),
    ];
    prop_oneof![
        // Unary keys — all three languages.
        (types.clone(), field.clone()).prop_map(|(t, f)| (
            Constraint::Key {
                tau: t.into(),
                fields: vec![f]
            },
            Language::Lid
        )),
        // Multi-attribute keys / FKs — language L.
        (types.clone(), prop::collection::vec(field.clone(), 1..3)).prop_map(|(t, mut fs)| {
            fs.sort();
            fs.dedup();
            (
                Constraint::Key {
                    tau: t.into(),
                    fields: fs,
                },
                Language::L,
            )
        }),
        // L_id reference forms.
        (types.clone(), attrs.clone(), types.clone()).prop_map(|(t, a, u)| (
            Constraint::FkToId {
                tau: t.into(),
                attr: a.into(),
                target: u.into()
            },
            Language::Lid
        )),
        (types.clone(), attrs.clone(), types.clone()).prop_map(|(t, a, u)| (
            Constraint::SetFkToId {
                tau: t.into(),
                attr: a.into(),
                target: u.into()
            },
            Language::Lid
        )),
        (types.clone(), attrs.clone(), types.clone(), attrs.clone()).prop_map(|(t, a, u, b)| (
            Constraint::InverseId {
                tau: t.into(),
                attr: a.into(),
                target: u.into(),
                target_attr: b.into()
            },
            Language::Lid
        )),
        // Id constraints.
        types
            .clone()
            .prop_map(|t| (Constraint::Id { tau: t.into() }, Language::Lid)),
        // L_u set-valued FK.
        (types.clone(), attrs.clone(), types, field).prop_map(|(t, a, u, f)| (
            Constraint::SetForeignKey {
                tau: t.into(),
                attr: a.into(),
                target: u.into(),
                target_field: f
            },
            Language::Lu
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_parse_round_trip((c, lang) in constraint_strategy()) {
        let s = examples::company_structure();
        let printed = c.to_string();
        let parsed = Constraint::parse(&printed, &s, lang)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        // Display uses explicit @ sigils, so field resolution is exact and
        // the round trip is the identity — except that the L_id `id`
        // normalization may collapse ID-attribute spellings, which this
        // vocabulary avoids.
        prop_assert_eq!(parsed, c, "{}", printed);
    }

    #[test]
    fn wf_checking_never_panics(cs in prop::collection::vec(constraint_strategy(), 0..6)) {
        let s = examples::company_structure();
        for lang in [Language::L, Language::Lu, Language::Lid] {
            let sigma: Vec<Constraint> = cs.iter().map(|(c, _)| c.clone()).collect();
            let _ = DtdC::new(s.clone(), lang, sigma);
        }
    }
}
