//! # xic-constraints — DTD structures and the languages `L`, `L_u`, `L_id`
//!
//! This crate implements Section 2 of Fan & Siméon, *Integrity Constraints
//! for XML* (PODS 2000):
//!
//! * [`DtdStructure`] — the structural half of a DTD,
//!   `S = (E, P, R, kind, r)` (Definition 2.2): element types, element type
//!   definitions as content-model regular expressions, attribute type
//!   definitions (`S` or `S*`), the `kind` function marking `ID`/`IDREF`
//!   attributes, and the root type;
//! * [`Constraint`] — the basic XML constraints of the three languages:
//!   - **`L`**: multi-attribute keys `τ[X] → τ` and foreign keys
//!     `τ[X] ⊆ τ'[Y]`;
//!   - **`L_u`**: unary keys/foreign keys, set-valued foreign keys
//!     `τ.l ⊆_S τ'.l'`, and inverse constraints
//!     `τ(l_k).l ⇌ τ'(l'_k).l'`;
//!   - **`L_id`**: ID constraints `τ.id →_id τ`, unary keys, (set-valued)
//!     foreign keys into ID attributes, and inverse constraints
//!     `τ.l ⇌ τ'.l'`;
//! * [`Field`] — a key/foreign-key component, either an attribute or (per
//!   §3.4) a *unique sub-element*;
//! * [`DtdC`] — a DTD with constraints, `D = (S, Σ)` (Definition 2.3), with
//!   full well-formedness checking of `Σ` against `S`;
//! * a textual syntax for constraints ([`Constraint::parse`]) mirroring the
//!   paper's notation in ASCII (`->`, `->id`, `<=`, `<=s`, `<=>`);
//! * [`examples`] — the paper's three running examples (the `book`
//!   document, the person/dept object database, the publishers/editors
//!   relational database) as ready-made `DtdC` values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraint;
mod dtdc;
mod evolution;
pub mod examples;
mod structure;
mod syntax;

pub use constraint::{Constraint, Field, Language};
pub use dtdc::{DtdC, WfError};
pub use evolution::Incompatibility;
pub use structure::{AttrKind, AttrType, DtdStructure, StructureError};
pub use syntax::SyntaxError;
