//! Textual syntax for basic XML constraints.
//!
//! ASCII rendering of the paper's notation:
//!
//! ```text
//! entry.isbn -> entry                              unary key
//! publisher[pname, country] -> publisher           multi-attribute key (L)
//! editor[pname, country] <= publisher[pname, country]   foreign key (L)
//! ref.to <=s entry.isbn                            set-valued foreign key (L_u)
//! a(k).r <=> b(k2).r2                              inverse (L_u)
//! person.oid ->id person                           ID constraint (L_id)
//! dept.manager <= person.oid                       foreign key into IDs (L_id)
//! dept.has_staff <=s person.oid                    set-valued FK into IDs (L_id)
//! dept.has_staff <=> person.in_dept                inverse (L_id)
//! ```
//!
//! Field names resolve against the [`DtdStructure`]: a name declared as an
//! attribute of the element type parses as an attribute field; otherwise it
//! parses as a sub-element field (§3.4). An explicit `@` sigil forces the
//! attribute reading. In `L_id` syntax, the right-hand side of `<=`/`<=s`
//! may be written `τ'.id` or with the ID attribute's concrete name.

use std::fmt;

use xic_model::Name;

use crate::constraint::{Constraint, Field, Language};
use crate::structure::DtdStructure;

/// Constraint syntax error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyntaxError {
    /// Human-readable description.
    pub message: String,
}

impl SyntaxError {
    fn new(msg: impl Into<String>) -> Self {
        SyntaxError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint syntax error: {}", self.message)
    }
}

impl std::error::Error for SyntaxError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Name(String),
    At,
    Dot,
    Comma,
    LBrack,
    RBrack,
    LParen,
    RParen,
    Arrow,   // ->
    ArrowId, // ->id
    Sub,     // <=
    SubS,    // <=s
    Inv,     // <=>
}

fn tokenize(src: &str) -> Result<Vec<Tok>, SyntaxError> {
    let mut toks = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '@' => {
                toks.push(Tok::At);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBrack);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBrack);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '-' => {
                if src[i..].starts_with("->id") {
                    toks.push(Tok::ArrowId);
                    i += 4;
                } else if src[i..].starts_with("->") {
                    toks.push(Tok::Arrow);
                    i += 2;
                } else {
                    return Err(SyntaxError::new(format!("stray '-' at byte {i}")));
                }
            }
            '<' => {
                if src[i..].starts_with("<=>") {
                    toks.push(Tok::Inv);
                    i += 3;
                } else if src[i..].starts_with("<=s")
                    && !src[i + 3..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    // "<=s" only when it is not the start of a name after
                    // "<=" (so "a.x <=start.y" still parses as "<=", name).
                    toks.push(Tok::SubS);
                    i += 3;
                } else if src[i..].starts_with("<=") {
                    toks.push(Tok::Sub);
                    i += 2;
                } else {
                    return Err(SyntaxError::new(format!("stray '<' at byte {i}")));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < b.len() {
                    let c = b[i] as char;
                    if c.is_alphanumeric() || matches!(c, '_' | '-') && !src[i..].starts_with("->")
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Name(src[start..i].to_string()));
            }
            other => return Err(SyntaxError::new(format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

/// One side of a constraint as parsed, before form resolution.
#[derive(Debug)]
struct Side {
    tau: Name,
    /// The key named in parentheses for the `L_u` inverse form.
    paren_key: Option<RawField>,
    fields: Vec<RawField>,
}

#[derive(Debug, Clone)]
struct RawField {
    name: Name,
    forced_attr: bool,
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_name(&mut self) -> Result<Name, SyntaxError> {
        match self.next() {
            Some(Tok::Name(n)) => Ok(Name::new(n)),
            other => Err(SyntaxError::new(format!("expected name, got {other:?}"))),
        }
    }

    fn raw_field(&mut self) -> Result<RawField, SyntaxError> {
        let forced_attr = if self.peek() == Some(&Tok::At) {
            self.next();
            true
        } else {
            false
        };
        Ok(RawField {
            name: self.expect_name()?,
            forced_attr,
        })
    }

    fn side(&mut self) -> Result<Side, SyntaxError> {
        let tau = self.expect_name()?;
        let mut paren_key = None;
        if self.peek() == Some(&Tok::LParen) {
            self.next();
            paren_key = Some(self.raw_field()?);
            if self.next() != Some(Tok::RParen) {
                return Err(SyntaxError::new("expected ')'"));
            }
        }
        let fields = match self.next() {
            Some(Tok::Dot) => vec![self.raw_field()?],
            Some(Tok::LBrack) => {
                let mut fs = vec![self.raw_field()?];
                loop {
                    match self.next() {
                        Some(Tok::Comma) => fs.push(self.raw_field()?),
                        Some(Tok::RBrack) => break,
                        other => {
                            return Err(SyntaxError::new(format!(
                                "expected ',' or ']', got {other:?}"
                            )))
                        }
                    }
                }
                fs
            }
            other => {
                return Err(SyntaxError::new(format!(
                    "expected '.' or '[', got {other:?}"
                )))
            }
        };
        Ok(Side {
            tau,
            paren_key,
            fields,
        })
    }
}

/// Resolves a raw field name against the structure: declared attribute ⇒
/// attribute field, else sub-element field.
fn resolve_field(s: &DtdStructure, tau: &Name, raw: &RawField) -> Field {
    if raw.forced_attr || s.attr_type(tau, &raw.name).is_some() {
        Field::Attr(raw.name.clone())
    } else {
        Field::Sub(raw.name.clone())
    }
}

/// True iff `raw` names the ID attribute of `tau` (either literally `id` or
/// by the attribute's concrete name).
fn is_id_ref(s: &DtdStructure, tau: &Name, raw: &RawField) -> bool {
    raw.name.as_str() == "id" || s.id_attr(tau) == Some(&raw.name)
}

impl Constraint {
    /// Parses the textual constraint syntax, resolving field names against
    /// `structure` and choosing `L_id` reference forms when `lang` is
    /// [`Language::Lid`].
    ///
    /// ```
    /// use xic_constraints::{Constraint, DtdStructure, Language};
    /// let s = DtdStructure::builder("book")
    ///     .elem("book", "(entry, ref)")
    ///     .elem("entry", "S").elem("ref", "EMPTY")
    ///     .attr("entry", "isbn", "S")
    ///     .attr("ref", "to", "S*")
    ///     .build().unwrap();
    /// let k = Constraint::parse("entry.isbn -> entry", &s, Language::Lu).unwrap();
    /// assert_eq!(k, Constraint::unary_key("entry", "isbn"));
    /// let f = Constraint::parse("ref.to <=s entry.isbn", &s, Language::Lu).unwrap();
    /// assert_eq!(f, Constraint::set_fk("ref", "to", "entry", "isbn"));
    /// ```
    pub fn parse(
        src: &str,
        structure: &DtdStructure,
        lang: Language,
    ) -> Result<Constraint, SyntaxError> {
        let mut p = P {
            toks: tokenize(src)?,
            pos: 0,
        };
        let lhs = p.side()?;
        let op = p
            .next()
            .ok_or_else(|| SyntaxError::new("expected '->', '->id', '<=', '<=s' or '<=>'"))?;
        let c = match op {
            Tok::Arrow => {
                let t = p.expect_name()?;
                if t != lhs.tau {
                    return Err(SyntaxError::new(format!(
                        "key constraint must repeat the element type: {} vs {t}",
                        lhs.tau
                    )));
                }
                let mut fields: Vec<Field> = lhs
                    .fields
                    .iter()
                    .map(|r| resolve_field(structure, &lhs.tau, r))
                    .collect();
                fields.sort();
                fields.dedup();
                Constraint::Key {
                    tau: lhs.tau,
                    fields,
                }
            }
            Tok::ArrowId => {
                let t = p.expect_name()?;
                if t != lhs.tau {
                    return Err(SyntaxError::new(
                        "ID constraint must repeat the element type",
                    ));
                }
                if lhs.fields.len() != 1 || !is_id_ref(structure, &lhs.tau, &lhs.fields[0]) {
                    return Err(SyntaxError::new(format!(
                        "'->id' requires the ID attribute of {} on the left",
                        lhs.tau
                    )));
                }
                Constraint::Id { tau: lhs.tau }
            }
            Tok::Sub | Tok::SubS => {
                let rhs = p.side()?;
                let set = op == Tok::SubS;
                if lang == Language::Lid
                    && rhs.fields.len() == 1
                    && is_id_ref(structure, &rhs.tau, &rhs.fields[0])
                {
                    if lhs.fields.len() != 1 {
                        return Err(SyntaxError::new("L_id foreign keys are unary"));
                    }
                    let attr = lhs.fields[0].name.clone();
                    if set {
                        Constraint::SetFkToId {
                            tau: lhs.tau,
                            attr,
                            target: rhs.tau,
                        }
                    } else {
                        Constraint::FkToId {
                            tau: lhs.tau,
                            attr,
                            target: rhs.tau,
                        }
                    }
                } else if set {
                    if lhs.fields.len() != 1 || rhs.fields.len() != 1 {
                        return Err(SyntaxError::new("'<=s' takes single fields on both sides"));
                    }
                    Constraint::SetForeignKey {
                        tau: lhs.tau.clone(),
                        attr: lhs.fields[0].name.clone(),
                        target: rhs.tau.clone(),
                        target_field: resolve_field(structure, &rhs.tau, &rhs.fields[0]),
                    }
                } else {
                    if lhs.fields.len() != rhs.fields.len() {
                        return Err(SyntaxError::new(
                            "foreign key sides must have the same length",
                        ));
                    }
                    Constraint::ForeignKey {
                        tau: lhs.tau.clone(),
                        fields: lhs
                            .fields
                            .iter()
                            .map(|r| resolve_field(structure, &lhs.tau, r))
                            .collect(),
                        target: rhs.tau.clone(),
                        target_fields: rhs
                            .fields
                            .iter()
                            .map(|r| resolve_field(structure, &rhs.tau, r))
                            .collect(),
                    }
                }
            }
            Tok::Inv => {
                let rhs = p.side()?;
                if lhs.fields.len() != 1 || rhs.fields.len() != 1 {
                    return Err(SyntaxError::new("'<=>' takes single attributes"));
                }
                match (&lhs.paren_key, &rhs.paren_key) {
                    (Some(k1), Some(k2)) => Constraint::InverseU {
                        tau: lhs.tau.clone(),
                        key: resolve_field(structure, &lhs.tau, k1),
                        attr: lhs.fields[0].name.clone(),
                        target: rhs.tau.clone(),
                        target_key: resolve_field(structure, &rhs.tau, k2),
                        target_attr: rhs.fields[0].name.clone(),
                    },
                    (None, None) => Constraint::InverseId {
                        tau: lhs.tau,
                        attr: lhs.fields[0].name.clone(),
                        target: rhs.tau,
                        target_attr: rhs.fields[0].name.clone(),
                    },
                    _ => {
                        return Err(SyntaxError::new(
                            "inverse constraints name keys on both sides or neither",
                        ))
                    }
                }
            }
            other => return Err(SyntaxError::new(format!("unexpected {other:?}"))),
        };
        if p.peek().is_some() {
            return Err(SyntaxError::new("trailing input"));
        }
        Ok(c)
    }

    /// Parses a whitespace/newline-separated list of constraints; lines
    /// starting with `#` are comments.
    pub fn parse_set(
        src: &str,
        structure: &DtdStructure,
        lang: Language,
    ) -> Result<Vec<Constraint>, SyntaxError> {
        src.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| Constraint::parse(l, structure, lang))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> DtdStructure {
        DtdStructure::builder("book")
            .elem("book", "(entry, author*, section*, ref)")
            .elem("entry", "(title, publisher)")
            .elem("author", "S")
            .elem("title", "S")
            .elem("publisher", "S")
            .elem("text", "S")
            .elem("section", "(title, (text + section)*)")
            .elem("ref", "EMPTY")
            .attr("entry", "isbn", "S")
            .attr("section", "sid", "S")
            .attr("ref", "to", "S*")
            .build()
            .unwrap()
    }

    fn company() -> DtdStructure {
        DtdStructure::builder("db")
            .elem("db", "(person*, dept*)")
            .elem("person", "(name, address)")
            .elem("name", "S")
            .elem("address", "S")
            .elem("dname", "S")
            .elem("dept", "dname")
            .id_attr("person", "oid")
            .idrefs_attr("person", "in_dept")
            .id_attr("dept", "oid")
            .idref_attr("dept", "manager")
            .idrefs_attr("dept", "has_staff")
            .build()
            .unwrap()
    }

    #[test]
    fn parses_book_constraints() {
        let s = book();
        let sigma = Constraint::parse_set(
            "# Sigma for the book DTD (L_u)\n\
             entry.isbn -> entry\n\
             section.sid -> section\n\
             ref.to <=s entry.isbn\n",
            &s,
            Language::Lu,
        )
        .unwrap();
        assert_eq!(
            sigma,
            vec![
                Constraint::unary_key("entry", "isbn"),
                Constraint::unary_key("section", "sid"),
                Constraint::set_fk("ref", "to", "entry", "isbn"),
            ]
        );
    }

    #[test]
    fn parses_company_lid_constraints() {
        let s = company();
        let sigma = Constraint::parse_set(
            "person.oid ->id person\n\
             dept.oid ->id dept\n\
             person.name -> person\n\
             dept.dname -> dept\n\
             person.in_dept <=s dept.oid\n\
             dept.manager <= person.oid\n\
             dept.has_staff <=s person.oid\n\
             dept.has_staff <=> person.in_dept\n",
            &s,
            Language::Lid,
        )
        .unwrap();
        assert_eq!(sigma.len(), 8);
        assert_eq!(
            sigma[0],
            Constraint::Id {
                tau: Name::new("person")
            }
        );
        // name / dname resolve to sub-element fields (not attributes).
        assert_eq!(sigma[2], Constraint::sub_key("person", "name"));
        assert_eq!(sigma[3], Constraint::sub_key("dept", "dname"));
        assert!(matches!(sigma[4], Constraint::SetFkToId { .. }));
        assert!(matches!(sigma[5], Constraint::FkToId { .. }));
        assert!(matches!(sigma[7], Constraint::InverseId { .. }));
    }

    #[test]
    fn parses_relational_l_constraints() {
        let s = DtdStructure::builder("db")
            .elem("db", "(publishers, editors)")
            .elem("publishers", "publisher*")
            .elem("publisher", "(pname, country, address)")
            .elem("editors", "editor*")
            .elem("editor", "(name, pname, country)")
            .elem("pname", "S")
            .elem("country", "S")
            .elem("address", "S")
            .elem("name", "S")
            .attr("publisher", "pname", "S")
            .attr("publisher", "country", "S")
            .attr("editor", "pname", "S")
            .attr("editor", "country", "S")
            .attr("editor", "name", "S")
            .build()
            .unwrap();
        let k =
            Constraint::parse("publisher[pname, country] -> publisher", &s, Language::L).unwrap();
        assert_eq!(k, Constraint::key("publisher", ["pname", "country"]));
        let fk = Constraint::parse(
            "editor[pname, country] <= publisher[pname, country]",
            &s,
            Language::L,
        )
        .unwrap();
        assert_eq!(
            fk,
            Constraint::fk(
                "editor",
                ["pname", "country"],
                "publisher",
                ["pname", "country"]
            )
        );
    }

    #[test]
    fn parses_inverse_u_with_keys() {
        let s = DtdStructure::builder("db")
            .elem("db", "(a*, b*)")
            .elem("a", "EMPTY")
            .elem("b", "EMPTY")
            .attr("a", "k", "S")
            .attr("a", "r", "S*")
            .attr("b", "k2", "S")
            .attr("b", "r2", "S*")
            .build()
            .unwrap();
        let c = Constraint::parse("a(k).r <=> b(k2).r2", &s, Language::Lu).unwrap();
        assert_eq!(
            c,
            Constraint::InverseU {
                tau: Name::new("a"),
                key: Field::attr("k"),
                attr: Name::new("r"),
                target: Name::new("b"),
                target_key: Field::attr("k2"),
                target_attr: Name::new("r2"),
            }
        );
    }

    #[test]
    fn display_round_trips() {
        let s = company();
        for src in [
            "person.oid ->id person",
            "dept.manager <= person.oid",
            "dept.has_staff <=s person.oid",
            "dept.has_staff <=> person.in_dept",
            "person.name -> person",
        ] {
            let c = Constraint::parse(src, &s, Language::Lid).unwrap();
            let printed = c.to_string();
            let again = Constraint::parse(&printed, &s, Language::Lid).unwrap();
            assert_eq!(c, again, "source {src}, printed {printed}");
        }
        let sb = book();
        for src in ["entry.isbn -> entry", "ref.to <=s entry.isbn"] {
            let c = Constraint::parse(src, &sb, Language::Lu).unwrap();
            let again = Constraint::parse(&c.to_string(), &sb, Language::Lu).unwrap();
            assert_eq!(c, again);
        }
    }

    #[test]
    fn lid_id_attr_by_concrete_name_or_literal() {
        let s = company();
        let a = Constraint::parse("dept.manager <= person.id", &s, Language::Lid).unwrap();
        let b = Constraint::parse("dept.manager <= person.oid", &s, Language::Lid).unwrap();
        assert_eq!(a, b);
        // In Lu the same text parses as a plain unary FK.
        let c = Constraint::parse("dept.manager <= person.oid", &s, Language::Lu).unwrap();
        assert!(matches!(c, Constraint::ForeignKey { .. }));
    }

    #[test]
    fn rejects_malformed() {
        let s = book();
        for src in [
            "",
            "entry.isbn -> section",          // key must repeat type
            "entry.isbn ->id entry",          // no ID attribute on entry
            "ref.to <=s",                     // missing rhs
            "entry[isbn <= entry[isbn]",      // bracket mismatch
            "entry.isbn <= entry[isbn, sid]", // arity mismatch
            "a(k).r <=> b.r2",                // mixed inverse forms
            "entry.isbn -> entry extra",      // trailing input
            "entry.isbn => entry",            // bad operator
        ] {
            assert!(
                Constraint::parse(src, &s, Language::Lu).is_err(),
                "should reject {src:?}"
            );
        }
    }

    #[test]
    fn at_sigil_forces_attribute() {
        let s = company();
        // `name` is a sub-element of person; `@name` forces the (undeclared)
        // attribute reading, which is then caught at well-formedness time.
        let c = Constraint::parse("person.@name -> person", &s, Language::Lid).unwrap();
        assert_eq!(
            c,
            Constraint::Key {
                tau: Name::new("person"),
                fields: vec![Field::attr("name")]
            }
        );
    }
}
