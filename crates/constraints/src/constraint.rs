//! The basic XML constraints of languages `L`, `L_u` and `L_id`.

use std::fmt;

use xic_model::Name;

/// A key / foreign-key component: an attribute, or (per §3.4) a sub-element
/// whose text content serves as the value.
///
/// The paper initially restricts keys and foreign keys to attributes, then
/// §3.4 extends all three languages to allow *unique sub-elements* (elements
/// occurring exactly once in every word of the parent's content model) as
/// key components, noting that all implication results carry over.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Field {
    /// An attribute `l ∈ Att(τ)`.
    Attr(Name),
    /// A unique sub-element of `τ` (its text content is the key value).
    Sub(Name),
}

impl Field {
    /// Convenience constructor for an attribute field.
    pub fn attr(l: impl Into<Name>) -> Self {
        Field::Attr(l.into())
    }

    /// Convenience constructor for a sub-element field.
    pub fn sub(e: impl Into<Name>) -> Self {
        Field::Sub(e.into())
    }

    /// The underlying name, whichever the flavour.
    pub fn name(&self) -> &Name {
        match self {
            Field::Attr(n) | Field::Sub(n) => n,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Attr(n) => write!(f, "@{n}"),
            Field::Sub(n) => write!(f, "{n}"),
        }
    }
}

/// The three basic constraint languages of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Language {
    /// `L` — relational-style multi-attribute keys and foreign keys.
    L,
    /// `L_u` — unary keys/foreign keys, set-valued foreign keys, inverses.
    Lu,
    /// `L_id` — object-style IDs, keys, foreign keys into IDs, inverses.
    Lid,
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Language::L => f.write_str("L"),
            Language::Lu => f.write_str("L_u"),
            Language::Lid => f.write_str("L_id"),
        }
    }
}

/// A basic XML constraint.
///
/// One AST covers all three languages; [`Constraint::in_language`] tells
/// which languages admit a given form, and [`crate::DtdC`] checks
/// well-formedness against a [`crate::DtdStructure`] and the rest of `Σ`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Constraint {
    /// Key constraint `τ[X] → τ`: any two `τ`-elements agreeing on all of
    /// `X` are equal. Unary keys (singleton `X`) belong to all three
    /// languages; multi-field keys only to `L`.
    Key {
        /// The constrained element type `τ`.
        tau: Name,
        /// The key components `X` (a set; order-insensitive, kept sorted).
        fields: Vec<Field>,
    },
    /// Foreign key `τ[X] ⊆ τ'[Y]`: every `τ`-element's `X`-tuple equals the
    /// `Y`-tuple of some `τ'`-element, where `Y` is a key of `τ'`. Unary
    /// form belongs to `L` and `L_u`; multi-field only to `L`.
    ForeignKey {
        /// The referencing element type `τ`.
        tau: Name,
        /// The referencing sequence `X`.
        fields: Vec<Field>,
        /// The referenced element type `τ'`.
        target: Name,
        /// The referenced key sequence `Y`.
        target_fields: Vec<Field>,
    },
    /// Set-valued foreign key `τ.l ⊆_S τ'.l'` (`L_u`): every member of the
    /// set `x.l` is a `l'`-value of some `τ'`-element; `l'` is a key of
    /// `τ'`.
    SetForeignKey {
        /// The referencing element type `τ`.
        tau: Name,
        /// The set-valued referencing attribute `l`.
        attr: Name,
        /// The referenced element type `τ'`.
        target: Name,
        /// The referenced unary key `l'`.
        target_field: Field,
    },
    /// Inverse constraint `τ(l_k).l ⇌ τ'(l'_k).l'` (`L_u`): `x.l_k ∈ y.l'`
    /// iff `y.l'_k ∈ x.l`, where `l_k`/`l'_k` are keys of `τ`/`τ'` and
    /// `l`/`l'` are set-valued.
    InverseU {
        /// Element type `τ`.
        tau: Name,
        /// The key `l_k` of `τ` named by the constraint.
        key: Field,
        /// The set-valued attribute `l` of `τ`.
        attr: Name,
        /// Element type `τ'`.
        target: Name,
        /// The key `l'_k` of `τ'` named by the constraint.
        target_key: Field,
        /// The set-valued attribute `l'` of `τ'`.
        target_attr: Name,
    },
    /// ID constraint `τ.id →_id τ` (`L_id`): every `τ`-element has an ID
    /// value that is unique **within the entire document** (across all
    /// types), the object-identity semantics of XML's `ID`.
    Id {
        /// The element type `τ` (must declare an `ID`-kind attribute).
        tau: Name,
    },
    /// Foreign key into IDs, `τ.l ⊆ τ'.id` (`L_id`): `l` is a single-valued
    /// `IDREF` attribute whose value is the ID of some `τ'`-element.
    FkToId {
        /// The referencing element type `τ`.
        tau: Name,
        /// The single-valued `IDREF` attribute `l`.
        attr: Name,
        /// The referenced element type `τ'` (with `τ'.id →_id τ'`).
        target: Name,
    },
    /// Set-valued foreign key into IDs, `τ.l ⊆_S τ'.id` (`L_id`).
    SetFkToId {
        /// The referencing element type `τ`.
        tau: Name,
        /// The set-valued `IDREF` attribute `l`.
        attr: Name,
        /// The referenced element type `τ'` (with `τ'.id →_id τ'`).
        target: Name,
    },
    /// Inverse constraint `τ.l ⇌ τ'.l'` (`L_id`): `x.id ∈ y.l'` iff
    /// `y.id ∈ x.l`, both `l`, `l'` set-valued `IDREF` attributes of types
    /// carrying ID constraints.
    InverseId {
        /// Element type `τ`.
        tau: Name,
        /// Set-valued `IDREF` attribute `l` of `τ`.
        attr: Name,
        /// Element type `τ'`.
        target: Name,
        /// Set-valued `IDREF` attribute `l'` of `τ'`.
        target_attr: Name,
    },
}

impl Constraint {
    /// Unary key `τ.l → τ` over an attribute.
    pub fn unary_key(tau: impl Into<Name>, l: impl Into<Name>) -> Self {
        Constraint::Key {
            tau: tau.into(),
            fields: vec![Field::attr(l)],
        }
    }

    /// Unary key `τ.e → τ` over a sub-element (§3.4).
    pub fn sub_key(tau: impl Into<Name>, e: impl Into<Name>) -> Self {
        Constraint::Key {
            tau: tau.into(),
            fields: vec![Field::sub(e)],
        }
    }

    /// Multi-attribute key `τ[X] → τ`; `X` is normalized to sorted order
    /// (keys are attribute *sets* in the paper).
    pub fn key<I, T>(tau: impl Into<Name>, fields: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Name>,
    {
        let mut fields: Vec<Field> = fields.into_iter().map(Field::attr).collect();
        fields.sort();
        fields.dedup();
        Constraint::Key {
            tau: tau.into(),
            fields,
        }
    }

    /// Unary foreign key `τ.l ⊆ τ'.l'` over attributes.
    pub fn unary_fk(
        tau: impl Into<Name>,
        l: impl Into<Name>,
        target: impl Into<Name>,
        l2: impl Into<Name>,
    ) -> Self {
        Constraint::ForeignKey {
            tau: tau.into(),
            fields: vec![Field::attr(l)],
            target: target.into(),
            target_fields: vec![Field::attr(l2)],
        }
    }

    /// Multi-attribute foreign key `τ[X] ⊆ τ'[Y]`.
    pub fn fk<I, J, T, U>(tau: impl Into<Name>, xs: I, target: impl Into<Name>, ys: J) -> Self
    where
        I: IntoIterator<Item = T>,
        J: IntoIterator<Item = U>,
        T: Into<Name>,
        U: Into<Name>,
    {
        Constraint::ForeignKey {
            tau: tau.into(),
            fields: xs.into_iter().map(Field::attr).collect(),
            target: target.into(),
            target_fields: ys.into_iter().map(Field::attr).collect(),
        }
    }

    /// Set-valued foreign key `τ.l ⊆_S τ'.l'`.
    pub fn set_fk(
        tau: impl Into<Name>,
        l: impl Into<Name>,
        target: impl Into<Name>,
        l2: impl Into<Name>,
    ) -> Self {
        Constraint::SetForeignKey {
            tau: tau.into(),
            attr: l.into(),
            target: target.into(),
            target_field: Field::attr(l2),
        }
    }

    /// The element type constrained (the left-hand `τ`).
    pub fn tau(&self) -> &Name {
        match self {
            Constraint::Key { tau, .. }
            | Constraint::ForeignKey { tau, .. }
            | Constraint::SetForeignKey { tau, .. }
            | Constraint::InverseU { tau, .. }
            | Constraint::Id { tau }
            | Constraint::FkToId { tau, .. }
            | Constraint::SetFkToId { tau, .. }
            | Constraint::InverseId { tau, .. } => tau,
        }
    }

    /// The referenced element type `τ'`, for reference-flavoured forms.
    pub fn target(&self) -> Option<&Name> {
        match self {
            Constraint::ForeignKey { target, .. }
            | Constraint::SetForeignKey { target, .. }
            | Constraint::InverseU { target, .. }
            | Constraint::FkToId { target, .. }
            | Constraint::SetFkToId { target, .. }
            | Constraint::InverseId { target, .. } => Some(target),
            Constraint::Key { .. } | Constraint::Id { .. } => None,
        }
    }

    /// True iff this constraint form belongs to language `lang`.
    ///
    /// Membership follows §2.2 exactly: `L` has (multi-)keys and foreign
    /// keys; `L_u` has the unary ones plus `⊆_S` and `⇌` with explicit
    /// keys; `L_id` has unary keys, `→_id`, (set-valued) foreign keys into
    /// IDs, and `⇌` between `IDREF` attributes.
    pub fn in_language(&self, lang: Language) -> bool {
        match (self, lang) {
            (Constraint::Key { .. }, Language::L) => true,
            (Constraint::Key { fields, .. }, Language::Lu | Language::Lid) => fields.len() == 1,
            (Constraint::ForeignKey { .. }, Language::L) => true,
            (
                Constraint::ForeignKey {
                    fields,
                    target_fields,
                    ..
                },
                Language::Lu,
            ) => fields.len() == 1 && target_fields.len() == 1,
            (Constraint::ForeignKey { .. }, Language::Lid) => false,
            (Constraint::SetForeignKey { .. }, Language::Lu) => true,
            (Constraint::SetForeignKey { .. }, _) => false,
            (Constraint::InverseU { .. }, Language::Lu) => true,
            (Constraint::InverseU { .. }, _) => false,
            (
                Constraint::Id { .. }
                | Constraint::FkToId { .. }
                | Constraint::SetFkToId { .. }
                | Constraint::InverseId { .. },
                Language::Lid,
            ) => true,
            (
                Constraint::Id { .. }
                | Constraint::FkToId { .. }
                | Constraint::SetFkToId { .. }
                | Constraint::InverseId { .. },
                _,
            ) => false,
        }
    }

    /// Size of the constraint (field count), the `|φ|` measure.
    pub fn size(&self) -> usize {
        match self {
            Constraint::Key { fields, .. } => 1 + fields.len(),
            Constraint::ForeignKey {
                fields,
                target_fields,
                ..
            } => 2 + fields.len() + target_fields.len(),
            Constraint::SetForeignKey { .. } => 4,
            Constraint::InverseU { .. } => 6,
            Constraint::Id { .. } => 2,
            Constraint::FkToId { .. } | Constraint::SetFkToId { .. } => 4,
            Constraint::InverseId { .. } => 4,
        }
    }
}

fn fmt_fields(f: &mut fmt::Formatter<'_>, tau: &Name, fields: &[Field]) -> fmt::Result {
    if fields.len() == 1 {
        write!(f, "{tau}.{}", fields[0])
    } else {
        write!(f, "{tau}[")?;
        for (i, fld) in fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fld}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Constraint {
    /// Prints the ASCII rendering of the paper's notation, accepted back by
    /// [`Constraint::parse`]: `->` for `→`, `->id` for `→_id`, `<=` for
    /// `⊆`, `<=s` for `⊆_S`, `<=>` for `⇌`; attribute fields carry an `@`
    /// sigil, sub-element fields are bare names.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Key { tau, fields } => {
                fmt_fields(f, tau, fields)?;
                write!(f, " -> {tau}")
            }
            Constraint::ForeignKey {
                tau,
                fields,
                target,
                target_fields,
            } => {
                fmt_fields(f, tau, fields)?;
                write!(f, " <= ")?;
                fmt_fields(f, target, target_fields)
            }
            Constraint::SetForeignKey {
                tau,
                attr,
                target,
                target_field,
            } => {
                write!(f, "{tau}.@{attr} <=s {target}.{target_field}")
            }
            Constraint::InverseU {
                tau,
                key,
                attr,
                target,
                target_key,
                target_attr,
            } => {
                write!(
                    f,
                    "{tau}({key}).@{attr} <=> {target}({target_key}).@{target_attr}"
                )
            }
            Constraint::Id { tau } => write!(f, "{tau}.id ->id {tau}"),
            Constraint::FkToId { tau, attr, target } => {
                write!(f, "{tau}.@{attr} <= {target}.id")
            }
            Constraint::SetFkToId { tau, attr, target } => {
                write!(f, "{tau}.@{attr} <=s {target}.id")
            }
            Constraint::InverseId {
                tau,
                attr,
                target,
                target_attr,
            } => {
                write!(f, "{tau}.@{attr} <=> {target}.@{target_attr}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_paper_forms() {
        assert_eq!(
            Constraint::unary_key("entry", "isbn").to_string(),
            "entry.@isbn -> entry"
        );
        assert_eq!(
            Constraint::key("publisher", ["pname", "country"]).to_string(),
            "publisher[@country, @pname] -> publisher"
        );
        assert_eq!(
            Constraint::fk(
                "editor",
                ["pname", "country"],
                "publisher",
                ["pname", "country"]
            )
            .to_string(),
            "editor[@pname, @country] <= publisher[@pname, @country]"
        );
        assert_eq!(
            Constraint::set_fk("ref", "to", "entry", "isbn").to_string(),
            "ref.@to <=s entry.@isbn"
        );
        assert_eq!(
            Constraint::Id {
                tau: Name::new("person")
            }
            .to_string(),
            "person.id ->id person"
        );
        assert_eq!(
            Constraint::FkToId {
                tau: Name::new("dept"),
                attr: Name::new("manager"),
                target: Name::new("person")
            }
            .to_string(),
            "dept.@manager <= person.id"
        );
        assert_eq!(
            Constraint::InverseId {
                tau: Name::new("dept"),
                attr: Name::new("has_staff"),
                target: Name::new("person"),
                target_attr: Name::new("in_dept")
            }
            .to_string(),
            "dept.@has_staff <=> person.@in_dept"
        );
        assert_eq!(
            Constraint::InverseU {
                tau: Name::new("a"),
                key: Field::attr("k"),
                attr: Name::new("r"),
                target: Name::new("b"),
                target_key: Field::attr("k2"),
                target_attr: Name::new("r2")
            }
            .to_string(),
            "a(@k).@r <=> b(@k2).@r2"
        );
        assert_eq!(
            Constraint::sub_key("person", "name").to_string(),
            "person.name -> person"
        );
    }

    #[test]
    fn key_fields_normalized() {
        let a = Constraint::key("p", ["b", "a", "b"]);
        let b = Constraint::key("p", ["a", "b"]);
        assert_eq!(a, b);
    }

    #[test]
    fn language_membership() {
        let uk = Constraint::unary_key("a", "x");
        assert!(uk.in_language(Language::L));
        assert!(uk.in_language(Language::Lu));
        assert!(uk.in_language(Language::Lid));

        let mk = Constraint::key("a", ["x", "y"]);
        assert!(mk.in_language(Language::L));
        assert!(!mk.in_language(Language::Lu));
        assert!(!mk.in_language(Language::Lid));

        let ufk = Constraint::unary_fk("a", "x", "b", "y");
        assert!(ufk.in_language(Language::L));
        assert!(ufk.in_language(Language::Lu));
        assert!(!ufk.in_language(Language::Lid));

        let sfk = Constraint::set_fk("a", "x", "b", "y");
        assert!(!sfk.in_language(Language::L));
        assert!(sfk.in_language(Language::Lu));
        assert!(!sfk.in_language(Language::Lid));

        let id = Constraint::Id {
            tau: Name::new("a"),
        };
        assert!(!id.in_language(Language::L));
        assert!(!id.in_language(Language::Lu));
        assert!(id.in_language(Language::Lid));
    }

    #[test]
    fn accessors() {
        let fk = Constraint::unary_fk("a", "x", "b", "y");
        assert_eq!(fk.tau().as_str(), "a");
        assert_eq!(fk.target().unwrap().as_str(), "b");
        assert!(Constraint::unary_key("a", "x").target().is_none());
        assert!(fk.size() >= 4);
        assert_eq!(Field::attr("x").name().as_str(), "x");
        assert_eq!(Field::sub("x").name().as_str(), "x");
    }
}
