//! DTDs with constraints: `DTD^C = (S, Σ)` (Definition 2.3) and the
//! well-formedness of `Σ` against `S`.

use std::fmt;

use xic_model::Name;

use crate::constraint::{Constraint, Field, Language};
use crate::structure::{AttrKind, DtdStructure};

/// Why a constraint is not well-formed against a structure / constraint set.
///
/// Fields: `constraint` is the offending constraint's printed form; `tau` /
/// `target` the element type at fault; `attr` / `sub` / `key` the field.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum WfError {
    /// A constraint mentions an element type not in `E`.
    UnknownElementType { constraint: String, tau: Name },
    /// A field names an attribute that is not declared.
    UnknownAttribute {
        constraint: String,
        tau: Name,
        attr: Name,
    },
    /// A key/foreign-key field must be single-valued but is set-valued.
    SetValuedField {
        constraint: String,
        tau: Name,
        attr: Name,
    },
    /// A `⊆_S`/`⇌` attribute must be set-valued but is single-valued.
    NotSetValued {
        constraint: String,
        tau: Name,
        attr: Name,
    },
    /// A sub-element field is not a *unique sub-element* (§3.4).
    NotUniqueSubelement {
        constraint: String,
        tau: Name,
        sub: Name,
    },
    /// A foreign key's target sequence is not a declared key of the target
    /// type ("Y is the key of τ'").
    TargetNotKey { constraint: String, target: Name },
    /// An `L_id` reference requires `τ'.id →_id τ'` in `Σ`.
    TargetNotId { constraint: String, target: Name },
    /// An `L_id` form requires the element type to declare an `ID`
    /// attribute.
    NoIdAttribute { constraint: String, tau: Name },
    /// An `L_id` reference attribute must have kind `IDREF`.
    NotIdRef {
        constraint: String,
        tau: Name,
        attr: Name,
    },
    /// An inverse constraint names a key that is not declared as a key in
    /// `Σ`.
    NamedKeyNotKey {
        constraint: String,
        tau: Name,
        key: String,
    },
    /// Foreign-key sides have different lengths.
    ArityMismatch { constraint: String },
    /// Empty key or foreign-key field list.
    EmptyFields { constraint: String },
    /// The constraint form is not in the declared language.
    WrongLanguage {
        constraint: String,
        language: Language,
    },
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WfError::UnknownElementType { constraint, tau } => {
                write!(f, "{constraint}: unknown element type {tau}")
            }
            WfError::UnknownAttribute {
                constraint,
                tau,
                attr,
            } => {
                write!(f, "{constraint}: {tau} has no attribute {attr}")
            }
            WfError::SetValuedField {
                constraint,
                tau,
                attr,
            } => {
                write!(f, "{constraint}: {tau}.{attr} is set-valued; keys and foreign-key components must be single-valued")
            }
            WfError::NotSetValued {
                constraint,
                tau,
                attr,
            } => {
                write!(f, "{constraint}: {tau}.{attr} must be set-valued")
            }
            WfError::NotUniqueSubelement {
                constraint,
                tau,
                sub,
            } => {
                write!(
                    f,
                    "{constraint}: {sub} is not a unique sub-element of {tau} (§3.4)"
                )
            }
            WfError::TargetNotKey { constraint, target } => {
                write!(
                    f,
                    "{constraint}: referenced fields are not a declared key of {target}"
                )
            }
            WfError::TargetNotId { constraint, target } => {
                write!(f, "{constraint}: requires {target}.id ->id {target} in Σ")
            }
            WfError::NoIdAttribute { constraint, tau } => {
                write!(f, "{constraint}: {tau} declares no ID attribute")
            }
            WfError::NotIdRef {
                constraint,
                tau,
                attr,
            } => {
                write!(f, "{constraint}: {tau}.{attr} must have kind IDREF")
            }
            WfError::NamedKeyNotKey {
                constraint,
                tau,
                key,
            } => {
                write!(
                    f,
                    "{constraint}: named key {tau}.{key} is not declared as a key in Σ"
                )
            }
            WfError::ArityMismatch { constraint } => {
                write!(f, "{constraint}: foreign-key sides differ in length")
            }
            WfError::EmptyFields { constraint } => {
                write!(f, "{constraint}: empty field list")
            }
            WfError::WrongLanguage {
                constraint,
                language,
            } => {
                write!(f, "{constraint}: form not admitted by language {language}")
            }
        }
    }
}

impl std::error::Error for WfError {}

/// A DTD with constraints, `D = (S, Σ)` (Definition 2.3).
///
/// The structure `S` and the constraint set `Σ`, together with the language
/// `Σ` is drawn from. [`DtdC::new`] checks full well-formedness: every
/// constraint is admitted by the language, mentions only declared element
/// types/attributes with the right valuedness and kinds, uses only unique
/// sub-elements as key components (§3.4), and every foreign key's target is
/// a declared key (resp. ID constraint) in `Σ`.
#[derive(Clone, Debug)]
pub struct DtdC {
    structure: DtdStructure,
    constraints: Vec<Constraint>,
    language: Language,
}

impl DtdC {
    /// Builds and checks a `DTD^C`.
    pub fn new(
        structure: DtdStructure,
        language: Language,
        constraints: Vec<Constraint>,
    ) -> Result<DtdC, Vec<WfError>> {
        let errors = check_set(&structure, language, &constraints);
        if errors.is_empty() {
            Ok(DtdC {
                structure,
                constraints,
                language,
            })
        } else {
            Err(errors)
        }
    }

    /// Builds a `DTD^C` **without** checking `Σ` against the structure.
    ///
    /// Intended for implication workflows, where `Σ ∪ {φ}` is an arbitrary
    /// finite constraint set and side conditions (e.g. "the foreign key's
    /// target is a key") are *derived* by the solvers rather than demanded
    /// up front. Validation of documents against an unchecked `DTD^C` is
    /// still well-defined (unknown names simply never match).
    pub fn new_unchecked(
        structure: DtdStructure,
        language: Language,
        constraints: Vec<Constraint>,
    ) -> DtdC {
        DtdC {
            structure,
            constraints,
            language,
        }
    }

    /// Builds a `DTD^C`, parsing `Σ` from the textual constraint syntax
    /// (one constraint per line; `#` comments).
    pub fn parse(
        structure: DtdStructure,
        language: Language,
        sigma_src: &str,
    ) -> Result<DtdC, String> {
        let sigma =
            Constraint::parse_set(sigma_src, &structure, language).map_err(|e| e.to_string())?;
        DtdC::new(structure, language, sigma).map_err(|es| {
            es.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        })
    }

    /// The structural half `S`.
    pub fn structure(&self) -> &DtdStructure {
        &self.structure
    }

    /// The constraint set `Σ`.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The language `Σ` is drawn from.
    pub fn language(&self) -> Language {
        self.language
    }

    /// Total size `|Σ|` (sum of constraint sizes).
    pub fn sigma_size(&self) -> usize {
        self.constraints.iter().map(Constraint::size).sum()
    }
}

impl fmt::Display for DtdC {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.structure)?;
        writeln!(f, "Σ ({}) =", self.language)?;
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

/// Checks one field as a key / foreign-key component of `tau`.
fn check_field(
    s: &DtdStructure,
    cname: &str,
    tau: &Name,
    field: &Field,
    errors: &mut Vec<WfError>,
) {
    match field {
        Field::Attr(l) => match s.attr_type(tau, l) {
            None => errors.push(WfError::UnknownAttribute {
                constraint: cname.to_string(),
                tau: tau.clone(),
                attr: l.clone(),
            }),
            Some(crate::structure::AttrType::SetValued) => errors.push(WfError::SetValuedField {
                constraint: cname.to_string(),
                tau: tau.clone(),
                attr: l.clone(),
            }),
            Some(crate::structure::AttrType::Single) => {}
        },
        Field::Sub(e) => {
            if !s.is_unique_subelement(tau, e) {
                errors.push(WfError::NotUniqueSubelement {
                    constraint: cname.to_string(),
                    tau: tau.clone(),
                    sub: e.clone(),
                });
            }
        }
    }
}

fn check_elem(s: &DtdStructure, cname: &str, tau: &Name, errors: &mut Vec<WfError>) -> bool {
    if s.has_element(tau) {
        true
    } else {
        errors.push(WfError::UnknownElementType {
            constraint: cname.to_string(),
            tau: tau.clone(),
        });
        false
    }
}

fn check_set_attr(
    s: &DtdStructure,
    cname: &str,
    tau: &Name,
    attr: &Name,
    require_idref: bool,
    errors: &mut Vec<WfError>,
) {
    match s.attr_type(tau, attr) {
        None => errors.push(WfError::UnknownAttribute {
            constraint: cname.to_string(),
            tau: tau.clone(),
            attr: attr.clone(),
        }),
        Some(crate::structure::AttrType::Single) => errors.push(WfError::NotSetValued {
            constraint: cname.to_string(),
            tau: tau.clone(),
            attr: attr.clone(),
        }),
        Some(crate::structure::AttrType::SetValued) => {
            if require_idref && s.attr_kind(tau, attr) != Some(AttrKind::IdRef) {
                errors.push(WfError::NotIdRef {
                    constraint: cname.to_string(),
                    tau: tau.clone(),
                    attr: attr.clone(),
                });
            }
        }
    }
}

/// Is `Key { target, fields = Y-as-set }` declared in `sigma`?
fn has_key(sigma: &[Constraint], target: &Name, fields: &[Field]) -> bool {
    let mut want: Vec<&Field> = fields.iter().collect();
    want.sort();
    want.dedup();
    sigma.iter().any(|c| match c {
        Constraint::Key { tau, fields: fs } if tau == target => {
            let mut have: Vec<&Field> = fs.iter().collect();
            have.sort();
            have == want
        }
        _ => false,
    })
}

fn has_id(sigma: &[Constraint], target: &Name) -> bool {
    sigma
        .iter()
        .any(|c| matches!(c, Constraint::Id { tau } if tau == target))
}

/// Checks a full constraint set against a structure for language `lang`.
///
/// Returns all violations (empty = well-formed).
pub(crate) fn check_set(s: &DtdStructure, lang: Language, sigma: &[Constraint]) -> Vec<WfError> {
    let mut errors = Vec::new();
    for c in sigma {
        let cname = c.to_string();
        if !c.in_language(lang) {
            errors.push(WfError::WrongLanguage {
                constraint: cname.clone(),
                language: lang,
            });
        }
        match c {
            Constraint::Key { tau, fields } => {
                if !check_elem(s, &cname, tau, &mut errors) {
                    continue;
                }
                if fields.is_empty() {
                    errors.push(WfError::EmptyFields {
                        constraint: cname.clone(),
                    });
                }
                for fl in fields {
                    check_field(s, &cname, tau, fl, &mut errors);
                }
            }
            Constraint::ForeignKey {
                tau,
                fields,
                target,
                target_fields,
            } => {
                let ok1 = check_elem(s, &cname, tau, &mut errors);
                let ok2 = check_elem(s, &cname, target, &mut errors);
                if !(ok1 && ok2) {
                    continue;
                }
                if fields.is_empty() {
                    errors.push(WfError::EmptyFields {
                        constraint: cname.clone(),
                    });
                }
                if fields.len() != target_fields.len() {
                    errors.push(WfError::ArityMismatch {
                        constraint: cname.clone(),
                    });
                }
                for fl in fields {
                    check_field(s, &cname, tau, fl, &mut errors);
                }
                for fl in target_fields {
                    check_field(s, &cname, target, fl, &mut errors);
                }
                if !has_key(sigma, target, target_fields) {
                    errors.push(WfError::TargetNotKey {
                        constraint: cname.clone(),
                        target: target.clone(),
                    });
                }
            }
            Constraint::SetForeignKey {
                tau,
                attr,
                target,
                target_field,
            } => {
                let ok1 = check_elem(s, &cname, tau, &mut errors);
                let ok2 = check_elem(s, &cname, target, &mut errors);
                if !(ok1 && ok2) {
                    continue;
                }
                check_set_attr(s, &cname, tau, attr, false, &mut errors);
                check_field(s, &cname, target, target_field, &mut errors);
                if !has_key(sigma, target, std::slice::from_ref(target_field)) {
                    errors.push(WfError::TargetNotKey {
                        constraint: cname.clone(),
                        target: target.clone(),
                    });
                }
            }
            Constraint::InverseU {
                tau,
                key,
                attr,
                target,
                target_key,
                target_attr,
            } => {
                let ok1 = check_elem(s, &cname, tau, &mut errors);
                let ok2 = check_elem(s, &cname, target, &mut errors);
                if !(ok1 && ok2) {
                    continue;
                }
                check_set_attr(s, &cname, tau, attr, false, &mut errors);
                check_set_attr(s, &cname, target, target_attr, false, &mut errors);
                check_field(s, &cname, tau, key, &mut errors);
                check_field(s, &cname, target, target_key, &mut errors);
                // "we need to specify explicitly which keys are involved":
                // the named fields must be declared keys in Σ.
                if !has_key(sigma, tau, std::slice::from_ref(key)) {
                    errors.push(WfError::NamedKeyNotKey {
                        constraint: cname.clone(),
                        tau: tau.clone(),
                        key: key.to_string(),
                    });
                }
                if !has_key(sigma, target, std::slice::from_ref(target_key)) {
                    errors.push(WfError::NamedKeyNotKey {
                        constraint: cname.clone(),
                        tau: target.clone(),
                        key: target_key.to_string(),
                    });
                }
            }
            Constraint::Id { tau } => {
                if check_elem(s, &cname, tau, &mut errors) && s.id_attr(tau).is_none() {
                    errors.push(WfError::NoIdAttribute {
                        constraint: cname.clone(),
                        tau: tau.clone(),
                    });
                }
            }
            Constraint::FkToId { tau, attr, target } => {
                let ok1 = check_elem(s, &cname, tau, &mut errors);
                let ok2 = check_elem(s, &cname, target, &mut errors);
                if !(ok1 && ok2) {
                    continue;
                }
                match s.attr_type(tau, attr) {
                    None => errors.push(WfError::UnknownAttribute {
                        constraint: cname.clone(),
                        tau: tau.clone(),
                        attr: attr.clone(),
                    }),
                    Some(crate::structure::AttrType::SetValued) => {
                        errors.push(WfError::SetValuedField {
                            constraint: cname.clone(),
                            tau: tau.clone(),
                            attr: attr.clone(),
                        })
                    }
                    Some(crate::structure::AttrType::Single) => {
                        if s.attr_kind(tau, attr) != Some(AttrKind::IdRef) {
                            errors.push(WfError::NotIdRef {
                                constraint: cname.clone(),
                                tau: tau.clone(),
                                attr: attr.clone(),
                            });
                        }
                    }
                }
                if s.id_attr(target).is_none() {
                    errors.push(WfError::NoIdAttribute {
                        constraint: cname.clone(),
                        tau: target.clone(),
                    });
                }
                if !has_id(sigma, target) {
                    errors.push(WfError::TargetNotId {
                        constraint: cname.clone(),
                        target: target.clone(),
                    });
                }
            }
            Constraint::SetFkToId { tau, attr, target } => {
                let ok1 = check_elem(s, &cname, tau, &mut errors);
                let ok2 = check_elem(s, &cname, target, &mut errors);
                if !(ok1 && ok2) {
                    continue;
                }
                check_set_attr(s, &cname, tau, attr, true, &mut errors);
                if s.id_attr(target).is_none() {
                    errors.push(WfError::NoIdAttribute {
                        constraint: cname.clone(),
                        tau: target.clone(),
                    });
                }
                if !has_id(sigma, target) {
                    errors.push(WfError::TargetNotId {
                        constraint: cname.clone(),
                        target: target.clone(),
                    });
                }
            }
            Constraint::InverseId {
                tau,
                attr,
                target,
                target_attr,
            } => {
                let ok1 = check_elem(s, &cname, tau, &mut errors);
                let ok2 = check_elem(s, &cname, target, &mut errors);
                if !(ok1 && ok2) {
                    continue;
                }
                check_set_attr(s, &cname, tau, attr, true, &mut errors);
                check_set_attr(s, &cname, target, target_attr, true, &mut errors);
                for t in [tau, target] {
                    if s.id_attr(t).is_none() {
                        errors.push(WfError::NoIdAttribute {
                            constraint: cname.clone(),
                            tau: t.clone(),
                        });
                    }
                    if !has_id(sigma, t) {
                        errors.push(WfError::TargetNotId {
                            constraint: cname.clone(),
                            target: t.clone(),
                        });
                    }
                }
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn paper_examples_are_well_formed() {
        // These constructors run DtdC::new internally, so merely building
        // them exercises the full checker.
        let b = examples::book_dtdc();
        assert_eq!(b.language(), Language::Lu);
        assert_eq!(b.constraints().len(), 3);
        let c = examples::company_dtdc();
        assert_eq!(c.language(), Language::Lid);
        assert_eq!(c.constraints().len(), 8);
        let p = examples::publishers_dtdc();
        assert_eq!(p.language(), Language::L);
        assert_eq!(p.constraints().len(), 3);
        assert!(b.sigma_size() > 0);
    }

    #[test]
    fn rejects_fk_without_target_key() {
        let s = examples::book_structure();
        let err = DtdC::new(
            s,
            Language::Lu,
            vec![Constraint::set_fk("ref", "to", "entry", "isbn")],
        )
        .unwrap_err();
        assert!(
            err.iter()
                .any(|e| matches!(e, WfError::TargetNotKey { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_wrong_language() {
        let s = examples::publishers_structure();
        let err = DtdC::new(
            s,
            Language::Lu,
            vec![Constraint::key("publisher", ["pname", "country"])],
        )
        .unwrap_err();
        assert!(err
            .iter()
            .any(|e| matches!(e, WfError::WrongLanguage { .. })));
    }

    #[test]
    fn rejects_set_valued_key() {
        let s = examples::book_structure();
        let err = DtdC::new(s, Language::Lu, vec![Constraint::unary_key("ref", "to")]).unwrap_err();
        assert!(err
            .iter()
            .any(|e| matches!(e, WfError::SetValuedField { .. })));
    }

    #[test]
    fn rejects_non_unique_subelement_key() {
        let s = examples::book_structure();
        let err =
            DtdC::new(s, Language::Lu, vec![Constraint::sub_key("book", "author")]).unwrap_err();
        assert!(err
            .iter()
            .any(|e| matches!(e, WfError::NotUniqueSubelement { .. })));
    }

    #[test]
    fn accepts_unique_subelement_key() {
        let s = examples::book_structure();
        DtdC::new(s, Language::Lu, vec![Constraint::sub_key("book", "entry")]).unwrap();
    }

    #[test]
    fn rejects_unknown_names() {
        let s = examples::book_structure();
        let err = DtdC::new(
            s.clone(),
            Language::Lu,
            vec![Constraint::unary_key("nosuch", "x")],
        )
        .unwrap_err();
        assert!(matches!(err[0], WfError::UnknownElementType { .. }));
        let err =
            DtdC::new(s, Language::Lu, vec![Constraint::unary_key("entry", "x")]).unwrap_err();
        assert!(matches!(err[0], WfError::UnknownAttribute { .. }));
    }

    #[test]
    fn rejects_lid_fk_without_idref_kind() {
        // isbn is not an IDREF attribute, so it cannot be an L_id FK source.
        let s = examples::company_structure();
        let err = DtdC::new(
            s,
            Language::Lid,
            vec![
                Constraint::Id {
                    tau: "person".into(),
                },
                Constraint::FkToId {
                    tau: "person".into(),
                    attr: "oid".into(),
                    target: "person".into(),
                },
            ],
        )
        .unwrap_err();
        assert!(err.iter().any(|e| matches!(e, WfError::NotIdRef { .. })));
    }

    #[test]
    fn rejects_lid_reference_without_id_constraint() {
        let s = examples::company_structure();
        let err = DtdC::new(
            s,
            Language::Lid,
            vec![Constraint::FkToId {
                tau: "dept".into(),
                attr: "manager".into(),
                target: "person".into(),
            }],
        )
        .unwrap_err();
        assert!(err.iter().any(|e| matches!(e, WfError::TargetNotId { .. })));
    }

    #[test]
    fn rejects_inverse_u_with_undeclared_named_key() {
        let s = DtdStructure::builder("db")
            .elem("db", "(a*, b*)")
            .elem("a", "EMPTY")
            .elem("b", "EMPTY")
            .attr("a", "k", "S")
            .attr("a", "r", "S*")
            .attr("b", "k2", "S")
            .attr("b", "r2", "S*")
            .build()
            .unwrap();
        let inv = Constraint::InverseU {
            tau: "a".into(),
            key: Field::attr("k"),
            attr: "r".into(),
            target: "b".into(),
            target_key: Field::attr("k2"),
            target_attr: "r2".into(),
        };
        let err = DtdC::new(s.clone(), Language::Lu, vec![inv.clone()]).unwrap_err();
        assert!(err
            .iter()
            .any(|e| matches!(e, WfError::NamedKeyNotKey { .. })));
        // With the keys declared it is accepted.
        DtdC::new(
            s,
            Language::Lu,
            vec![
                Constraint::unary_key("a", "k"),
                Constraint::unary_key("b", "k2"),
                inv,
            ],
        )
        .unwrap();
    }

    #[test]
    fn display_includes_sigma() {
        let d = examples::book_dtdc();
        let out = d.to_string();
        assert!(out.contains("Σ (L_u) ="));
        assert!(out.contains("entry.@isbn -> entry"));
    }

    #[test]
    fn parse_entry_point() {
        let d = DtdC::parse(
            examples::book_structure(),
            Language::Lu,
            "entry.isbn -> entry\nsection.sid -> section\nref.to <=s entry.isbn",
        )
        .unwrap();
        assert_eq!(d.constraints().len(), 3);
        assert!(DtdC::parse(examples::book_structure(), Language::Lu, "junk here").is_err());
    }
}
