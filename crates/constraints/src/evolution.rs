//! Schema evolution: when does a new DTD structure accept every document
//! of an old one?
//!
//! The paper's closing discussion points at data integration — "how
//! constraints propagate through integration programs, and how they can
//! help in verifying their correctness". The structural half of that
//! question is decidable with the machinery already in hand: content-model
//! *language containment* per element type plus attribute-surface checks.
//! [`DtdStructure::evolution_incompatibilities`] reports every reason a
//! document valid against `old` (under strict Definition 2.4 attribute
//! semantics) could be rejected by `self`.

use std::fmt;

use crate::structure::{AttrType, DtdStructure};

/// One reason the new structure can reject an old-valid document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Incompatibility {
    /// The root element type changed.
    RootChanged {
        /// Old root.
        old: String,
        /// New root.
        new: String,
    },
    /// An element type of the old structure is gone.
    ElementRemoved(String),
    /// The new content model does not accept every old word.
    ContentNarrowed {
        /// The element type.
        elem: String,
        /// Old content model (printed).
        old: String,
        /// New content model (printed).
        new: String,
    },
    /// An old attribute is no longer declared (old documents carry it:
    /// `UndeclaredAttribute`).
    AttributeRemoved {
        /// The element type.
        elem: String,
        /// The attribute.
        attr: String,
    },
    /// A new attribute was added (old documents lack it: strict
    /// Definition 2.4 requires declared attributes to be present).
    AttributeAdded {
        /// The element type.
        elem: String,
        /// The attribute.
        attr: String,
    },
    /// A set-valued attribute became single-valued (old sets may have
    /// cardinality ≠ 1).
    AttributeNarrowed {
        /// The element type.
        elem: String,
        /// The attribute.
        attr: String,
    },
}

impl fmt::Display for Incompatibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Incompatibility::RootChanged { old, new } => {
                write!(f, "root changed: {old} → {new}")
            }
            Incompatibility::ElementRemoved(e) => write!(f, "element type {e} removed"),
            Incompatibility::ContentNarrowed { elem, old, new } => {
                write!(f, "P({elem}) narrowed: {old} ⊄ {new}")
            }
            Incompatibility::AttributeRemoved { elem, attr } => {
                write!(f, "attribute {elem}.{attr} removed")
            }
            Incompatibility::AttributeAdded { elem, attr } => {
                write!(
                    f,
                    "attribute {elem}.{attr} added (strict documents lack it)"
                )
            }
            Incompatibility::AttributeNarrowed { elem, attr } => {
                write!(f, "attribute {elem}.{attr} narrowed from S* to S")
            }
        }
    }
}

impl DtdStructure {
    /// Reports every reason a document that is structurally valid against
    /// `old` (strict attribute mode) could be structurally invalid against
    /// `self`. Empty ⇒ `self` is a compatible evolution of `old`.
    ///
    /// ```
    /// use xic_constraints::DtdStructure;
    /// let old = DtdStructure::builder("book")
    ///     .elem("book", "(title, author)")
    ///     .elem("title", "S").elem("author", "S")
    ///     .build().unwrap();
    /// let new = DtdStructure::builder("book")
    ///     .elem("book", "(title, author, author*)")
    ///     .elem("title", "S").elem("author", "S")
    ///     .build().unwrap();
    /// assert!(new.evolution_incompatibilities(&old).is_empty());
    /// assert!(!old.evolution_incompatibilities(&new).is_empty());
    /// ```
    pub fn evolution_incompatibilities(&self, old: &DtdStructure) -> Vec<Incompatibility> {
        let mut out = Vec::new();
        if self.root() != old.root() {
            out.push(Incompatibility::RootChanged {
                old: old.root().to_string(),
                new: self.root().to_string(),
            });
        }
        for tau in old.element_types() {
            let old_model = old.content_model(tau).expect("declared");
            let Some(new_model) = self.content_model(tau) else {
                out.push(Incompatibility::ElementRemoved(tau.to_string()));
                continue;
            };
            if !new_model.contains(old_model) {
                out.push(Incompatibility::ContentNarrowed {
                    elem: tau.to_string(),
                    old: old_model.to_string(),
                    new: new_model.to_string(),
                });
            }
            for (l, old_ty) in old.attributes(tau) {
                match self.attr_type(tau, l) {
                    None => out.push(Incompatibility::AttributeRemoved {
                        elem: tau.to_string(),
                        attr: l.to_string(),
                    }),
                    Some(AttrType::Single) if old_ty == AttrType::SetValued => {
                        out.push(Incompatibility::AttributeNarrowed {
                            elem: tau.to_string(),
                            attr: l.to_string(),
                        })
                    }
                    Some(_) => {}
                }
            }
            for (l, _) in self.attributes(tau) {
                if old.attr_type(tau, l).is_none() {
                    out.push(Incompatibility::AttributeAdded {
                        elem: tau.to_string(),
                        attr: l.to_string(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::book_structure;

    #[test]
    fn identity_is_compatible() {
        let s = book_structure();
        assert!(s.evolution_incompatibilities(&s).is_empty());
    }

    #[test]
    fn widening_is_compatible_narrowing_is_not() {
        let old = book_structure();
        // Widen: allow extra refs.
        let new = DtdStructure::builder("book")
            .elem("book", "(entry, author*, section*, ref, ref*)")
            .elem("entry", "(title, publisher)")
            .elem("author", "S")
            .elem("title", "S")
            .elem("publisher", "S")
            .elem("text", "S")
            .elem("section", "(title, (text + section)*)")
            .elem("ref", "EMPTY")
            .attr("entry", "isbn", "S")
            .attr("section", "sid", "S")
            .attr("ref", "to", "S*")
            .build()
            .unwrap();
        assert!(new.evolution_incompatibilities(&old).is_empty());
        let back = old.evolution_incompatibilities(&new);
        assert!(
            back.iter()
                .any(|i| matches!(i, Incompatibility::ContentNarrowed { .. })),
            "{back:?}"
        );
    }

    #[test]
    fn attribute_changes_reported() {
        let old = DtdStructure::builder("a")
            .elem("a", "S")
            .attr("a", "x", "S")
            .attr("a", "y", "S*")
            .build()
            .unwrap();
        let new = DtdStructure::builder("a")
            .elem("a", "S")
            .attr("a", "y", "S") // narrowed; x removed
            .attr("a", "z", "S") // added
            .build()
            .unwrap();
        let inc = new.evolution_incompatibilities(&old);
        assert!(inc
            .iter()
            .any(|i| matches!(i, Incompatibility::AttributeRemoved { .. })));
        assert!(inc
            .iter()
            .any(|i| matches!(i, Incompatibility::AttributeNarrowed { .. })));
        assert!(inc
            .iter()
            .any(|i| matches!(i, Incompatibility::AttributeAdded { .. })));
        assert_eq!(inc.len(), 3, "{inc:?}");
        for i in &inc {
            assert!(!i.to_string().is_empty());
        }
    }

    #[test]
    fn root_change_and_removal_reported() {
        let old = DtdStructure::builder("a")
            .elem("a", "b*")
            .elem("b", "S")
            .build()
            .unwrap();
        let new = DtdStructure::builder("c").elem("c", "S").build().unwrap();
        let inc = new.evolution_incompatibilities(&old);
        assert!(inc
            .iter()
            .any(|i| matches!(i, Incompatibility::RootChanged { .. })));
        assert!(
            inc.iter()
                .filter(|i| matches!(i, Incompatibility::ElementRemoved(_)))
                .count()
                == 2
        );
    }
}
