//! DTD structures `S = (E, P, R, kind, r)` (Definition 2.2).

use std::collections::BTreeMap;
use std::fmt;

use xic_model::Name;
use xic_regex::ContentModel;

/// Attribute type definition `β`: `S` (single-valued) or `S*` (set-valued).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttrType {
    /// `R(τ, l) = S` — a single atomic value.
    Single,
    /// `R(τ, l) = S*` — a set of atomic values (XML `IDREFS`-style).
    SetValued,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Single => f.write_str("S"),
            AttrType::SetValued => f.write_str("S*"),
        }
    }
}

/// The `kind` annotation of an attribute: `ID` or `IDREF`.
///
/// `kind` is a *partial* function; most attributes have no kind. Note that
/// per the paper, `kind` is ignored by `L` and `L_u` but gives `L_id` its
/// object-identity semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttrKind {
    /// The (unique, single-valued) object-identity attribute of the type.
    Id,
    /// A reference attribute (XML `IDREF`/`IDREFS`).
    IdRef,
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrKind::Id => f.write_str("ID"),
            AttrKind::IdRef => f.write_str("IDREF"),
        }
    }
}

/// Per-element-type attribute description: type and optional kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrDecl {
    pub(crate) ty: AttrType,
    pub(crate) kind: Option<AttrKind>,
}

/// Per-element-type description: content model and attributes.
#[derive(Clone, Debug)]
struct ElemDecl {
    content: ContentModel,
    attrs: BTreeMap<Name, AttrDecl>,
}

/// Violations of Definition 2.2's side conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StructureError {
    /// The root type `r` is not in `E`.
    UnknownRoot(Name),
    /// A content model mentions an element type not in `E`.
    UnknownContentType {
        /// The element whose definition is at fault.
        elem: Name,
        /// The undeclared type mentioned.
        mentions: Name,
    },
    /// An element declares two `ID`-kind attributes ("there exists at most
    /// one attribute l₀ such that kind(τ, l₀) = ID").
    MultipleIdAttributes(Name),
    /// An `ID` attribute is set-valued ("l₀ must be single-valued").
    SetValuedId {
        /// The element type.
        elem: Name,
        /// The offending attribute.
        attr: Name,
    },
    /// The same element type was declared twice.
    DuplicateElement(Name),
    /// The same attribute was declared twice for one element type.
    DuplicateAttribute {
        /// The element type.
        elem: Name,
        /// The attribute declared twice.
        attr: Name,
    },
    /// An attribute was declared for an element type not in `E`.
    AttributeOnUnknownElement {
        /// The undeclared element type.
        elem: Name,
        /// The attribute.
        attr: Name,
    },
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::UnknownRoot(r) => write!(f, "root type {r} is not declared"),
            StructureError::UnknownContentType { elem, mentions } => {
                write!(f, "P({elem}) mentions undeclared element type {mentions}")
            }
            StructureError::MultipleIdAttributes(e) => {
                write!(f, "element type {e} declares more than one ID attribute")
            }
            StructureError::SetValuedId { elem, attr } => {
                write!(f, "ID attribute {elem}.{attr} must be single-valued")
            }
            StructureError::DuplicateElement(e) => {
                write!(f, "element type {e} declared twice")
            }
            StructureError::DuplicateAttribute { elem, attr } => {
                write!(f, "attribute {elem}.{attr} declared twice")
            }
            StructureError::AttributeOnUnknownElement { elem, attr } => {
                write!(
                    f,
                    "attribute {attr} declared on undeclared element type {elem}"
                )
            }
        }
    }
}

impl std::error::Error for StructureError {}

/// A DTD structure `S = (E, P, R, kind, r)` (Definition 2.2).
///
/// Built with [`DtdStructure::builder`]; construction enforces the paper's
/// side conditions (kind ⇒ declared attribute; at most one single-valued
/// `ID` attribute per type; root declared; content models closed over `E`).
///
/// ```
/// use xic_constraints::DtdStructure;
/// let s = DtdStructure::builder("book")
///     .elem("book", "(entry, author*, section*, ref)")
///     .elem("entry", "(title, publisher)")
///     .elem("author", "S").elem("title", "S").elem("publisher", "S")
///     .elem("text", "S")
///     .elem("section", "(title, (text + section)*)")
///     .elem("ref", "EMPTY")
///     .attr("entry", "isbn", "S")
///     .attr("section", "sid", "S")
///     .attr("ref", "to", "S*")
///     .build()
///     .unwrap();
/// assert_eq!(s.root().as_str(), "book");
/// assert!(s.attr_type("ref", "to").is_some());
/// ```
#[derive(Clone, Debug)]
pub struct DtdStructure {
    elems: BTreeMap<Name, ElemDecl>,
    root: Name,
}

impl DtdStructure {
    /// Starts a builder with the given root element type.
    pub fn builder(root: impl Into<Name>) -> DtdStructureBuilder {
        DtdStructureBuilder {
            root: root.into(),
            elems: Vec::new(),
            attrs: Vec::new(),
        }
    }

    /// The root element type `r`.
    pub fn root(&self) -> &Name {
        &self.root
    }

    /// The element types `E`, in name order.
    pub fn element_types(&self) -> impl Iterator<Item = &Name> {
        self.elems.keys()
    }

    /// Number of element types `|E|`.
    pub fn num_element_types(&self) -> usize {
        self.elems.len()
    }

    /// True iff `τ ∈ E`.
    pub fn has_element(&self, tau: &str) -> bool {
        self.elems.contains_key(tau)
    }

    /// `P(τ)` — the content model of `τ`, if declared.
    pub fn content_model(&self, tau: &str) -> Option<&ContentModel> {
        self.elems.get(tau).map(|e| &e.content)
    }

    /// `Att(τ)` — the declared attributes of `τ`, in name order.
    pub fn attributes(&self, tau: &str) -> impl Iterator<Item = (&Name, AttrType)> {
        self.elems
            .get(tau)
            .into_iter()
            .flat_map(|e| e.attrs.iter().map(|(n, d)| (n, d.ty)))
    }

    /// `R(τ, l)` — the attribute type, if declared.
    pub fn attr_type(&self, tau: &str, l: &str) -> Option<AttrType> {
        self.elems.get(tau)?.attrs.get(l).map(|d| d.ty)
    }

    /// `kind(τ, l)` — the ID/IDREF kind, if any.
    pub fn attr_kind(&self, tau: &str, l: &str) -> Option<AttrKind> {
        self.elems.get(tau)?.attrs.get(l)?.kind
    }

    /// The ID attribute `l₀` of `τ` (`τ.id` denotes `τ.l₀`), if one exists.
    pub fn id_attr(&self, tau: &str) -> Option<&Name> {
        self.elems.get(tau)?.attrs.iter().find_map(|(n, d)| {
            if d.kind == Some(AttrKind::Id) {
                Some(n)
            } else {
                None
            }
        })
    }

    /// True iff `l` is a declared single-valued attribute of `τ`.
    pub fn is_single_valued(&self, tau: &str, l: &str) -> bool {
        self.attr_type(tau, l) == Some(AttrType::Single)
    }

    /// True iff `l` is a declared set-valued attribute of `τ`.
    pub fn is_set_valued(&self, tau: &str, l: &str) -> bool {
        self.attr_type(tau, l) == Some(AttrType::SetValued)
    }

    /// §3.4: true iff `e` is a *unique sub-element* of `τ`, i.e. occurs
    /// exactly once in every word of `L(P(τ))`.
    pub fn is_unique_subelement(&self, tau: &str, e: &Name) -> bool {
        self.content_model(tau)
            .is_some_and(|m| m.is_unique_subelement(e))
    }

    /// The total size `|P|` of the element type definitions (the measure in
    /// the paper's complexity statements for path-constraint implication).
    pub fn definitions_size(&self) -> usize {
        self.elems.values().map(|e| e.content.size()).sum()
    }

    /// Lint: element types declared in `E` but not reachable from the root
    /// through content models. Such types can never occur in a valid
    /// document (Definition 2.4 types every vertex from the root down), so
    /// constraints on them hold vacuously.
    ///
    /// ```
    /// use xic_constraints::DtdStructure;
    /// let s = DtdStructure::builder("a")
    ///     .elem("a", "b*").elem("b", "S").elem("orphan", "S")
    ///     .build().unwrap();
    /// let u: Vec<_> = s.unreachable_types().collect();
    /// assert_eq!(u.len(), 1);
    /// assert_eq!(u[0].as_str(), "orphan");
    /// ```
    pub fn unreachable_types(&self) -> impl Iterator<Item = &Name> {
        let mut reachable: std::collections::BTreeSet<&Name> = std::collections::BTreeSet::new();
        let mut stack = vec![&self.root];
        while let Some(tau) = stack.pop() {
            if !reachable.insert(tau) {
                continue;
            }
            if let Some(decl) = self.elems.get(tau) {
                for t in decl.content.element_types() {
                    if let Some((name, _)) = self.elems.get_key_value(&t) {
                        if !reachable.contains(name) {
                            stack.push(name);
                        }
                    }
                }
            }
        }
        let reachable: std::collections::BTreeSet<Name> = reachable.into_iter().cloned().collect();
        self.elems.keys().filter(move |t| !reachable.contains(*t))
    }
}

/// Builder for [`DtdStructure`].
pub struct DtdStructureBuilder {
    root: Name,
    elems: Vec<(Name, ContentModel)>,
    attrs: Vec<(Name, Name, AttrType, Option<AttrKind>)>,
}

impl DtdStructureBuilder {
    /// Declares element type `name` with the given content-model source
    /// (parsed with [`ContentModel::parse`]).
    ///
    /// # Panics
    /// Panics if the content model does not parse; use
    /// [`DtdStructureBuilder::elem_model`] for fallible construction.
    pub fn elem(self, name: impl Into<Name>, content: &str) -> Self {
        let m = ContentModel::parse(content)
            .unwrap_or_else(|e| panic!("invalid content model {content:?}: {e}"));
        self.elem_model(name, m)
    }

    /// Declares element type `name` with an already-built content model.
    pub fn elem_model(mut self, name: impl Into<Name>, content: ContentModel) -> Self {
        self.elems.push((name.into(), content));
        self
    }

    /// Declares attribute `l` on element `tau` with type `"S"` or `"S*"`.
    ///
    /// # Panics
    /// Panics on any other type string.
    pub fn attr(self, tau: impl Into<Name>, l: impl Into<Name>, ty: &str) -> Self {
        let ty = match ty {
            "S" => AttrType::Single,
            "S*" => AttrType::SetValued,
            other => panic!("attribute type must be \"S\" or \"S*\", got {other:?}"),
        };
        self.attr_full(tau, l, ty, None)
    }

    /// Declares an `ID`-kind attribute (single-valued by definition).
    pub fn id_attr(self, tau: impl Into<Name>, l: impl Into<Name>) -> Self {
        self.attr_full(tau, l, AttrType::Single, Some(AttrKind::Id))
    }

    /// Declares a single-valued `IDREF` attribute.
    pub fn idref_attr(self, tau: impl Into<Name>, l: impl Into<Name>) -> Self {
        self.attr_full(tau, l, AttrType::Single, Some(AttrKind::IdRef))
    }

    /// Declares a set-valued `IDREFS` attribute.
    pub fn idrefs_attr(self, tau: impl Into<Name>, l: impl Into<Name>) -> Self {
        self.attr_full(tau, l, AttrType::SetValued, Some(AttrKind::IdRef))
    }

    /// Declares an attribute with explicit type and kind.
    pub fn attr_full(
        mut self,
        tau: impl Into<Name>,
        l: impl Into<Name>,
        ty: AttrType,
        kind: Option<AttrKind>,
    ) -> Self {
        self.attrs.push((tau.into(), l.into(), ty, kind));
        self
    }

    /// Finishes the structure, verifying Definition 2.2's side conditions.
    pub fn build(self) -> Result<DtdStructure, StructureError> {
        let mut elems: BTreeMap<Name, ElemDecl> = BTreeMap::new();
        for (name, content) in self.elems {
            if elems.contains_key(&name) {
                return Err(StructureError::DuplicateElement(name));
            }
            elems.insert(
                name,
                ElemDecl {
                    content,
                    attrs: BTreeMap::new(),
                },
            );
        }
        for (tau, l, ty, kind) in self.attrs {
            let Some(decl) = elems.get_mut(&tau) else {
                return Err(StructureError::AttributeOnUnknownElement { elem: tau, attr: l });
            };
            if kind == Some(AttrKind::Id) && ty == AttrType::SetValued {
                return Err(StructureError::SetValuedId { elem: tau, attr: l });
            }
            if decl.attrs.contains_key(&l) {
                return Err(StructureError::DuplicateAttribute { elem: tau, attr: l });
            }
            decl.attrs.insert(l, AttrDecl { ty, kind });
        }
        // At most one ID attribute per type.
        for (tau, decl) in &elems {
            let ids = decl
                .attrs
                .values()
                .filter(|d| d.kind == Some(AttrKind::Id))
                .count();
            if ids > 1 {
                return Err(StructureError::MultipleIdAttributes(tau.clone()));
            }
        }
        // Content models closed over E.
        for (tau, decl) in &elems {
            for t in decl.content.element_types() {
                if !elems.contains_key(&t) {
                    return Err(StructureError::UnknownContentType {
                        elem: tau.clone(),
                        mentions: t,
                    });
                }
            }
        }
        if !elems.contains_key(&self.root) {
            return Err(StructureError::UnknownRoot(self.root));
        }
        Ok(DtdStructure {
            elems,
            root: self.root,
        })
    }
}

impl fmt::Display for DtdStructure {
    /// Prints the structure in the paper's §2.4 notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "r = {}", self.root)?;
        for (tau, decl) in &self.elems {
            writeln!(f, "P({tau}) = {}", decl.content)?;
        }
        for (tau, decl) in &self.elems {
            for (l, d) in &decl.attrs {
                writeln!(f, "R({tau}, {l}) = {}", d.ty)?;
            }
        }
        for (tau, decl) in &self.elems {
            for (l, d) in &decl.attrs {
                if let Some(k) = d.kind {
                    writeln!(f, "kind({tau}, {l}) = {k}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> DtdStructure {
        DtdStructure::builder("book")
            .elem("book", "(entry, author*, section*, ref)")
            .elem("entry", "(title, publisher)")
            .elem("author", "S")
            .elem("title", "S")
            .elem("publisher", "S")
            .elem("text", "S")
            .elem("section", "(title, (text + section)*)")
            .elem("ref", "EMPTY")
            .attr("entry", "isbn", "S")
            .attr("section", "sid", "S")
            .attr("ref", "to", "S*")
            .build()
            .unwrap()
    }

    #[test]
    fn book_structure_accessors() {
        let s = book();
        assert_eq!(s.root().as_str(), "book");
        assert_eq!(s.num_element_types(), 8);
        assert_eq!(s.attr_type("entry", "isbn"), Some(AttrType::Single));
        assert_eq!(s.attr_type("ref", "to"), Some(AttrType::SetValued));
        assert_eq!(s.attr_type("entry", "nope"), None);
        assert!(s.is_single_valued("section", "sid"));
        assert!(s.is_set_valued("ref", "to"));
        assert!(!s.is_set_valued("entry", "isbn"));
        assert_eq!(s.attr_kind("entry", "isbn"), None);
        assert_eq!(s.id_attr("entry"), None);
        assert!(s.definitions_size() > 0);
    }

    #[test]
    fn unique_subelement_on_structure() {
        let s = book();
        assert!(s.is_unique_subelement("book", &Name::new("entry")));
        assert!(s.is_unique_subelement("book", &Name::new("ref")));
        assert!(!s.is_unique_subelement("book", &Name::new("author")));
        assert!(s.is_unique_subelement("section", &Name::new("title")));
        assert!(!s.is_unique_subelement("section", &Name::new("section")));
        assert!(!s.is_unique_subelement("missing", &Name::new("title")));
    }

    #[test]
    fn id_kind_machinery() {
        let s = DtdStructure::builder("db")
            .elem("db", "(person*, dept*)")
            .elem("person", "(name, address)")
            .elem("name", "S")
            .elem("address", "S")
            .elem("dname", "S")
            .elem("dept", "dname")
            .id_attr("person", "oid")
            .idrefs_attr("person", "in_dept")
            .id_attr("dept", "oid")
            .idref_attr("dept", "manager")
            .idrefs_attr("dept", "has_staff")
            .build()
            .unwrap();
        assert_eq!(s.id_attr("person"), Some(&Name::new("oid")));
        assert_eq!(s.attr_kind("dept", "manager"), Some(AttrKind::IdRef));
        assert_eq!(s.attr_kind("dept", "has_staff"), Some(AttrKind::IdRef));
        assert_eq!(s.attr_type("dept", "has_staff"), Some(AttrType::SetValued));
        assert_eq!(s.attr_type("dept", "manager"), Some(AttrType::Single));
    }

    #[test]
    fn rejects_two_ids() {
        let err = DtdStructure::builder("a")
            .elem("a", "S")
            .id_attr("a", "x")
            .id_attr("a", "y")
            .build()
            .unwrap_err();
        assert_eq!(err, StructureError::MultipleIdAttributes(Name::new("a")));
    }

    #[test]
    fn rejects_set_valued_id() {
        let err = DtdStructure::builder("a")
            .elem("a", "S")
            .attr_full("a", "x", AttrType::SetValued, Some(AttrKind::Id))
            .build()
            .unwrap_err();
        assert!(matches!(err, StructureError::SetValuedId { .. }));
    }

    #[test]
    fn rejects_unknown_root_and_types() {
        let err = DtdStructure::builder("nope")
            .elem("a", "S")
            .build()
            .unwrap_err();
        assert_eq!(err, StructureError::UnknownRoot(Name::new("nope")));
        let err = DtdStructure::builder("a")
            .elem("a", "b")
            .build()
            .unwrap_err();
        assert!(matches!(err, StructureError::UnknownContentType { .. }));
    }

    #[test]
    fn rejects_duplicates() {
        let err = DtdStructure::builder("a")
            .elem("a", "S")
            .elem("a", "S")
            .build()
            .unwrap_err();
        assert_eq!(err, StructureError::DuplicateElement(Name::new("a")));
        let err = DtdStructure::builder("a")
            .elem("a", "S")
            .attr("a", "x", "S")
            .attr("a", "x", "S*")
            .build()
            .unwrap_err();
        assert!(matches!(err, StructureError::DuplicateAttribute { .. }));
        let err = DtdStructure::builder("a")
            .elem("a", "S")
            .attr("b", "x", "S")
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            StructureError::AttributeOnUnknownElement { .. }
        ));
    }

    #[test]
    fn display_matches_paper_notation() {
        let s = book();
        let out = s.to_string();
        assert!(out.contains("r = book"));
        assert!(out.contains("P(book) = entry, author*, section*, ref"));
        assert!(out.contains("R(ref, to) = S*"));
        assert!(!out.contains("kind("));
    }
}
