//! The paper's three running examples (§1, §2.4) as ready-made values.
//!
//! * the **book** document — native XML with `L_u` constraints;
//! * the **person/dept** object database export — `L_id` constraints
//!   preserving object identities and inverse relationships;
//! * the **publishers/editors** relational export — `L` constraints with a
//!   composite key and foreign key.

use crate::{Constraint, DtdC, DtdStructure, Language};

/// The book DTD structure of §1/§2.4.
pub fn book_structure() -> DtdStructure {
    DtdStructure::builder("book")
        .elem("book", "(entry, author*, section*, ref)")
        .elem("entry", "(title, publisher)")
        .elem("author", "S")
        .elem("title", "S")
        .elem("publisher", "S")
        .elem("text", "S")
        .elem("section", "(title, (text + section)*)")
        .elem("ref", "EMPTY")
        .attr("entry", "isbn", "S")
        .attr("section", "sid", "S")
        .attr("ref", "to", "S*")
        .build()
        .expect("book structure is well-formed")
}

/// The book `DTD^C` with its `L_u` constraint set `Σ` from §2.4:
///
/// ```text
/// entry.isbn  -> entry
/// section.sid -> section
/// ref.to      <=s entry.isbn
/// ```
pub fn book_dtdc() -> DtdC {
    DtdC::new(
        book_structure(),
        Language::Lu,
        vec![
            Constraint::unary_key("entry", "isbn"),
            Constraint::unary_key("section", "sid"),
            Constraint::set_fk("ref", "to", "entry", "isbn"),
        ],
    )
    .expect("book Σ is well-formed")
}

/// The person/dept DTD structure `S_o` of §2.4 (exported from the ODL
/// schema of §1).
pub fn company_structure() -> DtdStructure {
    DtdStructure::builder("db")
        .elem("db", "(person*, dept*)")
        .elem("person", "(name, address)")
        .elem("name", "S")
        .elem("address", "S")
        .elem("dname", "S")
        .elem("dept", "dname")
        .id_attr("person", "oid")
        .idrefs_attr("person", "in_dept")
        .id_attr("dept", "oid")
        .idref_attr("dept", "manager")
        .idrefs_attr("dept", "has_staff")
        .build()
        .expect("company structure is well-formed")
}

/// The person/dept `DTD^C` `D_o = (S_o, Σ_o)` of §2.4, with `L_id`
/// constraints:
///
/// ```text
/// person.oid       ->id person
/// dept.oid         ->id dept
/// person.name      -> person          (sub-element key, §3.4)
/// dept.dname       -> dept            (sub-element key, §3.4)
/// person.in_dept   <=s dept.oid
/// dept.manager     <= person.oid
/// dept.has_staff   <=s person.oid
/// dept.has_staff   <=> person.in_dept
/// ```
pub fn company_dtdc() -> DtdC {
    DtdC::new(
        company_structure(),
        Language::Lid,
        vec![
            Constraint::Id {
                tau: "person".into(),
            },
            Constraint::Id { tau: "dept".into() },
            Constraint::sub_key("person", "name"),
            Constraint::sub_key("dept", "dname"),
            Constraint::SetFkToId {
                tau: "person".into(),
                attr: "in_dept".into(),
                target: "dept".into(),
            },
            Constraint::FkToId {
                tau: "dept".into(),
                attr: "manager".into(),
                target: "person".into(),
            },
            Constraint::SetFkToId {
                tau: "dept".into(),
                attr: "has_staff".into(),
                target: "person".into(),
            },
            Constraint::InverseId {
                tau: "dept".into(),
                attr: "has_staff".into(),
                target: "person".into(),
                target_attr: "in_dept".into(),
            },
        ],
    )
    .expect("company Σ is well-formed")
}

/// The publishers/editors DTD structure of §1 (exported from a relational
/// database), with the relational key columns represented both as
/// sub-elements (as in the paper's DTD) and as attributes so that `L`'s
/// attribute-based keys and foreign keys apply directly.
pub fn publishers_structure() -> DtdStructure {
    DtdStructure::builder("db")
        .elem("db", "(publishers, editors)")
        .elem("publishers", "publisher*")
        .elem("publisher", "(pname, country, address)")
        .elem("editors", "editor*")
        .elem("editor", "(name, pname, country)")
        .elem("pname", "S")
        .elem("country", "S")
        .elem("address", "S")
        .elem("name", "S")
        .attr("publisher", "pname", "S")
        .attr("publisher", "country", "S")
        .attr("editor", "pname", "S")
        .attr("editor", "country", "S")
        .attr("editor", "name", "S")
        .build()
        .expect("publishers structure is well-formed")
}

/// The publishers/editors `DTD^C` with its `L` constraints from §2.4:
///
/// ```text
/// publisher[pname, country] -> publisher
/// editor[name]              -> editor
/// editor[pname, country]    <= publisher[pname, country]
/// ```
pub fn publishers_dtdc() -> DtdC {
    DtdC::new(
        publishers_structure(),
        Language::L,
        vec![
            Constraint::key("publisher", ["pname", "country"]),
            Constraint::key("editor", ["name"]),
            Constraint::fk(
                "editor",
                ["pname", "country"],
                "publisher",
                ["pname", "country"],
            ),
        ],
    )
    .expect("publishers Σ is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_construct() {
        book_dtdc();
        company_dtdc();
        publishers_dtdc();
    }

    #[test]
    fn company_uses_id_semantics() {
        let d = company_dtdc();
        let s = d.structure();
        assert_eq!(s.id_attr("person").unwrap().as_str(), "oid");
        assert_eq!(s.id_attr("dept").unwrap().as_str(), "oid");
        assert!(s.id_attr("db").is_none());
    }

    #[test]
    fn book_kind_is_empty() {
        // §2.4: "we can keep the function kind empty as we do not use the
        // original ID/IDREF semantics."
        let d = book_dtdc();
        let s = d.structure();
        for tau in ["book", "entry", "section", "ref"] {
            for (l, _) in s.attributes(tau) {
                assert!(s.attr_kind(tau, l).is_none());
            }
        }
    }
}
