//! Property test: the compiled (and parallel) constraint engine is
//! report-equivalent to the naive per-constraint ground truth.
//!
//! Two obligations, both stronger than "same violations up to order":
//!
//! 1. For every thread count, the `Validator` produces the **same
//!    violation sequence** (byte-identical reports).
//! 2. The constraint-level part of the report equals the concatenation,
//!    in Σ order, of [`check_constraint`]'s output per constraint — the
//!    naive checker that re-extracts fields from the tree each time.
//!
//! Σ and the documents are random: constraints draw from all eight
//! constructor kinds over a small universe of types/attributes/values
//! (small pools force collisions, dangling references, duplicate IDs, and
//! non-unique sub-elements).

use proptest::prelude::*;
use xic_constraints::{Constraint, DtdC, DtdStructure, Field, Language};
use xic_model::{AttrValue, DataTree, TreeBuilder};
use xic_validate::{check_constraint, MatcherKind, Options, Validator, Violation};

/// Three element types sharing the same attribute/sub-element alphabet:
/// an ID attribute `id`, single attributes `a0`/`a1`, set-valued `r0`
/// (IDREFS) and `r1`, and sub-elements `e0`/`e1`.
fn test_structure() -> DtdStructure {
    let mut b = DtdStructure::builder("db").elem("db", "(t0 + t1 + t2)*");
    for t in ["t0", "t1", "t2"] {
        b = b
            .elem(t, "(e0 + e1 + S)*")
            .id_attr(t, "id")
            .attr(t, "a0", "S")
            .attr(t, "a1", "S")
            .idrefs_attr(t, "r0")
            .attr(t, "r1", "S*");
    }
    b.elem("e0", "S")
        .elem("e1", "S")
        .build()
        .expect("test structure is well-formed")
}

fn tau() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("t0"), Just("t1"), Just("t2")]
}

fn set_attr() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("r0"), Just("r1")]
}

fn single_attr() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("a0"), Just("a1"), Just("id")]
}

fn field() -> BoxedStrategy<Field> {
    prop_oneof![
        single_attr().prop_map(Field::attr),
        prop_oneof![Just("e0"), Just("e1")].prop_map(Field::sub),
    ]
}

fn constraint() -> BoxedStrategy<Constraint> {
    prop_oneof![
        (tau(), prop::collection::vec(field(), 1..3)).prop_map(|(t, fs)| Constraint::Key {
            tau: t.into(),
            fields: fs,
        }),
        (
            tau(),
            tau(),
            prop::collection::vec((field(), field()), 1..3)
        )
            .prop_map(|(t, u, pairs)| {
                let (xs, ys): (Vec<Field>, Vec<Field>) = pairs.into_iter().unzip();
                Constraint::ForeignKey {
                    tau: t.into(),
                    fields: xs,
                    target: u.into(),
                    target_fields: ys,
                }
            }),
        (tau(), set_attr(), tau(), field()).prop_map(|(t, a, u, f)| {
            Constraint::SetForeignKey {
                tau: t.into(),
                attr: a.into(),
                target: u.into(),
                target_field: f,
            }
        }),
        (tau(), field(), set_attr(), tau(), field(), set_attr()).prop_map(
            |(t, k, a, u, tk, ta)| Constraint::InverseU {
                tau: t.into(),
                key: k,
                attr: a.into(),
                target: u.into(),
                target_key: tk,
                target_attr: ta.into(),
            }
        ),
        tau().prop_map(|t| Constraint::Id { tau: t.into() }),
        (tau(), single_attr(), tau()).prop_map(|(t, a, u)| Constraint::FkToId {
            tau: t.into(),
            attr: a.into(),
            target: u.into(),
        }),
        (tau(), set_attr(), tau()).prop_map(|(t, a, u)| Constraint::SetFkToId {
            tau: t.into(),
            attr: a.into(),
            target: u.into(),
        }),
        (tau(), set_attr(), tau(), set_attr()).prop_map(|(t, a, u, ta)| {
            Constraint::InverseId {
                tau: t.into(),
                attr: a.into(),
                target: u.into(),
                target_attr: ta.into(),
            }
        }),
    ]
}

/// One random element: `((type, id, a0, a1), (r0, r1, sub-elements))`,
/// all values drawn from a 6-value pool so collisions are common, and
/// sub-element labels repeatable so non-unique sub-elements occur.
type NodeRecipe = (
    (u8, Option<u8>, Option<u8>, Option<u8>),
    (Vec<u8>, Vec<u8>, Vec<(u8, u8)>),
);

fn node_recipe() -> BoxedStrategy<NodeRecipe> {
    let head = (
        0u8..3,
        prop::option::of(0u8..6),
        prop::option::of(0u8..6),
        prop::option::of(0u8..6),
    );
    let tail = (
        prop::collection::vec(0u8..6, 0..3),
        prop::collection::vec(0u8..6, 0..3),
        prop::collection::vec((0u8..2, 0u8..6), 0..4),
    );
    (head, tail).boxed()
}

fn val(v: u8) -> String {
    format!("v{v}")
}

fn build_tree(recipes: &[NodeRecipe]) -> DataTree {
    let mut b = TreeBuilder::new();
    let db = b.node("db");
    for ((ty, id, a0, a1), (r0, r1, subs)) in recipes {
        let p = b.child_node(db, format!("t{ty}")).unwrap();
        if let Some(v) = id {
            b.attr(p, "id", AttrValue::single(val(*v))).unwrap();
        }
        if let Some(v) = a0 {
            b.attr(p, "a0", AttrValue::single(val(*v))).unwrap();
        }
        if let Some(v) = a1 {
            b.attr(p, "a1", AttrValue::single(val(*v))).unwrap();
        }
        b.attr(p, "r0", AttrValue::set(r0.iter().map(|&v| val(v))))
            .unwrap();
        b.attr(p, "r1", AttrValue::set(r1.iter().map(|&v| val(v))))
            .unwrap();
        for (w, tv) in subs {
            b.leaf(p, format!("e{w}"), val(*tv)).unwrap();
        }
    }
    b.finish(db).unwrap()
}

fn constraint_level(v: &Violation) -> bool {
    matches!(
        v,
        Violation::Key { .. }
            | Violation::ForeignKey { .. }
            | Violation::MissingField { .. }
            | Violation::DuplicateId { .. }
            | Violation::Inverse { .. }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn planned_engine_matches_ground_truth(
        sigma in prop::collection::vec(constraint(), 0..8),
        nodes in prop::collection::vec(node_recipe(), 0..25),
    ) {
        let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, sigma);
        let tree = build_tree(&nodes);
        let reports: Vec<Vec<Violation>> = [1usize, 2, 4]
            .iter()
            .map(|&threads| {
                Validator::with_matcher(
                    &dtdc,
                    MatcherKind::Dfa,
                    Options::lenient().with_threads(threads),
                )
                .validate(&tree)
                .violations
            })
            .collect();
        // Byte-identical reports at every thread count.
        prop_assert_eq!(&reports[0], &reports[1]);
        prop_assert_eq!(&reports[0], &reports[2]);
        // Constraint-level violations equal the naive per-constraint
        // checker's output concatenated in Σ order.
        let ground: Vec<Violation> = dtdc
            .constraints()
            .iter()
            .flat_map(|c| check_constraint(&tree, &dtdc, c))
            .collect();
        let engine: Vec<Violation> = reports[0]
            .iter()
            .filter(|v| constraint_level(v))
            .cloned()
            .collect();
        prop_assert_eq!(engine, ground);
    }
}

/// Deterministic large-extent case: the extent exceeds the engine's chunk
/// threshold, so the parallel path actually splits the scans, and the
/// merged violation sequence must still match the sequential one exactly.
#[test]
fn chunk_merge_is_byte_identical_on_large_extents() {
    let s = DtdStructure::builder("db")
        .elem("db", "item*")
        .elem("item", "EMPTY")
        .attr("item", "k", "S")
        .attr("item", "r", "S*")
        .build()
        .unwrap();
    let sigma = vec![
        Constraint::unary_key("item", "k"),
        Constraint::set_fk("item", "r", "item", "k"),
    ];
    let d = DtdC::new_unchecked(s, Language::Lu, sigma);
    let mut b = TreeBuilder::new();
    let db = b.node("db");
    let n = 10_000u32;
    for i in 0..n {
        let it = b.child_node(db, "item").unwrap();
        let k = if i % 7 == 0 {
            "dup".to_string()
        } else {
            format!("k{i}")
        };
        b.attr(it, "k", AttrValue::single(k)).unwrap();
        let mut refs = vec![format!("k{}", (i + 1) % n)];
        if i % 5 == 0 {
            refs.push("missing".to_string());
        }
        b.attr(it, "r", AttrValue::set(refs)).unwrap();
    }
    let t = b.finish(db).unwrap();
    let seq = Validator::with_matcher(&d, MatcherKind::Dfa, Options::default()).validate(&t);
    let par = Validator::with_matcher(&d, MatcherKind::Dfa, Options::default().with_threads(4))
        .validate(&t);
    assert_eq!(seq.violations, par.violations);
    assert!(
        seq.violations.len() > 2_000,
        "expected a violation-dense document, got {}",
        seq.violations.len()
    );
}
