//! Property test: incremental revalidation is report-equivalent to the
//! from-scratch engine — **byte-identical** violation sequences after
//! every edit of a random edit sequence, on random Σ and random documents,
//! strict and lenient — and every [`ReportDiff`] reconciles the reports:
//! `old + raised − cleared = new` as multisets.
//!
//! The Σ/document universe is the one the stream-equivalence test uses
//! (same 96-case budget); on top of it, a random sequence of typed edits
//! (attribute set/remove, text replacement, subtree insert/delete) is
//! played through a [`LiveValidator`] with a from-scratch
//! [`Validator::validate`] cross-check after every single step.

use proptest::prelude::*;
use xic_constraints::{Constraint, DtdC, DtdStructure, Field, Language};
use xic_model::{AttrValue, Child, DataTree, NodeId, TreeBuilder};
use xic_validate::{
    BatchEdit, LiveValidator, MatcherKind, Options, ReportDiff, Validator, Violation,
};

/// Same universe as the stream-equivalence test: three element types with
/// an ID attribute, two single attributes, two set-valued attributes, and
/// two sub-element labels.
fn test_structure() -> DtdStructure {
    let mut b = DtdStructure::builder("db").elem("db", "(t0 + t1 + t2)*");
    for t in ["t0", "t1", "t2"] {
        b = b
            .elem(t, "(e0 + e1 + S)*")
            .id_attr(t, "id")
            .attr(t, "a0", "S")
            .attr(t, "a1", "S")
            .idrefs_attr(t, "r0")
            .attr(t, "r1", "S*");
    }
    b.elem("e0", "S")
        .elem("e1", "S")
        .build()
        .expect("test structure is well-formed")
}

fn tau() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("t0"), Just("t1"), Just("t2")]
}

fn set_attr() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("r0"), Just("r1")]
}

fn single_attr() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("a0"), Just("a1"), Just("id")]
}

fn field() -> BoxedStrategy<Field> {
    prop_oneof![
        single_attr().prop_map(Field::attr),
        prop_oneof![Just("e0"), Just("e1")].prop_map(Field::sub),
    ]
}

fn constraint() -> BoxedStrategy<Constraint> {
    prop_oneof![
        (tau(), prop::collection::vec(field(), 1..3)).prop_map(|(t, fs)| Constraint::Key {
            tau: t.into(),
            fields: fs,
        }),
        (
            tau(),
            tau(),
            prop::collection::vec((field(), field()), 1..3)
        )
            .prop_map(|(t, u, pairs)| {
                let (xs, ys): (Vec<Field>, Vec<Field>) = pairs.into_iter().unzip();
                Constraint::ForeignKey {
                    tau: t.into(),
                    fields: xs,
                    target: u.into(),
                    target_fields: ys,
                }
            }),
        (tau(), set_attr(), tau(), field()).prop_map(|(t, a, u, f)| {
            Constraint::SetForeignKey {
                tau: t.into(),
                attr: a.into(),
                target: u.into(),
                target_field: f,
            }
        }),
        (tau(), field(), set_attr(), tau(), field(), set_attr()).prop_map(
            |(t, k, a, u, tk, ta)| Constraint::InverseU {
                tau: t.into(),
                key: k,
                attr: a.into(),
                target: u.into(),
                target_key: tk,
                target_attr: ta.into(),
            }
        ),
        tau().prop_map(|t| Constraint::Id { tau: t.into() }),
        (tau(), single_attr(), tau()).prop_map(|(t, a, u)| Constraint::FkToId {
            tau: t.into(),
            attr: a.into(),
            target: u.into(),
        }),
        (tau(), set_attr(), tau()).prop_map(|(t, a, u)| Constraint::SetFkToId {
            tau: t.into(),
            attr: a.into(),
            target: u.into(),
        }),
        (tau(), set_attr(), tau(), set_attr()).prop_map(|(t, a, u, ta)| {
            Constraint::InverseId {
                tau: t.into(),
                attr: a.into(),
                target: u.into(),
                target_attr: ta.into(),
            }
        }),
    ]
}

/// One random element: `((type, id, a0, a1), (r0, r1, sub-elements))`,
/// all values drawn from a 6-value pool so collisions are common.
type NodeRecipe = (
    (u8, Option<u8>, Option<u8>, Option<u8>),
    (Vec<u8>, Vec<u8>, Vec<(u8, u8)>),
);

fn node_recipe() -> BoxedStrategy<NodeRecipe> {
    let head = (
        0u8..3,
        prop::option::of(0u8..6),
        prop::option::of(0u8..6),
        prop::option::of(0u8..6),
    );
    let tail = (
        prop::collection::vec(0u8..6, 0..3),
        prop::collection::vec(0u8..6, 0..3),
        prop::collection::vec((0u8..2, 0u8..6), 0..4),
    );
    (head, tail).boxed()
}

fn val(v: u8) -> String {
    format!("v{v}")
}

fn fill_node(b: &mut TreeBuilder, p: NodeId, recipe: &NodeRecipe) {
    let ((_, id, a0, a1), (r0, r1, subs)) = recipe;
    if let Some(v) = id {
        b.attr(p, "id", AttrValue::single(val(*v))).unwrap();
    }
    if let Some(v) = a0 {
        b.attr(p, "a0", AttrValue::single(val(*v))).unwrap();
    }
    if let Some(v) = a1 {
        b.attr(p, "a1", AttrValue::single(val(*v))).unwrap();
    }
    b.attr(p, "r0", AttrValue::set(r0.iter().map(|&v| val(v))))
        .unwrap();
    b.attr(p, "r1", AttrValue::set(r1.iter().map(|&v| val(v))))
        .unwrap();
    for (w, tv) in subs {
        b.leaf(p, format!("e{w}"), val(*tv)).unwrap();
    }
}

fn build_tree(recipes: &[NodeRecipe]) -> DataTree {
    let mut b = TreeBuilder::new();
    let db = b.node("db");
    for recipe in recipes {
        let p = b.child_node(db, format!("t{}", recipe.0 .0)).unwrap();
        fill_node(&mut b, p, recipe);
    }
    b.finish(db).unwrap()
}

/// A standalone one-element fragment for subtree insertion.
fn build_fragment(recipe: &NodeRecipe) -> DataTree {
    let mut b = TreeBuilder::new();
    let p = b.node(format!("t{}", recipe.0 .0));
    fill_node(&mut b, p, recipe);
    b.finish(p).unwrap()
}

const ATTRS: [&str; 5] = ["id", "a0", "a1", "r0", "r1"];

/// One random edit; vertex/attribute/position selectors are reduced modulo
/// the live ranges at application time so every recipe stays applicable as
/// the document evolves.
#[derive(Debug, Clone)]
enum EditRecipe {
    /// `(vertex, attribute, values)` — set (or create) an attribute.
    SetAttr(u8, u8, Vec<u8>),
    /// `(vertex, attribute)` — remove an attribute (skipped when absent).
    RemoveAttr(u8, u8),
    /// `(vertex, text child, value)` — replace a text child (skipped when
    /// the vertex has none).
    SetText(u8, u8, u8),
    /// `(vertex)` — delete the subtree (skipped at the root).
    Delete(u8),
    /// `(parent, position, fragment)` — graft a fresh element.
    Insert(u8, u8, NodeRecipe),
}

fn edit_recipe() -> BoxedStrategy<EditRecipe> {
    prop_oneof![
        (any::<u8>(), 0u8..5, prop::collection::vec(0u8..6, 1..3))
            .prop_map(|(n, a, vs)| EditRecipe::SetAttr(n, a, vs)),
        (any::<u8>(), 0u8..5).prop_map(|(n, a)| EditRecipe::RemoveAttr(n, a)),
        (any::<u8>(), any::<u8>(), 0u8..6).prop_map(|(n, i, v)| EditRecipe::SetText(n, i, v)),
        any::<u8>().prop_map(EditRecipe::Delete),
        (any::<u8>(), any::<u8>(), node_recipe()).prop_map(|(n, p, r)| EditRecipe::Insert(n, p, r)),
    ]
    .boxed()
}

/// Applies one recipe; `None` means the recipe was inapplicable (removing
/// an absent attribute, editing text of a text-less vertex, deleting the
/// root) and the step is skipped.
fn apply_edit(live: &mut LiveValidator<'_, '_>, e: &EditRecipe) -> Option<ReportDiff> {
    let ids: Vec<NodeId> = live.tree().node_ids().collect();
    let pick = |sel: u8| ids[sel as usize % ids.len()];
    match e {
        EditRecipe::SetAttr(n, a, vs) => {
            let node = pick(*n);
            let value = AttrValue::set(vs.iter().map(|&v| val(v)));
            Some(
                live.set_attr(node, ATTRS[*a as usize], value)
                    .expect("live vertex")
                    .diff,
            )
        }
        EditRecipe::RemoveAttr(n, a) => {
            let node = pick(*n);
            live.remove_attr(node, ATTRS[*a as usize])
                .ok()
                .map(|o| o.diff)
        }
        EditRecipe::SetText(n, i, v) => {
            let node = pick(*n);
            let texts = live
                .tree()
                .node(node)
                .children
                .iter()
                .filter(|c| matches!(c, Child::Text(_)))
                .count();
            if texts == 0 {
                return None;
            }
            Some(
                live.set_text(node, *i as usize % texts, val(*v))
                    .expect("text child exists")
                    .diff,
            )
        }
        EditRecipe::Delete(n) => {
            let node = pick(*n);
            if node == live.tree().root() {
                return None;
            }
            Some(live.delete_subtree(node).expect("non-root vertex").diff)
        }
        EditRecipe::Insert(n, p, recipe) => {
            let parent = pick(*n);
            let len = live.tree().node(parent).children.len();
            let pos = *p as usize % (len + 1);
            Some(
                live.insert_subtree(parent, pos, &build_fragment(recipe))
                    .expect("position in range")
                    .diff,
            )
        }
    }
}

/// Resolves one recipe against the current tree into a concrete
/// [`BatchEdit`], or `None` when inapplicable — the same applicability
/// rules as [`apply_edit`], so a resolved request is guaranteed to stage
/// cleanly when the tree is in the state it was resolved against.
fn resolve_edit(live: &LiveValidator<'_, '_>, e: &EditRecipe) -> Option<BatchEdit> {
    let ids: Vec<NodeId> = live.tree().node_ids().collect();
    let pick = |sel: u8| ids[sel as usize % ids.len()];
    match e {
        EditRecipe::SetAttr(n, a, vs) => Some(BatchEdit::SetAttr {
            node: pick(*n),
            attr: ATTRS[*a as usize].into(),
            value: AttrValue::set(vs.iter().map(|&v| val(v))),
        }),
        EditRecipe::RemoveAttr(n, a) => {
            let node = pick(*n);
            live.tree()
                .attr(node, ATTRS[*a as usize])
                .is_some()
                .then(|| BatchEdit::RemoveAttr {
                    node,
                    attr: ATTRS[*a as usize].into(),
                })
        }
        EditRecipe::SetText(n, i, v) => {
            let node = pick(*n);
            let texts = live
                .tree()
                .node(node)
                .children
                .iter()
                .filter(|c| matches!(c, Child::Text(_)))
                .count();
            (texts > 0).then(|| BatchEdit::SetText {
                node,
                index: *i as usize % texts,
                text: val(*v),
            })
        }
        EditRecipe::Delete(n) => {
            let node = pick(*n);
            (node != live.tree().root()).then_some(BatchEdit::DeleteSubtree { node })
        }
        EditRecipe::Insert(n, p, recipe) => {
            let parent = pick(*n);
            let len = live.tree().node(parent).children.len();
            Some(BatchEdit::InsertSubtree {
                parent,
                position: *p as usize % (len + 1),
                fragment: build_fragment(recipe),
            })
        }
    }
}

/// Applies one already-resolved request through the per-edit API.
fn apply_resolved(live: &mut LiveValidator<'_, '_>, b: &BatchEdit) {
    match b {
        BatchEdit::SetAttr { node, attr, value } => {
            live.set_attr(*node, attr.clone(), value.clone())
                .expect("resolved against this state");
        }
        BatchEdit::RemoveAttr { node, attr } => {
            live.remove_attr(*node, attr.as_str())
                .expect("resolved against this state");
        }
        BatchEdit::SetText { node, index, text } => {
            live.set_text(*node, *index, text.clone())
                .expect("resolved against this state");
        }
        BatchEdit::InsertSubtree {
            parent,
            position,
            fragment,
        } => {
            live.insert_subtree(*parent, *position, fragment)
                .expect("resolved against this state");
        }
        BatchEdit::DeleteSubtree { node } => {
            live.delete_subtree(*node)
                .expect("resolved against this state");
        }
    }
}

/// Violation multiset as Debug-string counts (zero entries pruned).
fn counts(vs: &[Violation]) -> std::collections::BTreeMap<String, i64> {
    let mut m = std::collections::BTreeMap::new();
    for v in vs {
        *m.entry(format!("{v:?}")).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn live_report_is_byte_identical_after_every_edit(
        sigma in prop::collection::vec(constraint(), 0..8),
        nodes in prop::collection::vec(node_recipe(), 0..25),
        edits in prop::collection::vec(edit_recipe(), 1..10),
    ) {
        let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, sigma);
        for strict in [true, false] {
            let opts = Options { strict_attributes: strict, threads: 1 };
            let v = Validator::with_matcher(&dtdc, MatcherKind::Dfa, opts);
            let mut live = LiveValidator::new(&v, build_tree(&nodes));
            prop_assert_eq!(
                &live.report().violations,
                &v.validate(live.tree()).violations,
                "initial report diverged (strict={})", strict
            );
            for e in &edits {
                let before = live.report().violations;
                let Some(diff) = apply_edit(&mut live, e) else { continue };
                let after = live.report().violations;
                let scratch = v.validate(live.tree()).violations;
                prop_assert_eq!(
                    &after, &scratch,
                    "live report diverged (strict={}, edit={:?})", strict, e
                );
                // The diff must reconcile the two reports as multisets.
                let mut m = counts(&before);
                for r in &diff.raised {
                    *m.entry(format!("{r:?}")).or_insert(0) += 1;
                }
                for c in &diff.cleared {
                    *m.entry(format!("{c:?}")).or_insert(0) -= 1;
                }
                m.retain(|_, n| *n != 0);
                prop_assert_eq!(
                    &m, &counts(&after),
                    "diff does not reconcile (strict={}, edit={:?}, diff={:?})",
                    strict, e, diff
                );
            }
        }
    }

    /// Batched propagation is report-equivalent to sequential: the same
    /// random edit sequence (inserts, deletes, attribute retargets, text
    /// rewrites) is played edit-by-edit through one validator and in
    /// random batch cuts through [`LiveValidator::apply_batch`] on
    /// another; at every batch boundary the reports must be
    /// byte-identical, the batch diff must reconcile them, and at the end
    /// both must match a from-scratch validation.
    #[test]
    fn batched_report_is_byte_identical_at_every_batch_boundary(
        sigma in prop::collection::vec(constraint(), 0..8),
        nodes in prop::collection::vec(node_recipe(), 0..25),
        edits in prop::collection::vec(edit_recipe(), 1..16),
        cuts in prop::collection::vec(any::<bool>(), 16),
    ) {
        let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, sigma);
        let opts = Options { strict_attributes: true, threads: 1 };
        let v = Validator::with_matcher(&dtdc, MatcherKind::Dfa, opts);
        let tree = build_tree(&nodes);
        let mut seq = LiveValidator::new(&v, tree.clone());
        let mut bat = LiveValidator::new(&v, tree);
        let mut pending: Vec<BatchEdit> = Vec::new();
        for (i, e) in edits.iter().enumerate() {
            // Resolve against the sequential state (the batched tree is
            // identical up to value writes still pending, which cannot
            // change vertex ids, child positions or text-child counts).
            let Some(b) = resolve_edit(&seq, e) else { continue };
            apply_resolved(&mut seq, &b);
            pending.push(b);
            if !cuts[i] {
                continue;
            }
            let before = bat.report().violations;
            let diff = bat
                .apply_batch(&std::mem::take(&mut pending))
                .expect("every request was resolved applicable");
            let after = bat.report().violations;
            prop_assert_eq!(
                &after, &seq.report().violations,
                "batched report diverged at boundary {} (edit={:?})", i, e
            );
            let mut m = counts(&before);
            for r in &diff.raised {
                *m.entry(format!("{r:?}")).or_insert(0) += 1;
            }
            for c in &diff.cleared {
                *m.entry(format!("{c:?}")).or_insert(0) -= 1;
            }
            m.retain(|_, n| *n != 0);
            prop_assert_eq!(
                &m, &counts(&after),
                "batch diff does not reconcile at boundary {} (diff={:?})", i, diff
            );
        }
        if !pending.is_empty() {
            bat.apply_batch(&pending).expect("trailing batch applies");
        }
        prop_assert_eq!(
            &bat.report().violations,
            &seq.report().violations,
            "final batched report diverged from sequential"
        );
        prop_assert_eq!(
            &bat.report().violations,
            &v.validate(bat.tree()).violations,
            "final batched report diverged from scratch"
        );
    }
}

/// Deleting a keyed vertex and reinserting an equivalent one in the same
/// batch: the delete retracts the old key occurrence and the insert
/// announces the new vertex, all within one propagation pass — the report
/// must match sequential application and a from-scratch validation, and
/// the reused key value must not be double-counted.
#[test]
fn delete_then_reinsert_in_one_batch_matches_sequential() {
    let sigma = vec![
        Constraint::Key {
            tau: "t0".into(),
            fields: vec![Field::attr("id")],
        },
        Constraint::FkToId {
            tau: "t1".into(),
            attr: "a0".into(),
            target: "t0".into(),
        },
    ];
    let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, sigma);
    let opts = Options {
        strict_attributes: false,
        threads: 1,
    };
    let v = Validator::with_matcher(&dtdc, MatcherKind::Dfa, opts);
    // db > t0[id=v1], t1[a0=v1]: the t1 references the t0's ID.
    let recipes: Vec<NodeRecipe> = vec![
        ((0, Some(1), None, None), (vec![], vec![], vec![])),
        ((1, Some(2), Some(1), None), (vec![], vec![], vec![])),
    ];
    let tree = build_tree(&recipes);
    let mut seq = LiveValidator::new(&v, tree.clone());
    let mut bat = LiveValidator::new(&v, tree);
    assert!(seq.report().is_valid(), "fixture starts valid");

    // Delete the referenced t0, then reinsert a fresh t0 carrying the
    // same ID value — in one batch the dangling reference never shows.
    let t0 = seq
        .tree()
        .node_ids()
        .find(|&x| seq.tree().label(x).as_str() == "t0")
        .expect("fixture has a t0");
    let replacement: NodeRecipe = ((0, Some(1), None, None), (vec![], vec![], vec![]));
    let batch = vec![
        BatchEdit::DeleteSubtree { node: t0 },
        BatchEdit::InsertSubtree {
            parent: seq.tree().root(),
            position: 0,
            fragment: build_fragment(&replacement),
        },
    ];
    for b in &batch {
        apply_resolved(&mut seq, b);
    }
    let diff = bat.apply_batch(&batch).expect("batch applies");
    assert_eq!(
        bat.report().violations,
        seq.report().violations,
        "batched delete+reinsert diverged from sequential"
    );
    assert_eq!(
        bat.report().violations,
        v.validate(bat.tree()).violations,
        "batched delete+reinsert diverged from scratch"
    );
    assert!(
        bat.report().is_valid(),
        "the reinserted key repairs the doc"
    );
    // Net effect of the batch on an initially-valid document: nothing
    // raised, nothing cleared — the transient dangling reference from the
    // delete is cancelled by the reinsert inside the same batch.
    assert!(
        diff.raised.is_empty() && diff.cleared.is_empty(),
        "expected a net-empty diff, got {diff:?}"
    );
}
