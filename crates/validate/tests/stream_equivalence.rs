//! Property test: streaming validation is report-equivalent to the tree
//! engine — **byte-identical** violation sequences, at every thread
//! count, strict and lenient, on random Σ and random documents.
//!
//! Documents are generated as trees (reusing the engine-equivalence
//! recipe), serialized together with the structure's DTD as an internal
//! subset (so set-valued attributes re-tokenize on parse), and then fed
//! to both paths from the same source text:
//!
//! ```text
//!   src ─ parse_document ─▶ DataTree ─ validate ──▶ report A
//!   src ─ parse_events ──▶ Event stream ─ validate_stream ─▶ report B
//! ```
//!
//! requiring `A == B` exactly.

use proptest::prelude::*;
use xic_constraints::{Constraint, DtdC, DtdStructure, Field, Language};
use xic_model::{AttrValue, DataTree, TreeBuilder};
use xic_validate::{MatcherKind, Options, Validator, Violation};
use xic_xml::{parse_document, serialize_document, serialize_dtd};

/// Same universe as the engine-equivalence test: three element types with
/// an ID attribute, two single attributes, two set-valued attributes, and
/// two sub-element labels.
fn test_structure() -> DtdStructure {
    let mut b = DtdStructure::builder("db").elem("db", "(t0 + t1 + t2)*");
    for t in ["t0", "t1", "t2"] {
        b = b
            .elem(t, "(e0 + e1 + S)*")
            .id_attr(t, "id")
            .attr(t, "a0", "S")
            .attr(t, "a1", "S")
            .idrefs_attr(t, "r0")
            .attr(t, "r1", "S*");
    }
    b.elem("e0", "S")
        .elem("e1", "S")
        .build()
        .expect("test structure is well-formed")
}

fn tau() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("t0"), Just("t1"), Just("t2")]
}

fn set_attr() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("r0"), Just("r1")]
}

fn single_attr() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("a0"), Just("a1"), Just("id")]
}

fn field() -> BoxedStrategy<Field> {
    prop_oneof![
        single_attr().prop_map(Field::attr),
        prop_oneof![Just("e0"), Just("e1")].prop_map(Field::sub),
    ]
}

fn constraint() -> BoxedStrategy<Constraint> {
    prop_oneof![
        (tau(), prop::collection::vec(field(), 1..3)).prop_map(|(t, fs)| Constraint::Key {
            tau: t.into(),
            fields: fs,
        }),
        (
            tau(),
            tau(),
            prop::collection::vec((field(), field()), 1..3)
        )
            .prop_map(|(t, u, pairs)| {
                let (xs, ys): (Vec<Field>, Vec<Field>) = pairs.into_iter().unzip();
                Constraint::ForeignKey {
                    tau: t.into(),
                    fields: xs,
                    target: u.into(),
                    target_fields: ys,
                }
            }),
        (tau(), set_attr(), tau(), field()).prop_map(|(t, a, u, f)| {
            Constraint::SetForeignKey {
                tau: t.into(),
                attr: a.into(),
                target: u.into(),
                target_field: f,
            }
        }),
        (tau(), field(), set_attr(), tau(), field(), set_attr()).prop_map(
            |(t, k, a, u, tk, ta)| Constraint::InverseU {
                tau: t.into(),
                key: k,
                attr: a.into(),
                target: u.into(),
                target_key: tk,
                target_attr: ta.into(),
            }
        ),
        tau().prop_map(|t| Constraint::Id { tau: t.into() }),
        (tau(), single_attr(), tau()).prop_map(|(t, a, u)| Constraint::FkToId {
            tau: t.into(),
            attr: a.into(),
            target: u.into(),
        }),
        (tau(), set_attr(), tau()).prop_map(|(t, a, u)| Constraint::SetFkToId {
            tau: t.into(),
            attr: a.into(),
            target: u.into(),
        }),
        (tau(), set_attr(), tau(), set_attr()).prop_map(|(t, a, u, ta)| {
            Constraint::InverseId {
                tau: t.into(),
                attr: a.into(),
                target: u.into(),
                target_attr: ta.into(),
            }
        }),
    ]
}

/// One random element: `((type, id, a0, a1), (r0, r1, sub-elements))`,
/// all values drawn from a 6-value pool so collisions are common.
type NodeRecipe = (
    (u8, Option<u8>, Option<u8>, Option<u8>),
    (Vec<u8>, Vec<u8>, Vec<(u8, u8)>),
);

fn node_recipe() -> BoxedStrategy<NodeRecipe> {
    let head = (
        0u8..3,
        prop::option::of(0u8..6),
        prop::option::of(0u8..6),
        prop::option::of(0u8..6),
    );
    let tail = (
        prop::collection::vec(0u8..6, 0..3),
        prop::collection::vec(0u8..6, 0..3),
        prop::collection::vec((0u8..2, 0u8..6), 0..4),
    );
    (head, tail).boxed()
}

fn val(v: u8) -> String {
    format!("v{v}")
}

fn build_tree(recipes: &[NodeRecipe]) -> DataTree {
    let mut b = TreeBuilder::new();
    let db = b.node("db");
    for ((ty, id, a0, a1), (r0, r1, subs)) in recipes {
        let p = b.child_node(db, format!("t{ty}")).unwrap();
        if let Some(v) = id {
            b.attr(p, "id", AttrValue::single(val(*v))).unwrap();
        }
        if let Some(v) = a0 {
            b.attr(p, "a0", AttrValue::single(val(*v))).unwrap();
        }
        if let Some(v) = a1 {
            b.attr(p, "a1", AttrValue::single(val(*v))).unwrap();
        }
        b.attr(p, "r0", AttrValue::set(r0.iter().map(|&v| val(v))))
            .unwrap();
        b.attr(p, "r1", AttrValue::set(r1.iter().map(|&v| val(v))))
            .unwrap();
        for (w, tv) in subs {
            b.leaf(p, format!("e{w}"), val(*tv)).unwrap();
        }
    }
    b.finish(db).unwrap()
}

/// Serializes `tree` with `s`'s DTD as an internal subset, so both parse
/// paths see the same set-splitting rules the tree was built with.
fn to_source(s: &DtdStructure, tree: &DataTree) -> String {
    format!(
        "<!DOCTYPE db [\n{}]>\n{}",
        serialize_dtd(s),
        serialize_document(tree)
    )
}

/// Both engines on the same source text, all matcher kinds × strictness ×
/// thread counts; reports must be byte-identical.
fn assert_equivalent(dtdc: &DtdC, src: &str) -> Result<(), TestCaseError> {
    let tree = parse_document(src)
        .expect("serialized document parses")
        .tree;
    for strict in [true, false] {
        for threads in [1usize, 2, 4] {
            let opts = Options {
                strict_attributes: strict,
                threads,
            };
            let v = Validator::with_matcher(dtdc, MatcherKind::Dfa, opts);
            let want = v.validate(&tree).violations;
            let got = v.validate_stream(src).expect("stream parses").violations;
            prop_assert_eq!(
                &want,
                &got,
                "strict={} threads={}\n{}",
                strict,
                threads,
                src
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn stream_report_is_byte_identical_to_tree_report(
        sigma in prop::collection::vec(constraint(), 0..8),
        nodes in prop::collection::vec(node_recipe(), 0..25),
    ) {
        let s = test_structure();
        let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, sigma);
        let src = to_source(&s, &build_tree(&nodes));
        assert_equivalent(&dtdc, &src)?;
    }
}

/// Structural violations at every clause, via a document whose own DTD
/// disagrees with the validator's structure: undeclared types, content
/// model failures, undeclared/missing attributes, and a `NotSingleton`
/// (the document DTD tokenizes `a0` while the validator requires a
/// singleton).
#[test]
fn deterministic_structural_divergences() {
    let s = test_structure();
    let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, vec![]);
    let src = r#"<!DOCTYPE db [
  <!ELEMENT db (t0|bogus)*>
  <!ELEMENT t0 (#PCDATA)>
  <!ELEMENT bogus EMPTY>
  <!ATTLIST t0 a0 NMTOKENS #IMPLIED x CDATA #IMPLIED>
]>
<db>
  <t0 a0="v1 v2" x="y">text<e0>v</e0></t0>
  <bogus/>
  <t0 id="k"><e1>v1</e1><e1>v2</e1></t0>
</db>"#;
    let tree = parse_document(src).unwrap().tree;
    for threads in [1usize, 2, 4] {
        for strict in [true, false] {
            let opts = Options {
                strict_attributes: strict,
                threads,
            };
            let v = Validator::with_matcher(&dtdc, MatcherKind::Dfa, opts);
            let want = v.validate(&tree).violations;
            let got = v.validate_stream(src).unwrap().violations;
            assert_eq!(want, got, "strict={strict} threads={threads}");
            // The case actually exercises the interesting clauses.
            if strict {
                for probe in [
                    want.iter()
                        .any(|x| matches!(x, Violation::NotSingleton { .. })),
                    want.iter()
                        .any(|x| matches!(x, Violation::UnknownElementType { .. })),
                    want.iter()
                        .any(|x| matches!(x, Violation::UndeclaredAttribute { .. })),
                    want.iter()
                        .any(|x| matches!(x, Violation::MissingAttribute { .. })),
                ] {
                    assert!(probe, "expected violation kind missing: {want:?}");
                }
            }
        }
    }
    let _ = s;
}

/// Large violation-dense document: chunked constraint scans plus the
/// pipelined event loop, merged back in document order.
#[test]
fn pipelined_large_document_matches_sequential() {
    let s = DtdStructure::builder("db")
        .elem("db", "item*")
        .elem("item", "EMPTY")
        .attr("item", "k", "S")
        .attr("item", "r", "S*")
        .build()
        .unwrap();
    let sigma = vec![
        Constraint::unary_key("item", "k"),
        Constraint::set_fk("item", "r", "item", "k"),
    ];
    let d = DtdC::new_unchecked(s.clone(), Language::Lu, sigma);
    let mut b = TreeBuilder::new();
    let db = b.node("db");
    let n = 10_000u32;
    for i in 0..n {
        let it = b.child_node(db, "item").unwrap();
        let k = if i % 7 == 0 {
            "dup".to_string()
        } else {
            format!("k{i}")
        };
        b.attr(it, "k", AttrValue::single(k)).unwrap();
        let mut refs = vec![format!("k{}", (i + 1) % n)];
        if i % 5 == 0 {
            refs.push("missing".to_string());
        }
        b.attr(it, "r", AttrValue::set(refs)).unwrap();
    }
    let t = b.finish(db).unwrap();
    let src = to_source(&s, &t);
    let seq = Validator::with_matcher(&d, MatcherKind::Dfa, Options::default())
        .validate_stream(&src)
        .unwrap();
    let tree_report =
        Validator::with_matcher(&d, MatcherKind::Dfa, Options::default()).validate(&t);
    assert_eq!(tree_report.violations, seq.violations);
    let par = Validator::with_matcher(&d, MatcherKind::Dfa, Options::default().with_threads(4))
        .validate_stream(&src)
        .unwrap();
    assert_eq!(seq.violations, par.violations);
    assert!(
        seq.violations.len() > 2_000,
        "expected a violation-dense document, got {}",
        seq.violations.len()
    );
}
