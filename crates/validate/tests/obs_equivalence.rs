//! Property test: observability is read-only — attaching a
//! [`MetricsCollector`] to a validator never changes the violation
//! report. Both engines (tree and streaming), every constraint kind,
//! sequential and parallel, on random Σ and random documents; the
//! instrumented and plain reports must be **byte-identical**.
//!
//! This is the invariant that makes `--metrics` safe to reach for in
//! production: spans and counters only observe the run, they never
//! steer it.

use std::sync::Arc;

use proptest::prelude::*;
use xic_constraints::{Constraint, DtdC, DtdStructure, Field, Language};
use xic_model::{AttrValue, DataTree, TreeBuilder};
use xic_obs::{Fanout, MetricsCollector, Obs, TraceCollector};
use xic_validate::{MatcherKind, Options, Validator};
use xic_xml::{parse_document, serialize_document, serialize_dtd};

/// Same universe as the stream-equivalence test: three element types with
/// an ID attribute, two single attributes, two set-valued attributes, and
/// two sub-element labels.
fn test_structure() -> DtdStructure {
    let mut b = DtdStructure::builder("db").elem("db", "(t0 + t1 + t2)*");
    for t in ["t0", "t1", "t2"] {
        b = b
            .elem(t, "(e0 + e1 + S)*")
            .id_attr(t, "id")
            .attr(t, "a0", "S")
            .attr(t, "a1", "S")
            .idrefs_attr(t, "r0")
            .attr(t, "r1", "S*");
    }
    b.elem("e0", "S")
        .elem("e1", "S")
        .build()
        .expect("test structure is well-formed")
}

fn tau() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("t0"), Just("t1"), Just("t2")]
}

fn set_attr() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("r0"), Just("r1")]
}

fn single_attr() -> BoxedStrategy<&'static str> {
    prop_oneof![Just("a0"), Just("a1"), Just("id")]
}

fn field() -> BoxedStrategy<Field> {
    prop_oneof![
        single_attr().prop_map(Field::attr),
        prop_oneof![Just("e0"), Just("e1")].prop_map(Field::sub),
    ]
}

fn constraint() -> BoxedStrategy<Constraint> {
    prop_oneof![
        (tau(), prop::collection::vec(field(), 1..3)).prop_map(|(t, fs)| Constraint::Key {
            tau: t.into(),
            fields: fs,
        }),
        (
            tau(),
            tau(),
            prop::collection::vec((field(), field()), 1..3)
        )
            .prop_map(|(t, u, pairs)| {
                let (xs, ys): (Vec<Field>, Vec<Field>) = pairs.into_iter().unzip();
                Constraint::ForeignKey {
                    tau: t.into(),
                    fields: xs,
                    target: u.into(),
                    target_fields: ys,
                }
            }),
        (tau(), set_attr(), tau(), field()).prop_map(|(t, a, u, f)| {
            Constraint::SetForeignKey {
                tau: t.into(),
                attr: a.into(),
                target: u.into(),
                target_field: f,
            }
        }),
        (tau(), field(), set_attr(), tau(), field(), set_attr()).prop_map(
            |(t, k, a, u, tk, ta)| Constraint::InverseU {
                tau: t.into(),
                key: k,
                attr: a.into(),
                target: u.into(),
                target_key: tk,
                target_attr: ta.into(),
            }
        ),
        tau().prop_map(|t| Constraint::Id { tau: t.into() }),
        (tau(), single_attr(), tau()).prop_map(|(t, a, u)| Constraint::FkToId {
            tau: t.into(),
            attr: a.into(),
            target: u.into(),
        }),
        (tau(), set_attr(), tau()).prop_map(|(t, a, u)| Constraint::SetFkToId {
            tau: t.into(),
            attr: a.into(),
            target: u.into(),
        }),
        (tau(), set_attr(), tau(), set_attr()).prop_map(|(t, a, u, ta)| {
            Constraint::InverseId {
                tau: t.into(),
                attr: a.into(),
                target: u.into(),
                target_attr: ta.into(),
            }
        }),
    ]
}

/// One random element: `((type, id, a0, a1), (r0, r1, sub-elements))`,
/// all values drawn from a 6-value pool so collisions are common.
type NodeRecipe = (
    (u8, Option<u8>, Option<u8>, Option<u8>),
    (Vec<u8>, Vec<u8>, Vec<(u8, u8)>),
);

fn node_recipe() -> BoxedStrategy<NodeRecipe> {
    let head = (
        0u8..3,
        prop::option::of(0u8..6),
        prop::option::of(0u8..6),
        prop::option::of(0u8..6),
    );
    let tail = (
        prop::collection::vec(0u8..6, 0..3),
        prop::collection::vec(0u8..6, 0..3),
        prop::collection::vec((0u8..2, 0u8..6), 0..4),
    );
    (head, tail).boxed()
}

fn val(v: u8) -> String {
    format!("v{v}")
}

fn build_tree(recipes: &[NodeRecipe]) -> DataTree {
    let mut b = TreeBuilder::new();
    let db = b.node("db");
    for ((ty, id, a0, a1), (r0, r1, subs)) in recipes {
        let p = b.child_node(db, format!("t{ty}")).unwrap();
        if let Some(v) = id {
            b.attr(p, "id", AttrValue::single(val(*v))).unwrap();
        }
        if let Some(v) = a0 {
            b.attr(p, "a0", AttrValue::single(val(*v))).unwrap();
        }
        if let Some(v) = a1 {
            b.attr(p, "a1", AttrValue::single(val(*v))).unwrap();
        }
        b.attr(p, "r0", AttrValue::set(r0.iter().map(|&v| val(v))))
            .unwrap();
        b.attr(p, "r1", AttrValue::set(r1.iter().map(|&v| val(v))))
            .unwrap();
        for (w, tv) in subs {
            b.leaf(p, format!("e{w}"), val(*tv)).unwrap();
        }
    }
    b.finish(db).unwrap()
}

/// Serializes `tree` with `s`'s DTD as an internal subset, so both parse
/// paths see the same set-splitting rules the tree was built with.
fn to_source(s: &DtdStructure, tree: &DataTree) -> String {
    format!(
        "<!DOCTYPE db [\n{}]>\n{}",
        serialize_dtd(s),
        serialize_document(tree)
    )
}

/// Plain vs instrumented validator on the same input, tree and streaming
/// engines, sequential and parallel: violations must be byte-identical,
/// and only the instrumented run may carry a metrics snapshot.
fn assert_observation_is_inert(dtdc: &DtdC, src: &str) -> Result<(), TestCaseError> {
    let tree = parse_document(src)
        .expect("serialized document parses")
        .tree;
    for threads in [1usize, 4] {
        let opts = Options::default().with_threads(threads);
        let plain = Validator::with_matcher(dtdc, MatcherKind::Dfa, opts);
        let collector = Arc::new(MetricsCollector::new());
        let observed = Validator::with_matcher(dtdc, MatcherKind::Dfa, opts)
            .with_obs(Obs::new(collector.clone()));

        let want_tree = plain.validate(&tree);
        let got_tree = observed.validate(&tree);
        prop_assert_eq!(
            &want_tree.violations,
            &got_tree.violations,
            "tree engine diverged under observation (threads={})\n{}",
            threads,
            src
        );
        prop_assert!(want_tree.metrics.is_none());
        let m = got_tree.metrics.expect("collector attached => snapshot");
        prop_assert_eq!(m.counter("nodes"), tree.len() as u64);
        prop_assert_eq!(m.counter("violations"), got_tree.violations.len() as u64);

        let want_stream = plain.validate_stream(src).expect("stream parses");
        let got_stream = observed.validate_stream(src).expect("stream parses");
        prop_assert_eq!(
            &want_stream.violations,
            &got_stream.violations,
            "stream engine diverged under observation (threads={})\n{}",
            threads,
            src
        );
        prop_assert!(want_stream.metrics.is_none());
        prop_assert!(got_stream.metrics.is_some());

        // The full telemetry stack — histogram-recording metrics AND the
        // trace-event ring under one Fanout — is just as inert.
        let metrics = Arc::new(MetricsCollector::with_histograms());
        let ring = Arc::new(TraceCollector::new());
        let full = Validator::with_matcher(dtdc, MatcherKind::Dfa, opts).with_obs(Obs::new(
            Arc::new(Fanout::new(vec![metrics.clone(), ring.clone()])),
        ));
        let got_full_tree = full.validate(&tree);
        prop_assert_eq!(
            &want_tree.violations,
            &got_full_tree.violations,
            "tree engine diverged under histogram+trace collectors (threads={})\n{}",
            threads,
            src
        );
        let got_full_stream = full.validate_stream(src).expect("stream parses");
        prop_assert_eq!(
            &want_stream.violations,
            &got_full_stream.violations,
            "stream engine diverged under histogram+trace collectors (threads={})\n{}",
            threads,
            src
        );
        // And they actually observed: the check family recorded a latency
        // distribution, the ring holds raw span events.
        let m = metrics.snapshot();
        prop_assert!(m.hist("check").is_some(), "check histogram missing");
        prop_assert!(m.hist("check").unwrap().count >= 2, "two runs recorded");
        prop_assert!(!ring.events().is_empty(), "trace ring stayed empty");
        prop_assert!(ring.events().iter().any(|e| e.name == "check"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn attaching_a_collector_never_changes_the_report(
        sigma in prop::collection::vec(constraint(), 0..8),
        nodes in prop::collection::vec(node_recipe(), 0..25),
    ) {
        let s = test_structure();
        let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, sigma);
        let src = to_source(&s, &build_tree(&nodes));
        assert_observation_is_inert(&dtdc, &src)?;
    }
}
