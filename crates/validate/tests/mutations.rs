//! Mutation testing for the validator: start from valid generated
//! documents, apply targeted mutations, and check that exactly the right
//! violation kinds appear (and that un-mutated documents stay valid).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xic_constraints::examples::book_dtdc;
use xic_constraints::DtdC;
use xic_model::{AttrValue, Child, DataTree, NodeId, TreeBuilder};
use xic_validate::{validate, Violation};

/// A valid book document with `n` sections (unique sids) and `k` refs.
fn book(n_sections: usize, n_refs: usize) -> DataTree {
    let mut b = TreeBuilder::new();
    let book = b.node("book");
    let entry = b.child_node(book, "entry").unwrap();
    b.attr(entry, "isbn", AttrValue::single("isbn-0")).unwrap();
    b.leaf(entry, "title", "T").unwrap();
    b.leaf(entry, "publisher", "P").unwrap();
    b.leaf(book, "author", "A").unwrap();
    for i in 0..n_sections {
        let s = b.child_node(book, "section").unwrap();
        b.attr(s, "sid", AttrValue::single(format!("s{i}")))
            .unwrap();
        b.leaf(s, "title", format!("S{i}")).unwrap();
    }
    let r = b.child_node(book, "ref").unwrap();
    let _ = n_refs;
    b.attr(r, "to", AttrValue::set(["isbn-0"])).unwrap();
    b.finish(book).unwrap()
}

/// Rebuilds `tree` applying `edit` to each node's attributes.
fn rebuild_with<F>(tree: &DataTree, mut edit: F) -> DataTree
where
    F: FnMut(NodeId, &str, &AttrValue) -> AttrValue,
{
    let mut b = TreeBuilder::new();
    let mut map = std::collections::HashMap::new();
    for id in tree.preorder().collect::<Vec<_>>() {
        let n = b.node(tree.label(id).clone());
        map.insert(id, n);
        if let Some(p) = tree.node(id).parent() {
            b.child(map[&p], n).unwrap();
        }
        for (l, v) in tree.node(id).attrs() {
            b.attr(n, l.clone(), edit(id, l.as_str(), v)).unwrap();
        }
        for c in &tree.node(id).children {
            if let Child::Text(t) = c {
                b.text(n, t.clone()).unwrap();
            }
        }
    }
    b.finish(map[&tree.root()]).unwrap()
}

fn kinds(dtdc: &DtdC, tree: &DataTree) -> Vec<&'static str> {
    validate(tree, dtdc)
        .violations
        .iter()
        .map(|v| match v {
            Violation::RootLabel { .. } => "root",
            Violation::UnknownElementType { .. } => "unknown",
            Violation::ContentModel { .. } => "content",
            Violation::UndeclaredAttribute { .. } => "undeclared-attr",
            Violation::MissingAttribute { .. } => "missing-attr",
            Violation::NotSingleton { .. } => "not-singleton",
            Violation::Key { .. } => "key",
            Violation::ForeignKey { .. } => "fk",
            Violation::MissingField { .. } => "missing-field",
            Violation::DuplicateId { .. } => "dup-id",
            Violation::Inverse { .. } => "inverse",
        })
        .collect()
}

#[test]
fn baseline_is_valid() {
    let d = book_dtdc();
    for n in [0usize, 1, 5] {
        let t = book(n, 1);
        assert!(validate(&t, &d).is_valid(), "n={n}");
    }
}

#[test]
fn sid_collision_yields_exactly_key_violations() {
    let d = book_dtdc();
    let t = book(4, 1);
    let mutated = rebuild_with(&t, |_, l, v| {
        if l == "sid" {
            AttrValue::single("same")
        } else {
            v.clone()
        }
    });
    let ks = kinds(&d, &mutated);
    assert!(ks.iter().all(|k| *k == "key"), "{ks:?}");
    // 4 sections sharing one sid → 3 collisions against the first.
    assert_eq!(ks.len(), 3);
}

#[test]
fn dangling_ref_yields_exactly_fk_violations() {
    let d = book_dtdc();
    let t = book(2, 1);
    let mutated = rebuild_with(&t, |_, l, v| {
        if l == "to" {
            AttrValue::set(["isbn-0", "ghost-1", "ghost-2"])
        } else {
            v.clone()
        }
    });
    let ks = kinds(&d, &mutated);
    assert!(ks.iter().all(|k| *k == "fk"), "{ks:?}");
    assert_eq!(ks.len(), 2);
}

#[test]
fn multi_valued_isbn_is_structural_not_semantic() {
    let d = book_dtdc();
    let t = book(1, 1);
    let mutated = rebuild_with(&t, |_, l, v| {
        if l == "isbn" {
            AttrValue::set(["a", "b"])
        } else {
            v.clone()
        }
    });
    let ks = kinds(&d, &mutated);
    assert!(ks.contains(&"not-singleton"), "{ks:?}");
    // The ref now dangles too (no single isbn value matches).
    assert!(ks.contains(&"fk"), "{ks:?}");
}

#[test]
fn random_attribute_scrambles_never_pass_silently() {
    // Scramble random attribute values; whenever the document changed in a
    // constraint-relevant way, the validator must flag something — and
    // must never panic.
    let d = book_dtdc();
    let mut rng = SmallRng::seed_from_u64(77);
    for _ in 0..200 {
        let t = book(rng.gen_range(0..4), 1);
        let break_ref = rng.gen_bool(0.5);
        let mutated = rebuild_with(&t, |_, l, v| {
            if l == "to" && break_ref {
                AttrValue::set(["nonsense"])
            } else {
                v.clone()
            }
        });
        let report = validate(&mutated, &d);
        if break_ref {
            assert!(!report.is_valid());
        } else {
            assert!(report.is_valid(), "{report}");
        }
    }
}

#[test]
fn structural_mutations_detected() {
    let d = book_dtdc();
    // Drop the entry element: content model violation at book.
    let mut b = TreeBuilder::new();
    let book = b.node("book");
    let r = b.child_node(book, "ref").unwrap();
    b.attr(r, "to", AttrValue::set(Vec::<String>::new()))
        .unwrap();
    let t = b.finish(book).unwrap();
    let ks = kinds(&d, &t);
    assert!(ks.contains(&"content"), "{ks:?}");

    // Wrong root.
    let mut b = TreeBuilder::new();
    let e = b.node("entry");
    b.attr(e, "isbn", AttrValue::single("x")).unwrap();
    b.leaf(e, "title", "T").unwrap();
    b.leaf(e, "publisher", "P").unwrap();
    let t = b.finish(e).unwrap();
    assert!(kinds(&d, &t).contains(&"root"));

    // Unknown element.
    let mut b = TreeBuilder::new();
    let book = b.node("book");
    b.child_node(book, "martian").unwrap();
    let t = b.finish(book).unwrap();
    let ks = kinds(&d, &t);
    assert!(ks.contains(&"unknown"), "{ks:?}");
}
