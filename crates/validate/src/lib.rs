//! # xic-validate — validity of data trees against a `DTD^C`
//!
//! Implements Definition 2.4 of Fan & Siméon (PODS 2000): a data tree `G`
//! is **valid** with respect to `D = ((E, P, R, kind, r), Σ)` iff
//!
//! 1. the root is labelled `r`;
//! 2. every vertex's label is a declared element type, and its child word
//!    (strings ↦ `S`, element children ↦ their labels) belongs to the
//!    regular language of its type's content model;
//! 3. `att(v, l)` is defined iff `R(μ(v), l)` is defined, and single-valued
//!    attributes hold singleton sets;
//! 4. `G ⊨ Σ` — every basic constraint of `Σ` (in any of `L`, `L_u`,
//!    `L_id`) is satisfied.
//!
//! The entry points are [`validate`] (one-shot) and [`Validator`]
//! (compile-once / validate-many: content models are compiled to DFAs per
//! element type). Every failure is reported as a structured [`Violation`];
//! [`Report::is_valid`] is emptiness of the violation list.
//!
//! For ablation E10b, [`Validator::with_matcher`] selects the content-model
//! matcher: compiled [`MatcherKind::Dfa`] (default), on-the-fly
//! [`MatcherKind::Nfa`] simulation, or [`MatcherKind::Derivative`]
//! (Brzozowski) as the naive baseline.
//!
//! ## The compiled constraint engine
//!
//! [`Validator`] compiles Σ into a validation *plan*: the set of
//! `(element type, field)` columns any constraint reads. Per document,
//! one extraction pass builds interned columnar indexes shared by every
//! key, foreign-key, ID, and inverse check, instead of re-walking the tree
//! per constraint. [`Options::threads`] additionally fans the checks out
//! across worker threads (across constraints, and across chunks of large
//! extents) behind the default-on `parallel` cargo feature; reports are
//! byte-identical to the sequential engine's regardless of thread count.
//! [`check_constraint`] remains the naive per-constraint ground truth.
//!
//! ## Streaming validation
//!
//! [`Validator::validate_stream`] checks a document straight from its
//! source text over [`xic_xml::parse_events`], never materializing a
//! [`DataTree`]: content models run as incremental automata with O(depth)
//! live state, attribute clauses fire as start tags complete, and the
//! compiled plan's columns fill on the fly, feeding the same constraint
//! engine. Reports are byte-identical to the tree path at any thread
//! count; with `threads > 1` lexing overlaps checking through a bounded
//! channel.
//!
//! ## Incremental revalidation
//!
//! [`LiveValidator`] owns a document and keeps its validation state alive
//! across edits: typed [`xic_model::Edit`] deltas update refcounted
//! key/reference indexes and a per-vertex structural map instead of
//! re-running the whole pipeline, and each edit returns the violations it
//! raised and cleared as a [`ReportDiff`]. [`LiveValidator::report`] stays
//! byte-identical to [`Validator::validate`] on the current tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraints;
mod incremental;
mod par;
mod plan;
mod report;
mod stream;
mod structure;

pub use constraints::check_constraint;
pub use incremental::{
    BatchEdit, BatchError, EditOutcome, LiveState, LiveValidator, ReportDiff, StateError,
};
pub use report::{Report, Violation};
pub use structure::{MatcherKind, Options, Validator};

use xic_constraints::DtdC;
use xic_model::DataTree;

/// One-shot validation of `tree` against `dtdc` with default options.
///
/// ```
/// use xic_constraints::examples::book_dtdc;
/// use xic_model::{TreeBuilder, AttrValue};
/// use xic_validate::validate;
///
/// let d = book_dtdc();
/// let mut b = TreeBuilder::new();
/// let book = b.node("book");
/// let entry = b.child_node(book, "entry").unwrap();
/// b.attr(entry, "isbn", AttrValue::single("1-55860")).unwrap();
/// b.leaf(entry, "title", "Data on the Web").unwrap();
/// b.leaf(entry, "publisher", "MK").unwrap();
/// let r = b.child_node(book, "ref").unwrap();
/// b.attr(r, "to", AttrValue::set(["1-55860"])).unwrap();
/// let tree = b.finish(book).unwrap();
///
/// let report = validate(&tree, &d);
/// assert!(report.is_valid(), "{report}");
/// ```
pub fn validate(tree: &DataTree, dtdc: &DtdC) -> Report {
    Validator::new(dtdc).validate(tree)
}
