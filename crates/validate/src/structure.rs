//! The structural half of Definition 2.4 and the compile-once validator.

use std::collections::HashMap;

use xic_constraints::{AttrType, DtdC};
use xic_model::{Child, DataTree, ExtIndex, Name, NodeId};
use xic_obs::Obs;
use xic_regex::{ContentModel, Dfa, Nfa, NfaRun, Symbol};

use crate::plan::{check_all_planned, Plan};
use crate::report::{Report, Violation};

/// Which content-model matcher the validator uses (ablation E10b).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MatcherKind {
    /// Subset-construction DFA, compiled once per element type (default).
    #[default]
    Dfa,
    /// On-the-fly Glushkov NFA simulation.
    Nfa,
    /// Brzozowski derivatives computed per word (naive baseline).
    Derivative,
}

/// Validation options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Enforce Definition 2.4's "att(v, l) defined **iff** R(μ(v), l)
    /// defined" in both directions. When `false`, declared-but-absent
    /// attributes are tolerated (XML's `#IMPLIED` convention); undeclared
    /// attributes are always rejected.
    pub strict_attributes: bool,
    /// Worker threads for constraint checking: `0` (default) resolves to
    /// the machine's available parallelism via
    /// [`std::thread::available_parallelism`], `1` runs the sequential
    /// engine — the semantic ground truth — and `n > 1` fans checks out
    /// across constraints and splits large extents. Every setting produces
    /// byte-identical reports, and small documents stay single-threaded
    /// regardless (see `MIN_NODES_PER_THREAD`). Without the `parallel`
    /// cargo feature (default-on), checking is always sequential.
    pub threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            strict_attributes: true,
            threads: 0,
        }
    }
}

impl Options {
    /// Options tolerating absent declared attributes (`#IMPLIED`-style).
    pub fn lenient() -> Self {
        Options {
            strict_attributes: false,
            ..Options::default()
        }
    }

    /// These options with the given constraint-checking thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

pub(crate) enum CompiledMatcher {
    Dfa(Dfa),
    Nfa(Nfa),
    Derivative(ContentModel),
}

/// In-flight state of one [`CompiledMatcher`] run (one per open element in
/// the streaming checker).
pub(crate) enum MatcherRun {
    /// Current DFA state; `None` is the dead state.
    Dfa(Option<usize>),
    /// Live Glushkov position set.
    Nfa(NfaRun),
    /// Current Brzozowski derivative of the content model.
    Derivative(ContentModel),
}

impl CompiledMatcher {
    fn matches(&self, word: &[Symbol]) -> bool {
        match self {
            CompiledMatcher::Dfa(d) => d.matches(word),
            CompiledMatcher::Nfa(n) => n.matches(word),
            CompiledMatcher::Derivative(m) => m.matches_derivative(word),
        }
    }

    /// Streaming interface: the run state before any child symbol.
    pub(crate) fn start(&self) -> MatcherRun {
        match self {
            CompiledMatcher::Dfa(d) => MatcherRun::Dfa(Some(d.start())),
            CompiledMatcher::Nfa(n) => MatcherRun::Nfa(n.start_run()),
            CompiledMatcher::Derivative(m) => MatcherRun::Derivative(m.clone()),
        }
    }

    /// Streaming interface: advances `run` by one child symbol.
    pub(crate) fn step(&self, run: &mut MatcherRun, sym: &Symbol) {
        match (self, run) {
            (CompiledMatcher::Dfa(d), MatcherRun::Dfa(state)) => {
                *state = state.and_then(|s| d.step(s, sym));
            }
            (CompiledMatcher::Nfa(n), MatcherRun::Nfa(r)) => n.step_run(r, sym),
            (CompiledMatcher::Derivative(_), MatcherRun::Derivative(m)) => {
                *m = m.derivative(sym);
            }
            _ => unreachable!("matcher run paired with a different matcher"),
        }
    }

    /// Streaming interface: acceptance of the word read so far.
    pub(crate) fn accepts(&self, run: &MatcherRun) -> bool {
        match (self, run) {
            (CompiledMatcher::Dfa(d), MatcherRun::Dfa(state)) => {
                state.is_some_and(|s| d.is_accepting(s))
            }
            (CompiledMatcher::Nfa(n), MatcherRun::Nfa(r)) => n.run_accepts(r),
            (CompiledMatcher::Derivative(_), MatcherRun::Derivative(m)) => m.nullable(),
            _ => unreachable!("matcher run paired with a different matcher"),
        }
    }
}

/// Compile-once validator for a `DTD^C`.
///
/// Construction compiles every element type's content model (per the chosen
/// [`MatcherKind`]); [`Validator::validate`] then checks any number of data
/// trees against the same `DTD^C`.
pub struct Validator<'a> {
    pub(crate) dtdc: &'a DtdC,
    pub(crate) matchers: HashMap<Name, CompiledMatcher>,
    pub(crate) plan: Plan,
    pub(crate) options: Options,
    pub(crate) obs: Obs,
}

impl<'a> Validator<'a> {
    /// A validator with default options and the DFA matcher.
    pub fn new(dtdc: &'a DtdC) -> Self {
        Validator::with_matcher(dtdc, MatcherKind::default(), Options::default())
    }

    /// A validator with explicit matcher kind and options.
    pub fn with_matcher(dtdc: &'a DtdC, kind: MatcherKind, options: Options) -> Self {
        let s = dtdc.structure();
        let matchers = s
            .element_types()
            .map(|tau| {
                let m = s.content_model(tau).expect("declared element type");
                let compiled = match kind {
                    MatcherKind::Dfa => CompiledMatcher::Dfa(Dfa::from_model(m)),
                    MatcherKind::Nfa => CompiledMatcher::Nfa(Nfa::build(m)),
                    MatcherKind::Derivative => CompiledMatcher::Derivative(m.clone()),
                };
                (tau.clone(), compiled)
            })
            .collect();
        Validator {
            dtdc,
            matchers,
            plan: Plan::build(dtdc),
            options,
            obs: Obs::off(),
        }
    }

    /// Attaches an observability handle: every subsequent validation run
    /// (tree, streaming, or incremental through a [`LiveValidator`])
    /// records its phase spans and counters there, and reports embed a
    /// [`Metrics`](xic_obs::Metrics) snapshot when the collector
    /// aggregates one. Validation *results* are byte-identical with or
    /// without a collector (enforced by the `obs_equivalence` proptest).
    ///
    /// [`LiveValidator`]: crate::LiveValidator
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// This validator with an observability handle attached
    /// (builder-style [`Validator::set_obs`]).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The underlying `DTD^C`.
    pub fn dtdc(&self) -> &DtdC {
        self.dtdc
    }

    /// Number of `(element type, field)` columns the compiled plan
    /// extracts per document — a measure of how much extraction work Σ's
    /// constraints share.
    pub fn plan_columns(&self) -> usize {
        self.plan.column_count()
    }

    /// The constraint-checking thread count after resolving `threads == 0`
    /// to the machine's available parallelism (and clamping to `1` when
    /// the `parallel` feature is disabled).
    pub fn effective_threads(&self) -> usize {
        if !cfg!(feature = "parallel") {
            return 1;
        }
        match self.options.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }

    /// Validates one data tree: structural checks (Definition 2.4, clauses
    /// 1–3) followed by constraint satisfaction (`G ⊨ Σ`) on the compiled
    /// plan.
    pub fn validate(&self, tree: &DataTree) -> Report {
        let mut violations = Vec::new();
        {
            let _structure = self.obs.span("structure");
            self.check_structure(tree, &mut violations);
        }
        let idx = ExtIndex::build(tree);
        check_all_planned(
            tree,
            &idx,
            self.dtdc,
            &self.plan,
            self.effective_threads(),
            &self.obs,
            &mut violations,
        );
        self.record_doc_totals(tree, &violations);
        Report {
            violations,
            metrics: self.obs.snapshot(),
        }
    }

    /// Flushes the per-run document totals (enabled-collector path only;
    /// the disabled handle returns before touching the tree).
    fn record_doc_totals(&self, tree: &DataTree, violations: &[Violation]) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.add("nodes", tree.len() as u64);
        let attrs: usize = tree
            .node_ids()
            .map(|id| tree.node(id).attrs().count())
            .sum();
        self.obs.add("attrs", attrs as u64);
        self.obs.add("violations", violations.len() as u64);
    }

    /// Runs only the constraint half (`G ⊨ Σ`, clause 4 of Definition
    /// 2.4) on the compiled plan. This is the compiled counterpart of
    /// looping [`crate::check_constraint`] over `Σ` — same violations, same
    /// order — and the entry point E11 benchmarks.
    pub fn validate_constraints(&self, tree: &DataTree) -> Report {
        let mut violations = Vec::new();
        let idx = ExtIndex::build(tree);
        check_all_planned(
            tree,
            &idx,
            self.dtdc,
            &self.plan,
            self.effective_threads(),
            &self.obs,
            &mut violations,
        );
        Report {
            violations,
            metrics: self.obs.snapshot(),
        }
    }

    /// Runs only the structural half (clauses 1–3 of Definition 2.4).
    pub fn validate_structure(&self, tree: &DataTree) -> Report {
        let mut violations = Vec::new();
        let _structure = self.obs.span("structure");
        self.check_structure(tree, &mut violations);
        Report::from_violations(violations)
    }

    fn check_structure(&self, tree: &DataTree, out: &mut Vec<Violation>) {
        let root_label = tree.label(tree.root());
        if root_label != self.dtdc.structure().root() {
            out.push(Violation::RootLabel {
                expected: self.dtdc.structure().root().clone(),
                found: root_label.clone(),
            });
        }
        let mut word: Vec<Symbol> = Vec::new();
        for id in tree.node_ids() {
            self.check_structure_node(tree, id, &mut word, out);
        }
    }

    /// The per-vertex half of the structural check (content model against
    /// the vertex's own child word, plus attribute clauses). Shared by the
    /// whole-tree scan above and by incremental revalidation, which reruns
    /// it for exactly the vertices an edit touched. `word` is scratch
    /// space reused across calls.
    pub(crate) fn check_structure_node(
        &self,
        tree: &DataTree,
        id: NodeId,
        word: &mut Vec<Symbol>,
        out: &mut Vec<Violation>,
    ) {
        let s = self.dtdc.structure();
        let node = tree.node(id);
        let tau = &node.label;
        let Some(matcher) = self.matchers.get(tau) else {
            out.push(Violation::UnknownElementType {
                node: id,
                label: tau.clone(),
            });
            return;
        };
        // Child word.
        word.clear();
        for c in &node.children {
            word.push(match c {
                Child::Text(_) => Symbol::S,
                Child::Node(n) => Symbol::Elem(tree.label(*n).clone()),
            });
        }
        if !matcher.matches(word) {
            out.push(Violation::ContentModel {
                node: id,
                tau: tau.clone(),
                expected: s
                    .content_model(tau)
                    .map(ToString::to_string)
                    .unwrap_or_default(),
                found: word
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
        // Attributes: att(v, l) defined iff R(τ, l) defined.
        for (l, value) in node.attrs() {
            match s.attr_type(tau, l) {
                None => out.push(Violation::UndeclaredAttribute {
                    node: id,
                    attr: l.clone(),
                }),
                Some(AttrType::Single) => {
                    if !value.is_singleton() {
                        out.push(Violation::NotSingleton {
                            node: id,
                            attr: l.clone(),
                            len: value.len(),
                        });
                    }
                }
                Some(AttrType::SetValued) => {}
            }
        }
        if self.options.strict_attributes {
            for (l, _) in s.attributes(tau) {
                if node.attr(l).is_none() {
                    out.push(Violation::MissingAttribute {
                        node: id,
                        attr: l.clone(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::examples::{book_dtdc, book_structure};
    use xic_constraints::{DtdC, Language};
    use xic_model::{AttrValue, TreeBuilder};

    /// A fully valid book document (structure only; Σ handled elsewhere).
    fn valid_book() -> DataTree {
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        let entry = b.child_node(book, "entry").unwrap();
        b.attr(entry, "isbn", AttrValue::single("x1")).unwrap();
        b.leaf(entry, "title", "T").unwrap();
        b.leaf(entry, "publisher", "P").unwrap();
        b.leaf(book, "author", "A").unwrap();
        let s1 = b.child_node(book, "section").unwrap();
        b.attr(s1, "sid", AttrValue::single("s1")).unwrap();
        b.leaf(s1, "title", "Intro").unwrap();
        b.leaf(s1, "text", "...").unwrap();
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["x1"])).unwrap();
        b.finish(book).unwrap()
    }

    fn structure_only_dtdc() -> DtdC {
        DtdC::new(book_structure(), Language::Lu, vec![]).unwrap()
    }

    #[test]
    fn valid_book_passes_all_matchers() {
        let d = book_dtdc();
        let t = valid_book();
        for kind in [MatcherKind::Dfa, MatcherKind::Nfa, MatcherKind::Derivative] {
            let v = Validator::with_matcher(&d, kind, Options::default());
            let r = v.validate(&t);
            assert!(r.is_valid(), "{kind:?}: {r}");
        }
    }

    #[test]
    fn wrong_root_reported() {
        let d = structure_only_dtdc();
        let mut b = TreeBuilder::new();
        let e = b.node("entry");
        b.attr(e, "isbn", AttrValue::single("x")).unwrap();
        b.leaf(e, "title", "T").unwrap();
        b.leaf(e, "publisher", "P").unwrap();
        let t = b.finish(e).unwrap();
        let r = Validator::new(&d).validate(&t);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::RootLabel { .. })));
    }

    #[test]
    fn content_model_violation_reported() {
        let d = structure_only_dtdc();
        let mut b = TreeBuilder::new();
        // book with no entry child.
        let book = b.node("book");
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["x"])).unwrap();
        let t = b.finish(book).unwrap();
        let rep = Validator::new(&d).validate(&t);
        assert!(
            rep.violations
                .iter()
                .any(|v| matches!(v, Violation::ContentModel { .. })),
            "{rep}"
        );
    }

    #[test]
    fn unknown_label_reported() {
        let d = structure_only_dtdc();
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        b.child_node(book, "bogus").unwrap();
        let t = b.finish(book).unwrap();
        let rep = Validator::new(&d).validate(&t);
        assert!(rep
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UnknownElementType { .. })));
    }

    #[test]
    fn attribute_clauses() {
        let d = structure_only_dtdc();
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        let entry = b.child_node(book, "entry").unwrap();
        // isbn missing; bogus undeclared; title/publisher children present.
        b.attr(entry, "bogus", AttrValue::single("v")).unwrap();
        b.leaf(entry, "title", "T").unwrap();
        b.leaf(entry, "publisher", "P").unwrap();
        b.leaf(book, "author", "A").unwrap();
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["x"])).unwrap();
        let t = b.finish(book).unwrap();

        let strict = Validator::new(&d).validate_structure(&t);
        assert!(strict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UndeclaredAttribute { .. })));
        assert!(strict
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingAttribute { .. })));

        let lenient = Validator::with_matcher(&d, MatcherKind::Dfa, Options::lenient())
            .validate_structure(&t);
        assert!(!lenient
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingAttribute { .. })));
        // Undeclared attributes are rejected even leniently.
        assert!(lenient
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UndeclaredAttribute { .. })));
    }

    #[test]
    fn non_singleton_single_valued_attr() {
        let d = structure_only_dtdc();
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        let entry = b.child_node(book, "entry").unwrap();
        b.attr(entry, "isbn", AttrValue::set(["a", "b"])).unwrap();
        b.leaf(entry, "title", "T").unwrap();
        b.leaf(entry, "publisher", "P").unwrap();
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["a"])).unwrap();
        let t = b.finish(book).unwrap();
        let rep = Validator::new(&d).validate_structure(&t);
        assert!(
            rep.violations
                .iter()
                .any(|v| matches!(v, Violation::NotSingleton { len: 2, .. })),
            "{rep}"
        );
    }

    #[test]
    fn matchers_agree_on_random_documents() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let d = structure_only_dtdc();
        let validators: Vec<Validator<'_>> =
            [MatcherKind::Dfa, MatcherKind::Nfa, MatcherKind::Derivative]
                .into_iter()
                .map(|k| Validator::with_matcher(&d, k, Options::lenient()))
                .collect();
        let mut rng = SmallRng::seed_from_u64(99);
        // Random (often invalid) trees over the book alphabet.
        let labels = [
            "book",
            "entry",
            "title",
            "publisher",
            "author",
            "section",
            "text",
            "ref",
        ];
        for _ in 0..60 {
            let mut b = TreeBuilder::new();
            let root = b.node(labels[rng.gen_range(0..labels.len())]);
            let mut frontier = vec![root];
            for _ in 0..rng.gen_range(0..12) {
                let parent = frontier[rng.gen_range(0..frontier.len())];
                if rng.gen_bool(0.3) {
                    b.text(parent, "t").unwrap();
                } else {
                    let c = b
                        .child_node(parent, labels[rng.gen_range(0..labels.len())])
                        .unwrap();
                    frontier.push(c);
                }
            }
            let t = b.finish(root).unwrap();
            let reports: Vec<Report> = validators
                .iter()
                .map(|v| v.validate_structure(&t))
                .collect();
            for r in &reports[1..] {
                assert_eq!(
                    r.violations.len(),
                    reports[0].violations.len(),
                    "matchers disagree"
                );
            }
        }
    }
}
