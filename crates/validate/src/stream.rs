//! Streaming validation: one pass over the event stream, no [`DataTree`].
//!
//! [`Validator::validate_stream`] consumes the SAX-style event stream of
//! [`xic_xml::parse_events`] and produces a [`Report`] **byte-identical**
//! to [`Validator::validate`] on the parsed tree, while keeping only
//! O(depth) structural state plus the planned constraint columns:
//!
//! * each open element holds one in-flight [`MatcherRun`] — a DFA state, a
//!   Glushkov position set, or a Brzozowski derivative — stepped on every
//!   child symbol, so content models are checked without ever storing a
//!   child list;
//! * attribute clauses run when an element's start tag completes ("seal"),
//!   over the same name-sorted attribute view the tree would have built;
//! * the PR-1 columnar [`DocIndex`] is filled on the fly: every planned
//!   `(τ, field)` column receives its `ext(τ)`-aligned entry the moment
//!   the carrying element seals (attributes) or closes (unique
//!   sub-elements), and constraint checking then proceeds on the exact
//!   engine the tree path uses ([`check_planned`]).
//!
//! ## The hot path is allocation- and hash-free (§4.12)
//!
//! Everything the event loop needs about an element-name *spelling* —
//! interned label, matcher, column recipe, declared attributes, the
//! document DTD's set-splitting rule — is resolved once, on first sight,
//! into an [`ElemInfo`] fetched by one `FastHashMap` probe per event.
//! Attribute values ride through the seal as borrowed [`Cow`]s (no
//! `AttrValue` materialization), child words are recorded as `u32` info
//! ids (rendered only if a `ContentModel` violation is actually reported),
//! extents accumulate in per-spelling `Vec<NodeId>` columns, and closed
//! frames return to a pool so steady-state streaming allocates nothing
//! per element.
//!
//! ## Order preservation
//!
//! The tree engine reports structural violations grouped by node id, which
//! equals element-open order. Streaming discovers them in a different
//! order (a `ContentModel` violation of a parent surfaces after all its
//! children close), so every structural violation is tagged with its
//! node's open index and the list is stably sorted once at the end —
//! within one node the push order already matches the tree engine
//! (content model, then attribute clauses in name order). Constraint
//! violations follow in Σ order, appended by the shared checker. This
//! holds at any thread count: the pipelined path only moves *lexing* to
//! another thread; event application stays sequential.

use std::borrow::Cow;
use std::collections::HashMap;

use xic_constraints::{AttrType, DtdC, DtdStructure, Field};
use xic_model::{ExtIndex, FastHashMap, Interner, Name, NodeId, Sym};
use xic_obs::Obs;
use xic_regex::Symbol;
use xic_xml::{parse_events, Event, EventParser, XmlError};

use crate::plan::{check_planned, DocIndex, Plan, SetCol};
use crate::report::{Report, Violation};
use crate::structure::{CompiledMatcher, MatcherRun, Validator};

#[cfg(doc)]
use xic_model::{AttrValue, DataTree};

/// Per element type: where each planned field of `τ` lives in the flat
/// column arrays, split by how the value is obtained while streaming.
#[derive(Default)]
struct TauPlan {
    /// Single-valued attribute fields: `(attribute, single-column id)`.
    attr_singles: Vec<(Name, usize)>,
    /// Unique sub-element fields (§3.4): `(child label, single-column id)`.
    sub_singles: Vec<(Name, usize)>,
    /// Set-valued attribute fields: `(attribute, set-column id)`.
    sets: Vec<(Name, usize)>,
}

/// Everything the event loop needs about one element-name spelling,
/// resolved once when the spelling is first seen and addressed by dense id
/// thereafter — the hot path pays one hash probe per event instead of one
/// per map (symbol cache, matcher, τ-plan, extent, DTD attribute tables).
struct ElemInfo<'v> {
    label: Name,
    /// `Symbol::Elem(label)`, for stepping parent matchers.
    sym: Symbol,
    /// Content-model matcher; `None` for element types the `DTD^C` does
    /// not declare (which skip structural checks, as in the tree path).
    matcher: Option<&'v CompiledMatcher>,
    /// Index into [`StreamChecker::tau_plans`], when Σ reads this type.
    plan: Option<u32>,
    /// `Att(τ)` of the `DTD^C` in name order — drives the attribute
    /// clauses of Definition 2.4 (undeclared / not-singleton / missing).
    attr_decls: Vec<(Name, AttrType)>,
    /// Attributes the *document's* internal-subset DTD declares set-valued
    /// on this type, in name order — the same tokenization rule
    /// `parse_document` applies.
    set_valued: Vec<Name>,
}

/// A pending attribute value between its `Attr` event and the seal:
/// the raw (entity-decoded) string plus how the document DTD says to read
/// it. Tokenization, sorting and interning happen at the seal, and only
/// for the readings that are actually needed — a borrowed slice of the
/// source is never copied just to be compared.
enum PVal<'s> {
    /// A single-valued attribute: the value is the whole string.
    Single(Cow<'s, str>),
    /// A set-valued attribute: the value is the whitespace-tokenized,
    /// sorted, deduplicated set (computed on demand).
    Set(Cow<'s, str>),
}

/// In a recorded child word, the entry for a text run (`Symbol::S`);
/// element children are recorded as their `ElemInfo` id.
const WORD_S: u32 = u32::MAX;

/// One open element (the O(depth) stack entry). Frames live permanently in
/// the checker's stack storage and are re-initialized in place (buffers
/// cleared, capacity kept), so steady-state streaming neither allocates
/// nor copies a frame per element.
#[derive(Default)]
struct Frame<'s> {
    /// Open index of this element — identical to the tree path's node id.
    node: u32,
    /// Position of this element in `ext(label)`.
    ext_pos: u32,
    /// Id of this element's [`ElemInfo`].
    info: u32,
    /// In-flight matcher run; `None` for undeclared element types.
    run: Option<MatcherRun>,
    /// Whether the start tag is complete (attributes checked, columns
    /// filled). Sealing happens on the first non-`Attr` event.
    sealed: bool,
    /// The child word as `ElemInfo` ids (or [`WORD_S`] for text), recorded
    /// only while a matcher runs and rendered only if its `ContentModel`
    /// violation is actually reported.
    word: Vec<u32>,
    /// Attributes collected until the seal, then name-sorted:
    /// `(attr-name id, value)`.
    pending_attrs: Vec<(u32, PVal<'s>)>,
    /// Attribute violations, held back so they follow a `ContentModel`
    /// violation of the same node (the tree path's per-node order).
    attr_viols: Vec<Violation>,
    /// Per [`TauPlan::sub_singles`] entry: how many children with that
    /// label closed, and the first one's interned text (the field value
    /// iff the count ends at exactly one — §3.4's *unique* sub-element).
    subs: Vec<(u32, Option<Sym>)>,
    /// The slot in the parent's `subs` this element reports to, if its
    /// label is a planned sub-element field of the parent's type.
    sub_slot: Option<usize>,
    /// Immediate text, collected only when `sub_slot` is set.
    text: String,
}

/// The single-pass checker: feed [`Event`]s in document order via
/// [`StreamChecker::on_event`], then call [`StreamChecker::finish`].
pub(crate) struct StreamChecker<'v, 's> {
    dtdc: &'v DtdC,
    s: &'v DtdStructure,
    matchers: &'v HashMap<Name, CompiledMatcher>,
    plan: &'v Plan,
    strict: bool,
    /// The *document's* internal-subset DTD, deciding which attribute
    /// values tokenize into sets — exactly as `parse_document` does.
    doc_dtd: Option<DtdStructure>,
    /// Frame storage: the live stack is `stack[..depth]`. Frames are
    /// (re)initialized *in place* — a close just decrements `depth`, so no
    /// frame bytes are ever copied and every buffer keeps its capacity for
    /// the next element at that depth.
    stack: Vec<Frame<'s>>,
    depth: usize,
    /// Count of opened elements; the next element's node id.
    node_count: u32,
    /// Structural violations tagged with their node's open index.
    tagged: Vec<(u32, Violation)>,
    /// Per-spelling records, in first-seen order.
    elems: Vec<ElemInfo<'v>>,
    elem_lookup: FastHashMap<Name, u32>,
    /// Attribute-name spellings, interned the same way.
    attr_names: Vec<Name>,
    attr_lookup: FastHashMap<Name, u32>,
    /// `ext(label)` columns parallel to `elems`; assembled into an
    /// [`ExtIndex`] once, at finish.
    exts: Vec<Vec<NodeId>>,
    interner: Interner,
    tau_plans: Vec<TauPlan>,
    tau_lookup: HashMap<Name, usize>,
    single_keys: Vec<(Name, Field)>,
    single_cols: Vec<Vec<Option<Sym>>>,
    set_keys: Vec<(Name, Name)>,
    set_cols: Vec<SetCol>,
    /// The validator's observability handle (off by default). Per-event
    /// totals below are plain fields — never collector calls on the hot
    /// path — flushed once in [`StreamChecker::finish`].
    obs: Obs,
    /// Deepest `stack` length seen (peak in-flight frames).
    max_depth: usize,
    /// Attributes sealed across all elements.
    attr_count: u64,
}

/// Binary search in the (name-sorted) pending attributes; the streaming
/// counterpart of `Node::attr`.
fn find_pending<'a, 's>(
    pending: &'a [(u32, PVal<'s>)],
    names: &[Name],
    l: &Name,
) -> Option<&'a PVal<'s>> {
    pending
        .binary_search_by(|(aid, _)| names[*aid as usize].cmp(l))
        .ok()
        .map(|i| &pending[i].1)
}

/// The value a single-valued field reads from a pending attribute —
/// mirrors [`AttrValue::as_single`]: the whole string for a single value,
/// the sole distinct token for a set, `None` otherwise.
fn pval_single(v: &PVal<'_>, interner: &mut Interner) -> Option<Sym> {
    match v {
        PVal::Single(raw) => Some(interner.intern_bytes(raw.as_bytes())),
        PVal::Set(raw) => {
            let mut toks = raw.split_whitespace();
            let first = toks.next()?;
            for t in toks {
                if t != first {
                    return None;
                }
            }
            Some(interner.intern_bytes(first.as_bytes()))
        }
    }
}

/// Distinct whitespace-separated tokens, mirroring [`AttrValue::set`]'s
/// length (only needed when a set-tokenized value meets a `Single`
/// declaration — the rare mismatch case).
fn distinct_token_count(raw: &str) -> usize {
    let mut toks: Vec<&str> = raw.split_whitespace().collect();
    toks.sort_unstable();
    toks.dedup();
    toks.len()
}

/// Renders a recorded child word the way the tree path would (`", "`-joined
/// `Symbol` displays) — paid only when a `ContentModel` violation reports.
fn render_word(elems: &[ElemInfo<'_>], word: &[u32]) -> String {
    let mut out = String::new();
    for (i, &w) in word.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if w == WORD_S {
            out.push('S');
        } else {
            out.push_str(elems[w as usize].label.as_str());
        }
    }
    out
}

impl<'v, 's> StreamChecker<'v, 's> {
    pub(crate) fn new(v: &'v Validator<'_>, doc_dtd: Option<DtdStructure>) -> Self {
        // Flatten the plan's per-type field sets into dense columns with a
        // per-τ recipe, so the hot path never touches the BTree maps.
        let mut tau_plans: Vec<TauPlan> = Vec::new();
        let mut tau_lookup: HashMap<Name, usize> = HashMap::new();
        let mut plan_of = |tau: &Name, tau_plans: &mut Vec<TauPlan>| -> usize {
            *tau_lookup.entry(tau.clone()).or_insert_with(|| {
                tau_plans.push(TauPlan::default());
                tau_plans.len() - 1
            })
        };
        let mut single_keys = Vec::new();
        for (tau, fields) in &v.plan.singles {
            let pi = plan_of(tau, &mut tau_plans);
            for field in fields {
                let col = single_keys.len();
                single_keys.push((tau.clone(), field.clone()));
                match field {
                    Field::Attr(l) => tau_plans[pi].attr_singles.push((l.clone(), col)),
                    Field::Sub(e) => tau_plans[pi].sub_singles.push((e.clone(), col)),
                }
            }
        }
        let mut set_keys = Vec::new();
        for (tau, attrs) in &v.plan.sets {
            let pi = plan_of(tau, &mut tau_plans);
            for attr in attrs {
                let col = set_keys.len();
                set_keys.push((tau.clone(), attr.clone()));
                tau_plans[pi].sets.push((attr.clone(), col));
            }
        }
        StreamChecker {
            dtdc: v.dtdc,
            s: v.dtdc.structure(),
            matchers: &v.matchers,
            plan: &v.plan,
            strict: v.options.strict_attributes,
            doc_dtd,
            stack: Vec::new(),
            depth: 0,
            node_count: 0,
            tagged: Vec::new(),
            elems: Vec::new(),
            elem_lookup: FastHashMap::default(),
            attr_names: Vec::new(),
            attr_lookup: FastHashMap::default(),
            exts: Vec::new(),
            interner: Interner::new(),
            single_cols: vec![Vec::new(); single_keys.len()],
            set_cols: vec![SetCol::default(); set_keys.len()],
            tau_plans,
            tau_lookup,
            single_keys,
            set_keys,
            obs: v.obs.clone(),
            max_depth: 0,
            attr_count: 0,
        }
    }

    /// The dense id of an element-name spelling (resolving it on first
    /// sight).
    fn elem_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.elem_lookup.get(name) {
            return id;
        }
        self.elem_id_slow(name)
    }

    #[cold]
    fn elem_id_slow(&mut self, name: &str) -> u32 {
        let label = Name::new(name);
        let set_valued = self.doc_dtd.as_ref().map_or_else(Vec::new, |d| {
            d.attributes(name)
                .filter(|(_, t)| *t == AttrType::SetValued)
                .map(|(n, _)| n.clone())
                .collect()
        });
        let info = ElemInfo {
            sym: Symbol::Elem(label.clone()),
            matcher: self.matchers.get(name),
            plan: self.tau_lookup.get(name).map(|&i| i as u32),
            attr_decls: self
                .s
                .attributes(name)
                .map(|(n, t)| (n.clone(), t))
                .collect(),
            set_valued,
            label: label.clone(),
        };
        let id = u32::try_from(self.elems.len()).expect("spelling count fits u32");
        self.elems.push(info);
        self.exts.push(Vec::new());
        self.elem_lookup.insert(label, id);
        id
    }

    /// The dense id of an attribute-name spelling.
    fn attr_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.attr_lookup.get(name) {
            return id;
        }
        let label = Name::new(name);
        let id = u32::try_from(self.attr_names.len()).expect("spelling count fits u32");
        self.attr_names.push(label.clone());
        self.attr_lookup.insert(label, id);
        id
    }

    /// Applies one event. Events must arrive in document order.
    pub(crate) fn on_event(&mut self, ev: Event<'s>) {
        match ev {
            Event::Open { name, .. } => self.open(name),
            Event::Attr { name, value, .. } => self.attr(name, value),
            Event::Text { value, .. } => self.text(&value),
            Event::Close { .. } => self.close(),
        }
    }

    fn open(&mut self, name: &str) {
        self.seal_top();
        let iid = self.elem_id(name);
        let node = self.node_count;
        self.node_count += 1;
        let node_id = NodeId::from_index(node as usize);
        let info = &self.elems[iid as usize];
        let mut sub_slot = None;
        match self.stack[..self.depth].last_mut() {
            Some(parent) => {
                if let Some(run) = parent.run.as_mut() {
                    let pinfo = &self.elems[parent.info as usize];
                    let m = pinfo.matcher.expect("a run implies a matcher");
                    m.step(run, &info.sym);
                    parent.word.push(iid);
                }
                if let Some(pi) = self.elems[parent.info as usize].plan {
                    sub_slot = self.tau_plans[pi as usize]
                        .sub_singles
                        .iter()
                        .position(|(e, _)| e == &info.label);
                }
            }
            None => {
                if info.label != *self.s.root() {
                    self.tagged.push((
                        node,
                        Violation::RootLabel {
                            expected: self.s.root().clone(),
                            found: info.label.clone(),
                        },
                    ));
                }
            }
        }
        let run = match info.matcher {
            Some(m) => Some(m.start()),
            None => {
                self.tagged.push((
                    node,
                    Violation::UnknownElementType {
                        node: node_id,
                        label: info.label.clone(),
                    },
                ));
                None
            }
        };
        let n_subs = info
            .plan
            .map_or(0, |pi| self.tau_plans[pi as usize].sub_singles.len());
        let ext = &mut self.exts[iid as usize];
        let ext_pos = u32::try_from(ext.len()).expect("extent fits u32");
        ext.push(node_id);
        if self.depth == self.stack.len() {
            self.stack.push(Frame::default());
        }
        let frame = &mut self.stack[self.depth];
        frame.node = node;
        frame.ext_pos = ext_pos;
        frame.info = iid;
        frame.run = run;
        frame.sealed = false;
        frame.sub_slot = sub_slot;
        frame.subs.resize(n_subs, (0, None));
        self.depth += 1;
        if self.depth > self.max_depth {
            self.max_depth = self.depth;
        }
    }

    fn attr(&mut self, name: &str, value: Cow<'s, str>) {
        let aid = self.attr_id(name);
        let top = self.stack[..self.depth]
            .last_mut()
            .expect("Attr events follow an Open");
        // Same set-splitting rule as `parse_document`: the *document's*
        // DTD decides, not the DTD^C being validated against.
        let set_valued = self.elems[top.info as usize]
            .set_valued
            .binary_search_by(|n| n.as_str().cmp(name))
            .is_ok();
        let v = if set_valued {
            PVal::Set(value)
        } else {
            PVal::Single(value)
        };
        top.pending_attrs.push((aid, v));
    }

    fn text(&mut self, value: &str) {
        self.seal_top();
        let top = self.stack[..self.depth]
            .last_mut()
            .expect("Text occurs inside the root");
        if let Some(run) = top.run.as_mut() {
            let m = self.elems[top.info as usize]
                .matcher
                .expect("a run implies a matcher");
            m.step(run, &Symbol::S);
            top.word.push(WORD_S);
        }
        if top.sub_slot.is_some() {
            top.text.push_str(value);
        }
    }

    /// Completes the top element's start tag: name-sorts its attributes,
    /// runs the attribute clauses of Definition 2.4, and fills its row of
    /// every planned attribute column. Runs exactly once per element —
    /// every event after the attributes (child open, text, close) lands
    /// here first.
    fn seal_top(&mut self) {
        let Some(top) = self.stack[..self.depth].last_mut() else {
            return;
        };
        if top.sealed {
            return;
        }
        top.sealed = true;
        self.attr_count += top.pending_attrs.len() as u64;
        let info = &self.elems[top.info as usize];
        let names = &self.attr_names;
        if top.pending_attrs.len() > 1 {
            top.pending_attrs
                .sort_by(|a, b| names[a.0 as usize].cmp(&names[b.0 as usize]));
        }
        let node_id = NodeId::from_index(top.node as usize);
        // Attribute clauses — skipped for undeclared element types, like
        // the tree path (which `continue`s after UnknownElementType).
        if info.matcher.is_some() {
            for (aid, value) in &top.pending_attrs {
                let l = &names[*aid as usize];
                match info.attr_decls.binary_search_by(|(n, _)| n.cmp(l)) {
                    Err(_) => top.attr_viols.push(Violation::UndeclaredAttribute {
                        node: node_id,
                        attr: l.clone(),
                    }),
                    Ok(i) => {
                        if info.attr_decls[i].1 == AttrType::Single {
                            // A PVal::Single is trivially a singleton; only
                            // a set-tokenized value can violate.
                            if let PVal::Set(raw) = value {
                                let len = distinct_token_count(raw);
                                if len != 1 {
                                    top.attr_viols.push(Violation::NotSingleton {
                                        node: node_id,
                                        attr: l.clone(),
                                        len,
                                    });
                                }
                            }
                        }
                    }
                }
            }
            if self.strict {
                for (l, _) in &info.attr_decls {
                    if find_pending(&top.pending_attrs, names, l).is_none() {
                        top.attr_viols.push(Violation::MissingAttribute {
                            node: node_id,
                            attr: l.clone(),
                        });
                    }
                }
            }
        }
        // Column fill — by label, declared or not, because `ext(τ)` (and
        // hence the tree path's columns) includes undeclared nodes too.
        if let Some(pi) = info.plan {
            let tp = &self.tau_plans[pi as usize];
            for (l, col) in &tp.attr_singles {
                let sym = find_pending(&top.pending_attrs, names, l)
                    .and_then(|v| pval_single(v, &mut self.interner));
                debug_assert_eq!(self.single_cols[*col].len(), top.ext_pos as usize);
                self.single_cols[*col].push(sym);
            }
            for (l, col) in &tp.sets {
                let scol = &mut self.set_cols[*col];
                debug_assert_eq!(scol.len(), top.ext_pos as usize);
                match find_pending(&top.pending_attrs, names, l) {
                    Some(PVal::Single(raw)) => {
                        scol.push_row([self.interner.intern_bytes(raw.as_bytes())]);
                    }
                    Some(PVal::Set(raw)) => {
                        // `AttrValue::set` order: sorted distinct tokens.
                        let mut toks: Vec<&str> = raw.split_whitespace().collect();
                        toks.sort_unstable();
                        toks.dedup();
                        scol.push_row(
                            toks.into_iter()
                                .map(|t| self.interner.intern_bytes(t.as_bytes())),
                        );
                    }
                    None => scol.push_row([]),
                }
            }
            // Sub-element fields get a placeholder now (keeping the column
            // ext-aligned) and their value at close, when the children —
            // and hence uniqueness — are known.
            for (_, col) in &tp.sub_singles {
                debug_assert_eq!(self.single_cols[*col].len(), top.ext_pos as usize);
                self.single_cols[*col].push(None);
            }
        }
    }

    fn close(&mut self) {
        self.seal_top();
        assert!(self.depth > 0, "Close matches an Open");
        self.depth -= 1;
        let (parents, rest) = self.stack.split_at_mut(self.depth);
        let frame = &mut rest[0];
        let info = &self.elems[frame.info as usize];
        let node_id = NodeId::from_index(frame.node as usize);
        if let Some(run) = &frame.run {
            let m = info.matcher.expect("a run implies a matcher");
            if !m.accepts(run) {
                self.tagged.push((
                    frame.node,
                    Violation::ContentModel {
                        node: node_id,
                        tau: info.label.clone(),
                        expected: self
                            .s
                            .content_model(info.label.as_str())
                            .map(ToString::to_string)
                            .unwrap_or_default(),
                        found: render_word(&self.elems, &frame.word),
                    },
                ));
            }
        }
        for v in frame.attr_viols.drain(..) {
            self.tagged.push((frame.node, v));
        }
        // Patch this element's unique-sub-element column entries.
        if let Some(pi) = info.plan {
            for (i, (_, col)) in self.tau_plans[pi as usize].sub_singles.iter().enumerate() {
                let (count, sym) = frame.subs[i];
                if count == 1 {
                    self.single_cols[*col][frame.ext_pos as usize] = sym;
                }
            }
        }
        // Report to the parent's unique-sub-element tracking.
        if let Some(slot) = frame.sub_slot {
            if let Some(parent) = parents.last_mut() {
                let (count, sym) = &mut parent.subs[slot];
                *count += 1;
                *sym = if *count == 1 {
                    Some(self.interner.intern_bytes(frame.text.as_bytes()))
                } else {
                    None // a second child with this label: field undefined
                };
            }
        }
        // Clear the buffers (keeping capacity) for the next element that
        // opens at this depth; the frame itself never moves.
        frame.run = None;
        frame.word.clear();
        frame.pending_attrs.clear();
        frame.subs.clear();
        frame.text.clear();
    }

    /// Sorts the structural violations into node order and runs the shared
    /// constraint checker over the streamed columns.
    pub(crate) fn finish(mut self, threads: usize) -> Report {
        debug_assert!(self.depth == 0, "finish before the root closed");
        let obs = self.obs.clone();
        // The deferred node-order sort is streaming's share of the
        // "structure" phase; everything else structural happened inside
        // the fused "parse" pass (see DESIGN.md §4.10).
        let mut violations: Vec<Violation> = {
            let _structure = obs.span("structure");
            self.tagged.sort_by_key(|&(n, _)| n); // stable: per-node order kept
            self.tagged.into_iter().map(|(_, v)| v).collect()
        };
        let mut ext = ExtIndex::empty();
        let doc = {
            let _plan = obs.span("plan");
            for (info, ids) in self.elems.iter().zip(self.exts) {
                ext.insert_extent(info.label.clone(), ids);
            }
            let singles: HashMap<(Name, Field), Vec<Option<Sym>>> =
                self.single_keys.into_iter().zip(self.single_cols).collect();
            let sets: HashMap<(Name, Name), SetCol> =
                self.set_keys.into_iter().zip(self.set_cols).collect();
            DocIndex::from_parts(self.interner, singles, sets, &ext, self.s, self.plan)
        };
        check_planned(
            &ext,
            self.dtdc,
            &doc,
            threads,
            self.node_count as usize,
            &obs,
            &mut violations,
        );
        if obs.enabled() {
            obs.add("nodes", u64::from(self.node_count));
            obs.add("attrs", self.attr_count);
            obs.add("violations", violations.len() as u64);
            obs.max("stream.peak_depth", self.max_depth as u64);
        }
        Report {
            violations,
            metrics: obs.snapshot(),
        }
    }
}

impl Validator<'_> {
    /// Validates a document directly from its source text, without ever
    /// materializing a [`DataTree`]: the event stream drives the matcher
    /// automata (O(depth) live state) and fills the compiled constraint
    /// columns on the fly. The report is byte-identical to parsing the
    /// document and calling [`Validator::validate`], at any thread count.
    ///
    /// With [`Options::threads`](crate::Options) `> 1` (and the `parallel`
    /// feature), lexing moves to a producer thread feeding a bounded
    /// channel, overlapping parsing with checking; the remaining budget
    /// fans out the final constraint pass.
    ///
    /// Errors are *parse* errors only — invalid documents yield an `Ok`
    /// report listing violations, exactly like the tree path.
    pub fn validate_stream(&self, src: &str) -> Result<Report, XmlError> {
        self.validate_events(parse_events(src))
    }

    /// Validates an event stream (see [`Validator::validate_stream`]).
    ///
    /// The parser's internal-subset DTD, if any, decides which attribute
    /// values tokenize into sets — the same rule
    /// [`parse_document`](xic_xml::parse_document) applies — so the stream
    /// sees the values the tree would have held.
    pub fn validate_events<'s>(&self, mut events: EventParser<'s>) -> Result<Report, XmlError> {
        let doc_dtd = events.dtd()?.cloned();
        let threads = self.effective_threads();
        let mut checker = StreamChecker::<'_, 's>::new(self, doc_dtd);
        #[cfg(feature = "parallel")]
        if threads > 1 {
            {
                let _parse = self.obs.span("parse");
                run_pipelined(events, &mut checker, &self.obs)?;
            }
            return Ok(checker.finish(threads));
        }
        // threads == 1: a pure pull loop — no channel, no scope, no
        // synchronization of any kind. Streaming fuses lexing with
        // structural checking, so "parse" covers the whole single pass.
        {
            let _parse = self.obs.span("parse");
            for ev in &mut events {
                checker.on_event(ev?);
            }
        }
        self.flush_parse_stats(events.stats());
        Ok(checker.finish(threads))
    }

    /// Flushes the parser's plain-field counters to the collector, once
    /// per document (the parser itself has no collector dependency).
    pub(crate) fn flush_parse_stats(&self, stats: xic_xml::ParseStats) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.add("xml.events", stats.events);
        self.obs
            .add("xml.entity_expansions", stats.entity_expansions);
    }
}

/// The pipelined event loop: a producer thread lexes batches of events
/// into a bounded channel while the consumer (this thread) applies them.
/// Only the lexer moves — application order is untouched, which is what
/// keeps reports byte-identical regardless of thread count.
#[cfg(feature = "parallel")]
fn run_pipelined<'s>(
    events: EventParser<'s>,
    checker: &mut StreamChecker<'_, 's>,
    obs: &Obs,
) -> Result<(), XmlError> {
    use std::sync::mpsc;
    /// Events per channel message: large enough to amortize the channel,
    /// small enough to bound in-flight memory (`BATCH × BOUND` events).
    const BATCH: usize = 1024;
    /// Channel capacity in batches.
    const BOUND: usize = 8;
    let (tx, rx) = mpsc::sync_channel::<Result<Vec<Event<'s>>, XmlError>>(BOUND);
    std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            let mut events = events;
            let mut batch = Vec::with_capacity(BATCH);
            for ev in &mut events {
                match ev {
                    Ok(ev) => {
                        batch.push(ev);
                        if batch.len() == BATCH {
                            let full = std::mem::replace(&mut batch, Vec::with_capacity(BATCH));
                            if tx.send(Ok(full)).is_err() {
                                return events.stats(); // receiver bailed on an error
                            }
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return events.stats();
                    }
                }
            }
            let _ = tx.send(Ok(batch));
            events.stats()
        });
        // `stream.recv_wait` is time this consumer spends starved (the
        // producer still lexing); `stream.apply` is time spent applying
        // events. Both recorded per batch, never per event.
        let result = loop {
            let msg = {
                let _wait = obs.span("stream.recv_wait");
                rx.recv()
            };
            let Ok(msg) = msg else {
                break Ok(()); // producer done, channel drained
            };
            let batch = match msg {
                Ok(batch) => batch,
                Err(e) => break Err(e),
            };
            let _apply = obs.span("stream.apply");
            obs.add("stream.batches", 1);
            for ev in batch {
                checker.on_event(ev);
            }
        };
        // Unblock a producer still sending before the scope joins it.
        drop(rx);
        if let Ok(stats) = producer.join() {
            if obs.enabled() {
                obs.add("xml.events", stats.events);
                obs.add("xml.entity_expansions", stats.entity_expansions);
            }
        }
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MatcherKind, Options};
    use xic_constraints::examples::book_dtdc;
    use xic_xml::parse_document;

    const BOOK: &str = r#"<book>
  <entry isbn="1-55860-622-X"><title>Data on the Web</title><publisher>MK</publisher></entry>
  <author>Abiteboul</author>
  <section sid="s1"><title>Intro</title><text>...</text></section>
  <ref to="1-55860-622-X"/>
</book>"#;

    /// Documents exercising every violation kind the stream must order
    /// exactly like the tree engine.
    const DOCS: &[&str] = &[
        BOOK,
        // Wrong root + unknown types + stray attributes.
        r#"<library bad="x"><book/><shelf id="1">text</shelf></library>"#,
        // Content-model failures at several depths, undeclared and
        // duplicate-set attributes, missing required attributes.
        r#"<book><entry><title>T</title></entry><section sid="a b"><section sid="inner"><bogus/></section></section><ref to=""/></book>"#,
        // Key/foreign-key violations: duplicate isbn, dangling ref.
        r#"<book>
  <entry isbn="k"><title>A</title><publisher>P</publisher></entry>
  <entry isbn="k"><title>A</title><publisher>P</publisher></entry>
  <author>A</author>
  <ref to="missing"/>
</book>"#,
        // Unique sub-element field: two titles make entry.title undefined.
        r#"<book><entry isbn="i"><title>A</title><title>B</title><publisher>P</publisher></entry><author>A</author><ref to="i"/></book>"#,
    ];

    fn assert_stream_matches_tree(src: &str) {
        let d = book_dtdc();
        for kind in [MatcherKind::Dfa, MatcherKind::Nfa, MatcherKind::Derivative] {
            for strict in [true, false] {
                for threads in [1, 2, 4] {
                    let opts = Options {
                        strict_attributes: strict,
                        threads,
                    };
                    let v = Validator::with_matcher(&d, kind, opts);
                    let tree = parse_document(src).unwrap().tree;
                    let want = v.validate(&tree);
                    let got = v.validate_stream(src).unwrap();
                    assert_eq!(
                        format!("{want}"),
                        format!("{got}"),
                        "kind={kind:?} strict={strict} threads={threads}\n{src}"
                    );
                    assert_eq!(want.violations, got.violations);
                }
            }
        }
    }

    #[test]
    fn stream_report_equals_tree_report() {
        for src in DOCS {
            assert_stream_matches_tree(src);
        }
    }

    #[test]
    fn valid_book_is_valid_streamed() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        let r = v.validate_stream(BOOK).unwrap();
        assert!(r.is_valid(), "{r}");
    }

    #[test]
    fn parse_errors_surface_with_positions() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        let e = v
            .validate_stream("<book>\n  <entry></wrong>\n</book>")
            .unwrap_err();
        assert_eq!(e.line, 2, "{e}");
        assert!(e.to_string().contains("at 2:"), "{e}");
    }

    #[test]
    fn document_dtd_drives_set_splitting() {
        // The document's own DTD declares `to` as IDREFS, so "a b" is a
        // two-element set in both paths — and both of its members then
        // dangle as foreign keys against entry.isbn.
        let src = r#"<!DOCTYPE book [
  <!ELEMENT book (entry|author|ref)*>
  <!ELEMENT entry (title, publisher)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT publisher (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT ref EMPTY>
  <!ATTLIST entry isbn CDATA #IMPLIED>
  <!ATTLIST ref to IDREFS #IMPLIED>
]>
<book><entry isbn="i"><title>T</title><publisher>P</publisher></entry><author>A</author><ref to="a b"/></book>"#;
        assert_stream_matches_tree(src);
    }

    #[test]
    fn multivalued_set_attributes_round_through_columns() {
        // Duplicate and unsorted tokens in a set-valued attribute must
        // behave exactly like the tree path's `AttrValue::set` (sorted,
        // deduplicated) through the seal's zero-copy fill.
        let src = r#"<!DOCTYPE book [
  <!ELEMENT book (entry|author|ref)*>
  <!ELEMENT entry (title, publisher)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT publisher (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT ref EMPTY>
  <!ATTLIST entry isbn CDATA #IMPLIED>
  <!ATTLIST ref to IDREFS #IMPLIED>
]>
<book><entry isbn="z"><title>T</title><publisher>P</publisher></entry><author>A</author><ref to="z q z a"/></book>"#;
        assert_stream_matches_tree(src);
    }
}
