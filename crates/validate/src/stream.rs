//! Streaming validation: one pass over the event stream, no [`DataTree`].
//!
//! [`Validator::validate_stream`] consumes the SAX-style event stream of
//! [`xic_xml::parse_events`] and produces a [`Report`] **byte-identical**
//! to [`Validator::validate`] on the parsed tree, while keeping only
//! O(depth) structural state plus the planned constraint columns:
//!
//! * each open element holds one in-flight [`MatcherRun`] — a DFA state, a
//!   Glushkov position set, or a Brzozowski derivative — stepped on every
//!   child symbol, so content models are checked without ever storing a
//!   child list;
//! * attribute clauses run when an element's start tag completes ("seal"),
//!   over the same name-sorted attribute view the tree would have built;
//! * the PR-1 columnar [`DocIndex`] is filled on the fly: every planned
//!   `(τ, field)` column receives its `ext(τ)`-aligned entry the moment
//!   the carrying element seals (attributes) or closes (unique
//!   sub-elements), and constraint checking then proceeds on the exact
//!   engine the tree path uses ([`check_planned`]).
//!
//! ## Order preservation
//!
//! The tree engine reports structural violations grouped by node id, which
//! equals element-open order. Streaming discovers them in a different
//! order (a `ContentModel` violation of a parent surfaces after all its
//! children close), so every structural violation is tagged with its
//! node's open index and the list is stably sorted once at the end —
//! within one node the push order already matches the tree engine
//! (content model, then attribute clauses in name order). Constraint
//! violations follow in Σ order, appended by the shared checker. This
//! holds at any thread count: the pipelined path only moves *lexing* to
//! another thread; event application stays sequential.

use std::borrow::Cow;
use std::collections::HashMap;

use xic_constraints::{AttrType, DtdC, DtdStructure, Field};
use xic_model::{AttrValue, ExtIndex, Interner, Name, NodeId, Sym};
use xic_obs::Obs;
use xic_regex::Symbol;
use xic_xml::{parse_events, Event, EventParser, XmlError};

use crate::plan::{check_planned, DocIndex, Plan};
use crate::report::{Report, Violation};
use crate::structure::{CompiledMatcher, MatcherRun, Validator};

#[cfg(doc)]
use xic_model::DataTree;

/// Per element type: where each planned field of `τ` lives in the flat
/// column arrays, split by how the value is obtained while streaming.
#[derive(Default)]
struct TauPlan {
    /// Single-valued attribute fields: `(attribute, single-column id)`.
    attr_singles: Vec<(Name, usize)>,
    /// Unique sub-element fields (§3.4): `(child label, single-column id)`.
    sub_singles: Vec<(Name, usize)>,
    /// Set-valued attribute fields: `(attribute, set-column id)`.
    sets: Vec<(Name, usize)>,
}

/// One open element (the O(depth) stack entry).
struct Frame<'v> {
    /// Open index of this element — identical to the tree path's node id.
    node: u32,
    /// Position of this element in `ext(label)`.
    ext_pos: usize,
    label: Name,
    /// Content-model matcher and its run state; `None` for undeclared
    /// element types (which skip structural checks, as in the tree path).
    matcher: Option<(&'v CompiledMatcher, MatcherRun)>,
    /// Index into [`StreamChecker::tau_plans`], when Σ reads this type.
    plan: Option<usize>,
    /// Whether the start tag is complete (attributes checked, columns
    /// filled). Sealing happens on the first non-`Attr` event.
    sealed: bool,
    /// The child word rendered as the tree path would
    /// (`", "`-joined symbols), kept for the `ContentModel` violation.
    word: String,
    /// Attributes collected until the seal, then name-sorted.
    pending_attrs: Vec<(Name, AttrValue)>,
    /// Attribute violations, held back so they follow a `ContentModel`
    /// violation of the same node (the tree path's per-node order).
    attr_viols: Vec<Violation>,
    /// Per [`TauPlan::sub_singles`] entry: how many children with that
    /// label closed, and the first one's text (the field value iff the
    /// count ends at exactly one — §3.4's *unique* sub-element).
    subs: Vec<(u32, Option<String>)>,
    /// The slot in the parent's `subs` this element reports to, if its
    /// label is a planned sub-element field of the parent's type.
    sub_slot: Option<usize>,
    /// Immediate text, collected only when `sub_slot` is set.
    text: String,
}

/// The single-pass checker: feed [`Event`]s in document order via
/// [`StreamChecker::on_event`], then call [`StreamChecker::finish`].
pub(crate) struct StreamChecker<'v> {
    dtdc: &'v DtdC,
    s: &'v DtdStructure,
    matchers: &'v HashMap<Name, CompiledMatcher>,
    plan: &'v Plan,
    strict: bool,
    /// The *document's* internal-subset DTD, deciding which attribute
    /// values tokenize into sets — exactly as `parse_document` does.
    doc_dtd: Option<DtdStructure>,
    stack: Vec<Frame<'v>>,
    /// Count of opened elements; the next element's node id.
    node_count: u32,
    /// Structural violations tagged with their node's open index.
    tagged: Vec<(u32, Violation)>,
    ext: ExtIndex,
    interner: Interner,
    tau_plans: Vec<TauPlan>,
    tau_lookup: HashMap<Name, usize>,
    single_keys: Vec<(Name, Field)>,
    single_cols: Vec<Vec<Option<Sym>>>,
    set_keys: Vec<(Name, Name)>,
    set_cols: Vec<Vec<Vec<Sym>>>,
    /// `label ↦ Symbol::Elem(label)` cache so stepping a matcher does not
    /// allocate a fresh `Name` per event.
    symbols: HashMap<Name, Symbol>,
    /// The validator's observability handle (off by default). Per-event
    /// totals below are plain fields — never collector calls on the hot
    /// path — flushed once in [`StreamChecker::finish`].
    obs: Obs,
    /// Deepest `stack` length seen (peak in-flight frames).
    max_depth: usize,
    /// Attributes sealed across all elements.
    attr_count: u64,
}

/// Binary search in a name-sorted attribute list (the streaming
/// counterpart of `Node::attr`).
fn find_attr<'a>(attrs: &'a [(Name, AttrValue)], l: &str) -> Option<&'a AttrValue> {
    attrs
        .binary_search_by(|(a, _)| a.as_str().cmp(l))
        .ok()
        .map(|i| &attrs[i].1)
}

/// Appends one symbol to a rendered child word, matching the tree path's
/// `", "`-join of `Symbol` displays.
fn push_word(word: &mut String, sym: &Symbol) {
    use std::fmt::Write;
    if !word.is_empty() {
        word.push_str(", ");
    }
    let _ = write!(word, "{sym}");
}

impl<'v> StreamChecker<'v> {
    pub(crate) fn new(v: &'v Validator<'_>, doc_dtd: Option<DtdStructure>) -> Self {
        // Flatten the plan's per-type field sets into dense columns with a
        // per-τ recipe, so the hot path never touches the BTree maps.
        let mut tau_plans: Vec<TauPlan> = Vec::new();
        let mut tau_lookup: HashMap<Name, usize> = HashMap::new();
        let mut plan_of = |tau: &Name, tau_plans: &mut Vec<TauPlan>| -> usize {
            *tau_lookup.entry(tau.clone()).or_insert_with(|| {
                tau_plans.push(TauPlan::default());
                tau_plans.len() - 1
            })
        };
        let mut single_keys = Vec::new();
        for (tau, fields) in &v.plan.singles {
            let pi = plan_of(tau, &mut tau_plans);
            for field in fields {
                let col = single_keys.len();
                single_keys.push((tau.clone(), field.clone()));
                match field {
                    Field::Attr(l) => tau_plans[pi].attr_singles.push((l.clone(), col)),
                    Field::Sub(e) => tau_plans[pi].sub_singles.push((e.clone(), col)),
                }
            }
        }
        let mut set_keys = Vec::new();
        for (tau, attrs) in &v.plan.sets {
            let pi = plan_of(tau, &mut tau_plans);
            for attr in attrs {
                let col = set_keys.len();
                set_keys.push((tau.clone(), attr.clone()));
                tau_plans[pi].sets.push((attr.clone(), col));
            }
        }
        StreamChecker {
            dtdc: v.dtdc,
            s: v.dtdc.structure(),
            matchers: &v.matchers,
            plan: &v.plan,
            strict: v.options.strict_attributes,
            doc_dtd,
            stack: Vec::new(),
            node_count: 0,
            tagged: Vec::new(),
            ext: ExtIndex::empty(),
            interner: Interner::new(),
            single_cols: vec![Vec::new(); single_keys.len()],
            set_cols: vec![Vec::new(); set_keys.len()],
            tau_plans,
            tau_lookup,
            single_keys,
            set_keys,
            symbols: HashMap::new(),
            obs: v.obs.clone(),
            max_depth: 0,
            attr_count: 0,
        }
    }

    /// The interned label and its element symbol (cached per spelling).
    fn label_sym(&mut self, name: &str) -> (Name, Symbol) {
        if let Some((label, sym)) = self.symbols.get_key_value(name) {
            return (label.clone(), sym.clone());
        }
        let label = Name::new(name);
        let sym = Symbol::Elem(label.clone());
        self.symbols.insert(label.clone(), sym.clone());
        (label, sym)
    }

    /// Applies one event. Events must arrive in document order.
    pub(crate) fn on_event(&mut self, ev: Event<'_>) {
        match ev {
            Event::Open { name, .. } => self.open(name),
            Event::Attr { name, value, .. } => self.attr(name, value),
            Event::Text { value, .. } => self.text(&value),
            Event::Close { .. } => self.close(),
        }
    }

    fn open(&mut self, name: &str) {
        self.seal_top();
        let (label, sym) = self.label_sym(name);
        let node = self.node_count;
        self.node_count += 1;
        let mut sub_slot = None;
        match self.stack.last_mut() {
            Some(parent) => {
                if let Some((m, run)) = parent.matcher.as_mut() {
                    m.step(run, &sym);
                    push_word(&mut parent.word, &sym);
                }
                if let Some(pi) = parent.plan {
                    sub_slot = self.tau_plans[pi]
                        .sub_singles
                        .iter()
                        .position(|(e, _)| e == &label);
                }
            }
            None => {
                if label != *self.s.root() {
                    self.tagged.push((
                        node,
                        Violation::RootLabel {
                            expected: self.s.root().clone(),
                            found: label.clone(),
                        },
                    ));
                }
            }
        }
        let matcher = match self.matchers.get(name) {
            Some(m) => Some((m, m.start())),
            None => {
                self.tagged.push((
                    node,
                    Violation::UnknownElementType {
                        node: NodeId::from_index(node as usize),
                        label: label.clone(),
                    },
                ));
                None
            }
        };
        let plan = self.tau_lookup.get(name).copied();
        let subs = plan.map_or_else(Vec::new, |pi| {
            vec![(0, None); self.tau_plans[pi].sub_singles.len()]
        });
        let ext_pos = self.ext.ext(name).len();
        self.ext.push(&label, NodeId::from_index(node as usize));
        self.stack.push(Frame {
            node,
            ext_pos,
            label,
            matcher,
            plan,
            sealed: false,
            word: String::new(),
            pending_attrs: Vec::new(),
            attr_viols: Vec::new(),
            subs,
            sub_slot,
            text: String::new(),
        });
        if self.stack.len() > self.max_depth {
            self.max_depth = self.stack.len();
        }
    }

    fn attr(&mut self, name: &str, value: Cow<'_, str>) {
        let (aname, _) = self.label_sym(name);
        let top = self.stack.last_mut().expect("Attr events follow an Open");
        // Same set-splitting rule as `parse_document`: the *document's*
        // DTD decides, not the DTD^C being validated against.
        let set_valued = self
            .doc_dtd
            .as_ref()
            .is_some_and(|d| d.is_set_valued(&top.label, name));
        let v = if set_valued {
            AttrValue::set(value.split_whitespace())
        } else {
            AttrValue::single(value.into_owned())
        };
        top.pending_attrs.push((aname, v));
    }

    fn text(&mut self, value: &str) {
        self.seal_top();
        let top = self.stack.last_mut().expect("Text occurs inside the root");
        if let Some((m, run)) = top.matcher.as_mut() {
            m.step(run, &Symbol::S);
            push_word(&mut top.word, &Symbol::S);
        }
        if top.sub_slot.is_some() {
            top.text.push_str(value);
        }
    }

    /// Completes the top element's start tag: name-sorts its attributes,
    /// runs the attribute clauses of Definition 2.4, and fills its row of
    /// every planned attribute column. Runs exactly once per element —
    /// every event after the attributes (child open, text, close) lands
    /// here first.
    fn seal_top(&mut self) {
        let Some(top) = self.stack.last_mut() else {
            return;
        };
        if top.sealed {
            return;
        }
        top.sealed = true;
        self.attr_count += top.pending_attrs.len() as u64;
        top.pending_attrs.sort_by(|a, b| a.0.cmp(&b.0));
        let node_id = NodeId::from_index(top.node as usize);
        // Attribute clauses — skipped for undeclared element types, like
        // the tree path (which `continue`s after UnknownElementType).
        if top.matcher.is_some() {
            for (l, value) in &top.pending_attrs {
                match self.s.attr_type(&top.label, l) {
                    None => top.attr_viols.push(Violation::UndeclaredAttribute {
                        node: node_id,
                        attr: l.clone(),
                    }),
                    Some(AttrType::Single) => {
                        if !value.is_singleton() {
                            top.attr_viols.push(Violation::NotSingleton {
                                node: node_id,
                                attr: l.clone(),
                                len: value.len(),
                            });
                        }
                    }
                    Some(AttrType::SetValued) => {}
                }
            }
            if self.strict {
                for (l, _) in self.s.attributes(&top.label) {
                    if find_attr(&top.pending_attrs, l).is_none() {
                        top.attr_viols.push(Violation::MissingAttribute {
                            node: node_id,
                            attr: l.clone(),
                        });
                    }
                }
            }
        }
        // Column fill — by label, declared or not, because `ext(τ)` (and
        // hence the tree path's columns) includes undeclared nodes too.
        if let Some(pi) = top.plan {
            let tp = &self.tau_plans[pi];
            for (l, col) in &tp.attr_singles {
                let sym = match find_attr(&top.pending_attrs, l).and_then(AttrValue::as_single) {
                    Some(v) => Some(self.interner.intern(v)),
                    None => None,
                };
                debug_assert_eq!(self.single_cols[*col].len(), top.ext_pos);
                self.single_cols[*col].push(sym);
            }
            for (l, col) in &tp.sets {
                let syms = match find_attr(&top.pending_attrs, l) {
                    Some(v) => {
                        let mut syms = Vec::with_capacity(v.len());
                        for s in v.values() {
                            syms.push(self.interner.intern(s));
                        }
                        syms
                    }
                    None => Vec::new(),
                };
                debug_assert_eq!(self.set_cols[*col].len(), top.ext_pos);
                self.set_cols[*col].push(syms);
            }
            // Sub-element fields get a placeholder now (keeping the column
            // ext-aligned) and their value at close, when the children —
            // and hence uniqueness — are known.
            for (_, col) in &tp.sub_singles {
                debug_assert_eq!(self.single_cols[*col].len(), top.ext_pos);
                self.single_cols[*col].push(None);
            }
        }
    }

    fn close(&mut self) {
        self.seal_top();
        let mut frame = self.stack.pop().expect("Close matches an Open");
        let node_id = NodeId::from_index(frame.node as usize);
        if let Some((m, run)) = &frame.matcher {
            if !m.accepts(run) {
                self.tagged.push((
                    frame.node,
                    Violation::ContentModel {
                        node: node_id,
                        tau: frame.label.clone(),
                        expected: self
                            .s
                            .content_model(&frame.label)
                            .map(ToString::to_string)
                            .unwrap_or_default(),
                        found: std::mem::take(&mut frame.word),
                    },
                ));
            }
        }
        for v in frame.attr_viols.drain(..) {
            self.tagged.push((frame.node, v));
        }
        // Patch this element's unique-sub-element column entries.
        if let Some(pi) = frame.plan {
            for (i, (_, col)) in self.tau_plans[pi].sub_singles.iter().enumerate() {
                let (count, text) = &mut frame.subs[i];
                if *count == 1 {
                    if let Some(text) = text.take() {
                        self.single_cols[*col][frame.ext_pos] = Some(self.interner.intern(&text));
                    }
                }
            }
        }
        // Report to the parent's unique-sub-element tracking.
        if let Some(slot) = frame.sub_slot {
            if let Some(parent) = self.stack.last_mut() {
                let (count, text) = &mut parent.subs[slot];
                *count += 1;
                *text = if *count == 1 {
                    Some(std::mem::take(&mut frame.text))
                } else {
                    None // a second child with this label: field undefined
                };
            }
        }
    }

    /// Sorts the structural violations into node order and runs the shared
    /// constraint checker over the streamed columns.
    pub(crate) fn finish(mut self, threads: usize) -> Report {
        debug_assert!(self.stack.is_empty(), "finish before the root closed");
        let obs = self.obs.clone();
        // The deferred node-order sort is streaming's share of the
        // "structure" phase; everything else structural happened inside
        // the fused "parse" pass (see DESIGN.md §4.10).
        let mut violations: Vec<Violation> = {
            let _structure = obs.span("structure");
            self.tagged.sort_by_key(|&(n, _)| n); // stable: per-node order kept
            self.tagged.into_iter().map(|(_, v)| v).collect()
        };
        let doc = {
            let _plan = obs.span("plan");
            let singles: HashMap<(Name, Field), Vec<Option<Sym>>> =
                self.single_keys.into_iter().zip(self.single_cols).collect();
            let sets: HashMap<(Name, Name), Vec<Vec<Sym>>> =
                self.set_keys.into_iter().zip(self.set_cols).collect();
            DocIndex::from_parts(self.interner, singles, sets, &self.ext, self.s, self.plan)
        };
        check_planned(
            &self.ext,
            self.dtdc,
            &doc,
            threads,
            self.node_count as usize,
            &obs,
            &mut violations,
        );
        if obs.enabled() {
            obs.add("nodes", u64::from(self.node_count));
            obs.add("attrs", self.attr_count);
            obs.add("violations", violations.len() as u64);
            obs.max("stream.peak_depth", self.max_depth as u64);
        }
        Report {
            violations,
            metrics: obs.snapshot(),
        }
    }
}

impl Validator<'_> {
    /// Validates a document directly from its source text, without ever
    /// materializing a [`DataTree`]: the event stream drives the matcher
    /// automata (O(depth) live state) and fills the compiled constraint
    /// columns on the fly. The report is byte-identical to parsing the
    /// document and calling [`Validator::validate`], at any thread count.
    ///
    /// With [`Options::threads`](crate::Options) `> 1` (and the `parallel`
    /// feature), lexing moves to a producer thread feeding a bounded
    /// channel, overlapping parsing with checking; the remaining budget
    /// fans out the final constraint pass.
    ///
    /// Errors are *parse* errors only — invalid documents yield an `Ok`
    /// report listing violations, exactly like the tree path.
    pub fn validate_stream(&self, src: &str) -> Result<Report, XmlError> {
        self.validate_events(parse_events(src))
    }

    /// Validates an event stream (see [`Validator::validate_stream`]).
    ///
    /// The parser's internal-subset DTD, if any, decides which attribute
    /// values tokenize into sets — the same rule
    /// [`parse_document`](xic_xml::parse_document) applies — so the stream
    /// sees the values the tree would have held.
    pub fn validate_events(&self, mut events: EventParser<'_>) -> Result<Report, XmlError> {
        let doc_dtd = events.dtd()?.cloned();
        let threads = self.effective_threads();
        let mut checker = StreamChecker::new(self, doc_dtd);
        #[cfg(feature = "parallel")]
        if threads > 1 {
            {
                let _parse = self.obs.span("parse");
                run_pipelined(events, &mut checker, &self.obs)?;
            }
            return Ok(checker.finish(threads));
        }
        // threads == 1: a pure pull loop — no channel, no scope, no
        // synchronization of any kind. Streaming fuses lexing with
        // structural checking, so "parse" covers the whole single pass.
        {
            let _parse = self.obs.span("parse");
            for ev in &mut events {
                checker.on_event(ev?);
            }
        }
        self.flush_parse_stats(events.stats());
        Ok(checker.finish(threads))
    }

    /// Flushes the parser's plain-field counters to the collector, once
    /// per document (the parser itself has no collector dependency).
    pub(crate) fn flush_parse_stats(&self, stats: xic_xml::ParseStats) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.add("xml.events", stats.events);
        self.obs
            .add("xml.entity_expansions", stats.entity_expansions);
    }
}

/// The pipelined event loop: a producer thread lexes batches of events
/// into a bounded channel while the consumer (this thread) applies them.
/// Only the lexer moves — application order is untouched, which is what
/// keeps reports byte-identical regardless of thread count.
#[cfg(feature = "parallel")]
fn run_pipelined<'s>(
    events: EventParser<'s>,
    checker: &mut StreamChecker<'_>,
    obs: &Obs,
) -> Result<(), XmlError> {
    use std::sync::mpsc;
    /// Events per channel message: large enough to amortize the channel,
    /// small enough to bound in-flight memory (`BATCH × BOUND` events).
    const BATCH: usize = 1024;
    /// Channel capacity in batches.
    const BOUND: usize = 8;
    let (tx, rx) = mpsc::sync_channel::<Result<Vec<Event<'s>>, XmlError>>(BOUND);
    std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            let mut events = events;
            let mut batch = Vec::with_capacity(BATCH);
            for ev in &mut events {
                match ev {
                    Ok(ev) => {
                        batch.push(ev);
                        if batch.len() == BATCH {
                            let full = std::mem::replace(&mut batch, Vec::with_capacity(BATCH));
                            if tx.send(Ok(full)).is_err() {
                                return events.stats(); // receiver bailed on an error
                            }
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return events.stats();
                    }
                }
            }
            let _ = tx.send(Ok(batch));
            events.stats()
        });
        // `stream.recv_wait` is time this consumer spends starved (the
        // producer still lexing); `stream.apply` is time spent applying
        // events. Both recorded per batch, never per event.
        let result = loop {
            let msg = {
                let _wait = obs.span("stream.recv_wait");
                rx.recv()
            };
            let Ok(msg) = msg else {
                break Ok(()); // producer done, channel drained
            };
            let batch = match msg {
                Ok(batch) => batch,
                Err(e) => break Err(e),
            };
            let _apply = obs.span("stream.apply");
            obs.add("stream.batches", 1);
            for ev in batch {
                checker.on_event(ev);
            }
        };
        // Unblock a producer still sending before the scope joins it.
        drop(rx);
        if let Ok(stats) = producer.join() {
            if obs.enabled() {
                obs.add("xml.events", stats.events);
                obs.add("xml.entity_expansions", stats.entity_expansions);
            }
        }
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MatcherKind, Options};
    use xic_constraints::examples::book_dtdc;
    use xic_xml::parse_document;

    const BOOK: &str = r#"<book>
  <entry isbn="1-55860-622-X"><title>Data on the Web</title><publisher>MK</publisher></entry>
  <author>Abiteboul</author>
  <section sid="s1"><title>Intro</title><text>...</text></section>
  <ref to="1-55860-622-X"/>
</book>"#;

    /// Documents exercising every violation kind the stream must order
    /// exactly like the tree engine.
    const DOCS: &[&str] = &[
        BOOK,
        // Wrong root + unknown types + stray attributes.
        r#"<library bad="x"><book/><shelf id="1">text</shelf></library>"#,
        // Content-model failures at several depths, undeclared and
        // duplicate-set attributes, missing required attributes.
        r#"<book><entry><title>T</title></entry><section sid="a b"><section sid="inner"><bogus/></section></section><ref to=""/></book>"#,
        // Key/foreign-key violations: duplicate isbn, dangling ref.
        r#"<book>
  <entry isbn="k"><title>A</title><publisher>P</publisher></entry>
  <entry isbn="k"><title>A</title><publisher>P</publisher></entry>
  <author>A</author>
  <ref to="missing"/>
</book>"#,
        // Unique sub-element field: two titles make entry.title undefined.
        r#"<book><entry isbn="i"><title>A</title><title>B</title><publisher>P</publisher></entry><author>A</author><ref to="i"/></book>"#,
    ];

    fn assert_stream_matches_tree(src: &str) {
        let d = book_dtdc();
        for kind in [MatcherKind::Dfa, MatcherKind::Nfa, MatcherKind::Derivative] {
            for strict in [true, false] {
                for threads in [1, 2, 4] {
                    let opts = Options {
                        strict_attributes: strict,
                        threads,
                    };
                    let v = Validator::with_matcher(&d, kind, opts);
                    let tree = parse_document(src).unwrap().tree;
                    let want = v.validate(&tree);
                    let got = v.validate_stream(src).unwrap();
                    assert_eq!(
                        format!("{want}"),
                        format!("{got}"),
                        "kind={kind:?} strict={strict} threads={threads}\n{src}"
                    );
                    assert_eq!(want.violations, got.violations);
                }
            }
        }
    }

    #[test]
    fn stream_report_equals_tree_report() {
        for src in DOCS {
            assert_stream_matches_tree(src);
        }
    }

    #[test]
    fn valid_book_is_valid_streamed() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        let r = v.validate_stream(BOOK).unwrap();
        assert!(r.is_valid(), "{r}");
    }

    #[test]
    fn parse_errors_surface_with_positions() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        let e = v
            .validate_stream("<book>\n  <entry></wrong>\n</book>")
            .unwrap_err();
        assert_eq!(e.line, 2, "{e}");
        assert!(e.to_string().contains("at 2:"), "{e}");
    }

    #[test]
    fn document_dtd_drives_set_splitting() {
        // The document's own DTD declares `to` as IDREFS, so "a b" is a
        // two-element set in both paths — and both of its members then
        // dangle as foreign keys against entry.isbn.
        let src = r#"<!DOCTYPE book [
  <!ELEMENT book (entry|author|ref)*>
  <!ELEMENT entry (title, publisher)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT publisher (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT ref EMPTY>
  <!ATTLIST entry isbn CDATA #IMPLIED>
  <!ATTLIST ref to IDREFS #IMPLIED>
]>
<book><entry isbn="i"><title>T</title><publisher>P</publisher></entry><author>A</author><ref to="a b"/></book>"#;
        assert_stream_matches_tree(src);
    }
}
