//! Deterministic thread fan-out for the validation engine.
//!
//! The engine parallelizes at two grains — across constraints, and across
//! chunks of one element extent — and in both cases results are returned
//! **in input order**, so concatenating them reproduces the sequential
//! engine's output byte for byte. The helpers here are plain
//! `std::thread::scope` fan-outs (no external thread-pool dependency);
//! with the `parallel` feature disabled, or `threads <= 1`, they degrade
//! to the sequential loop.
//!
//! Both helpers accept an [`Obs`] handle and a span name: when work
//! actually fans out across worker threads, each task records one
//! `task_span` span and bumps the `par.tasks` counter. The sequential
//! fallback records nothing — its time is already covered by the
//! enclosing phase span, and per-task spans there would double-count.

use std::ops::Range;

use xic_obs::Obs;

/// Applies `f` to each item, returning results in input order, using up to
/// `threads` worker threads. Per-task timings are recorded against
/// `task_span` only on the parallel path.
pub(crate) fn fan_out<T, R, F>(
    threads: usize,
    items: Vec<T>,
    obs: &Obs,
    task_span: &'static str,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    #[cfg(feature = "parallel")]
    {
        parallel_impl::fan_out(threads, items, obs, task_span, f)
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = (obs, task_span);
        items.into_iter().map(f).collect()
    }
}

/// Minimum extent length worth splitting across threads: below this, the
/// per-thread setup cost outweighs the scan.
pub(crate) const SPLIT_THRESHOLD: usize = 4096;

/// Minimum document vertices per worker thread. E11 measured the engine at
/// 10⁵ vertices running *slower* with 2 and 4 threads than with 1 (spawn +
/// order-preserving merge overhead exceeds the saved scan time), while 10⁶
/// vertices amortize it; the threshold sits between, so a requested (or
/// auto-detected) thread budget is clamped to `nodes / MIN_NODES_PER_THREAD`
/// and small documents always take the sequential fast path.
pub(crate) const MIN_NODES_PER_THREAD: usize = 200_000;

/// Splits `0..len` into at most `threads` contiguous chunks, applies `f` to
/// each, and returns the chunk results in order. Falls back to a single
/// chunk when `threads <= 1` or `len < SPLIT_THRESHOLD`. Per-chunk timings
/// are recorded against `task_span` only when the chunks fan out.
pub(crate) fn chunked<R, F>(
    threads: usize,
    len: usize,
    obs: &Obs,
    task_span: &'static str,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if threads <= 1 || len < SPLIT_THRESHOLD {
        return vec![f(0..len)];
    }
    let chunk = len.div_ceil(threads).max(SPLIT_THRESHOLD / 2);
    let ranges: Vec<Range<usize>> = (0..len)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(len))
        .collect();
    fan_out(threads, ranges, obs, task_span, f)
}

#[cfg(feature = "parallel")]
mod parallel_impl {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    use xic_obs::Obs;

    pub(super) fn fan_out<T, R, F>(
        threads: usize,
        items: Vec<T>,
        obs: &Obs,
        task_span: &'static str,
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let queue: Mutex<VecDeque<(usize, T)>> =
            Mutex::new(items.into_iter().enumerate().collect());
        let n = queue.lock().unwrap().len();
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        let workers = threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let Some((i, item)) = queue.lock().unwrap().pop_front() else {
                        return;
                    };
                    let r = {
                        let _task = obs.span(task_span);
                        f(item)
                    };
                    obs.add("par.tasks", 1);
                    results.lock().unwrap().push((i, r));
                });
            }
        });
        let mut results = results.into_inner().unwrap();
        results.sort_by_key(|&(i, _)| i);
        results.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let items: Vec<usize> = (0..100).collect();
            let out = fan_out(threads, items, &Obs::off(), "par.test", |i| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunked_covers_range_exactly_once() {
        for threads in [1, 2, 4] {
            for len in [
                0,
                1,
                SPLIT_THRESHOLD - 1,
                SPLIT_THRESHOLD,
                3 * SPLIT_THRESHOLD + 17,
            ] {
                let chunks = chunked(threads, len, &Obs::off(), "par.test", |r| {
                    r.collect::<Vec<usize>>()
                });
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(
                    flat,
                    (0..len).collect::<Vec<_>>(),
                    "threads={threads} len={len}"
                );
            }
        }
    }

    #[test]
    fn small_inputs_stay_on_one_chunk() {
        let chunks = chunked(8, 100, &Obs::off(), "par.test", |r| r);
        assert_eq!(chunks, vec![0..100]);
    }

    #[test]
    fn parallel_fan_out_records_task_spans() {
        let collector = xic_obs::MetricsCollector::shared();
        let obs = Obs::new(collector.clone());
        let items: Vec<usize> = (0..8).collect();
        let out = fan_out(4, items, &obs, "par.test", |i| i + 1);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        #[cfg(feature = "parallel")]
        {
            let m = collector.snapshot();
            assert_eq!(m.counter("par.tasks"), 8);
            assert_eq!(m.span("par.test").count, 8);
        }
    }
}
