//! Structured validation reports.

use std::fmt;

use xic_model::{Name, NodeId};
use xic_obs::Metrics;

/// One validity failure: which clause of Definition 2.4 is violated, and
/// where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The root's label is not the root type `r`.
    RootLabel {
        /// Expected root type.
        expected: Name,
        /// Actual root label.
        found: Name,
    },
    /// A vertex is labelled with an undeclared element type.
    UnknownElementType {
        /// The vertex.
        node: NodeId,
        /// Its label.
        label: Name,
    },
    /// A vertex's child word is not in its content model's language.
    ContentModel {
        /// The vertex.
        node: NodeId,
        /// Its element type.
        tau: Name,
        /// The content model (printed).
        expected: String,
        /// The child word (printed labels).
        found: String,
    },
    /// An attribute present on a vertex is not declared (`att` defined but
    /// `R` undefined).
    UndeclaredAttribute {
        /// The vertex.
        node: NodeId,
        /// The attribute.
        attr: Name,
    },
    /// A declared attribute is absent (`R` defined but `att` undefined).
    MissingAttribute {
        /// The vertex.
        node: NodeId,
        /// The attribute.
        attr: Name,
    },
    /// A single-valued attribute holds a non-singleton set.
    NotSingleton {
        /// The vertex.
        node: NodeId,
        /// The attribute.
        attr: Name,
        /// The set's cardinality.
        len: usize,
    },
    /// Two distinct vertices agree on a key.
    Key {
        /// The violated constraint (printed).
        constraint: String,
        /// First vertex.
        a: NodeId,
        /// Second vertex.
        b: NodeId,
        /// The shared key value(s).
        value: String,
    },
    /// A (set-valued) foreign-key value has no referent.
    ForeignKey {
        /// The violated constraint (printed).
        constraint: String,
        /// The referencing vertex.
        node: NodeId,
        /// The dangling value(s).
        value: String,
    },
    /// A vertex misses the field a constraint needs (e.g. an absent unique
    /// sub-element, or an attribute expected by a key).
    MissingField {
        /// The constraint needing the field (printed).
        constraint: String,
        /// The vertex.
        node: NodeId,
        /// The field (printed).
        field: String,
    },
    /// Two vertices share an ID value (`→_id` uniqueness is
    /// document-wide).
    DuplicateId {
        /// The violated constraint (printed).
        constraint: String,
        /// First vertex.
        a: NodeId,
        /// Second vertex.
        b: NodeId,
        /// The shared ID value.
        value: String,
    },
    /// An inverse constraint fails: a forward reference is not echoed back.
    Inverse {
        /// The violated constraint (printed).
        constraint: String,
        /// The vertex holding the un-echoed reference.
        from: NodeId,
        /// The vertex that should point back.
        to: NodeId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::RootLabel { expected, found } => {
                write!(f, "root labelled {found}, expected {expected}")
            }
            Violation::UnknownElementType { node, label } => {
                write!(f, "{node:?}: undeclared element type {label}")
            }
            Violation::ContentModel {
                node,
                tau,
                expected,
                found,
            } => write!(
                f,
                "{node:?} ({tau}): children [{found}] do not match content model {expected}"
            ),
            Violation::UndeclaredAttribute { node, attr } => {
                write!(f, "{node:?}: undeclared attribute {attr}")
            }
            Violation::MissingAttribute { node, attr } => {
                write!(f, "{node:?}: missing declared attribute {attr}")
            }
            Violation::NotSingleton { node, attr, len } => write!(
                f,
                "{node:?}: single-valued attribute {attr} holds {len} values"
            ),
            Violation::Key {
                constraint,
                a,
                b,
                value,
            } => write!(f, "{constraint}: {a:?} and {b:?} share key {value}"),
            Violation::ForeignKey {
                constraint,
                node,
                value,
            } => write!(f, "{constraint}: {node:?} references missing {value}"),
            Violation::MissingField {
                constraint,
                node,
                field,
            } => write!(f, "{constraint}: {node:?} lacks field {field}"),
            Violation::DuplicateId {
                constraint,
                a,
                b,
                value,
            } => write!(f, "{constraint}: {a:?} and {b:?} share ID {value:?}"),
            Violation::Inverse {
                constraint,
                from,
                to,
            } => write!(
                f,
                "{constraint}: {from:?} references {to:?} without the inverse reference"
            ),
        }
    }
}

/// The outcome of validating one data tree.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All violations found (empty ⇒ valid).
    pub violations: Vec<Violation>,
    /// Per-run observability snapshot, present iff the producing
    /// validator had a metrics-aggregating collector attached (see
    /// `Validator::set_obs`). Never affects validity or `Display`.
    pub metrics: Option<Metrics>,
}

impl Report {
    /// A report of `violations` with no metrics attached.
    pub fn from_violations(violations: Vec<Violation>) -> Self {
        Report {
            violations,
            metrics: None,
        }
    }

    /// True iff no violation was found.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// True iff the report is empty (same as [`Report::is_valid`]).
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            return f.write_str("valid (0 violations)");
        }
        writeln!(
            f,
            "invalid: {} violation{}",
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" }
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_each_variant() {
        let n = |i: u32| -> NodeId {
            // NodeIds are opaque; obtain them through a builder.
            let mut b = xic_model::TreeBuilder::new();
            let mut last = b.node("x");
            for _ in 0..i {
                last = b.node("x");
            }
            last
        };
        let vs = vec![
            Violation::RootLabel {
                expected: Name::new("book"),
                found: Name::new("entry"),
            },
            Violation::Key {
                constraint: "entry.@isbn -> entry".into(),
                a: n(0),
                b: n(1),
                value: "x".into(),
            },
            Violation::ForeignKey {
                constraint: "ref.@to <=s entry.@isbn".into(),
                node: n(0),
                value: "y".into(),
            },
        ];
        for v in vs {
            assert!(!v.to_string().is_empty());
        }
        let r = Report::from_violations(vec![Violation::RootLabel {
            expected: Name::new("a"),
            found: Name::new("b"),
        }]);
        assert!(!r.is_valid());
        assert_eq!(r.len(), 1);
        assert!(r.to_string().contains("1 violation"));
    }
}
