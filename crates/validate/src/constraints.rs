//! Constraint satisfaction: `G ⊨ Σ` for the basic XML constraints.

use std::collections::HashMap;

use xic_constraints::{Constraint, DtdC, DtdStructure, Field};
use xic_model::{DataTree, ExtIndex, NodeId};

use crate::plan::CName;
use crate::report::Violation;

/// The unique child of `x` labelled `e`, or `None` when `x` has zero or
/// several such children.
///
/// §3.4 treats a sub-element field `τ.e` as defined only when the
/// sub-element is *unique*; with several `e` children "x.e" would not
/// denote a single value, so the field is undefined rather than the text
/// of an arbitrary first match.
pub(crate) fn unique_sub(tree: &DataTree, x: NodeId, e: &str) -> Option<NodeId> {
    let mut found = None;
    for c in tree.node(x).child_nodes() {
        if tree.label(c) == e {
            if found.is_some() {
                return None;
            }
            found = Some(c);
        }
    }
    found
}

/// The value of a field at a vertex: attribute lookup (single value) or the
/// text content of the unique sub-element with that label (§3.4).
///
/// Returns `None` when the attribute is absent / non-singleton, or the
/// sub-element is absent / non-unique.
pub(crate) fn field_value(tree: &DataTree, x: NodeId, field: &Field) -> Option<String> {
    match field {
        Field::Attr(l) => tree.attr(x, l)?.as_single().cloned(),
        Field::Sub(e) => Some(tree.node(unique_sub(tree, x, e)?).text()),
    }
}

/// The tuple `x[X]` over fields; `None` if any component is undefined.
fn tuple(tree: &DataTree, x: NodeId, fields: &[Field]) -> Option<Vec<String>> {
    fields.iter().map(|f| field_value(tree, x, f)).collect()
}

/// The set value `x.l` of a set-valued attribute (empty if absent).
fn set_value<'t>(tree: &'t DataTree, x: NodeId, l: &str) -> &'t [String] {
    tree.attr(x, l).map(|v| v.values()).unwrap_or(&[])
}

/// Checks a single constraint against a data tree.
///
/// This is the semantic ground truth used by tests and by the implication
/// engine's counterexample checking: a constraint solver's "not implied"
/// answer comes with a witness tree, and this function confirms the witness
/// satisfies `Σ` while violating `φ`. The [`crate::Validator`]'s compiled
/// engine is required (and property-tested) to reproduce, for each
/// constraint in Σ, exactly this function's violations in order.
pub fn check_constraint(tree: &DataTree, dtdc: &DtdC, c: &Constraint) -> Vec<Violation> {
    let idx = ExtIndex::build(tree);
    let s = dtdc.structure();
    let global_ids = build_global_ids(tree, &idx, s);
    let mut out = Vec::new();
    check_one(tree, &idx, s, c, &global_ids, &mut out);
    out
}

fn build_global_ids(
    tree: &DataTree,
    idx: &ExtIndex,
    s: &DtdStructure,
) -> HashMap<String, Vec<NodeId>> {
    let mut map: HashMap<String, Vec<NodeId>> = HashMap::new();
    for tau in s.element_types() {
        let Some(id_attr) = s.id_attr(tau) else {
            continue;
        };
        for &x in idx.ext(tau) {
            if let Some(v) = tree.attr(x, id_attr).and_then(|v| v.as_single()) {
                map.entry(v.clone()).or_default().push(x);
            }
        }
    }
    map
}

fn check_one(
    tree: &DataTree,
    idx: &ExtIndex,
    s: &DtdStructure,
    c: &Constraint,
    global_ids: &HashMap<String, Vec<NodeId>>,
    out: &mut Vec<Violation>,
) {
    // Rendering a constraint for a report is lazy: clean documents (the
    // common case) never pay for formatting Σ.
    let cname = CName::new(c);
    match c {
        Constraint::Key { tau, fields } => {
            let mut seen: HashMap<Vec<String>, NodeId> = HashMap::new();
            for &x in idx.ext(tau) {
                let Some(t) = tuple(tree, x, fields) else {
                    continue; // undefined tuples cannot witness equality
                };
                match seen.get(&t) {
                    Some(&prev) => out.push(Violation::Key {
                        constraint: cname.get(),
                        a: prev,
                        b: x,
                        value: t.join(", "),
                    }),
                    None => {
                        seen.insert(t, x);
                    }
                }
            }
        }
        Constraint::ForeignKey {
            tau,
            fields,
            target,
            target_fields,
        } => {
            let targets: std::collections::HashSet<Vec<String>> = idx
                .ext(target)
                .iter()
                .filter_map(|&y| tuple(tree, y, target_fields))
                .collect();
            for &x in idx.ext(tau) {
                match tuple(tree, x, fields) {
                    Some(t) => {
                        if !targets.contains(&t) {
                            out.push(Violation::ForeignKey {
                                constraint: cname.get(),
                                node: x,
                                value: t.join(", "),
                            });
                        }
                    }
                    None => out.push(Violation::MissingField {
                        constraint: cname.get(),
                        node: x,
                        field: fields
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(", "),
                    }),
                }
            }
        }
        Constraint::SetForeignKey {
            tau,
            attr,
            target,
            target_field,
        } => {
            let targets: std::collections::HashSet<String> = idx
                .ext(target)
                .iter()
                .filter_map(|&y| field_value(tree, y, target_field))
                .collect();
            for &x in idx.ext(tau) {
                for v in set_value(tree, x, attr) {
                    if !targets.contains(v) {
                        out.push(Violation::ForeignKey {
                            constraint: cname.get(),
                            node: x,
                            value: v.clone(),
                        });
                    }
                }
            }
        }
        Constraint::InverseU {
            tau,
            key,
            attr,
            target,
            target_key,
            target_attr,
        } => {
            check_inverse(
                tree,
                idx,
                &cname,
                tau,
                key,
                attr,
                target,
                target_key,
                target_attr,
                out,
            );
            check_inverse(
                tree,
                idx,
                &cname,
                target,
                target_key,
                target_attr,
                tau,
                key,
                attr,
                out,
            );
        }
        Constraint::Id { tau } => {
            let Some(id_attr) = s.id_attr(tau) else {
                return; // rejected at well-formedness; nothing to check
            };
            for &x in idx.ext(tau) {
                match tree.attr(x, id_attr).and_then(|v| v.as_single()) {
                    None => out.push(Violation::MissingField {
                        constraint: cname.get(),
                        node: x,
                        field: format!("@{id_attr}"),
                    }),
                    Some(v) => {
                        for &y in global_ids.get(v).into_iter().flatten() {
                            if y != x {
                                out.push(Violation::DuplicateId {
                                    constraint: cname.get(),
                                    a: x,
                                    b: y,
                                    value: v.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        Constraint::FkToId { tau, attr, target } => {
            let targets = id_values(tree, idx, s, target);
            for &x in idx.ext(tau) {
                let Some(v) = tree.attr(x, attr).and_then(|v| v.as_single()) else {
                    continue;
                };
                if !targets.contains(v) {
                    out.push(Violation::ForeignKey {
                        constraint: cname.get(),
                        node: x,
                        value: v.clone(),
                    });
                }
            }
        }
        Constraint::SetFkToId { tau, attr, target } => {
            let targets = id_values(tree, idx, s, target);
            for &x in idx.ext(tau) {
                for v in set_value(tree, x, attr) {
                    if !targets.contains(v) {
                        out.push(Violation::ForeignKey {
                            constraint: cname.get(),
                            node: x,
                            value: v.clone(),
                        });
                    }
                }
            }
        }
        Constraint::InverseId {
            tau,
            attr,
            target,
            target_attr,
        } => {
            let (Some(id_tau), Some(id_target)) = (s.id_attr(tau), s.id_attr(target)) else {
                return; // rejected at well-formedness
            };
            // The L_id inverse carries reference typing (cf. rule
            // Inv-SFK-ID): the paired IDREFS attributes contain only IDs of
            // the partner type, i.e. τ.l ⊆_S τ'.id and τ'.l' ⊆_S τ.id.
            for (src, src_attr, dst) in [(tau, attr, target), (target, target_attr, tau)] {
                let targets = id_values(tree, idx, s, dst);
                for &x in idx.ext(src) {
                    for v in set_value(tree, x, src_attr) {
                        if !targets.contains(v) {
                            out.push(Violation::ForeignKey {
                                constraint: cname.get(),
                                node: x,
                                value: v.clone(),
                            });
                        }
                    }
                }
            }
            let key_tau = Field::Attr(id_tau.clone());
            let key_target = Field::Attr(id_target.clone());
            check_inverse(
                tree,
                idx,
                &cname,
                tau,
                &key_tau,
                attr,
                target,
                &key_target,
                target_attr,
                out,
            );
            check_inverse(
                tree,
                idx,
                &cname,
                target,
                &key_target,
                target_attr,
                tau,
                &key_tau,
                attr,
                out,
            );
        }
    }
}

fn id_values(
    tree: &DataTree,
    idx: &ExtIndex,
    s: &DtdStructure,
    tau: &xic_model::Name,
) -> std::collections::HashSet<String> {
    let Some(id_attr) = s.id_attr(tau) else {
        return Default::default();
    };
    idx.ext(tau)
        .iter()
        .filter_map(|&y| tree.attr(y, id_attr).and_then(|v| v.as_single()).cloned())
        .collect()
}

/// One direction of an inverse constraint:
/// `∀x ∈ ext(τ) ∀y ∈ ext(τ') (x.key ∈ y.attr' → y.key' ∈ x.attr)`.
///
/// Implemented by indexing `ext(τ)` on the key and scanning `y.attr'`.
#[allow(clippy::too_many_arguments)]
fn check_inverse(
    tree: &DataTree,
    idx: &ExtIndex,
    cname: &CName<'_>,
    tau: &xic_model::Name,
    key: &Field,
    attr: &xic_model::Name,
    target: &xic_model::Name,
    target_key: &Field,
    target_attr: &xic_model::Name,
    out: &mut Vec<Violation>,
) {
    let mut by_key: HashMap<String, Vec<NodeId>> = HashMap::new();
    for &x in idx.ext(tau) {
        if let Some(v) = field_value(tree, x, key) {
            by_key.entry(v).or_default().push(x);
        }
    }
    for &y in idx.ext(target) {
        let Some(yk) = field_value(tree, y, target_key) else {
            continue;
        };
        for v in set_value(tree, y, target_attr) {
            for &x in by_key.get(v).into_iter().flatten() {
                // x.key ∈ y.target_attr holds; require y.target_key ∈ x.attr.
                let echoed = tree.attr(x, attr).is_some_and(|set| set.contains(&yk));
                if !echoed {
                    out.push(Violation::Inverse {
                        constraint: cname.get(),
                        from: y,
                        to: x,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, Validator};
    use xic_constraints::examples::{book_dtdc, company_dtdc, publishers_dtdc};
    use xic_model::{AttrValue, TreeBuilder};

    /// A valid company document: two persons, one dept, consistent
    /// references and inverse relationships.
    fn company_doc() -> DataTree {
        let mut b = TreeBuilder::new();
        let db = b.node("db");
        let p1 = b.child_node(db, "person").unwrap();
        b.attr(p1, "oid", AttrValue::single("p1")).unwrap();
        b.attr(p1, "in_dept", AttrValue::set(["d1"])).unwrap();
        b.leaf(p1, "name", "Alice").unwrap();
        b.leaf(p1, "address", "1 Main St").unwrap();
        let p2 = b.child_node(db, "person").unwrap();
        b.attr(p2, "oid", AttrValue::single("p2")).unwrap();
        b.attr(p2, "in_dept", AttrValue::set(["d1"])).unwrap();
        b.leaf(p2, "name", "Bob").unwrap();
        b.leaf(p2, "address", "2 Side St").unwrap();
        let d1 = b.child_node(db, "dept").unwrap();
        b.attr(d1, "oid", AttrValue::single("d1")).unwrap();
        b.attr(d1, "manager", AttrValue::single("p1")).unwrap();
        b.attr(d1, "has_staff", AttrValue::set(["p1", "p2"]))
            .unwrap();
        b.leaf(d1, "dname", "R&D").unwrap();
        b.finish(db).unwrap()
    }

    #[test]
    fn valid_company_document_passes() {
        let d = company_dtdc();
        let t = company_doc();
        let r = validate(&t, &d);
        assert!(r.is_valid(), "{r}");
    }

    #[test]
    fn duplicate_ids_across_types_detected() {
        // L_id's →_id is document-wide: a person and a dept sharing an oid
        // violate both ID constraints.
        let d = company_dtdc();
        let mut b = TreeBuilder::new();
        let db = b.node("db");
        let p = b.child_node(db, "person").unwrap();
        b.attr(p, "oid", AttrValue::single("same")).unwrap();
        b.attr(p, "in_dept", AttrValue::set(["same"])).unwrap();
        b.leaf(p, "name", "A").unwrap();
        b.leaf(p, "address", "x").unwrap();
        let dd = b.child_node(db, "dept").unwrap();
        b.attr(dd, "oid", AttrValue::single("same")).unwrap();
        b.attr(dd, "manager", AttrValue::single("same")).unwrap();
        b.attr(dd, "has_staff", AttrValue::set(["same"])).unwrap();
        b.leaf(dd, "dname", "D").unwrap();
        let t = b.finish(db).unwrap();
        let r = validate(&t, &d);
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::DuplicateId { .. })),
            "{r}"
        );
    }

    #[test]
    fn inverse_violation_detected() {
        // dept.has_staff lists p2, but p2.in_dept does not list the dept.
        let d = company_dtdc();
        let mut b = TreeBuilder::new();
        let db = b.node("db");
        let p1 = b.child_node(db, "person").unwrap();
        b.attr(p1, "oid", AttrValue::single("p1")).unwrap();
        b.attr(p1, "in_dept", AttrValue::set(["d1"])).unwrap();
        b.leaf(p1, "name", "A").unwrap();
        b.leaf(p1, "address", "x").unwrap();
        let p2 = b.child_node(db, "person").unwrap();
        b.attr(p2, "oid", AttrValue::single("p2")).unwrap();
        b.attr(p2, "in_dept", AttrValue::set(Vec::<String>::new()))
            .unwrap();
        b.leaf(p2, "name", "B").unwrap();
        b.leaf(p2, "address", "y").unwrap();
        let d1 = b.child_node(db, "dept").unwrap();
        b.attr(d1, "oid", AttrValue::single("d1")).unwrap();
        b.attr(d1, "manager", AttrValue::single("p1")).unwrap();
        b.attr(d1, "has_staff", AttrValue::set(["p1", "p2"]))
            .unwrap();
        b.leaf(d1, "dname", "D").unwrap();
        let t = b.finish(db).unwrap();
        let r = validate(&t, &d);
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, Violation::Inverse { .. })),
            "{r}"
        );
        // Exactly one direction fails.
        assert_eq!(
            r.violations
                .iter()
                .filter(|v| matches!(v, Violation::Inverse { .. }))
                .count(),
            1,
            "{r}"
        );
    }

    #[test]
    fn sub_element_key_checked() {
        // Two persons with the same name violate person.name -> person.
        let d = company_dtdc();
        let mut b = TreeBuilder::new();
        let db = b.node("db");
        for (oid, dept) in [("p1", "d1"), ("p2", "d1")] {
            let p = b.child_node(db, "person").unwrap();
            b.attr(p, "oid", AttrValue::single(oid)).unwrap();
            b.attr(p, "in_dept", AttrValue::set([dept])).unwrap();
            b.leaf(p, "name", "SameName").unwrap();
            b.leaf(p, "address", "x").unwrap();
        }
        let d1 = b.child_node(db, "dept").unwrap();
        b.attr(d1, "oid", AttrValue::single("d1")).unwrap();
        b.attr(d1, "manager", AttrValue::single("p1")).unwrap();
        b.attr(d1, "has_staff", AttrValue::set(["p1", "p2"]))
            .unwrap();
        b.leaf(d1, "dname", "D").unwrap();
        let t = b.finish(db).unwrap();
        let r = validate(&t, &d);
        let key_viols: Vec<_> = r
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::Key { .. }))
            .collect();
        assert_eq!(key_viols.len(), 1, "{r}");
        assert!(key_viols[0].to_string().contains("SameName"));
    }

    #[test]
    fn non_unique_sub_element_field_is_undefined() {
        // §3.4: `x.name` denotes the *unique* name child. Give both persons
        // two name children whose first copies collide; the field is
        // undefined, so the key has no witness. (The old checker read the
        // first matching child and reported a spurious violation.)
        let d = company_dtdc();
        let mut b = TreeBuilder::new();
        let db = b.node("db");
        for oid in ["p1", "p2"] {
            let p = b.child_node(db, "person").unwrap();
            b.attr(p, "oid", AttrValue::single(oid)).unwrap();
            b.attr(p, "in_dept", AttrValue::set(Vec::<String>::new()))
                .unwrap();
            b.leaf(p, "name", "SameName").unwrap();
            b.leaf(p, "name", format!("Second-{oid}")).unwrap();
            b.leaf(p, "address", "x").unwrap();
        }
        let t = b.finish(db).unwrap();
        let key = Constraint::sub_key("person", "name");
        assert!(check_constraint(&t, &d, &key).is_empty());
        // The compiled engine agrees (content-model violations aside).
        let r = validate(&t, &d);
        assert!(
            !r.violations
                .iter()
                .any(|v| matches!(v, Violation::Key { .. })),
            "{r}"
        );
    }

    #[test]
    fn set_fk_dangling_reference() {
        let d = book_dtdc();
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        let entry = b.child_node(book, "entry").unwrap();
        b.attr(entry, "isbn", AttrValue::single("x1")).unwrap();
        b.leaf(entry, "title", "T").unwrap();
        b.leaf(entry, "publisher", "P").unwrap();
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["x1", "dangling"])).unwrap();
        let t = b.finish(book).unwrap();
        let rep = validate(&t, &d);
        let fks: Vec<_> = rep
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::ForeignKey { .. }))
            .collect();
        assert_eq!(fks.len(), 1, "{rep}");
        assert!(fks[0].to_string().contains("dangling"));
    }

    #[test]
    fn multi_attribute_key_and_fk() {
        let d = publishers_dtdc();
        let mut b = TreeBuilder::new();
        let db = b.node("db");
        let pubs = b.child_node(db, "publishers").unwrap();
        for (pn, co) in [("MK", "USA"), ("MK", "UK")] {
            let p = b.child_node(pubs, "publisher").unwrap();
            b.attr(p, "pname", AttrValue::single(pn)).unwrap();
            b.attr(p, "country", AttrValue::single(co)).unwrap();
            b.leaf(p, "pname", pn).unwrap();
            b.leaf(p, "country", co).unwrap();
            b.leaf(p, "address", "addr").unwrap();
        }
        let eds = b.child_node(db, "editors").unwrap();
        let e = b.child_node(eds, "editor").unwrap();
        b.attr(e, "name", AttrValue::single("Ed")).unwrap();
        b.attr(e, "pname", AttrValue::single("MK")).unwrap();
        b.attr(e, "country", AttrValue::single("USA")).unwrap();
        b.leaf(e, "name", "Ed").unwrap();
        b.leaf(e, "pname", "MK").unwrap();
        b.leaf(e, "country", "USA").unwrap();
        let t = b.finish(db).unwrap();
        // Same pname, different countries: the composite key is respected.
        let rep = validate(&t, &d);
        assert!(rep.is_valid(), "{rep}");

        // Now break the FK: editor references (MK, France).
        let mut b = TreeBuilder::new();
        let db = b.node("db");
        let pubs = b.child_node(db, "publishers").unwrap();
        let p = b.child_node(pubs, "publisher").unwrap();
        b.attr(p, "pname", AttrValue::single("MK")).unwrap();
        b.attr(p, "country", AttrValue::single("USA")).unwrap();
        b.leaf(p, "pname", "MK").unwrap();
        b.leaf(p, "country", "USA").unwrap();
        b.leaf(p, "address", "addr").unwrap();
        let eds = b.child_node(db, "editors").unwrap();
        let e = b.child_node(eds, "editor").unwrap();
        b.attr(e, "name", AttrValue::single("Ed")).unwrap();
        b.attr(e, "pname", AttrValue::single("MK")).unwrap();
        b.attr(e, "country", AttrValue::single("France")).unwrap();
        b.leaf(e, "name", "Ed").unwrap();
        b.leaf(e, "pname", "MK").unwrap();
        b.leaf(e, "country", "France").unwrap();
        let t = b.finish(db).unwrap();
        let rep = validate(&t, &d);
        assert!(
            rep.violations
                .iter()
                .any(|v| matches!(v, Violation::ForeignKey { .. })),
            "{rep}"
        );
    }

    #[test]
    fn check_constraint_isolates_one_constraint() {
        let d = book_dtdc();
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        for isbn in ["same", "same"] {
            let entry = b.child_node(book, "entry").unwrap();
            b.attr(entry, "isbn", AttrValue::single(isbn)).unwrap();
            b.leaf(entry, "title", "T").unwrap();
            b.leaf(entry, "publisher", "P").unwrap();
        }
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["same"])).unwrap();
        let t = b.finish(book).unwrap();
        let key = Constraint::unary_key("entry", "isbn");
        let viols = check_constraint(&t, &d, &key);
        assert_eq!(viols.len(), 1);
        let fk = Constraint::set_fk("ref", "to", "entry", "isbn");
        assert!(check_constraint(&t, &d, &fk).is_empty());
    }

    #[test]
    fn validator_reuse_across_documents() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        for isbn in ["a", "b", "c"] {
            let mut b = TreeBuilder::new();
            let book = b.node("book");
            let entry = b.child_node(book, "entry").unwrap();
            b.attr(entry, "isbn", AttrValue::single(isbn)).unwrap();
            b.leaf(entry, "title", "T").unwrap();
            b.leaf(entry, "publisher", "P").unwrap();
            let r = b.child_node(book, "ref").unwrap();
            b.attr(r, "to", AttrValue::set([isbn])).unwrap();
            let t = b.finish(book).unwrap();
            assert!(v.validate(&t).is_valid());
        }
    }
}
