//! Incremental constraint revalidation under document edits.
//!
//! [`Validator::validate`] rebuilds the extent index, re-extracts every
//! planned column, and rescans every constraint for each call — Θ(doc) work
//! even when one attribute changed. [`LiveValidator`] instead owns the tree
//! and maintains, across edits, exactly the state a from-scratch run would
//! compute:
//!
//! * a **mutable columnar store** — per planned `(τ, field)` a map from
//!   vertex to interned value plus a reverse occurrence index (value ↦
//!   vertices), replacing the extent-aligned one-shot columns of
//!   [`crate::plan`]'s `DocIndex`;
//! * **refcounted membership sets** ([`CountedSymSet`], and tuple refcounts
//!   for n-ary foreign keys) in place of the one-shot first-seen tables and
//!   bitsets, so target values can be retracted one occurrence at a time;
//! * a **per-vertex structural map**: the content-model and attribute
//!   violations of each vertex, recomputed only for vertices whose own
//!   child word or attributes an edit touched;
//! * per-constraint **violation tables** keyed so that in-order iteration
//!   reproduces the sequential engine's emission order byte for byte.
//!
//! Each edit returns an [`EditOutcome`]: the typed [`Edit`] delta the tree
//! produced and a [`ReportDiff`] of violations newly raised and newly
//! cleared, while [`LiveValidator::report`] stays byte-identical to
//! `Validator::validate` on the current tree (enforced by the
//! `incremental_equivalence` proptest).
//!
//! Per edit the work is bounded by the number of vertices whose violation
//! status can actually change — the edited vertex, its parent, and the
//! vertices sharing a key/reference value with it — never by document size.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use xic_constraints::{Constraint, DtdC, Field};
use xic_model::{
    AttrValue, DataTree, Edit, ExtIndex, FastHashMap, Interner, ModelError, Name, NodeId, Sym,
    Value,
};
use xic_obs::{Metrics, Obs};
use xic_regex::Symbol;

use crate::plan::{extract_single, CountedSymSet};
use crate::report::{Report, Violation};
use crate::structure::Validator;

/// The violations an edit newly raised and newly cleared.
///
/// `old report + raised − cleared = new report` as multisets; violations
/// that merely moved position in the report appear in neither list.
#[derive(Clone, Debug, Default)]
pub struct ReportDiff {
    /// Violations present after the edit but not before.
    pub raised: Vec<Violation>,
    /// Violations present before the edit but not after.
    pub cleared: Vec<Violation>,
    /// Cumulative observability snapshot, present iff the owning
    /// validator has a metrics-aggregating collector attached (see
    /// `Validator::set_obs`). Excluded from equality: two diffs raising
    /// and clearing the same violations are equal whatever was measured.
    pub metrics: Option<Metrics>,
}

impl PartialEq for ReportDiff {
    fn eq(&self, other: &Self) -> bool {
        self.raised == other.raised && self.cleared == other.cleared
    }
}

impl Eq for ReportDiff {}

impl ReportDiff {
    /// True iff the edit changed no violation.
    pub fn is_empty(&self) -> bool {
        self.raised.is_empty() && self.cleared.is_empty()
    }
}

/// The result of applying one edit through [`LiveValidator`]: the typed
/// tree delta and the violation diff it caused.
#[derive(Clone, Debug)]
pub struct EditOutcome {
    /// The delta the tree recorded for this edit.
    pub edit: Edit,
    /// Violations raised and cleared by this edit.
    pub diff: ReportDiff,
}

/// Sort key of one violation entry inside a part's table. The tuples are
/// chosen per part kind so that `BTreeMap` iteration order equals the
/// sequential engine's emission order (see each kind's refresh method).
type VKey = (u32, u32, u32, u32);

/// Records, per touched violation slot, its value *before* the edit; after
/// all updates ran, comparing against the post-edit value yields the diff.
#[derive(Default)]
struct DiffAcc {
    /// Vertex ↦ its structural violations at first touch.
    structure: BTreeMap<u32, Vec<Violation>>,
    /// `(part, key)` ↦ the entry at first touch.
    parts: BTreeMap<(u32, VKey), Option<Violation>>,
}

impl DiffAcc {
    fn touch_struct(&mut self, x: u32, old: &[Violation]) {
        self.structure.entry(x).or_insert_with(|| old.to_vec());
    }

    fn touch_part(&mut self, pi: u32, k: VKey, old: Option<&Violation>) {
        self.parts.entry((pi, k)).or_insert_with(|| old.cloned());
    }

    fn finalize(self, struct_now: &BTreeMap<u32, Vec<Violation>>, parts: &[Part]) -> ReportDiff {
        let mut raised = Vec::new();
        let mut cleared = Vec::new();
        let empty = Vec::new();
        for (x, old) in &self.structure {
            let new = struct_now.get(x).unwrap_or(&empty);
            let mut leftovers: Vec<&Violation> = old.iter().collect();
            for v in new {
                if let Some(i) = leftovers.iter().position(|o| *o == v) {
                    leftovers.remove(i);
                } else {
                    raised.push(v.clone());
                }
            }
            cleared.extend(leftovers.into_iter().cloned());
        }
        for ((pi, k), old) in &self.parts {
            let new = parts[*pi as usize].entries.get(k);
            match (old, new) {
                (None, Some(n)) => raised.push(n.clone()),
                (Some(o), None) => cleared.push(o.clone()),
                (Some(o), Some(n)) if o != n => {
                    cleared.push(o.clone());
                    raised.push(n.clone());
                }
                _ => {}
            }
        }
        // An edit that moves a violation between slots (e.g. a key group
        // whose surviving witness changes) would otherwise report the same
        // violation as both raised and cleared: cancel such pairs.
        let mut i = 0;
        while i < raised.len() {
            if let Some(j) = cleared.iter().position(|c| *c == raised[i]) {
                cleared.remove(j);
                raised.remove(i);
            } else {
                i += 1;
            }
        }
        ReportDiff {
            raised,
            cleared,
            metrics: None,
        }
    }
}

/// The ascending vertex set one occurrence-index value maps to. The
/// overwhelmingly common case — key-like columns where most values have
/// exactly one holder — stores the vertex inline; a B-tree node is only
/// allocated once a value is actually shared, so bulk-loading a
/// unique-valued column allocates nothing for the index payloads.
enum Holders {
    One(u32),
    Many(BTreeSet<u32>),
}

impl Holders {
    fn insert(&mut self, x: u32) {
        match self {
            Holders::One(y) if *y == x => {}
            Holders::One(y) => *self = Holders::Many(BTreeSet::from([*y, x])),
            Holders::Many(set) => {
                set.insert(x);
            }
        }
    }

    /// Removes `x`; returns `true` when the set became empty (the caller
    /// drops the map entry — `Holders` has no empty state).
    fn remove(&mut self, x: u32) -> bool {
        match self {
            Holders::One(y) => *y == x,
            Holders::Many(set) => {
                set.remove(&x);
                set.is_empty()
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            Holders::One(_) => 1,
            Holders::Many(set) => set.len(),
        }
    }

    /// Builds a set from a non-empty counting-sort run of holders.
    fn from_run(mut it: impl Iterator<Item = u32>) -> Self {
        let first = it.next().expect("occurrence runs are non-empty");
        match it.next() {
            None => Holders::One(first),
            Some(second) => {
                let mut set = BTreeSet::from([first, second]);
                set.extend(it);
                Holders::Many(set)
            }
        }
    }

    /// The holders, ascending.
    fn iter(&self) -> HoldersIter<'_> {
        match self {
            Holders::One(x) => HoldersIter::One(Some(*x)),
            Holders::Many(set) => HoldersIter::Many(set.iter()),
        }
    }
}

enum HoldersIter<'a> {
    One(Option<u32>),
    Many(std::collections::btree_set::Iter<'a, u32>),
}

impl Iterator for HoldersIter<'_> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        match self {
            HoldersIter::One(x) => x.take(),
            HoldersIter::Many(it) => it.next().copied(),
        }
    }
}

/// One planned single-valued column: vertex ↦ value, plus the reverse
/// occurrence index the refresh paths probe.
///
/// Values live in a dense vector indexed by vertex id (`Option<Sym>` is 4
/// bytes via the `NonZeroU32` niche): cell reads and writes on the edit
/// hot path are one indexed load instead of a hash probe, and bulk init
/// fills cells by plain stores. Vertices outside the column's extent just
/// hold `None`, indistinguishable from an undefined field — exactly the
/// semantics every reader already assumed.
#[derive(Default)]
struct SingleCol {
    vals: Vec<Option<Sym>>,
    occ: FastHashMap<Sym, Holders>,
}

impl SingleCol {
    /// Sets `x`'s value (growing the column if needed), returning the
    /// previous one.
    fn set(&mut self, x: u32, new: Option<Sym>) -> Option<Sym> {
        let xi = x as usize;
        if xi >= self.vals.len() {
            self.vals.resize(xi + 1, None);
        }
        let old = std::mem::replace(&mut self.vals[xi], new);
        if old != new {
            if let Some(o) = old {
                if let Some(h) = self.occ.get_mut(&o) {
                    if h.remove(x) {
                        self.occ.remove(&o);
                    }
                }
            }
            if let Some(n) = new {
                self.occ
                    .entry(n)
                    .and_modify(|h| h.insert(x))
                    .or_insert(Holders::One(x));
            }
        }
        old
    }

    /// Clears `x`'s cell, returning its last value.
    fn remove(&mut self, x: u32) -> Option<Sym> {
        let old = self.vals.get_mut(x as usize).and_then(Option::take);
        if let Some(o) = old {
            if let Some(h) = self.occ.get_mut(&o) {
                if h.remove(x) {
                    self.occ.remove(&o);
                }
            }
        }
        old
    }

    /// `x`'s value (`None` for an undefined field or an out-of-extent
    /// vertex).
    fn get(&self, x: u32) -> Option<Sym> {
        self.vals.get(x as usize).copied().flatten()
    }

    /// The tracked vertices holding value `v`, ascending.
    fn nodes_with(&self, v: Sym) -> impl Iterator<Item = u32> + '_ {
        self.occ.get(&v).into_iter().flat_map(Holders::iter)
    }
}

/// One planned set-valued column: vertex ↦ members (in `AttrValue`'s sorted
/// order), plus member ↦ vertices. Rows are dense by vertex id like
/// [`SingleCol`]; an empty row allocates nothing.
#[derive(Default)]
struct SetCol {
    vals: Vec<Vec<Sym>>,
    occ: FastHashMap<Sym, Holders>,
}

impl SetCol {
    fn set(&mut self, x: u32, new: Vec<Sym>) -> Vec<Sym> {
        let xi = x as usize;
        if xi >= self.vals.len() {
            self.vals.resize_with(xi + 1, Vec::new);
        }
        let old = std::mem::replace(&mut self.vals[xi], new);
        for &m in &old {
            if let Some(h) = self.occ.get_mut(&m) {
                if h.remove(x) {
                    self.occ.remove(&m);
                }
            }
        }
        for &m in &self.vals[xi] {
            self.occ
                .entry(m)
                .and_modify(|h| h.insert(x))
                .or_insert(Holders::One(x));
        }
        old
    }

    fn remove(&mut self, x: u32) -> Vec<Sym> {
        let old = self
            .vals
            .get_mut(x as usize)
            .map(std::mem::take)
            .unwrap_or_default();
        for &m in &old {
            if let Some(h) = self.occ.get_mut(&m) {
                if h.remove(x) {
                    self.occ.remove(&m);
                }
            }
        }
        old
    }

    fn get(&self, x: u32) -> &[Sym] {
        self.vals.get(x as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    fn nodes_with(&self, v: Sym) -> impl Iterator<Item = u32> + '_ {
        self.occ.get(&v).into_iter().flat_map(Holders::iter)
    }
}

/// The live counterpart of the one-shot `DocIndex`: every planned column as
/// a mutable map, sharing one interner. Interning order is irrelevant for
/// report equality — symbols are only compared for equality/membership, and
/// violations carry resolved strings.
struct Store {
    interner: Interner,
    singles: HashMap<(Name, Field), SingleCol>,
    sets: HashMap<(Name, Name), SetCol>,
}

impl Store {
    fn single(&self, tau: &Name, f: &Field) -> &SingleCol {
        self.singles
            .get(&(tau.clone(), f.clone()))
            .expect("plan covers every single field a constraint reads")
    }

    fn set_col(&self, tau: &Name, a: &Name) -> &SetCol {
        self.sets
            .get(&(tau.clone(), a.clone()))
            .expect("plan covers every set attribute a constraint reads")
    }

    fn resolve(&self, s: Sym) -> &str {
        self.interner.resolve(s)
    }

    fn join(&self, t: &[Sym]) -> String {
        t.iter()
            .map(|&s| self.resolve(s))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// The document-wide ID table: ID value ↦ carriers as `(type rank, vertex)`
/// pairs, whose `BTreeSet` order equals the sequential engine's
/// `element_types() × extent` carrier order.
#[derive(Default)]
struct IdTable {
    /// Element type ↦ its rank in `element_types()` order.
    ranks: FastHashMap<Name, u32>,
    /// Element type ↦ its ID attribute as a field (types with one only).
    id_field_of: HashMap<Name, Field>,
    carriers: FastHashMap<Sym, BTreeSet<(u32, u32)>>,
}

impl IdTable {
    fn carriers_of(&self, v: Sym) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.carriers.get(&v).into_iter().flatten().copied()
    }

    /// Core carrier maintenance, run before parts see the change.
    fn apply(&mut self, change: &Change, store: &Store) {
        let IdTable {
            ranks,
            id_field_of,
            carriers,
        } = self;
        match change {
            Change::Single {
                tau,
                field,
                node,
                old,
                new,
            } => {
                if id_field_of.get(tau) == Some(field) {
                    let rank = ranks[tau];
                    if let Some(o) = *old {
                        if let Some(set) = carriers.get_mut(&o) {
                            set.remove(&(rank, *node));
                            if set.is_empty() {
                                carriers.remove(&o);
                            }
                        }
                    }
                    if let Some(n) = *new {
                        carriers.entry(n).or_default().insert((rank, *node));
                    }
                }
            }
            Change::NodeAdded { tau, node } => {
                if let Some(f) = id_field_of.get(tau) {
                    if let Some(v) = store.single(tau, f).get(*node) {
                        carriers.entry(v).or_default().insert((ranks[tau], *node));
                    }
                }
            }
            Change::NodeRemoved { tau, node, singles } => {
                if let Some(f) = id_field_of.get(tau) {
                    if let Some(v) = snapshot_single(singles, f) {
                        let rank = ranks[tau];
                        if let Some(set) = carriers.get_mut(&v) {
                            set.remove(&(rank, *node));
                            if set.is_empty() {
                                carriers.remove(&v);
                            }
                        }
                    }
                }
            }
            Change::Set { .. } => {}
        }
    }
}

/// One column-level delta, dispatched to every constraint part. The store
/// (and ID table) already reflect the *post*-change state when parts run;
/// the change carries the old values parts need for retraction.
enum Change {
    /// A vertex entered the document with all its columns already filled.
    NodeAdded { tau: Name, node: u32 },
    /// A vertex left the document; `singles` snapshots its single-valued
    /// column values at removal time.
    NodeRemoved {
        tau: Name,
        node: u32,
        singles: Vec<(Field, Option<Sym>)>,
    },
    /// One single-valued column cell changed.
    Single {
        tau: Name,
        field: Field,
        node: u32,
        old: Option<Sym>,
        new: Option<Sym>,
    },
    /// One set-valued column cell changed (members after the change are in
    /// the store; parts recompute affected slots from scratch).
    Set { tau: Name, attr: Name, node: u32 },
}

fn snapshot_single(singles: &[(Field, Option<Sym>)], f: &Field) -> Option<Sym> {
    singles.iter().find(|(g, _)| g == f).and_then(|(_, v)| *v)
}

fn nid(x: u32) -> NodeId {
    NodeId::from_index(x as usize)
}

/// Stable counting sort of `(sym, payload)` pairs by dense symbol index:
/// one count pass, one scatter, no hashing or comparisons. Equal-symbol
/// runs in the result keep their input order. Bulk init uses this to build
/// the reverse occurrence maps (value ↦ vertices) in O(pairs + symbols)
/// instead of one hash probe and B-tree insert per cell.
fn counting_sort_by_sym<V: Copy>(pairs: &[(Sym, V)], sym_count: usize) -> Vec<(Sym, V)> {
    let Some(&first) = pairs.first() else {
        return Vec::new();
    };
    let mut cursors = vec![0u32; sym_count];
    for (s, _) in pairs {
        cursors[s.index()] += 1;
    }
    let mut start = 0u32;
    for c in cursors.iter_mut() {
        let n = *c;
        *c = start;
        start += n;
    }
    let mut out = vec![first; pairs.len()];
    for &(s, v) in pairs {
        let c = &mut cursors[s.index()];
        out[*c as usize] = (s, v);
        *c += 1;
    }
    out
}

/// Walks each equal-symbol run of a [`counting_sort_by_sym`] result.
fn for_each_sym_run<V: Copy>(sorted: &[(Sym, V)], mut f: impl FnMut(Sym, &[(Sym, V)])) {
    let mut i = 0;
    while i < sorted.len() {
        let s = sorted[i].0;
        let mut j = i + 1;
        while j < sorted.len() && sorted[j].0 == s {
            j += 1;
        }
        f(s, &sorted[i..j]);
        i = j;
    }
}

/// Number of distinct symbols in a [`counting_sort_by_sym`] result (for
/// reserve-exact occurrence-map allocation).
fn sym_run_count<V: Copy>(sorted: &[(Sym, V)]) -> usize {
    let mut runs = 0;
    let mut i = 0;
    while i < sorted.len() {
        let s = sorted[i].0;
        while i < sorted.len() && sorted[i].0 == s {
            i += 1;
        }
        runs += 1;
    }
    runs
}

/// Groups a column's `(value, vertex)` pairs into its reverse occurrence
/// index: one counting sort, one reserve-exact map fill, no singleton
/// B-tree allocations. Independent across columns, so bulk init fans it
/// out over the validator's thread budget.
fn build_occ(pairs: &[(Sym, u32)], sym_count: usize) -> FastHashMap<Sym, Holders> {
    let sorted = counting_sort_by_sym(pairs, sym_count);
    let mut occ = FastHashMap::with_capacity_and_hasher(sym_run_count(&sorted), Default::default());
    for_each_sym_run(&sorted, |sym, run| {
        occ.insert(sym, Holders::from_run(run.iter().map(|&(_, x)| x)));
    });
    occ
}

/// A field tuple read through pre-resolved columns (`None` while any field
/// is undefined).
fn tuple_in(cols: &[&SingleCol], x: u32) -> Option<Vec<Sym>> {
    cols.iter().map(|c| c.get(x)).collect()
}

/// Shared mutable context for one part while it processes one change:
/// read access to the store and ID table, write access to the part's
/// violation table, all writes funneled through the diff accumulator.
struct Ctx<'a> {
    store: &'a Store,
    ids: &'a IdTable,
    name: &'a str,
    pi: u32,
    entries: &'a mut BTreeMap<VKey, Violation>,
    /// `None` during bulk init: the table is being built from scratch, so
    /// there is no "before" to diff against and snapshotting every slot
    /// would only allocate a diff that construction discards.
    acc: Option<&'a mut DiffAcc>,
}

impl Ctx<'_> {
    fn set(&mut self, k: VKey, v: Option<Violation>) {
        if let Some(acc) = self.acc.as_deref_mut() {
            acc.touch_part(self.pi, k, self.entries.get(&k));
        }
        match v {
            Some(v) => {
                self.entries.insert(k, v);
            }
            None => {
                self.entries.remove(&k);
            }
        }
    }

    /// Clears every entry keyed under vertex `x`.
    fn clear_node(&mut self, x: u32) {
        let keys: Vec<VKey> = self
            .entries
            .range((x, 0, 0, 0)..=(x, u32::MAX, u32::MAX, u32::MAX))
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            self.set(k, None);
        }
    }

    fn cname(&self) -> String {
        self.name.to_string()
    }
}

/// One independently-refreshable slice of a constraint's check. Constraints
/// that the sequential engine checks in several sequential passes (the two
/// directions of an inverse, the four passes of `InverseId`) become several
/// consecutive parts, so concatenating all parts' tables in order
/// reproduces the Σ-order report.
struct Part {
    /// The rendered constraint name (every entry carries a clone).
    name: String,
    /// Violation slot ↦ current violation; iteration order = report order.
    entries: BTreeMap<VKey, Violation>,
    kind: PartKind,
}

enum PartKind {
    KeyUnary(KeyUnaryPart),
    Key(KeyPart),
    FkSingle(FkSinglePart),
    FkNary(FkNaryPart),
    SetFk(SetFkPart),
    Id(IdPart),
    Inverse(InversePart),
}

impl Part {
    fn apply(&mut self, change: &Change, store: &Store, ids: &IdTable, pi: u32, acc: &mut DiffAcc) {
        let mut cx = Ctx {
            store,
            ids,
            name: &self.name,
            pi,
            entries: &mut self.entries,
            acc: Some(acc),
        };
        match &mut self.kind {
            PartKind::KeyUnary(k) => k.apply(change, &mut cx),
            PartKind::Key(k) => k.apply(change, &mut cx),
            PartKind::FkSingle(k) => k.apply(change, &mut cx),
            PartKind::FkNary(k) => k.apply(change, &mut cx),
            PartKind::SetFk(k) => k.apply(change, &mut cx),
            PartKind::Id(k) => k.apply(change, &mut cx),
            PartKind::Inverse(k) => k.apply(change, &mut cx),
        }
    }

    fn init(&mut self, idx: &ExtIndex, store: &Store, ids: &IdTable, pi: u32) {
        let mut cx = Ctx {
            store,
            ids,
            name: &self.name,
            pi,
            entries: &mut self.entries,
            acc: None,
        };
        match &mut self.kind {
            PartKind::KeyUnary(k) => k.init(idx, &mut cx),
            PartKind::Key(k) => k.init(idx, &mut cx),
            PartKind::FkSingle(k) => k.init(idx, &mut cx),
            PartKind::FkNary(k) => k.init(idx, &mut cx),
            PartKind::SetFk(k) => k.init(idx, &mut cx),
            PartKind::Id(k) => k.init(idx, &mut cx),
            PartKind::Inverse(k) => k.init(idx, &mut cx),
        }
    }
}

/// A *unary* key constraint. The store column's occurrence index is
/// exactly the grouping a one-field key needs — value ↦ holders,
/// ascending — so this part keeps **no state of its own**: refreshes read
/// `SingleCol.occ` directly and retracted values ride in on the change.
/// Init therefore costs one scan for non-singleton groups instead of a
/// per-vertex copy of the column into tuple tables, and stays allocation-
/// free on documents whose keys actually hold.
struct KeyUnaryPart {
    tau: Name,
    field: Field,
}

impl KeyUnaryPart {
    fn refresh_group(&self, v: Sym, cx: &mut Ctx) {
        let store = cx.store;
        self.refresh_group_in(store.single(&self.tau, &self.field), v, cx);
    }

    /// Recomputes every current holder's entry for one value group (see
    /// [`KeyPart::refresh_group`] for the emission-order contract).
    fn refresh_group_in(&self, col: &SingleCol, v: Sym, cx: &mut Ctx) {
        let Some(holders) = col.occ.get(&v) else {
            return;
        };
        let mut iter = holders.iter();
        let Some(first) = iter.next() else {
            return;
        };
        cx.set((first, 0, 0, 0), None);
        let rest: Vec<u32> = iter.collect();
        if rest.is_empty() {
            return;
        }
        let value = cx.store.resolve(v).to_string();
        for h in rest {
            cx.set(
                (h, 0, 0, 0),
                Some(Violation::Key {
                    constraint: cx.cname(),
                    a: nid(first),
                    b: nid(h),
                    value: value.clone(),
                }),
            );
        }
    }

    fn apply(&mut self, change: &Change, cx: &mut Ctx) {
        match change {
            Change::Single {
                tau,
                field,
                node,
                old,
                new,
            } if *tau == self.tau && *field == self.field => {
                cx.set((*node, 0, 0, 0), None);
                if let Some(o) = *old {
                    self.refresh_group(o, cx);
                }
                if let Some(n) = *new {
                    self.refresh_group(n, cx);
                }
            }
            Change::NodeAdded { tau, node } if *tau == self.tau => {
                if let Some(v) = cx.store.single(&self.tau, &self.field).get(*node) {
                    self.refresh_group(v, cx);
                }
            }
            Change::NodeRemoved { tau, node, singles } if *tau == self.tau => {
                cx.set((*node, 0, 0, 0), None);
                if let Some(v) = snapshot_single(singles, &self.field) {
                    self.refresh_group(v, cx);
                }
            }
            _ => {}
        }
    }

    fn init(&mut self, _idx: &ExtIndex, cx: &mut Ctx) {
        let store = cx.store;
        let col = store.single(&self.tau, &self.field);
        // Group iteration order is irrelevant: groups write disjoint
        // entry slots of a `BTreeMap`, and init carries no diff.
        for (&v, holders) in &col.occ {
            if holders.len() > 1 {
                self.refresh_group_in(col, v, cx);
            }
        }
    }
}

/// A key constraint: within `ext(τ)`, no two vertices with complete field
/// tuples agree. Entries are keyed `(x, 0, 0, 0)` at the *later* witness:
/// the sequential first-seen scan emits one violation per non-first holder,
/// in extent order, against the group's minimum vertex.
struct KeyPart {
    tau: Name,
    fields: Vec<Field>,
    /// Vertex ↦ its complete tuple (absent while any field is undefined).
    tuples: FastHashMap<u32, Vec<Sym>>,
    /// Tuple ↦ holders, ascending (first = the group's witness `a`).
    occ: FastHashMap<Vec<Sym>, BTreeSet<u32>>,
}

impl KeyPart {
    fn tuple_of(&self, store: &Store, x: u32) -> Option<Vec<Sym>> {
        self.fields
            .iter()
            .map(|f| store.single(&self.tau, f).get(x))
            .collect()
    }

    fn update_node(&mut self, x: u32, cx: &mut Ctx, removed: bool) {
        let new = if removed {
            None
        } else {
            self.tuple_of(cx.store, x)
        };
        let old = self.tuples.get(&x).cloned();
        if old == new {
            return;
        }
        if let Some(t) = &old {
            if let Some(set) = self.occ.get_mut(t) {
                set.remove(&x);
                if set.is_empty() {
                    self.occ.remove(t);
                }
            }
            self.tuples.remove(&x);
        }
        cx.set((x, 0, 0, 0), None);
        if let Some(t) = new.clone() {
            self.occ.entry(t.clone()).or_default().insert(x);
            self.tuples.insert(x, t);
        }
        if let Some(t) = &old {
            self.refresh_group(t, cx);
        }
        if let Some(t) = &new {
            self.refresh_group(t, cx);
        }
    }

    /// Recomputes every current holder's entry for one tuple group.
    fn refresh_group(&self, t: &[Sym], cx: &mut Ctx) {
        let Some(holders) = self.occ.get(t) else {
            return;
        };
        let mut iter = holders.iter().copied();
        let Some(first) = iter.next() else {
            return;
        };
        cx.set((first, 0, 0, 0), None);
        let rest: Vec<u32> = iter.collect();
        if rest.is_empty() {
            return;
        }
        let value = cx.store.join(t);
        for h in rest {
            cx.set(
                (h, 0, 0, 0),
                Some(Violation::Key {
                    constraint: cx.cname(),
                    a: nid(first),
                    b: nid(h),
                    value: value.clone(),
                }),
            );
        }
    }

    fn apply(&mut self, change: &Change, cx: &mut Ctx) {
        match change {
            Change::Single {
                tau, field, node, ..
            } if *tau == self.tau && self.fields.contains(field) => {
                self.update_node(*node, cx, false);
            }
            Change::NodeAdded { tau, node } if *tau == self.tau => {
                self.update_node(*node, cx, false);
            }
            Change::NodeRemoved { tau, node, .. } if *tau == self.tau => {
                self.update_node(*node, cx, true);
            }
            _ => {}
        }
    }

    fn init(&mut self, idx: &ExtIndex, cx: &mut Ctx) {
        let ext = idx.ext(&self.tau);
        let cols: Vec<&SingleCol> = self
            .fields
            .iter()
            .map(|f| cx.store.single(&self.tau, f))
            .collect();
        self.tuples.reserve(ext.len());
        let mut groups: Vec<Vec<Sym>> = Vec::new();
        if let [col] = cols.as_slice() {
            // Unary key: group holders by symbol with one counting-sort
            // pass instead of hashing a fresh tuple per vertex.
            let mut pairs: Vec<(Sym, u32)> = Vec::with_capacity(ext.len());
            for &x in ext {
                let x = x.index() as u32;
                if let Some(v) = col.get(x) {
                    self.tuples.insert(x, vec![v]);
                    pairs.push((v, x));
                }
            }
            let sorted = counting_sort_by_sym(&pairs, cx.store.interner.len());
            self.occ.reserve(sym_run_count(&sorted));
            let occ = &mut self.occ;
            for_each_sym_run(&sorted, |v, run| {
                if run.len() > 1 {
                    groups.push(vec![v]);
                }
                occ.insert(vec![v], run.iter().map(|&(_, x)| x).collect());
            });
        } else {
            for &x in ext {
                let x = x.index() as u32;
                if let Some(t) = tuple_in(&cols, x) {
                    self.occ.entry(t.clone()).or_default().insert(x);
                    self.tuples.insert(x, t);
                }
            }
            groups = self
                .occ
                .iter()
                .filter(|(_, h)| h.len() > 1)
                .map(|(t, _)| t.clone())
                .collect();
        }
        for t in groups {
            self.refresh_group(&t, cx);
        }
    }
}

/// A unary foreign key over single-valued columns (`ForeignKey` with one
/// field, and `FkToId`). Entries are keyed `(x, 0, 0, 0)`: the sequential
/// scan emits at most one violation per referencing vertex, in extent
/// order.
struct FkSinglePart {
    tau: Name,
    field: Field,
    target: Name,
    /// The referenced column; `None` (an `FkToId` whose target type has no
    /// ID attribute) leaves the target set permanently empty.
    target_field: Option<Field>,
    /// `Some(field string)` emits `MissingField` for an undefined source
    /// value (`ForeignKey` semantics); `None` skips it (`FkToId`).
    missing_field: Option<String>,
    targets: CountedSymSet,
}

impl FkSinglePart {
    fn refresh_source(&self, x: u32, cx: &mut Ctx) {
        let col = cx.store.single(&self.tau, &self.field);
        self.refresh_source_in(col, x, cx);
    }

    /// [`Self::refresh_source`] with the source column pre-resolved, so
    /// bulk loops pay the `(τ, field)` hash once instead of per vertex.
    fn refresh_source_in(&self, col: &SingleCol, x: u32, cx: &mut Ctx) {
        let entry = match col.get(x) {
            None => self
                .missing_field
                .as_ref()
                .map(|mf| Violation::MissingField {
                    constraint: cx.cname(),
                    node: nid(x),
                    field: mf.clone(),
                }),
            Some(sym) if self.targets.contains(sym) => None,
            Some(sym) => Some(Violation::ForeignKey {
                constraint: cx.cname(),
                node: nid(x),
                value: cx.store.resolve(sym).to_string(),
            }),
        };
        cx.set((x, 0, 0, 0), entry);
    }

    /// Applies one target-column value change; on a presence transition,
    /// re-derives every source holding the transitioned value.
    fn retarget(&mut self, old: Option<Sym>, new: Option<Sym>, cx: &mut Ctx) {
        if old == new {
            return;
        }
        let mut transitions: Vec<Sym> = Vec::new();
        if let Some(o) = old {
            if self.targets.remove(o) {
                transitions.push(o);
            }
        }
        if let Some(n) = new {
            if self.targets.insert(n) {
                transitions.push(n);
            }
        }
        let store = cx.store;
        for v in transitions {
            let deps: Vec<u32> = store.single(&self.tau, &self.field).nodes_with(v).collect();
            for x in deps {
                self.refresh_source(x, cx);
            }
        }
    }

    fn apply(&mut self, change: &Change, cx: &mut Ctx) {
        // Target role: keep the refcounted membership set current.
        match change {
            Change::Single {
                tau,
                field,
                old,
                new,
                ..
            } if *tau == self.target && Some(field) == self.target_field.as_ref() => {
                self.retarget(*old, *new, cx);
            }
            Change::NodeAdded { tau, node } if *tau == self.target => {
                if let Some(tf) = self.target_field.clone() {
                    let v = cx.store.single(&self.target, &tf).get(*node);
                    self.retarget(None, v, cx);
                }
            }
            Change::NodeRemoved { tau, singles, .. } if *tau == self.target => {
                if let Some(tf) = &self.target_field {
                    let old = snapshot_single(singles, tf);
                    self.retarget(old, None, cx);
                }
            }
            _ => {}
        }
        // Source role: re-derive the edited vertex's own entry.
        match change {
            Change::Single {
                tau, field, node, ..
            } if *tau == self.tau && *field == self.field => {
                self.refresh_source(*node, cx);
            }
            Change::NodeAdded { tau, node } if *tau == self.tau => {
                self.refresh_source(*node, cx);
            }
            Change::NodeRemoved { tau, node, .. } if *tau == self.tau => {
                cx.set((*node, 0, 0, 0), None);
            }
            _ => {}
        }
    }

    fn init(&mut self, idx: &ExtIndex, cx: &mut Ctx) {
        if let Some(tf) = &self.target_field {
            let col = cx.store.single(&self.target, tf);
            for &y in idx.ext(&self.target) {
                if let Some(v) = col.get(y.index() as u32) {
                    self.targets.insert(v);
                }
            }
        }
        let col = cx.store.single(&self.tau, &self.field);
        for &x in idx.ext(&self.tau) {
            self.refresh_source_in(col, x.index() as u32, cx);
        }
    }
}

/// An n-ary foreign key: source tuples against refcounted target tuples.
struct FkNaryPart {
    tau: Name,
    fields: Vec<Field>,
    target: Name,
    target_fields: Vec<Field>,
    /// The pre-joined field list for `MissingField` reports.
    missing: String,
    src_tuples: FastHashMap<u32, Vec<Sym>>,
    src_occ: FastHashMap<Vec<Sym>, BTreeSet<u32>>,
    tgt_tuples: FastHashMap<u32, Vec<Sym>>,
    tgt_counts: FastHashMap<Vec<Sym>, u32>,
}

impl FkNaryPart {
    fn tuple(store: &Store, tau: &Name, fields: &[Field], x: u32) -> Option<Vec<Sym>> {
        fields.iter().map(|f| store.single(tau, f).get(x)).collect()
    }

    fn refresh_source(&self, x: u32, cx: &mut Ctx) {
        let entry = match self.src_tuples.get(&x) {
            None => Some(Violation::MissingField {
                constraint: cx.cname(),
                node: nid(x),
                field: self.missing.clone(),
            }),
            Some(t) if self.tgt_counts.contains_key(t) => None,
            Some(t) => Some(Violation::ForeignKey {
                constraint: cx.cname(),
                node: nid(x),
                value: cx.store.join(t),
            }),
        };
        cx.set((x, 0, 0, 0), entry);
    }

    fn update_source(&mut self, x: u32, cx: &mut Ctx, removed: bool) {
        let new = if removed {
            None
        } else {
            Self::tuple(cx.store, &self.tau, &self.fields, x)
        };
        let old = self.src_tuples.get(&x).cloned();
        if old != new {
            if let Some(t) = &old {
                if let Some(set) = self.src_occ.get_mut(t) {
                    set.remove(&x);
                    if set.is_empty() {
                        self.src_occ.remove(t);
                    }
                }
                self.src_tuples.remove(&x);
            }
            if let Some(t) = new {
                self.src_occ.entry(t.clone()).or_default().insert(x);
                self.src_tuples.insert(x, t);
            }
        }
        if removed {
            cx.set((x, 0, 0, 0), None);
        } else {
            self.refresh_source(x, cx);
        }
    }

    fn update_target(&mut self, y: u32, cx: &mut Ctx, removed: bool) {
        let new = if removed {
            None
        } else {
            Self::tuple(cx.store, &self.target, &self.target_fields, y)
        };
        let old = self.tgt_tuples.get(&y).cloned();
        if old == new {
            return;
        }
        let mut transitions: Vec<Vec<Sym>> = Vec::new();
        if let Some(t) = old {
            let cnt = self.tgt_counts.get_mut(&t).expect("target tuple accounted");
            *cnt -= 1;
            if *cnt == 0 {
                self.tgt_counts.remove(&t);
                transitions.push(t);
            }
            self.tgt_tuples.remove(&y);
        }
        if let Some(t) = new {
            let cnt = self.tgt_counts.entry(t.clone()).or_insert(0);
            *cnt += 1;
            if *cnt == 1 {
                transitions.push(t.clone());
            }
            self.tgt_tuples.insert(y, t);
        }
        for t in transitions {
            let deps: Vec<u32> = self
                .src_occ
                .get(&t)
                .into_iter()
                .flatten()
                .copied()
                .collect();
            for x in deps {
                self.refresh_source(x, cx);
            }
        }
    }

    fn apply(&mut self, change: &Change, cx: &mut Ctx) {
        match change {
            Change::Single {
                tau, field, node, ..
            } => {
                if *tau == self.target && self.target_fields.contains(field) {
                    self.update_target(*node, cx, false);
                }
                if *tau == self.tau && self.fields.contains(field) {
                    self.update_source(*node, cx, false);
                }
            }
            Change::NodeAdded { tau, node } => {
                if *tau == self.target {
                    self.update_target(*node, cx, false);
                }
                if *tau == self.tau {
                    self.update_source(*node, cx, false);
                }
            }
            Change::NodeRemoved { tau, node, .. } => {
                if *tau == self.target {
                    self.update_target(*node, cx, true);
                }
                if *tau == self.tau {
                    self.update_source(*node, cx, true);
                }
            }
            Change::Set { .. } => {}
        }
    }

    fn init(&mut self, idx: &ExtIndex, cx: &mut Ctx) {
        let tcols: Vec<&SingleCol> = self
            .target_fields
            .iter()
            .map(|f| cx.store.single(&self.target, f))
            .collect();
        let text = idx.ext(&self.target);
        self.tgt_tuples.reserve(text.len());
        for &y in text {
            let y = y.index() as u32;
            if let Some(t) = tuple_in(&tcols, y) {
                *self.tgt_counts.entry(t.clone()).or_insert(0) += 1;
                self.tgt_tuples.insert(y, t);
            }
        }
        let cols: Vec<&SingleCol> = self
            .fields
            .iter()
            .map(|f| cx.store.single(&self.tau, f))
            .collect();
        let ext = idx.ext(&self.tau);
        self.src_tuples.reserve(ext.len());
        for &x in ext {
            let x = x.index() as u32;
            if let Some(t) = tuple_in(&cols, x) {
                self.src_occ.entry(t.clone()).or_default().insert(x);
                self.src_tuples.insert(x, t);
            }
        }
        for &x in ext {
            self.refresh_source(x.index() as u32, cx);
        }
    }
}

/// A set-valued foreign key (`SetForeignKey`, `SetFkToId`, and the
/// reference-typing passes of `InverseId`): every member of `(τ, attr)`
/// must be in the target set. Entries are keyed `(x, member index, 0, 0)`,
/// matching the sequential per-vertex, per-member scan order.
struct SetFkPart {
    tau: Name,
    attr: Name,
    target: Name,
    target_field: Option<Field>,
    targets: CountedSymSet,
}

impl SetFkPart {
    fn refresh_source(&self, x: u32, cx: &mut Ctx) {
        let col = cx.store.set_col(&self.tau, &self.attr);
        self.refresh_source_in(col, x, cx);
    }

    /// [`Self::refresh_source`] with the member column pre-resolved, so
    /// bulk loops pay the `(τ, attr)` hash once instead of per vertex.
    fn refresh_source_in(&self, col: &SetCol, x: u32, cx: &mut Ctx) {
        cx.clear_node(x);
        let members = col.get(x);
        for (i, &m) in members.iter().enumerate() {
            if !self.targets.contains(m) {
                cx.set(
                    (x, i as u32, 0, 0),
                    Some(Violation::ForeignKey {
                        constraint: cx.cname(),
                        node: nid(x),
                        value: cx.store.resolve(m).to_string(),
                    }),
                );
            }
        }
    }

    fn retarget(&mut self, old: Option<Sym>, new: Option<Sym>, cx: &mut Ctx) {
        if old == new {
            return;
        }
        let mut transitions: Vec<Sym> = Vec::new();
        if let Some(o) = old {
            if self.targets.remove(o) {
                transitions.push(o);
            }
        }
        if let Some(n) = new {
            if self.targets.insert(n) {
                transitions.push(n);
            }
        }
        let store = cx.store;
        for v in transitions {
            let deps: Vec<u32> = store.set_col(&self.tau, &self.attr).nodes_with(v).collect();
            for x in deps {
                self.refresh_source(x, cx);
            }
        }
    }

    fn apply(&mut self, change: &Change, cx: &mut Ctx) {
        // Target role.
        match change {
            Change::Single {
                tau,
                field,
                old,
                new,
                ..
            } if *tau == self.target && Some(field) == self.target_field.as_ref() => {
                self.retarget(*old, *new, cx);
            }
            Change::NodeAdded { tau, node } if *tau == self.target => {
                if let Some(tf) = self.target_field.clone() {
                    let v = cx.store.single(&self.target, &tf).get(*node);
                    self.retarget(None, v, cx);
                }
            }
            Change::NodeRemoved { tau, singles, .. } if *tau == self.target => {
                if let Some(tf) = &self.target_field {
                    let old = snapshot_single(singles, tf);
                    self.retarget(old, None, cx);
                }
            }
            _ => {}
        }
        // Source role.
        match change {
            Change::Set {
                tau, attr, node, ..
            } if *tau == self.tau && *attr == self.attr => {
                self.refresh_source(*node, cx);
            }
            Change::NodeAdded { tau, node } if *tau == self.tau => {
                self.refresh_source(*node, cx);
            }
            Change::NodeRemoved { tau, node, .. } if *tau == self.tau => {
                cx.clear_node(*node);
            }
            _ => {}
        }
    }

    fn init(&mut self, idx: &ExtIndex, cx: &mut Ctx) {
        if let Some(tf) = &self.target_field {
            let col = cx.store.single(&self.target, tf);
            for &y in idx.ext(&self.target) {
                if let Some(v) = col.get(y.index() as u32) {
                    self.targets.insert(v);
                }
            }
        }
        let col = cx.store.set_col(&self.tau, &self.attr);
        for &x in idx.ext(&self.tau) {
            self.refresh_source_in(col, x.index() as u32, cx);
        }
    }
}

/// An `L_id` ID constraint on one element type: every `ext(τ)` vertex needs
/// a defined ID that no other vertex in the document carries. Entries are
/// keyed `(x, 0, 0, 0)` for `MissingField` and `(x, rank(y), y, 0)` per
/// duplicate carrier `y` — the carrier set's `(rank, vertex)` order is the
/// sequential global-ID-table order.
struct IdPart {
    tau: Name,
    id_field: Field,
    /// Pre-rendered `@id_attr` for `MissingField` reports.
    missing: String,
}

impl IdPart {
    fn refresh_entity(&self, x: u32, cx: &mut Ctx) {
        let col = cx.store.single(&self.tau, &self.id_field);
        self.refresh_entity_in(col, x, cx);
    }

    /// [`Self::refresh_entity`] with the ID column pre-resolved, so bulk
    /// loops pay the `(τ, field)` hash once instead of per vertex.
    fn refresh_entity_in(&self, col: &SingleCol, x: u32, cx: &mut Ctx) {
        cx.clear_node(x);
        let store = cx.store;
        match col.get(x) {
            None => cx.set(
                (x, 0, 0, 0),
                Some(Violation::MissingField {
                    constraint: cx.cname(),
                    node: nid(x),
                    field: self.missing.clone(),
                }),
            ),
            Some(v) => {
                let ids = cx.ids;
                for (rank, y) in ids.carriers_of(v) {
                    if y != x {
                        cx.set(
                            (x, rank, y, 0),
                            Some(Violation::DuplicateId {
                                constraint: cx.cname(),
                                a: nid(x),
                                b: nid(y),
                                value: store.resolve(v).to_string(),
                            }),
                        );
                    }
                }
            }
        }
    }

    /// Re-derives every `ext(τ)` vertex holding ID value `v`.
    fn refresh_holders(&self, v: Sym, cx: &mut Ctx) {
        let store = cx.store;
        let deps: Vec<u32> = store
            .single(&self.tau, &self.id_field)
            .nodes_with(v)
            .collect();
        for x in deps {
            self.refresh_entity(x, cx);
        }
    }

    fn apply(&mut self, change: &Change, cx: &mut Ctx) {
        match change {
            Change::Single {
                tau,
                field,
                node,
                old,
                new,
            } => {
                // A carrier change anywhere (any type's ID column) shifts
                // the duplicate lists of this type's holders of the value.
                if cx.ids.id_field_of.get(tau) == Some(field) {
                    for v in old.iter().chain(new.iter()).copied() {
                        self.refresh_holders(v, cx);
                    }
                }
                if *tau == self.tau && *field == self.id_field {
                    self.refresh_entity(*node, cx);
                }
            }
            Change::NodeAdded { tau, node } => {
                if let Some(f) = cx.ids.id_field_of.get(tau).cloned() {
                    if let Some(v) = cx.store.single(tau, &f).get(*node) {
                        self.refresh_holders(v, cx);
                    }
                }
                if *tau == self.tau {
                    self.refresh_entity(*node, cx);
                }
            }
            Change::NodeRemoved { tau, node, singles } => {
                if let Some(f) = cx.ids.id_field_of.get(tau) {
                    if let Some(v) = snapshot_single(singles, f) {
                        self.refresh_holders(v, cx);
                    }
                }
                if *tau == self.tau {
                    cx.clear_node(*node);
                }
            }
            Change::Set { .. } => {}
        }
    }

    fn init(&mut self, idx: &ExtIndex, cx: &mut Ctx) {
        let col = cx.store.single(&self.tau, &self.id_field);
        for &x in idx.ext(&self.tau) {
            self.refresh_entity_in(col, x.index() as u32, cx);
        }
    }
}

/// One direction of an inverse constraint: for every `y ∈ ext(τ')` with a
/// defined key, each member `m` of `y.attr'` and each `x ∈ ext(τ)` with
/// `x.key = m` must have `y.key' ∈ x.attr`. Entries are keyed
/// `(y, member index, x, 0)` — the sequential scan's loop nesting order.
struct InversePart {
    tau: Name,
    key: Field,
    attr: Name,
    target: Name,
    target_key: Field,
    target_attr: Name,
}

impl InversePart {
    fn refresh_y(&self, y: u32, cx: &mut Ctx) {
        let store = cx.store;
        let cols = (
            store.single(&self.target, &self.target_key),
            store.set_col(&self.target, &self.target_attr),
            store.single(&self.tau, &self.key),
            store.set_col(&self.tau, &self.attr),
        );
        self.refresh_y_in(cols, y, cx);
    }

    /// [`Self::refresh_y`] with all four columns pre-resolved (target key,
    /// target members, source key, source echo), so bulk loops pay the
    /// column hashes once instead of per vertex.
    fn refresh_y_in(
        &self,
        (yk_col, mem_col, key_col, echo_col): (&SingleCol, &SetCol, &SingleCol, &SetCol),
        y: u32,
        cx: &mut Ctx,
    ) {
        cx.clear_node(y);
        let Some(yk) = yk_col.get(y) else {
            return;
        };
        let members = mem_col.get(y);
        for (i, &m) in members.iter().enumerate() {
            for x in key_col.nodes_with(m) {
                if !echo_col.get(x).contains(&yk) {
                    cx.set(
                        (y, i as u32, x, 0),
                        Some(Violation::Inverse {
                            constraint: cx.cname(),
                            from: nid(y),
                            to: nid(x),
                        }),
                    );
                }
            }
        }
    }

    fn apply(&mut self, change: &Change, cx: &mut Ctx) {
        let mut ys: BTreeSet<u32> = BTreeSet::new();
        let store = cx.store;
        match change {
            Change::Single {
                tau,
                field,
                node,
                old,
                new,
            } => {
                if *tau == self.target && *field == self.target_key {
                    ys.insert(*node);
                }
                if *tau == self.tau && *field == self.key {
                    let refs = store.set_col(&self.target, &self.target_attr);
                    for v in old.iter().chain(new.iter()).copied() {
                        ys.extend(refs.nodes_with(v));
                    }
                }
            }
            Change::Set { tau, attr, node } => {
                if *tau == self.target && *attr == self.target_attr {
                    ys.insert(*node);
                }
                if *tau == self.tau && *attr == self.attr {
                    if let Some(xk) = store.single(&self.tau, &self.key).get(*node) {
                        ys.extend(
                            store
                                .set_col(&self.target, &self.target_attr)
                                .nodes_with(xk),
                        );
                    }
                }
            }
            Change::NodeAdded { tau, node } => {
                if *tau == self.target {
                    ys.insert(*node);
                }
                if *tau == self.tau {
                    if let Some(xk) = store.single(&self.tau, &self.key).get(*node) {
                        ys.extend(
                            store
                                .set_col(&self.target, &self.target_attr)
                                .nodes_with(xk),
                        );
                    }
                }
            }
            Change::NodeRemoved { tau, node, singles } => {
                if *tau == self.target {
                    cx.clear_node(*node);
                }
                if *tau == self.tau {
                    if let Some(xk) = snapshot_single(singles, &self.key) {
                        ys.extend(
                            store
                                .set_col(&self.target, &self.target_attr)
                                .nodes_with(xk),
                        );
                    }
                }
            }
        }
        for y in ys {
            self.refresh_y(y, cx);
        }
    }

    fn init(&mut self, idx: &ExtIndex, cx: &mut Ctx) {
        let store = cx.store;
        let cols = (
            store.single(&self.target, &self.target_key),
            store.set_col(&self.target, &self.target_attr),
            store.single(&self.tau, &self.key),
            store.set_col(&self.tau, &self.attr),
        );
        for &y in idx.ext(&self.target) {
            self.refresh_y_in(cols, y.index() as u32, cx);
        }
    }
}

/// Decomposes Σ into parts, in Σ order, mirroring the sequential engine's
/// per-constraint pass structure (see `check_one_planned`).
fn build_parts(dtdc: &DtdC) -> Vec<Part> {
    let s = dtdc.structure();
    let mut parts = Vec::new();
    let push = |name: String, kind: PartKind, parts: &mut Vec<Part>| {
        parts.push(Part {
            name,
            entries: BTreeMap::new(),
            kind,
        });
    };
    for c in dtdc.constraints() {
        let name = c.to_string();
        match c {
            Constraint::Key { tau, fields } => {
                if let [f] = fields.as_slice() {
                    push(
                        name,
                        PartKind::KeyUnary(KeyUnaryPart {
                            tau: tau.clone(),
                            field: f.clone(),
                        }),
                        &mut parts,
                    );
                } else {
                    push(
                        name,
                        PartKind::Key(KeyPart {
                            tau: tau.clone(),
                            fields: fields.clone(),
                            tuples: FastHashMap::default(),
                            occ: FastHashMap::default(),
                        }),
                        &mut parts,
                    );
                }
            }
            Constraint::ForeignKey {
                tau,
                fields,
                target,
                target_fields,
            } => {
                if let ([f], [tf]) = (fields.as_slice(), target_fields.as_slice()) {
                    push(
                        name,
                        PartKind::FkSingle(FkSinglePart {
                            tau: tau.clone(),
                            field: f.clone(),
                            target: target.clone(),
                            target_field: Some(tf.clone()),
                            missing_field: Some(f.to_string()),
                            targets: CountedSymSet::default(),
                        }),
                        &mut parts,
                    );
                } else {
                    push(
                        name,
                        PartKind::FkNary(FkNaryPart {
                            tau: tau.clone(),
                            fields: fields.clone(),
                            target: target.clone(),
                            target_fields: target_fields.clone(),
                            missing: fields
                                .iter()
                                .map(ToString::to_string)
                                .collect::<Vec<_>>()
                                .join(", "),
                            src_tuples: FastHashMap::default(),
                            src_occ: FastHashMap::default(),
                            tgt_tuples: FastHashMap::default(),
                            tgt_counts: FastHashMap::default(),
                        }),
                        &mut parts,
                    );
                }
            }
            Constraint::SetForeignKey {
                tau,
                attr,
                target,
                target_field,
            } => push(
                name,
                PartKind::SetFk(SetFkPart {
                    tau: tau.clone(),
                    attr: attr.clone(),
                    target: target.clone(),
                    target_field: Some(target_field.clone()),
                    targets: CountedSymSet::default(),
                }),
                &mut parts,
            ),
            Constraint::InverseU {
                tau,
                key,
                attr,
                target,
                target_key,
                target_attr,
            } => {
                for (t, k, a, u, uk, ua) in [
                    (tau, key, attr, target, target_key, target_attr),
                    (target, target_key, target_attr, tau, key, attr),
                ] {
                    push(
                        name.clone(),
                        PartKind::Inverse(InversePart {
                            tau: t.clone(),
                            key: k.clone(),
                            attr: a.clone(),
                            target: u.clone(),
                            target_key: uk.clone(),
                            target_attr: ua.clone(),
                        }),
                        &mut parts,
                    );
                }
            }
            Constraint::Id { tau } => {
                if let Some(id) = s.id_attr(tau) {
                    push(
                        name,
                        PartKind::Id(IdPart {
                            tau: tau.clone(),
                            id_field: Field::Attr(id.clone()),
                            missing: format!("@{id}"),
                        }),
                        &mut parts,
                    );
                }
            }
            Constraint::FkToId { tau, attr, target } => push(
                name,
                PartKind::FkSingle(FkSinglePart {
                    tau: tau.clone(),
                    field: Field::Attr(attr.clone()),
                    target: target.clone(),
                    target_field: s.id_attr(target).map(|i| Field::Attr(i.clone())),
                    missing_field: None,
                    targets: CountedSymSet::default(),
                }),
                &mut parts,
            ),
            Constraint::SetFkToId { tau, attr, target } => push(
                name,
                PartKind::SetFk(SetFkPart {
                    tau: tau.clone(),
                    attr: attr.clone(),
                    target: target.clone(),
                    target_field: s.id_attr(target).map(|i| Field::Attr(i.clone())),
                    targets: CountedSymSet::default(),
                }),
                &mut parts,
            ),
            Constraint::InverseId {
                tau,
                attr,
                target,
                target_attr,
            } => {
                let (Some(id_tau), Some(id_target)) = (s.id_attr(tau), s.id_attr(target)) else {
                    continue; // rejected at well-formedness; nothing to check
                };
                // Reference typing first, then both inverse directions —
                // the exact sequential pass order.
                for (src, src_attr, dst, dst_id) in [
                    (tau, attr, target, id_target),
                    (target, target_attr, tau, id_tau),
                ] {
                    push(
                        name.clone(),
                        PartKind::SetFk(SetFkPart {
                            tau: src.clone(),
                            attr: src_attr.clone(),
                            target: dst.clone(),
                            target_field: Some(Field::Attr(dst_id.clone())),
                            targets: CountedSymSet::default(),
                        }),
                        &mut parts,
                    );
                }
                for (t, k, a, u, uk, ua) in [
                    (tau, id_tau, attr, target, id_target, target_attr),
                    (target, id_target, target_attr, tau, id_tau, attr),
                ] {
                    push(
                        name.clone(),
                        PartKind::Inverse(InversePart {
                            tau: t.clone(),
                            key: Field::Attr(k.clone()),
                            attr: a.clone(),
                            target: u.clone(),
                            target_key: Field::Attr(uk.clone()),
                            target_attr: ua.clone(),
                        }),
                        &mut parts,
                    );
                }
            }
        }
    }
    parts
}

/// Dense column ids, reverse keys, and per-column part subscriptions for
/// the batch path, built once at construction.
///
/// The per-edit path dispatches every change to every part; each part's
/// `apply` drops changes outside its `(τ, field)` interest set via name
/// comparisons, so at one change per edit the waste is a cheap scan. A
/// batch dispatches thousands of cell deltas, so the scan is hoisted into
/// this index: dispatching a delta only to the parts subscribed to its
/// column is behavior-preserving because the skipped `apply` calls were
/// no-ops by those same match arms.
struct Subs {
    /// Planned single-valued column ↦ dense id (`0..singles`).
    single_ids: HashMap<(Name, Field), u32>,
    /// Planned set-valued column ↦ dense id (`singles..`).
    set_ids: HashMap<(Name, Name), u32>,
    /// Dense column id ↦ the column's key, for re-extraction.
    keys: Vec<ColKey>,
    /// Dense column id ↦ subscribed part indices, ascending and deduped.
    parts_of: Vec<Vec<u32>>,
}

#[derive(Clone)]
enum ColKey {
    Single(Name, Field),
    Set(Name, Name),
}

impl Subs {
    fn build(store: &Store, parts: &[Part], ids: &IdTable) -> Self {
        let mut single_ids = HashMap::new();
        let mut set_ids = HashMap::new();
        let mut keys: Vec<ColKey> = Vec::new();
        let mut skeys: Vec<_> = store.singles.keys().cloned().collect();
        skeys.sort();
        for k in skeys {
            single_ids.insert(k.clone(), keys.len() as u32);
            keys.push(ColKey::Single(k.0, k.1));
        }
        let mut tkeys: Vec<_> = store.sets.keys().cloned().collect();
        tkeys.sort();
        for k in tkeys {
            set_ids.insert(k.clone(), keys.len() as u32);
            keys.push(ColKey::Set(k.0, k.1));
        }
        let mut parts_of = vec![Vec::new(); keys.len()];
        for (pi, p) in parts.iter().enumerate() {
            let pi = pi as u32;
            let mut singles: Vec<(Name, Field)> = Vec::new();
            let mut sets: Vec<(Name, Name)> = Vec::new();
            match &p.kind {
                PartKind::KeyUnary(k) => {
                    singles.push((k.tau.clone(), k.field.clone()));
                }
                PartKind::Key(k) => {
                    for f in &k.fields {
                        singles.push((k.tau.clone(), f.clone()));
                    }
                }
                PartKind::FkSingle(k) => {
                    singles.push((k.tau.clone(), k.field.clone()));
                    if let Some(tf) = &k.target_field {
                        singles.push((k.target.clone(), tf.clone()));
                    }
                }
                PartKind::FkNary(k) => {
                    for f in &k.fields {
                        singles.push((k.tau.clone(), f.clone()));
                    }
                    for f in &k.target_fields {
                        singles.push((k.target.clone(), f.clone()));
                    }
                }
                PartKind::SetFk(k) => {
                    sets.push((k.tau.clone(), k.attr.clone()));
                    if let Some(tf) = &k.target_field {
                        singles.push((k.target.clone(), tf.clone()));
                    }
                }
                PartKind::Id(k) => {
                    // An ID part reacts to *any* type's ID column (a
                    // carrier change anywhere shifts its duplicate
                    // lists), not just its own type's.
                    singles.push((k.tau.clone(), k.id_field.clone()));
                    for (t, f) in &ids.id_field_of {
                        singles.push((t.clone(), f.clone()));
                    }
                }
                PartKind::Inverse(k) => {
                    singles.push((k.tau.clone(), k.key.clone()));
                    singles.push((k.target.clone(), k.target_key.clone()));
                    sets.push((k.tau.clone(), k.attr.clone()));
                    sets.push((k.target.clone(), k.target_attr.clone()));
                }
            }
            // An interest column missing from the store cannot exist in
            // any delta (the plan covers every column a constraint
            // reads), so skipping it drops nothing.
            for key in singles {
                if let Some(&c) = single_ids.get(&key) {
                    parts_of[c as usize].push(pi);
                }
            }
            for key in sets {
                if let Some(&c) = set_ids.get(&key) {
                    parts_of[c as usize].push(pi);
                }
            }
        }
        for l in &mut parts_of {
            l.sort_unstable();
            l.dedup();
        }
        Subs {
            single_ids,
            set_ids,
            keys,
            parts_of,
        }
    }
}

/// One request in a [`LiveValidator::apply_batch`] batch.
///
/// Unlike [`Edit`] — which records what a mutation *did* (displaced
/// values, assigned ids) — a `BatchEdit` describes what *to do*, so a
/// subtree insertion carries its fragment.
#[derive(Clone, Debug)]
pub enum BatchEdit {
    /// Set attribute `attr` of `node`, creating or replacing it.
    SetAttr {
        /// The vertex to edit.
        node: NodeId,
        /// The attribute name.
        attr: Name,
        /// The new value.
        value: AttrValue,
    },
    /// Remove attribute `attr` of `node` (which must be set, possibly by
    /// an earlier request in the same batch).
    RemoveAttr {
        /// The vertex to edit.
        node: NodeId,
        /// The attribute name.
        attr: Name,
    },
    /// Replace the `index`-th *text* child of `node`.
    SetText {
        /// The vertex to edit.
        node: NodeId,
        /// Which text child to replace (element children do not count).
        index: usize,
        /// The new text.
        text: Value,
    },
    /// Graft a copy of `fragment` under `parent` at child `position`.
    InsertSubtree {
        /// The vertex to insert under.
        parent: NodeId,
        /// The child-list position to insert at.
        position: usize,
        /// The subtree to copy in.
        fragment: DataTree,
    },
    /// Delete the subtree rooted at `node`.
    DeleteSubtree {
        /// The subtree root to delete.
        node: NodeId,
    },
}

/// An invalid request inside a [`LiveValidator::apply_batch`] batch: the
/// offending request index and the underlying model error.
///
/// The requests before `index` have been applied and propagated — the
/// validator (and [`LiveValidator::report`]) stays consistent with them —
/// but their violation diff is discarded with the failed batch.
#[derive(Debug)]
pub struct BatchError {
    /// Index into the batch slice of the request that failed.
    pub index: usize,
    /// Why it failed.
    pub error: ModelError,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch edit {}: {}", self.index, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Staging state of one in-flight batch (see
/// [`LiveValidator::apply_batch`]): structural requests have already hit
/// the tree, value writes are pending with last-writer-wins.
#[derive(Default)]
struct BatchState {
    /// `id_bound` at batch start: vertices at or past it were inserted by
    /// this very batch.
    pre_bound: u32,
    /// (vertex, attribute) ↦ last staged write (`None` = remove).
    pend_attr: HashMap<(u32, Name), Option<AttrValue>>,
    /// (vertex, text slot) ↦ last staged text.
    pend_text: HashMap<(u32, usize), Value>,
    /// Vertices inserted by this batch, ascending.
    added: Vec<u32>,
    /// Vertices deleted by this batch (including same-batch insertions).
    removed: Vec<u32>,
    /// Touched `(dense column id, vertex)` cells, re-extracted at flush.
    touched: Vec<(u32, u32)>,
    /// Vertices whose structural check may need re-running.
    struct_touch: Vec<u32>,
    /// Requests staged — the raw `edit.count`.
    staged: u64,
    /// Structural requests staged (inserts + deletes). They never
    /// coalesce, so they count into `edit.coalesced` directly.
    structural: u64,
}

/// One single-valued column of a [`LiveState`]: the `(element type,
/// field)` key plus the column's dense per-vertex value vector.
pub type SingleColumnState = ((Name, Field), Vec<Option<Sym>>);

/// One set-valued column of a [`LiveState`]: the `(element type,
/// attribute)` key plus the column's dense per-vertex member vectors.
pub type SetColumnState = ((Name, Name), Vec<Vec<Sym>>);

/// A serialisable snapshot of a [`LiveValidator`]'s owned state.
///
/// The state captures exactly what a warm start cannot cheaply recompute:
/// the document tree, the intern pool's backing storage, every planned
/// column's dense value vector, and the structural violation table (the
/// output of the content-model scan). Everything else — occurrence maps,
/// the ID table, per-constraint violation tables, subscription indexes,
/// and the root-label check — is re-derived deterministically by
/// [`LiveValidator::from_state`], so a report after a round trip is
/// byte-identical to scratch validation of the same tree.
///
/// Fields are public so an external codec (the `xic-storage` crate) can
/// encode the state without this crate taking on any I/O concerns.
#[derive(Clone, Debug)]
pub struct LiveState {
    /// The document.
    pub tree: DataTree,
    /// The intern pool's byte arena (see [`Interner::arena`]).
    pub interner_arena: Vec<u8>,
    /// The intern pool's `(start, len)` spans (see [`Interner::spans`]).
    pub interner_spans: Vec<(u32, u32)>,
    /// Every planned single-valued column's dense value vector, ascending
    /// by `(element type, field)` key.
    pub singles: Vec<SingleColumnState>,
    /// Every planned set-valued column's dense member vectors, ascending
    /// by `(element type, attribute)` key.
    pub sets: Vec<SetColumnState>,
    /// Vertex ↦ its structural violations, ascending by vertex.
    pub struct_viols: Vec<(u32, Vec<Violation>)>,
}

/// An inconsistency detected while adopting a [`LiveState`] snapshot:
/// the state does not fit the validator's constraint plan or references
/// symbols/vertices that cannot exist. Adoption is all-or-nothing — a
/// rejected state leaves nothing half-built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateError {
    /// What was inconsistent, for operators and logs.
    pub detail: String,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid live state: {}", self.detail)
    }
}

impl std::error::Error for StateError {}

/// A validator that owns a document and revalidates it incrementally under
/// edits.
///
/// Construction pays one full validation pass (building the mutable column
/// store, ID table, structural map, and per-constraint violation tables);
/// each edit thereafter updates only the state the edit can affect and
/// returns the violation diff. [`LiveValidator::report`] is always
/// byte-identical to [`Validator::validate`] on [`LiveValidator::tree`].
///
/// Incremental checking is inherently sequential — per-edit work is far
/// below the engine's parallel cutoff — so the validator's `threads`
/// option is ignored here (reports are identical at every setting anyway).
pub struct LiveValidator<'v, 'd> {
    v: &'v Validator<'d>,
    tree: DataTree,
    store: Store,
    ids: IdTable,
    parts: Vec<Part>,
    subs: Subs,
    /// Vertex ↦ its structural violations (absent = none), in vertex order.
    struct_viols: BTreeMap<u32, Vec<Violation>>,
    /// The root-label violation, if any (immutable: the root cannot be
    /// deleted or relabelled).
    root_viol: Option<Violation>,
}

impl<'v, 'd> LiveValidator<'v, 'd> {
    /// Builds the live state for `tree` (one full-validation-cost pass).
    ///
    /// Columns, occurrence maps, and constraint tables are bulk-loaded:
    /// each planned cell is extracted exactly once into a reserve-exact
    /// map, reverse indexes are grouped with one counting sort per column
    /// instead of a hash probe and B-tree insert per cell, and the
    /// per-constraint init passes run with pre-resolved columns and no
    /// diff accounting.
    pub fn new(v: &'v Validator<'d>, tree: DataTree) -> Self {
        let _init = v.obs.span("live.init");
        let s = v.dtdc().structure();
        let idx = ExtIndex::build(&tree);

        let mut store = Store {
            interner: Interner::new(),
            singles: HashMap::new(),
            sets: HashMap::new(),
        };
        // Extraction interns through the one shared interner and stays
        // sequential; everything downstream of it is per-column
        // independent and fans out over the same thread budget the
        // one-shot engine's check phase uses.
        let threads = (tree.len() / crate::par::MIN_NODES_PER_THREAD)
            .max(1)
            .min(v.effective_threads());
        enum RawVals {
            Single((Name, Field), Vec<Option<Sym>>),
            Set((Name, Name), Vec<Vec<Sym>>),
        }
        let bound = tree.id_bound();
        let mut raw: Vec<(RawVals, Vec<(Sym, u32)>)> = Vec::new();
        for (tau, fields) in &v.plan.singles {
            let ext = idx.ext(tau);
            // One extent walk extracts every planned field of τ: the
            // vertex's node record and attribute list stay hot across
            // fields instead of being re-fetched once per column.
            type SingleCol = (Vec<Option<Sym>>, Vec<(Sym, u32)>);
            let mut cols: Vec<SingleCol> = fields
                .iter()
                .map(|_| (vec![None; bound], Vec::with_capacity(ext.len())))
                .collect();
            for &x in ext {
                let xi = x.index() as u32;
                for (col, field) in cols.iter_mut().zip(fields) {
                    let val = extract_single(&tree, x, field, &mut store.interner);
                    col.0[xi as usize] = val;
                    if let Some(sym) = val {
                        col.1.push((sym, xi));
                    }
                }
            }
            for ((vals, pairs), field) in cols.into_iter().zip(fields) {
                raw.push((RawVals::Single((tau.clone(), field.clone()), vals), pairs));
            }
        }
        for (tau, attrs) in &v.plan.sets {
            let ext = idx.ext(tau);
            for attr in attrs {
                let mut vals: Vec<Vec<Sym>> = Vec::new();
                vals.resize_with(bound, Vec::new);
                let mut pairs: Vec<(Sym, u32)> = Vec::new();
                for &x in ext {
                    let xi = x.index() as u32;
                    let members: Vec<Sym> = match tree.attr(x, attr) {
                        Some(val) => val
                            .values()
                            .iter()
                            .map(|s| store.interner.intern(s))
                            .collect(),
                        None => Vec::new(),
                    };
                    for &m in &members {
                        pairs.push((m, xi));
                    }
                    vals[xi as usize] = members;
                }
                raw.push((RawVals::Set((tau.clone(), attr.clone()), vals), pairs));
            }
        }
        let nsym = store.interner.len();
        let built = crate::par::fan_out(threads, raw, &v.obs, "init.col", |(rv, pairs)| {
            (rv, build_occ(&pairs, nsym))
        });
        for (rv, occ) in built {
            match rv {
                RawVals::Single(key, vals) => {
                    store.singles.insert(key, SingleCol { vals, occ });
                }
                RawVals::Set(key, vals) => {
                    store.sets.insert(key, SetCol { vals, occ });
                }
            }
        }

        let mut ids = IdTable::default();
        for (rank, tau) in s.element_types().enumerate() {
            ids.ranks.insert(tau.clone(), rank as u32);
        }
        if v.plan.needs_ids {
            for tau in s.element_types() {
                if let Some(a) = s.id_attr(tau) {
                    ids.id_field_of.insert(tau.clone(), Field::Attr(a.clone()));
                }
            }
            let IdTable {
                ranks,
                id_field_of,
                carriers,
            } = &mut ids;
            for (tau, f) in id_field_of.iter() {
                let Some(col) = store.singles.get(&(tau.clone(), f.clone())) else {
                    continue;
                };
                let rank = ranks[tau];
                for &x in idx.ext(tau) {
                    let xi = x.index() as u32;
                    if let Some(val) = col.get(xi) {
                        carriers.entry(val).or_default().insert((rank, xi));
                    }
                }
            }
        }

        let mut root_viol = None;
        let root_label = tree.label(tree.root());
        if root_label != s.root() {
            root_viol = Some(Violation::RootLabel {
                expected: s.root().clone(),
                found: root_label.clone(),
            });
        }
        // Vertices are structurally independent: chunk the scan, then
        // merge the (ascending) per-chunk results in order.
        let all_nodes: Vec<NodeId> = tree.node_ids().collect();
        let chunks = crate::par::chunked(threads, all_nodes.len(), &v.obs, "init.struct", |r| {
            let mut word: Vec<Symbol> = Vec::new();
            let mut buf: Vec<Violation> = Vec::new();
            let mut out: Vec<(u32, Vec<Violation>)> = Vec::new();
            for &id in &all_nodes[r] {
                buf.clear();
                v.check_structure_node(&tree, id, &mut word, &mut buf);
                if !buf.is_empty() {
                    out.push((id.index() as u32, buf.clone()));
                }
            }
            out
        });
        let mut struct_viols = BTreeMap::new();
        for chunk in chunks {
            struct_viols.extend(chunk);
        }

        let mut parts = build_parts(v.dtdc());
        let items: Vec<(u32, &mut Part)> = (0u32..).zip(parts.iter_mut()).collect();
        crate::par::fan_out(threads, items, &v.obs, "init.part", |(pi, p)| {
            p.init(&idx, &store, &ids, pi);
        });
        let subs = Subs::build(&store, &parts, &ids);

        LiveValidator {
            v,
            tree,
            store,
            ids,
            parts,
            subs,
            struct_viols,
            root_viol,
        }
    }

    /// Rebuilds a live validator from an exported [`LiveState`] without
    /// re-parsing, re-extracting, or re-running the content-model scan.
    ///
    /// The expensive phases of [`LiveValidator::new`] — per-cell attribute
    /// extraction and interning, and the structural DFA scan — are replaced
    /// by the snapshot's stored columns and violation table; only the
    /// derived indexes (occurrence maps via the same stable counting sort,
    /// the ID table, per-constraint tables, subscriptions) are recomputed,
    /// in the same deterministic order `new` builds them. The resulting
    /// validator's [`report`](LiveValidator::report) is byte-identical to
    /// scratch validation of `state.tree`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] — never panics — when the state is
    /// internally inconsistent or does not match `v`'s constraint plan:
    /// malformed intern-pool parts, missing/extra/duplicate columns,
    /// symbols outside the pool, or vectors extending past the tree's id
    /// bound. Cells of dead vertices must be empty.
    pub fn from_state(v: &'v Validator<'d>, state: LiveState) -> Result<Self, StateError> {
        let _warm = v.obs.span("live.warm");
        let s = v.dtdc().structure();
        let LiveState {
            tree,
            interner_arena,
            interner_spans,
            singles,
            sets,
            struct_viols,
        } = state;

        let interner = Interner::from_parts(interner_arena, interner_spans)
            .map_err(|detail| StateError { detail })?;
        let nsym = interner.len();
        let bound = tree.id_bound();

        // The snapshot must cover the plan exactly: a missing column would
        // panic on first read, and an extra one means the snapshot was
        // taken under a different schema or constraint set.
        let want: BTreeSet<(Name, Field)> = v
            .plan
            .singles
            .iter()
            .flat_map(|(tau, fs)| fs.iter().map(move |f| (tau.clone(), f.clone())))
            .collect();
        let got: BTreeSet<(Name, Field)> = singles.iter().map(|(k, _)| k.clone()).collect();
        if got != want || got.len() != singles.len() {
            return Err(StateError {
                detail: format!(
                    "single columns do not match the constraint plan \
                     ({} stored, {} planned)",
                    singles.len(),
                    want.len()
                ),
            });
        }
        let want: BTreeSet<(Name, Name)> = v
            .plan
            .sets
            .iter()
            .flat_map(|(tau, attrs)| attrs.iter().map(move |a| (tau.clone(), a.clone())))
            .collect();
        let got: BTreeSet<(Name, Name)> = sets.iter().map(|(k, _)| k.clone()).collect();
        if got != want || got.len() != sets.len() {
            return Err(StateError {
                detail: format!(
                    "set columns do not match the constraint plan \
                     ({} stored, {} planned)",
                    sets.len(),
                    want.len()
                ),
            });
        }

        let check_cell = |xi: usize, sym: Sym, what: &dyn std::fmt::Display| {
            if sym.index() >= nsym {
                return Err(StateError {
                    detail: format!(
                        "column {what} cell n{xi} references symbol {} of an \
                         intern pool holding {nsym}",
                        sym.index()
                    ),
                });
            }
            if !tree.is_alive(NodeId::from_index(xi)) {
                return Err(StateError {
                    detail: format!("column {what} has a value at dead vertex n{xi}"),
                });
            }
            Ok(())
        };
        for ((tau, f), vals) in &singles {
            if vals.len() > bound {
                return Err(StateError {
                    detail: format!(
                        "column ({tau}, {f}) holds {} cells but the tree's id \
                         bound is {bound}",
                        vals.len()
                    ),
                });
            }
            for (xi, cell) in vals.iter().enumerate() {
                if let Some(sym) = cell {
                    check_cell(xi, *sym, &format_args!("({tau}, {f})"))?;
                }
            }
        }
        for ((tau, a), vals) in &sets {
            if vals.len() > bound {
                return Err(StateError {
                    detail: format!(
                        "column ({tau}, {a}) holds {} rows but the tree's id \
                         bound is {bound}",
                        vals.len()
                    ),
                });
            }
            for (xi, members) in vals.iter().enumerate() {
                for &m in members {
                    check_cell(xi, m, &format_args!("({tau}, {a})"))?;
                }
            }
        }
        for (xi, viols) in &struct_viols {
            if *xi as usize >= bound || viols.is_empty() {
                return Err(StateError {
                    detail: format!(
                        "structural violation entry at vertex n{xi} is empty \
                         or out of bounds (id bound {bound})"
                    ),
                });
            }
        }

        let idx = ExtIndex::build(&tree);
        let threads = (tree.len() / crate::par::MIN_NODES_PER_THREAD)
            .max(1)
            .min(v.effective_threads());
        let mut store = Store {
            interner,
            singles: HashMap::new(),
            sets: HashMap::new(),
        };
        // Occurrence maps are regrouped exactly as bulk init groups them:
        // pairs ascend by vertex (extraction walked extents in ascending
        // id order, and dense cells are revisited the same way), and the
        // counting sort is stable, so `Holders` runs come out identical.
        enum RawVals {
            Single((Name, Field), Vec<Option<Sym>>),
            Set((Name, Name), Vec<Vec<Sym>>),
        }
        let mut raw: Vec<(RawVals, Vec<(Sym, u32)>)> =
            Vec::with_capacity(singles.len() + sets.len());
        for (key, vals) in singles {
            let mut pairs = Vec::new();
            for (xi, cell) in vals.iter().enumerate() {
                if let Some(sym) = cell {
                    pairs.push((*sym, xi as u32));
                }
            }
            raw.push((RawVals::Single(key, vals), pairs));
        }
        for (key, vals) in sets {
            let mut pairs = Vec::new();
            for (xi, members) in vals.iter().enumerate() {
                for &m in members {
                    pairs.push((m, xi as u32));
                }
            }
            raw.push((RawVals::Set(key, vals), pairs));
        }
        let built = crate::par::fan_out(threads, raw, &v.obs, "warm.col", |(rv, pairs)| {
            (rv, build_occ(&pairs, nsym))
        });
        for (rv, occ) in built {
            match rv {
                RawVals::Single(key, vals) => {
                    store.singles.insert(key, SingleCol { vals, occ });
                }
                RawVals::Set(key, vals) => {
                    store.sets.insert(key, SetCol { vals, occ });
                }
            }
        }

        let mut ids = IdTable::default();
        for (rank, tau) in s.element_types().enumerate() {
            ids.ranks.insert(tau.clone(), rank as u32);
        }
        if v.plan.needs_ids {
            for tau in s.element_types() {
                if let Some(a) = s.id_attr(tau) {
                    ids.id_field_of.insert(tau.clone(), Field::Attr(a.clone()));
                }
            }
            let IdTable {
                ranks,
                id_field_of,
                carriers,
            } = &mut ids;
            for (tau, f) in id_field_of.iter() {
                let Some(col) = store.singles.get(&(tau.clone(), f.clone())) else {
                    continue;
                };
                let rank = ranks[tau];
                for &x in idx.ext(tau) {
                    let xi = x.index() as u32;
                    if let Some(val) = col.get(xi) {
                        carriers.entry(val).or_default().insert((rank, xi));
                    }
                }
            }
        }

        // The root check is two label compares — recomputing it beats
        // trusting (and having to re-verify) a stored copy.
        let mut root_viol = None;
        let root_label = tree.label(tree.root());
        if root_label != s.root() {
            root_viol = Some(Violation::RootLabel {
                expected: s.root().clone(),
                found: root_label.clone(),
            });
        }

        let mut parts = build_parts(v.dtdc());
        let items: Vec<(u32, &mut Part)> = (0u32..).zip(parts.iter_mut()).collect();
        crate::par::fan_out(threads, items, &v.obs, "warm.part", |(pi, p)| {
            p.init(&idx, &store, &ids, pi);
        });
        let subs = Subs::build(&store, &parts, &ids);

        Ok(LiveValidator {
            v,
            tree,
            store,
            ids,
            parts,
            subs,
            struct_viols: struct_viols.into_iter().collect(),
            root_viol,
        })
    }

    /// Exports the validator's owned state for snapshotting.
    ///
    /// The export is deterministic (columns and violation entries come out
    /// in ascending key order) and self-contained: feeding it back through
    /// [`LiveValidator::from_state`] — on this validator or a freshly built
    /// one over the same schema — reproduces a validator whose report and
    /// future edit behaviour are identical.
    pub fn export_state(&self) -> LiveState {
        let _span = self.v.obs.span("live.export");
        let mut singles: Vec<SingleColumnState> = self
            .store
            .singles
            .iter()
            .map(|(k, col)| (k.clone(), col.vals.clone()))
            .collect();
        singles.sort_by(|a, b| a.0.cmp(&b.0));
        let mut sets: Vec<SetColumnState> = self
            .store
            .sets
            .iter()
            .map(|(k, col)| (k.clone(), col.vals.clone()))
            .collect();
        sets.sort_by(|a, b| a.0.cmp(&b.0));
        LiveState {
            tree: self.tree.clone(),
            interner_arena: self.store.interner.arena().to_vec(),
            interner_spans: self.store.interner.spans().to_vec(),
            singles,
            sets,
            struct_viols: self
                .struct_viols
                .iter()
                .map(|(x, vs)| (*x, vs.clone()))
                .collect(),
        }
    }

    /// The current document.
    pub fn tree(&self) -> &DataTree {
        &self.tree
    }

    /// The full report for the current document — byte-identical to
    /// [`Validator::validate`] on [`LiveValidator::tree`], assembled in
    /// O(#violations) from the maintained tables.
    pub fn report(&self) -> Report {
        let mut violations = Vec::new();
        violations.extend(self.root_viol.iter().cloned());
        for vs in self.struct_viols.values() {
            violations.extend(vs.iter().cloned());
        }
        for p in &self.parts {
            violations.extend(p.entries.values().cloned());
        }
        Report {
            violations,
            metrics: self.v.obs.snapshot(),
        }
    }

    /// The validator's observability handle, cloned so a span guard never
    /// borrows `self` across the `&mut self` edit work.
    fn obs(&self) -> Obs {
        self.v.obs.clone()
    }

    /// Sets attribute `l` of `node` (creating or replacing it) and
    /// revalidates incrementally.
    pub fn set_attr(
        &mut self,
        node: NodeId,
        l: impl Into<Name>,
        value: AttrValue,
    ) -> Result<EditOutcome, ModelError> {
        let obs = self.obs();
        let _edit = obs.span("edit");
        let _kind = obs.span("edit.set_attr");
        let l: Name = l.into();
        let edit = self.tree.set_attr(node, l.clone(), value)?;
        let mut acc = DiffAcc::default();
        self.apply_attr_change(node, &l, &mut acc);
        self.refresh_struct(node, &mut acc);
        Ok(self.outcome(edit, acc))
    }

    /// Removes attribute `l` of `node` and revalidates incrementally.
    pub fn remove_attr(&mut self, node: NodeId, l: &str) -> Result<EditOutcome, ModelError> {
        let obs = self.obs();
        let _edit = obs.span("edit");
        let _kind = obs.span("edit.remove_attr");
        let edit = self.tree.remove_attr(node, l)?;
        let Edit::RemoveAttr { attr, .. } = &edit else {
            unreachable!("remove_attr yields a RemoveAttr delta");
        };
        let attr = attr.clone();
        let mut acc = DiffAcc::default();
        self.apply_attr_change(node, &attr, &mut acc);
        self.refresh_struct(node, &mut acc);
        Ok(self.outcome(edit, acc))
    }

    /// Replaces the `index`-th *text* child of `node` and revalidates
    /// incrementally. The child word is unchanged, so no structural
    /// recheck is needed; only the parent's sub-element column can shift.
    pub fn set_text(
        &mut self,
        node: NodeId,
        index: usize,
        text: impl Into<Value>,
    ) -> Result<EditOutcome, ModelError> {
        let obs = self.obs();
        let _edit = obs.span("edit");
        let _kind = obs.span("edit.set_text");
        let edit = self.tree.set_text(node, index, text)?;
        let mut acc = DiffAcc::default();
        if let Some(p) = self.tree.node(node).parent() {
            let ptau = self.tree.label(p).clone();
            let e = self.tree.label(node).clone();
            self.emit_single(&ptau, &Field::Sub(e), p.index() as u32, &mut acc);
        }
        Ok(self.outcome(edit, acc))
    }

    /// Grafts a copy of `fragment` under `parent` at child `position` and
    /// revalidates incrementally. The new vertices get fresh ids at the
    /// arena end, so every extent view only appends and report order is
    /// preserved.
    pub fn insert_subtree(
        &mut self,
        parent: NodeId,
        position: usize,
        fragment: &DataTree,
    ) -> Result<EditOutcome, ModelError> {
        let obs = self.obs();
        let _edit = obs.span("edit");
        let _kind = obs.span("edit.insert_subtree");
        let before = self.tree.id_bound();
        let edit = self.tree.insert_subtree(parent, position, fragment)?;
        let Edit::InsertSubtree { root, .. } = &edit else {
            unreachable!("insert_subtree yields an InsertSubtree delta");
        };
        let root = *root;
        let mut acc = DiffAcc::default();
        let new_ids: Vec<NodeId> = (before..self.tree.id_bound())
            .map(NodeId::from_index)
            .collect();
        // Fill every new vertex's columns first, then announce them: the
        // store must reflect the final state before any part refreshes,
        // and each refresh is idempotent over it.
        for &x in &new_ids {
            self.fill_node(x);
        }
        for &x in &new_ids {
            let tau = self.tree.label(x).clone();
            self.dispatch(
                Change::NodeAdded {
                    tau,
                    node: x.index() as u32,
                },
                &mut acc,
            );
            self.refresh_struct(x, &mut acc);
        }
        let e = self.tree.label(root).clone();
        let ptau = self.tree.label(parent).clone();
        self.emit_single(&ptau, &Field::Sub(e), parent.index() as u32, &mut acc);
        self.refresh_struct(parent, &mut acc);
        Ok(self.outcome(edit, acc))
    }

    /// Deletes the subtree rooted at `node` and revalidates incrementally.
    pub fn delete_subtree(&mut self, node: NodeId) -> Result<EditOutcome, ModelError> {
        let obs = self.obs();
        let _edit = obs.span("edit");
        let _kind = obs.span("edit.delete_subtree");
        let edit = self.tree.delete_subtree(node)?;
        let Edit::DeleteSubtree { parent, root, .. } = &edit else {
            unreachable!("delete_subtree yields a DeleteSubtree delta");
        };
        let (parent, root) = (*parent, *root);
        let mut acc = DiffAcc::default();
        // The tombstoned vertices are still readable; collect the removed
        // subtree in ascending id order and retract each vertex.
        let mut removed: Vec<NodeId> = Vec::new();
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            removed.push(x);
            stack.extend(self.tree.node(x).child_nodes());
        }
        removed.sort_by_key(|n| n.index());
        for &x in &removed {
            self.remove_node(x, &mut acc);
        }
        let e = self.tree.label(root).clone();
        let ptau = self.tree.label(parent).clone();
        self.emit_single(&ptau, &Field::Sub(e), parent.index() as u32, &mut acc);
        self.refresh_struct(parent, &mut acc);
        Ok(self.outcome(edit, acc))
    }

    /// Applies a batch of edit requests with one propagation pass.
    ///
    /// Requests are staged in order: structural requests (insert/delete)
    /// mutate the tree immediately — so liveness checks, fragment id
    /// assignment, and child positions see exactly the state sequential
    /// application would — while attribute and text writes coalesce per
    /// (vertex, attribute) / (vertex, text slot) with last-writer-wins.
    /// The flush then applies each surviving write once, retracts and
    /// announces each removed/inserted vertex once, re-extracts each
    /// touched column cell once (grouped per column, store updated ahead
    /// of dispatch), propagates each surviving store delta only to the
    /// constraint parts subscribed to its column, and reconciles raised
    /// and cleared violations in a single emission-order pass.
    ///
    /// The resulting [`LiveValidator::report`] is byte-identical to
    /// applying the same requests one at a time; the returned diff is the
    /// composition of the per-request diffs (violations both raised and
    /// cleared within the batch cancel out). On an invalid request the
    /// staged prefix is still flushed — the validator stays consistent
    /// with the requests before the failing one — and the error returns
    /// with the request's batch index; the prefix's diff is discarded.
    ///
    /// One caveat versus sequential application: a write coalesced away
    /// by last-writer-wins is never materialized, so the *tombstoned*
    /// content of a vertex deleted later in the same batch may differ
    /// from the sequential tree's. Tombstones are unreachable from every
    /// validation and report path, so the difference is unobservable
    /// there.
    pub fn apply_batch(&mut self, edits: &[BatchEdit]) -> Result<ReportDiff, BatchError> {
        let obs = self.obs();
        let _span = obs.span("edit.batch");
        let mut st = BatchState {
            pre_bound: self.tree.id_bound() as u32,
            ..Default::default()
        };
        let mut failed: Option<BatchError> = None;
        for (i, e) in edits.iter().enumerate() {
            if let Err(error) = self.stage(e, &mut st) {
                failed = Some(BatchError { index: i, error });
                break;
            }
        }
        let raw = st.staged;
        let (mut diff, coalesced) = self.flush(st);
        if let Some(err) = failed {
            return Err(err);
        }
        if obs.enabled() {
            obs.add("edits", raw);
            obs.add("edit.count", raw);
            obs.add("edit.coalesced", coalesced);
            obs.add("violations.raised", diff.raised.len() as u64);
            obs.add("violations.cleared", diff.cleared.len() as u64);
            diff.metrics = obs.snapshot();
        }
        Ok(diff)
    }

    /// [`DataTree`]'s liveness check, without mutating: the staged paths
    /// validate before pending a write rather than on performing it.
    fn check_live(&self, node: NodeId) -> Result<(), ModelError> {
        if node.index() >= self.tree.id_bound() {
            Err(ModelError::UnknownNode(node))
        } else if !self.tree.is_alive(node) {
            Err(ModelError::DeadNode(node))
        } else {
            Ok(())
        }
    }

    /// Records both cells attribute `l` of `node` can feed.
    fn touch_attr_cells(&self, node: NodeId, l: &Name, st: &mut BatchState) {
        let tau = self.tree.label(node);
        let xi = node.index() as u32;
        if let Some(&c) = self
            .subs
            .single_ids
            .get(&(tau.clone(), Field::Attr(l.clone())))
        {
            st.touched.push((c, xi));
        }
        if let Some(&c) = self.subs.set_ids.get(&(tau.clone(), l.clone())) {
            st.touched.push((c, xi));
        }
    }

    /// Records the parent-side `Sub(e)` cell a child-word change can feed.
    fn touch_sub_cell(&self, parent: NodeId, e: &Name, st: &mut BatchState) {
        let ptau = self.tree.label(parent);
        if let Some(&c) = self
            .subs
            .single_ids
            .get(&(ptau.clone(), Field::Sub(e.clone())))
        {
            st.touched.push((c, parent.index() as u32));
        }
    }

    /// Stages one batch request: validates it against the current staged
    /// state, applies structural mutations to the tree, pends value
    /// writes, and records the cells and vertices it touches.
    fn stage(&mut self, e: &BatchEdit, st: &mut BatchState) -> Result<(), ModelError> {
        match e {
            BatchEdit::SetAttr { node, attr, value } => {
                self.check_live(*node)?;
                // An overwritten pending write already recorded its cells;
                // re-touching would only re-probe the subscription index.
                if st
                    .pend_attr
                    .insert((node.index() as u32, attr.clone()), Some(value.clone()))
                    .is_none()
                {
                    self.touch_attr_cells(*node, attr, st);
                }
            }
            BatchEdit::RemoveAttr { node, attr } => {
                self.check_live(*node)?;
                let xi = node.index() as u32;
                let present = match st.pend_attr.get(&(xi, attr.clone())) {
                    Some(w) => w.is_some(),
                    None => self.tree.attr(*node, attr).is_some(),
                };
                if !present {
                    return Err(ModelError::NoSuchAttribute {
                        node: *node,
                        attr: attr.clone(),
                    });
                }
                if st.pend_attr.insert((xi, attr.clone()), None).is_none() {
                    self.touch_attr_cells(*node, attr, st);
                }
            }
            BatchEdit::SetText { node, index, text } => {
                self.check_live(*node)?;
                let n = self.tree.node(*node);
                // The text-child count of a live vertex is batch-invariant
                // (no edit adds or removes text children), so a slot valid
                // now is valid at flush.
                let texts = n.children.iter().filter(|c| c.as_text().is_some()).count();
                if *index >= texts {
                    return Err(ModelError::NoSuchText {
                        node: *node,
                        index: *index,
                    });
                }
                if st
                    .pend_text
                    .insert((node.index() as u32, *index), text.clone())
                    .is_none()
                {
                    if let Some(p) = n.parent() {
                        let e = self.tree.label(*node).clone();
                        self.touch_sub_cell(p, &e, st);
                    }
                }
            }
            BatchEdit::InsertSubtree {
                parent,
                position,
                fragment,
            } => {
                let before = self.tree.id_bound() as u32;
                let edit = self.tree.insert_subtree(*parent, *position, fragment)?;
                let Edit::InsertSubtree { root, .. } = &edit else {
                    unreachable!("insert_subtree yields an InsertSubtree delta");
                };
                let e = self.tree.label(*root).clone();
                st.added.extend(before..self.tree.id_bound() as u32);
                st.structural += 1;
                self.touch_sub_cell(*parent, &e, st);
                st.struct_touch.push(parent.index() as u32);
            }
            BatchEdit::DeleteSubtree { node } => {
                let edit = self.tree.delete_subtree(*node)?;
                let Edit::DeleteSubtree { parent, root, .. } = &edit else {
                    unreachable!("delete_subtree yields a DeleteSubtree delta");
                };
                let (parent, root) = (*parent, *root);
                let mut stack = vec![root];
                while let Some(x) = stack.pop() {
                    st.removed.push(x.index() as u32);
                    stack.extend(self.tree.node(x).child_nodes());
                }
                st.structural += 1;
                let e = self.tree.label(root).clone();
                self.touch_sub_cell(parent, &e, st);
                st.struct_touch.push(parent.index() as u32);
            }
        }
        st.staged += 1;
        Ok(())
    }

    /// Applies everything staged in `st` with one propagation pass,
    /// returning the reconciled diff and the surviving-operation count.
    fn flush(&mut self, st: BatchState) -> (ReportDiff, u64) {
        let BatchState {
            pre_bound,
            pend_attr,
            pend_text,
            added,
            removed,
            mut touched,
            mut struct_touch,
            structural,
            ..
        } = st;
        let mut acc = DiffAcc::default();
        let mut coalesced = structural;

        // 1. Surviving attribute writes, in (vertex, attribute) order.
        let mut writes: Vec<((u32, Name), Option<AttrValue>)> = pend_attr.into_iter().collect();
        writes.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for ((xi, l), w) in writes {
            let x = nid(xi);
            if !self.tree.is_alive(x) {
                continue; // the vertex was deleted later in the batch
            }
            coalesced += 1;
            // Attribute checks depend only on name presence and
            // singleton-ness, so replacing a value of equal shape cannot
            // change the structural verdict.
            let reshaped = match w {
                Some(value) => {
                    let single = value.is_singleton();
                    let old = self
                        .tree
                        .set_attr_quiet(x, l, value)
                        .expect("liveness checked above");
                    old.is_none_or(|o| o.is_singleton() != single)
                }
                None => self
                    .tree
                    .remove_attr_quiet(x, &l)
                    .expect("liveness checked above")
                    .is_some(),
            };
            if reshaped {
                struct_touch.push(xi);
            }
        }

        // 2. Surviving text writes.
        let mut writes: Vec<((u32, usize), Value)> = pend_text.into_iter().collect();
        writes.sort_unstable_by_key(|w| w.0);
        for ((xi, index), text) in writes {
            let x = nid(xi);
            if !self.tree.is_alive(x) {
                continue;
            }
            coalesced += 1;
            self.tree
                .set_text_quiet(x, index, text)
                .expect("slot staged-validated and batch-invariant");
        }

        // 3. Retract deleted pre-batch vertices, ascending. Vertices both
        // inserted and deleted by this batch were never filled, so they
        // need no retraction.
        let mut removed: Vec<u32> = removed.into_iter().filter(|&x| x < pre_bound).collect();
        removed.sort_unstable();
        for &xi in &removed {
            self.remove_node(nid(xi), &mut acc);
        }

        // 4. Fill surviving inserted vertices, then announce them. All
        // fills precede the first announcement: each refresh is idempotent
        // over the final store, and unannounced vertices are invisible to
        // the parts' own occurrence maps.
        let added: Vec<u32> = added
            .into_iter()
            .filter(|&x| self.tree.is_alive(nid(x)))
            .collect();
        for &xi in &added {
            self.fill_node(nid(xi));
        }
        for &xi in &added {
            let tau = self.tree.label(nid(xi)).clone();
            self.dispatch(Change::NodeAdded { tau, node: xi }, &mut acc);
            struct_touch.push(xi);
        }

        // 5. Re-extract each touched cell once, column by column: batch
        // the column's store updates, then dispatch only the surviving
        // deltas, only to the subscribed parts. Inserted vertices are
        // covered by `NodeAdded`, deleted ones by `NodeRemoved`. A part
        // reading a not-yet-flushed column during an earlier column's
        // dispatch self-corrects: each cell changes (and dispatches) at
        // most once, so the last refresh touching any given violation
        // slot sees every final value.
        touched.sort_unstable();
        touched.dedup();
        let mut i = 0;
        while i < touched.len() {
            let col = touched[i].0;
            let mut j = i;
            match self.subs.keys[col as usize].clone() {
                ColKey::Single(tau, field) => {
                    let mut changes: Vec<(u32, Option<Sym>, Option<Sym>)> = Vec::new();
                    {
                        let Self { tree, store, .. } = &mut *self;
                        let Store {
                            interner, singles, ..
                        } = store;
                        let cmap = singles
                            .get_mut(&(tau.clone(), field.clone()))
                            .expect("touched columns come from the subscription index");
                        while j < touched.len() && touched[j].0 == col {
                            let xi = touched[j].1;
                            j += 1;
                            if xi >= pre_bound || !tree.is_alive(nid(xi)) {
                                continue;
                            }
                            let new = extract_single(tree, nid(xi), &field, interner);
                            let old = cmap.set(xi, new);
                            if old != new {
                                changes.push((xi, old, new));
                            }
                        }
                    }
                    for (node, old, new) in changes {
                        self.dispatch_to(
                            col,
                            Change::Single {
                                tau: tau.clone(),
                                field: field.clone(),
                                node,
                                old,
                                new,
                            },
                            &mut acc,
                        );
                    }
                }
                ColKey::Set(tau, attr) => {
                    let mut changes: Vec<u32> = Vec::new();
                    {
                        let Self { tree, store, .. } = &mut *self;
                        let Store { interner, sets, .. } = store;
                        let cmap = sets
                            .get_mut(&(tau.clone(), attr.clone()))
                            .expect("touched columns come from the subscription index");
                        while j < touched.len() && touched[j].0 == col {
                            let xi = touched[j].1;
                            j += 1;
                            if xi >= pre_bound || !tree.is_alive(nid(xi)) {
                                continue;
                            }
                            let new: Vec<Sym> = match tree.attr(nid(xi), &attr) {
                                Some(val) => {
                                    val.values().iter().map(|s| interner.intern(s)).collect()
                                }
                                None => Vec::new(),
                            };
                            let old = cmap.set(xi, new.clone());
                            if old != new {
                                changes.push(xi);
                            }
                        }
                    }
                    for node in changes {
                        self.dispatch_to(
                            col,
                            Change::Set {
                                tau: tau.clone(),
                                attr: attr.clone(),
                                node,
                            },
                            &mut acc,
                        );
                    }
                }
            }
            i = j;
        }

        // 6. One structural recheck per touched vertex.
        struct_touch.sort_unstable();
        struct_touch.dedup();
        for xi in struct_touch {
            if self.tree.is_alive(nid(xi)) {
                self.refresh_struct(nid(xi), &mut acc);
            }
        }

        (acc.finalize(&self.struct_viols, &self.parts), coalesced)
    }

    /// Dispatches one change to the ID table and only the parts
    /// subscribed to column `col`.
    fn dispatch_to(&mut self, col: u32, change: Change, acc: &mut DiffAcc) {
        let Self {
            parts,
            store,
            ids,
            subs,
            ..
        } = self;
        ids.apply(&change, store);
        for &pi in &subs.parts_of[col as usize] {
            parts[pi as usize].apply(&change, store, ids, pi, acc);
        }
    }

    fn outcome(&mut self, edit: Edit, acc: DiffAcc) -> EditOutcome {
        let mut diff = acc.finalize(&self.struct_viols, &self.parts);
        let obs = &self.v.obs;
        if obs.enabled() {
            obs.add("edits", 1);
            obs.add("edit.count", 1);
            obs.add("edit.coalesced", 1);
            obs.add("violations.raised", diff.raised.len() as u64);
            obs.add("violations.cleared", diff.cleared.len() as u64);
            diff.metrics = obs.snapshot();
        }
        EditOutcome { edit, diff }
    }

    /// Re-extracts both columns attribute `l` can feed (a single-valued
    /// `Attr` field and a set-valued attribute column) and dispatches any
    /// change.
    fn apply_attr_change(&mut self, node: NodeId, l: &Name, acc: &mut DiffAcc) {
        let tau = self.tree.label(node).clone();
        let xi = node.index() as u32;
        self.emit_single(&tau, &Field::Attr(l.clone()), xi, acc);
        self.emit_set(&tau, l, xi, acc);
    }

    /// Recomputes one single-valued cell from the tree; if it changed,
    /// updates the store and dispatches the delta. No-op for unplanned
    /// columns.
    fn emit_single(&mut self, tau: &Name, field: &Field, x: u32, acc: &mut DiffAcc) {
        let key = (tau.clone(), field.clone());
        if !self.store.singles.contains_key(&key) {
            return;
        }
        let Self { tree, store, .. } = &mut *self;
        let new = extract_single(tree, nid(x), field, &mut store.interner);
        let old = store
            .singles
            .get_mut(&key)
            .expect("checked above")
            .set(x, new);
        if old != new {
            self.dispatch(
                Change::Single {
                    tau: tau.clone(),
                    field: field.clone(),
                    node: x,
                    old,
                    new,
                },
                acc,
            );
        }
    }

    /// Set-valued counterpart of [`Self::emit_single`].
    fn emit_set(&mut self, tau: &Name, attr: &Name, x: u32, acc: &mut DiffAcc) {
        let key = (tau.clone(), attr.clone());
        if !self.store.sets.contains_key(&key) {
            return;
        }
        let Self { tree, store, .. } = &mut *self;
        let new: Vec<Sym> = match tree.attr(nid(x), attr) {
            Some(val) => val
                .values()
                .iter()
                .map(|s| store.interner.intern(s))
                .collect(),
            None => Vec::new(),
        };
        let old = store
            .sets
            .get_mut(&key)
            .expect("checked above")
            .set(x, new.clone());
        if old != new {
            self.dispatch(
                Change::Set {
                    tau: tau.clone(),
                    attr: attr.clone(),
                    node: x,
                },
                acc,
            );
        }
    }

    /// Runs core ID-table maintenance, then every part, on one change.
    fn dispatch(&mut self, change: Change, acc: &mut DiffAcc) {
        let Self {
            parts, store, ids, ..
        } = self;
        ids.apply(&change, store);
        for (pi, p) in parts.iter_mut().enumerate() {
            p.apply(&change, store, ids, pi as u32, acc);
        }
    }

    /// Fills a freshly inserted vertex's planned columns from the tree
    /// (no change dispatch — `NodeAdded` announces it afterwards).
    fn fill_node(&mut self, x: NodeId) {
        let v = self.v;
        let tau = self.tree.label(x).clone();
        let xi = x.index() as u32;
        let Self { tree, store, .. } = &mut *self;
        if let Some(fields) = v.plan.singles.get(&tau) {
            for f in fields {
                let val = extract_single(tree, x, f, &mut store.interner);
                store
                    .singles
                    .get_mut(&(tau.clone(), f.clone()))
                    .expect("plan column built at construction")
                    .set(xi, val);
            }
        }
        if let Some(attrs) = v.plan.sets.get(&tau) {
            for a in attrs {
                let members: Vec<Sym> = match tree.attr(x, a) {
                    Some(val) => val
                        .values()
                        .iter()
                        .map(|s| store.interner.intern(s))
                        .collect(),
                    None => Vec::new(),
                };
                store
                    .sets
                    .get_mut(&(tau.clone(), a.clone()))
                    .expect("plan column built at construction")
                    .set(xi, members);
            }
        }
    }

    /// Retracts one removed vertex: snapshots and drops its store cells,
    /// announces `NodeRemoved`, clears its structural entry.
    fn remove_node(&mut self, x: NodeId, acc: &mut DiffAcc) {
        let v = self.v;
        let tau = self.tree.label(x).clone();
        let xi = x.index() as u32;
        let mut singles: Vec<(Field, Option<Sym>)> = Vec::new();
        if let Some(fields) = v.plan.singles.get(&tau) {
            for f in fields {
                let col = self
                    .store
                    .singles
                    .get_mut(&(tau.clone(), f.clone()))
                    .expect("plan column built at construction");
                singles.push((f.clone(), col.remove(xi)));
            }
        }
        if let Some(attrs) = v.plan.sets.get(&tau) {
            for a in attrs {
                self.store
                    .sets
                    .get_mut(&(tau.clone(), a.clone()))
                    .expect("plan column built at construction")
                    .remove(xi);
            }
        }
        self.dispatch(
            Change::NodeRemoved {
                tau,
                node: xi,
                singles,
            },
            acc,
        );
        self.clear_struct(x, acc);
    }

    /// Re-runs the per-vertex structural check for `x`.
    fn refresh_struct(&mut self, x: NodeId, acc: &mut DiffAcc) {
        let xi = x.index() as u32;
        let old = self.struct_viols.get(&xi).cloned().unwrap_or_default();
        acc.touch_struct(xi, &old);
        let mut word: Vec<Symbol> = Vec::new();
        let mut buf: Vec<Violation> = Vec::new();
        self.v
            .check_structure_node(&self.tree, x, &mut word, &mut buf);
        if buf.is_empty() {
            self.struct_viols.remove(&xi);
        } else {
            self.struct_viols.insert(xi, buf);
        }
    }

    /// Drops the structural entry of a removed vertex.
    fn clear_struct(&mut self, x: NodeId, acc: &mut DiffAcc) {
        let xi = x.index() as u32;
        let old = self.struct_viols.remove(&xi).unwrap_or_default();
        acc.touch_struct(xi, &old);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::examples::book_dtdc;
    use xic_model::TreeBuilder;

    /// A fully valid book document.
    fn valid_book() -> DataTree {
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        let entry = b.child_node(book, "entry").unwrap();
        b.attr(entry, "isbn", AttrValue::single("x1")).unwrap();
        b.leaf(entry, "title", "T").unwrap();
        b.leaf(entry, "publisher", "P").unwrap();
        b.leaf(book, "author", "A").unwrap();
        let s1 = b.child_node(book, "section").unwrap();
        b.attr(s1, "sid", AttrValue::single("s1")).unwrap();
        b.leaf(s1, "title", "Intro").unwrap();
        b.leaf(s1, "text", "...").unwrap();
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["x1"])).unwrap();
        b.finish(book).unwrap()
    }

    /// A standalone entry fragment with the given ISBN.
    fn entry_fragment(isbn: &str) -> DataTree {
        let mut b = TreeBuilder::new();
        let entry = b.node("entry");
        b.attr(entry, "isbn", AttrValue::single(isbn)).unwrap();
        b.leaf(entry, "title", "T2").unwrap();
        b.leaf(entry, "publisher", "P2").unwrap();
        b.finish(entry).unwrap()
    }

    /// Asserts the live report is byte-identical to a from-scratch run.
    fn assert_matches_scratch(live: &LiveValidator<'_, '_>, v: &Validator<'_>) {
        let scratch = v.validate(live.tree());
        assert_eq!(
            live.report().violations,
            scratch.violations,
            "live report diverged from from-scratch validation"
        );
    }

    /// Unwraps the rejection of a bad snapshot.
    fn reject(v: &Validator<'_>, bad: LiveState) -> StateError {
        match LiveValidator::from_state(v, bad) {
            Err(e) => e,
            Ok(_) => panic!("expected the snapshot to be rejected"),
        }
    }

    /// Asserts `old + raised − cleared = new` as violation multisets.
    fn assert_diff_consistent(old: &Report, diff: &ReportDiff, new: &Report) {
        let mut expect: Vec<&Violation> = old.violations.iter().collect();
        for r in &diff.raised {
            expect.push(r);
        }
        for c in &diff.cleared {
            let i = expect
                .iter()
                .position(|v| *v == c)
                .expect("cleared violation was present");
            expect.remove(i);
        }
        let mut actual: Vec<&Violation> = new.violations.iter().collect();
        let key = |v: &&Violation| format!("{v:?}");
        expect.sort_by_key(key);
        actual.sort_by_key(key);
        assert_eq!(expect, actual, "diff does not reconcile old and new");
    }

    #[test]
    fn attr_edit_raises_and_clears_fk_violation() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        let mut live = LiveValidator::new(&v, valid_book());
        assert!(live.report().is_valid());
        let entry = live.tree().ext("entry").next().unwrap();

        // Renaming the entry's key leaves ref.@to dangling.
        let before = live.report();
        let out = live
            .set_attr(entry, "isbn", AttrValue::single("x9"))
            .unwrap();
        assert!(
            out.diff
                .raised
                .iter()
                .any(|x| matches!(x, Violation::ForeignKey { value, .. } if value == "x1")),
            "expected a dangling-reference violation, got {:?}",
            out.diff
        );
        assert_diff_consistent(&before, &out.diff, &live.report());
        assert_matches_scratch(&live, &v);

        // Renaming it back clears exactly what was raised.
        let before = live.report();
        let out = live
            .set_attr(entry, "isbn", AttrValue::single("x1"))
            .unwrap();
        assert!(out.diff.raised.is_empty(), "{:?}", out.diff);
        assert!(!out.diff.cleared.is_empty());
        assert_diff_consistent(&before, &out.diff, &live.report());
        assert!(live.report().is_valid());
        assert_matches_scratch(&live, &v);
    }

    #[test]
    fn insert_then_delete_roundtrips_key_violation() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        let mut live = LiveValidator::new(&v, valid_book());
        let book = live.tree().root();

        // A second entry with a duplicate ISBN violates the key and the
        // content model (book allows one entry).
        let before = live.report();
        let out = live.insert_subtree(book, 1, &entry_fragment("x1")).unwrap();
        let inserted = match out.edit {
            Edit::InsertSubtree { root, count, .. } => {
                assert_eq!(count, 3);
                root
            }
            ref e => panic!("unexpected delta {e:?}"),
        };
        assert!(out
            .diff
            .raised
            .iter()
            .any(|x| matches!(x, Violation::Key { .. })));
        assert_diff_consistent(&before, &out.diff, &live.report());
        assert_matches_scratch(&live, &v);

        // Deleting it restores the exact pre-insert report.
        let before = live.report();
        let out = live.delete_subtree(inserted).unwrap();
        assert_diff_consistent(&before, &out.diff, &live.report());
        assert!(live.report().is_valid());
        assert_matches_scratch(&live, &v);
    }

    #[test]
    fn remove_attr_and_set_text_track_scratch() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        let mut live = LiveValidator::new(&v, valid_book());
        let entry = live.tree().ext("entry").next().unwrap();
        let title = live.tree().ext("title").next().unwrap();

        let before = live.report();
        let out = live.remove_attr(entry, "isbn").unwrap();
        assert!(!out.diff.raised.is_empty(), "missing key field must raise");
        assert_diff_consistent(&before, &out.diff, &live.report());
        assert_matches_scratch(&live, &v);

        let out = live.set_text(title, 0, "New Title").unwrap();
        assert_matches_scratch(&live, &v);
        assert_eq!(live.tree().node(title).text(), "New Title");
        drop(out);
    }

    #[test]
    fn no_op_edit_has_empty_diff() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        let mut live = LiveValidator::new(&v, valid_book());
        let entry = live.tree().ext("entry").next().unwrap();
        let out = live
            .set_attr(entry, "isbn", AttrValue::single("x1"))
            .unwrap();
        assert!(out.diff.is_empty(), "{:?}", out.diff);
        assert_matches_scratch(&live, &v);
    }

    #[test]
    fn invalid_document_stays_in_sync() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        // Start from an invalid tree: dangling ref and missing section id.
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        let entry = b.child_node(book, "entry").unwrap();
        b.attr(entry, "isbn", AttrValue::single("k")).unwrap();
        b.leaf(entry, "title", "T").unwrap();
        b.leaf(entry, "publisher", "P").unwrap();
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["nope", "k"])).unwrap();
        let t = b.finish(book).unwrap();

        let mut live = LiveValidator::new(&v, t);
        assert!(!live.report().is_valid());
        assert_matches_scratch(&live, &v);

        let before = live.report();
        let out = live.set_attr(r, "to", AttrValue::set(["k"])).unwrap();
        assert_diff_consistent(&before, &out.diff, &live.report());
        assert_matches_scratch(&live, &v);
    }

    #[test]
    fn state_round_trip_reproduces_reports_and_edit_behaviour() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        let mut live = LiveValidator::new(&v, valid_book());

        // Dirty the state first: an insert, a delete, and a broken key, so
        // the export carries dead vertices and live violations.
        let book = live.tree().root();
        live.insert_subtree(book, 1, &entry_fragment("x2")).unwrap();
        let section = live.tree().ext("section").next().unwrap();
        live.delete_subtree(section).unwrap();
        let entry = live.tree().ext("entry").next().unwrap();
        live.set_attr(entry, "isbn", AttrValue::single("x9"))
            .unwrap();
        assert!(!live.report().is_valid());

        let warm = LiveValidator::from_state(&v, live.export_state()).unwrap();
        assert_eq!(
            warm.report().violations,
            live.report().violations,
            "warm report diverged from the exported validator"
        );
        assert_matches_scratch(&warm, &v);

        // The warm validator must also *edit* identically from here on.
        let mut warm = warm;
        let fix = live.tree().ext("entry").next().unwrap();
        let a = live.set_attr(fix, "isbn", AttrValue::single("x1")).unwrap();
        let b = warm.set_attr(fix, "isbn", AttrValue::single("x1")).unwrap();
        assert_eq!(a.diff.raised, b.diff.raised);
        assert_eq!(a.diff.cleared, b.diff.cleared);
        assert_eq!(warm.report().violations, live.report().violations);
        assert_matches_scratch(&warm, &v);
    }

    #[test]
    fn from_state_rejects_inconsistent_snapshots() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        let live = LiveValidator::new(&v, valid_book());
        let good = live.export_state();

        // A column missing from the plan's cover.
        let mut bad = good.clone();
        bad.singles.pop();
        let err = reject(&v, bad);
        assert!(err.detail.contains("constraint plan"), "{err}");

        // A symbol beyond the intern pool.
        let mut bad = good.clone();
        let huge = Sym::from_index(1_000_000);
        for (_, vals) in &mut bad.singles {
            if let Some(cell) = vals.iter_mut().find(|c| c.is_some()) {
                *cell = Some(huge);
            }
        }
        let err = reject(&v, bad);
        assert!(err.detail.contains("intern pool"), "{err}");

        // A column longer than the tree's id bound.
        let mut bad = good.clone();
        bad.singles[0].1.resize(bad.tree.id_bound() + 5, None);
        let err = reject(&v, bad);
        assert!(err.detail.contains("id bound"), "{err}");

        // Malformed intern-pool parts surface the interner's error.
        let mut bad = good.clone();
        bad.interner_spans.push((u32::MAX, 4));
        let err = reject(&v, bad);
        assert!(err.detail.contains("interner"), "{err}");

        // An out-of-bounds structural entry.
        let mut bad = good.clone();
        bad.struct_viols.push((
            bad.tree.id_bound() as u32 + 7,
            vec![Violation::RootLabel {
                expected: Name::from("a"),
                found: Name::from("b"),
            }],
        ));
        let err = reject(&v, bad);
        assert!(err.detail.contains("out of bounds"), "{err}");

        // The untampered export still loads.
        assert!(LiveValidator::from_state(&v, good).is_ok());
    }

    #[test]
    fn from_state_rejects_values_at_dead_vertices() {
        let d = book_dtdc();
        let v = Validator::new(&d);
        let mut live = LiveValidator::new(&v, valid_book());
        let section = live.tree().ext("section").next().unwrap();
        let dead = section.index();
        live.delete_subtree(section).unwrap();

        let mut bad = live.export_state();
        let sym = Sym::from_index(0);
        let (_, vals) = &mut bad.singles[0];
        if vals.len() <= dead {
            vals.resize(dead + 1, None);
        }
        vals[dead] = Some(sym);
        let err = reject(&v, bad);
        assert!(err.detail.contains("dead vertex"), "{err}");
    }
}
