//! The compiled constraint-validation plan and its columnar document index.
//!
//! The naive checker ([`crate::check_constraint`]) re-extracts field values
//! from the tree for every constraint. On realistic schemas many
//! constraints share element types and fields (a key and three foreign keys
//! all touching `person.@oid`), so the [`Validator`] instead compiles Σ
//! once into a [`Plan`]: the set of `(element type, field)` columns any
//! constraint will read. Validating a document then proceeds in two stages:
//!
//! 1. **Extraction** — one pass over each needed extent builds a columnar
//!    [`DocIndex`]: per `(τ, field)` a `Vec<Option<Sym>>` aligned with
//!    `ext(τ)`, with every value interned to a `u32` [`Sym`]. Each field is
//!    extracted once, no matter how many constraints read it, and all
//!    subsequent equality/hash/set operations are integer operations.
//! 2. **Checking** — every constraint is checked against the shared
//!    columns. With `threads > 1` the checks fan out across constraints,
//!    and large extents additionally split into chunks whose violation
//!    lists are concatenated in document order.
//!
//! Both stages are engineered to reproduce the sequential checker's
//! violation reports **byte for byte**: constraints report in Σ order,
//! chunks merge in extent order, and interning is a bijection on the value
//! strings so every probe/dedup decision matches the string-based path.
//!
//! [`Validator`]: crate::Validator

use std::cell::OnceCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use xic_constraints::{Constraint, DtdC, DtdStructure, Field};
use xic_model::{DataTree, ExtIndex, FastHashMap, FastHashSet, Interner, Name, NodeId, Sym};
use xic_obs::Obs;

use crate::constraints::unique_sub;
use crate::par::{chunked, fan_out};
use crate::report::Violation;

/// A dense bitset over the symbols of one document's [`Interner`].
///
/// Membership sets in foreign-key scans are probed once per referencing
/// value; with symbols being dense `u32`s a bitset makes each probe one
/// shift/mask instead of a hash — and it is freely shared by the chunked
/// parallel scans.
pub(crate) struct SymSet {
    words: Vec<u64>,
}

impl SymSet {
    /// An empty set able to hold all `sym_count` symbols of an interner.
    pub(crate) fn new(sym_count: usize) -> Self {
        SymSet {
            words: vec![0; sym_count.div_ceil(64)],
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, sym: Sym) {
        self.words[sym.index() / 64] |= 1 << (sym.index() % 64);
    }

    #[inline]
    pub(crate) fn contains(&self, sym: Sym) -> bool {
        self.words[sym.index() / 64] & (1 << (sym.index() % 64)) != 0
    }
}

/// A flattened column of symbol *sets*: all members of all rows live in one
/// contiguous `Vec<Sym>`, with a `Vec<u32>` of row offsets (row `i` spans
/// `syms[offsets[i]..offsets[i+1]]`).
///
/// A `Vec<Vec<Sym>>` column costs one heap allocation and 24 bytes of
/// header per row; scanning a million-row column chases a million pointers.
/// The flat layout is two allocations total and the foreign-key scans walk
/// it linearly, cache line by cache line. Rows keep `AttrValue`'s
/// sorted-string member order, so iteration matches `set_value`.
#[derive(Clone, Debug)]
pub(crate) struct SetCol {
    offsets: Vec<u32>,
    syms: Vec<Sym>,
}

impl Default for SetCol {
    fn default() -> Self {
        SetCol {
            offsets: vec![0],
            syms: Vec::new(),
        }
    }
}

impl SetCol {
    /// Appends one row (possibly empty) of already-sorted members.
    pub(crate) fn push_row(&mut self, row: impl IntoIterator<Item = Sym>) {
        self.syms.extend(row);
        self.offsets
            .push(u32::try_from(self.syms.len()).expect("set column fits u32"));
    }

    /// Row `i`'s members (empty slice for an absent attribute).
    #[inline]
    pub(crate) fn row(&self, i: usize) -> &[Sym] {
        &self.syms[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of rows.
    pub(crate) fn len(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// A [`SymSet`] with *removal*: each symbol carries an occurrence count, so
/// membership survives duplicates and can be retracted one occurrence at a
/// time. Incremental revalidation uses this for foreign-key target sets,
/// where edits add and remove target values in any order; the dense layout
/// keeps probes a single index like the bitset, and the table grows on
/// demand as the live document interns new values.
#[derive(Default)]
pub(crate) struct CountedSymSet {
    counts: Vec<u32>,
}

impl CountedSymSet {
    /// Adds one occurrence of `sym`. Returns `true` iff the symbol was
    /// absent before (a 0 → 1 presence transition).
    pub(crate) fn insert(&mut self, sym: Sym) -> bool {
        if sym.index() >= self.counts.len() {
            self.counts.resize(sym.index() + 1, 0);
        }
        self.counts[sym.index()] += 1;
        self.counts[sym.index()] == 1
    }

    /// Removes one occurrence of `sym`. Returns `true` iff this was the
    /// last occurrence (a 1 → 0 presence transition).
    ///
    /// # Panics
    /// Panics if `sym` has no recorded occurrence (an accounting bug in
    /// the caller).
    pub(crate) fn remove(&mut self, sym: Sym) -> bool {
        let slot = &mut self.counts[sym.index()];
        assert!(*slot > 0, "removing an absent symbol from a counted set");
        *slot -= 1;
        *slot == 0
    }

    /// Membership test: at least one occurrence recorded.
    #[inline]
    pub(crate) fn contains(&self, sym: Sym) -> bool {
        self.counts.get(sym.index()).copied().unwrap_or(0) > 0
    }
}

/// A constraint name rendered lazily: `Display` on `Constraint` is only
/// paid when a violation is actually reported, so clean documents never
/// format Σ.
pub(crate) struct CName<'c> {
    c: &'c Constraint,
    cache: OnceCell<String>,
}

impl<'c> CName<'c> {
    pub(crate) fn new(c: &'c Constraint) -> Self {
        CName {
            c,
            cache: OnceCell::new(),
        }
    }

    /// The rendered name (formatted on first use, cloned thereafter).
    pub(crate) fn get(&self) -> String {
        self.cache.get_or_init(|| self.c.to_string()).clone()
    }
}

/// The columns a constraint set will read, compiled once per `DTD^C`.
#[derive(Clone, Debug, Default)]
pub(crate) struct Plan {
    /// Per element type: single-valued fields (attributes or unique
    /// sub-elements) some constraint reads.
    pub(crate) singles: BTreeMap<Name, BTreeSet<Field>>,
    /// Per element type: set-valued attributes some constraint reads.
    pub(crate) sets: BTreeMap<Name, BTreeSet<Name>>,
    /// Whether any `L_id` ID constraint needs the document-wide ID table.
    pub(crate) needs_ids: bool,
}

impl Plan {
    /// Compiles the column set for `dtdc`'s Σ.
    pub(crate) fn build(dtdc: &DtdC) -> Self {
        let s = dtdc.structure();
        let mut plan = Plan::default();
        for c in dtdc.constraints() {
            match c {
                Constraint::Key { tau, fields } => {
                    plan.add_singles(tau, fields);
                }
                Constraint::ForeignKey {
                    tau,
                    fields,
                    target,
                    target_fields,
                } => {
                    plan.add_singles(tau, fields);
                    plan.add_singles(target, target_fields);
                }
                Constraint::SetForeignKey {
                    tau,
                    attr,
                    target,
                    target_field,
                } => {
                    plan.add_set(tau, attr);
                    plan.add_single(target, target_field.clone());
                }
                Constraint::InverseU {
                    tau,
                    key,
                    attr,
                    target,
                    target_key,
                    target_attr,
                } => {
                    plan.add_single(tau, key.clone());
                    plan.add_set(tau, attr);
                    plan.add_single(target, target_key.clone());
                    plan.add_set(target, target_attr);
                }
                Constraint::Id { tau } => {
                    plan.needs_ids = true;
                    plan.add_id_column(s, tau);
                }
                Constraint::FkToId { tau, attr, target } => {
                    plan.add_single(tau, Field::Attr(attr.clone()));
                    plan.add_id_column(s, target);
                }
                Constraint::SetFkToId { tau, attr, target } => {
                    plan.add_set(tau, attr);
                    plan.add_id_column(s, target);
                }
                Constraint::InverseId {
                    tau,
                    attr,
                    target,
                    target_attr,
                } => {
                    plan.add_set(tau, attr);
                    plan.add_set(target, target_attr);
                    plan.add_id_column(s, tau);
                    plan.add_id_column(s, target);
                }
            }
        }
        if plan.needs_ids {
            // The document-wide ID table spans every type with an ID
            // attribute, not just the types named in Σ.
            for tau in s.element_types() {
                plan.add_id_column(s, tau);
            }
        }
        plan
    }

    fn add_single(&mut self, tau: &Name, field: Field) {
        self.singles.entry(tau.clone()).or_default().insert(field);
    }

    fn add_singles(&mut self, tau: &Name, fields: &[Field]) {
        for f in fields {
            self.add_single(tau, f.clone());
        }
    }

    fn add_set(&mut self, tau: &Name, attr: &Name) {
        self.sets
            .entry(tau.clone())
            .or_default()
            .insert(attr.clone());
    }

    fn add_id_column(&mut self, s: &DtdStructure, tau: &Name) {
        if let Some(id_attr) = s.id_attr(tau) {
            self.add_single(tau, Field::Attr(id_attr.clone()));
        }
    }

    /// Number of `(τ, field)` columns the plan extracts (for diagnostics).
    pub(crate) fn column_count(&self) -> usize {
        self.singles.values().map(BTreeSet::len).sum::<usize>()
            + self.sets.values().map(BTreeSet::len).sum::<usize>()
    }
}

/// The per-document columnar index: one interned column per planned
/// `(τ, field)`, aligned with `ext(τ)`, plus the document-wide ID table.
pub(crate) struct DocIndex {
    interner: Interner,
    /// `(τ, field) ↦` column of `ext(τ)`-aligned single values.
    singles: HashMap<(Name, Field), Vec<Option<Sym>>>,
    /// `(τ, attr) ↦` flattened column of `ext(τ)`-aligned set values, each
    /// row in `AttrValue`'s sorted-string order (so iteration matches
    /// `set_value`).
    sets: HashMap<(Name, Name), SetCol>,
    /// ID value ↦ carriers, in `element_types()` × document order
    /// (matching the sequential `build_global_ids`).
    global_ids: FastHashMap<Sym, Vec<NodeId>>,
}

impl DocIndex {
    /// One-pass extraction of every planned column from `tree`.
    pub(crate) fn build(tree: &DataTree, idx: &ExtIndex, s: &DtdStructure, plan: &Plan) -> Self {
        let mut interner = Interner::new();
        let mut singles = HashMap::new();
        for (tau, fields) in &plan.singles {
            let ext = idx.ext(tau);
            for field in fields {
                let col: Vec<Option<Sym>> = ext
                    .iter()
                    .map(|&x| extract_single(tree, x, field, &mut interner))
                    .collect();
                singles.insert((tau.clone(), field.clone()), col);
            }
        }
        let mut sets = HashMap::new();
        for (tau, attrs) in &plan.sets {
            let ext = idx.ext(tau);
            for attr in attrs {
                let mut col = SetCol::default();
                for &x in ext {
                    match tree.attr(x, attr) {
                        Some(v) => col.push_row(v.values().iter().map(|s| interner.intern(s))),
                        None => col.push_row([]),
                    }
                }
                sets.insert((tau.clone(), attr.clone()), col);
            }
        }
        DocIndex::from_parts(interner, singles, sets, idx, s, plan)
    }

    /// Assembles an index from already-extracted columns (the streaming
    /// builder fills them without a tree) and derives the document-wide ID
    /// table. Interning order does not matter for report equality: symbols
    /// are only compared for equality/membership, never for order, and
    /// every violation sequence follows extent order, so any bijective
    /// interning yields byte-identical reports.
    pub(crate) fn from_parts(
        interner: Interner,
        singles: HashMap<(Name, Field), Vec<Option<Sym>>>,
        sets: HashMap<(Name, Name), SetCol>,
        idx: &ExtIndex,
        s: &DtdStructure,
        plan: &Plan,
    ) -> Self {
        let mut global_ids: FastHashMap<Sym, Vec<NodeId>> = FastHashMap::default();
        if plan.needs_ids {
            for tau in s.element_types() {
                let Some(id_attr) = s.id_attr(tau) else {
                    continue;
                };
                let key = (tau.clone(), Field::Attr(id_attr.clone()));
                let Some(col) = singles.get(&key) else {
                    continue;
                };
                let ext = idx.ext(tau);
                for (pos, sym) in col.iter().enumerate() {
                    if let Some(sym) = sym {
                        global_ids.entry(*sym).or_default().push(ext[pos]);
                    }
                }
            }
        }
        DocIndex {
            interner,
            singles,
            sets,
            global_ids,
        }
    }

    fn single(&self, tau: &Name, field: &Field) -> &[Option<Sym>] {
        self.singles
            .get(&(tau.clone(), field.clone()))
            .expect("plan covers every single field a constraint reads")
    }

    fn set(&self, tau: &Name, attr: &Name) -> &SetCol {
        self.sets
            .get(&(tau.clone(), attr.clone()))
            .expect("plan covers every set attribute a constraint reads")
    }

    fn resolve(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    fn join(&self, syms: &[Sym]) -> String {
        syms.iter()
            .map(|&s| self.resolve(s))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Number of distinct symbols interned (the [`SymSet`] capacity).
    fn sym_count(&self) -> usize {
        self.interner.len()
    }

    /// Distinct ID values of `ext(τ)` (empty when τ has no ID attribute).
    fn ids_of(&self, s: &DtdStructure, tau: &Name) -> SymSet {
        let mut ids = SymSet::new(self.sym_count());
        let Some(id_attr) = s.id_attr(tau) else {
            return ids;
        };
        for sym in self
            .single(tau, &Field::Attr(id_attr.clone()))
            .iter()
            .flatten()
        {
            ids.insert(*sym);
        }
        ids
    }
}

/// Single-valued field extraction; must agree with
/// [`crate::constraints::field_value`].
pub(crate) fn extract_single(
    tree: &DataTree,
    x: NodeId,
    field: &Field,
    interner: &mut Interner,
) -> Option<Sym> {
    match field {
        Field::Attr(l) => tree.attr(x, l)?.as_single().map(|v| interner.intern(v)),
        Field::Sub(e) => {
            let child = unique_sub(tree, x, e)?;
            Some(interner.intern(&tree.node(child).text()))
        }
    }
}

/// Checks all of Σ against the planned columns, appending violations in Σ
/// order. `threads` is the total worker budget: constraints fan out first,
/// and whatever budget remains per constraint splits large extents.
pub(crate) fn check_all_planned(
    tree: &DataTree,
    idx: &ExtIndex,
    dtdc: &DtdC,
    plan: &Plan,
    threads: usize,
    obs: &Obs,
    out: &mut Vec<Violation>,
) {
    let doc = {
        let _plan = obs.span("plan");
        DocIndex::build(tree, idx, dtdc.structure(), plan)
    };
    check_planned(idx, dtdc, &doc, threads, tree.len(), obs, out);
}

/// The span name of one constraint kind's share of the `check` phase.
fn kind_span(c: &Constraint) -> &'static str {
    match c {
        Constraint::Key { .. } => "check.key",
        Constraint::ForeignKey { .. } => "check.foreign_key",
        Constraint::SetForeignKey { .. } => "check.set_foreign_key",
        Constraint::InverseU { .. } => "check.inverse",
        Constraint::Id { .. } => "check.id",
        Constraint::FkToId { .. } => "check.fk_to_id",
        Constraint::SetFkToId { .. } => "check.set_fk_to_id",
        Constraint::InverseId { .. } => "check.inverse_id",
    }
}

/// Checks all of Σ against a pre-built [`DocIndex`] (shared by the tree
/// and streaming paths), appending violations in Σ order.
///
/// `doc_nodes` (the document's vertex count) gates the thread budget: below
/// [`crate::par::MIN_NODES_PER_THREAD`] vertices per worker, spawn/merge
/// overhead exceeds the scan itself (E11 measured threads=2/4 *slower* than
/// 1 at 10⁵ vertices), so the budget is clamped to what the document can
/// amortize.
pub(crate) fn check_planned(
    idx: &ExtIndex,
    dtdc: &DtdC,
    doc: &DocIndex,
    threads: usize,
    doc_nodes: usize,
    obs: &Obs,
    out: &mut Vec<Violation>,
) {
    let s = dtdc.structure();
    let cs = dtdc.constraints();
    let affordable = (doc_nodes / crate::par::MIN_NODES_PER_THREAD).max(1);
    let outer = threads.max(1).min(affordable);
    let inner = (outer / cs.len().max(1)).max(1);
    let per_constraint = {
        let _check = obs.span("check");
        fan_out(outer, cs.iter().collect(), obs, "par.constraint", |c| {
            let _kind = obs.span(kind_span(c));
            let mut v = Vec::new();
            check_one_planned(idx, s, doc, c, inner, obs, &mut v);
            v
        })
    };
    let _merge = obs.span("merge");
    for v in per_constraint {
        out.extend(v);
    }
}

fn check_one_planned(
    idx: &ExtIndex,
    s: &DtdStructure,
    doc: &DocIndex,
    c: &Constraint,
    inner: usize,
    obs: &Obs,
    out: &mut Vec<Violation>,
) {
    match c {
        Constraint::Key { tau, fields } => {
            // First-seen dedup is order-dependent, so the scan itself stays
            // sequential; with shared columns it is a pure Sym-tuple pass.
            let cname = CName::new(c);
            let ext = idx.ext(tau);
            if let [field] = fields.as_slice() {
                // Unary key: dedup on a dense first-seen table indexed by
                // symbol — no per-element tuple allocation, no hashing.
                let col = doc.single(tau, field);
                const UNSEEN: u32 = u32::MAX;
                let mut first = vec![UNSEEN; doc.sym_count()];
                for (pos, &x) in ext.iter().enumerate() {
                    let Some(sym) = col[pos] else {
                        continue; // undefined fields cannot witness equality
                    };
                    let slot = &mut first[sym.index()];
                    if *slot == UNSEEN {
                        *slot = u32::try_from(pos).expect("extent fits u32");
                    } else {
                        out.push(Violation::Key {
                            constraint: cname.get(),
                            a: ext[*slot as usize],
                            b: x,
                            value: doc.resolve(sym).to_string(),
                        });
                    }
                }
                return;
            }
            let cols: Vec<&[Option<Sym>]> = fields.iter().map(|f| doc.single(tau, f)).collect();
            let mut seen: FastHashMap<Vec<Sym>, NodeId> = FastHashMap::default();
            for (pos, &x) in ext.iter().enumerate() {
                let Some(t) = cols
                    .iter()
                    .map(|col| col[pos])
                    .collect::<Option<Vec<Sym>>>()
                else {
                    continue; // undefined tuples cannot witness equality
                };
                match seen.get(&t) {
                    Some(&prev) => out.push(Violation::Key {
                        constraint: cname.get(),
                        a: prev,
                        b: x,
                        value: doc.join(&t),
                    }),
                    None => {
                        seen.insert(t, x);
                    }
                }
            }
        }
        Constraint::ForeignKey {
            tau,
            fields,
            target,
            target_fields,
        } => {
            let ext = idx.ext(tau);
            if let ([field], [target_field]) = (fields.as_slice(), target_fields.as_slice()) {
                // Unary FK: target membership is a symbol bitset probe.
                let mut targets = SymSet::new(doc.sym_count());
                for sym in doc.single(target, target_field).iter().flatten() {
                    targets.insert(*sym);
                }
                let col = doc.single(tau, field);
                for chunk in chunked(inner, ext.len(), obs, "par.chunk", |range| {
                    let cname = CName::new(c);
                    let mut v = Vec::new();
                    for pos in range {
                        match col[pos] {
                            Some(sym) => {
                                if !targets.contains(sym) {
                                    v.push(Violation::ForeignKey {
                                        constraint: cname.get(),
                                        node: ext[pos],
                                        value: doc.resolve(sym).to_string(),
                                    });
                                }
                            }
                            None => v.push(Violation::MissingField {
                                constraint: cname.get(),
                                node: ext[pos],
                                field: field.to_string(),
                            }),
                        }
                    }
                    v
                }) {
                    out.extend(chunk);
                }
                return;
            }
            let target_cols: Vec<&[Option<Sym>]> = target_fields
                .iter()
                .map(|f| doc.single(target, f))
                .collect();
            let targets: FastHashSet<Vec<Sym>> = (0..idx.ext(target).len())
                .filter_map(|pos| {
                    target_cols
                        .iter()
                        .map(|col| col[pos])
                        .collect::<Option<Vec<Sym>>>()
                })
                .collect();
            let cols: Vec<&[Option<Sym>]> = fields.iter().map(|f| doc.single(tau, f)).collect();
            for chunk in chunked(inner, ext.len(), obs, "par.chunk", |range| {
                let cname = CName::new(c);
                let mut v = Vec::new();
                for pos in range {
                    match cols
                        .iter()
                        .map(|col| col[pos])
                        .collect::<Option<Vec<Sym>>>()
                    {
                        Some(t) => {
                            if !targets.contains(&t) {
                                v.push(Violation::ForeignKey {
                                    constraint: cname.get(),
                                    node: ext[pos],
                                    value: doc.join(&t),
                                });
                            }
                        }
                        None => v.push(Violation::MissingField {
                            constraint: cname.get(),
                            node: ext[pos],
                            field: fields
                                .iter()
                                .map(ToString::to_string)
                                .collect::<Vec<_>>()
                                .join(", "),
                        }),
                    }
                }
                v
            }) {
                out.extend(chunk);
            }
        }
        Constraint::SetForeignKey {
            tau,
            attr,
            target,
            target_field,
        } => {
            let mut targets = SymSet::new(doc.sym_count());
            for sym in doc.single(target, target_field).iter().flatten() {
                targets.insert(*sym);
            }
            scan_set_fk(idx, doc, c, tau, attr, &targets, inner, obs, out);
        }
        Constraint::InverseU {
            tau,
            key,
            attr,
            target,
            target_key,
            target_attr,
        } => {
            check_inverse_planned(
                idx,
                doc,
                c,
                tau,
                key,
                attr,
                target,
                target_key,
                target_attr,
                inner,
                obs,
                out,
            );
            check_inverse_planned(
                idx,
                doc,
                c,
                target,
                target_key,
                target_attr,
                tau,
                key,
                attr,
                inner,
                obs,
                out,
            );
        }
        Constraint::Id { tau } => {
            let Some(id_attr) = s.id_attr(tau) else {
                return; // rejected at well-formedness; nothing to check
            };
            let col = doc.single(tau, &Field::Attr(id_attr.clone()));
            let ext = idx.ext(tau);
            for chunk in chunked(inner, ext.len(), obs, "par.chunk", |range| {
                let cname = CName::new(c);
                let mut v = Vec::new();
                for pos in range {
                    let x = ext[pos];
                    match col[pos] {
                        None => v.push(Violation::MissingField {
                            constraint: cname.get(),
                            node: x,
                            field: format!("@{id_attr}"),
                        }),
                        Some(value) => {
                            for &y in doc.global_ids.get(&value).into_iter().flatten() {
                                if y != x {
                                    v.push(Violation::DuplicateId {
                                        constraint: cname.get(),
                                        a: x,
                                        b: y,
                                        value: doc.resolve(value).to_string(),
                                    });
                                }
                            }
                        }
                    }
                }
                v
            }) {
                out.extend(chunk);
            }
        }
        Constraint::FkToId { tau, attr, target } => {
            let targets = doc.ids_of(s, target);
            let col = doc.single(tau, &Field::Attr(attr.clone()));
            let ext = idx.ext(tau);
            for chunk in chunked(inner, ext.len(), obs, "par.chunk", |range| {
                let cname = CName::new(c);
                let mut v = Vec::new();
                for pos in range {
                    let Some(value) = col[pos] else {
                        continue;
                    };
                    if !targets.contains(value) {
                        v.push(Violation::ForeignKey {
                            constraint: cname.get(),
                            node: ext[pos],
                            value: doc.resolve(value).to_string(),
                        });
                    }
                }
                v
            }) {
                out.extend(chunk);
            }
        }
        Constraint::SetFkToId { tau, attr, target } => {
            let targets = doc.ids_of(s, target);
            scan_set_fk(idx, doc, c, tau, attr, &targets, inner, obs, out);
        }
        Constraint::InverseId {
            tau,
            attr,
            target,
            target_attr,
        } => {
            let (Some(id_tau), Some(id_target)) = (s.id_attr(tau), s.id_attr(target)) else {
                return; // rejected at well-formedness
            };
            // Reference typing first (τ.l ⊆_S τ'.id and τ'.l' ⊆_S τ.id),
            // then both inverse directions — the exact sequential order.
            for (src, src_attr, dst) in [(tau, attr, target), (target, target_attr, tau)] {
                let targets = doc.ids_of(s, dst);
                scan_set_fk(idx, doc, c, src, src_attr, &targets, inner, obs, out);
            }
            let key_tau = Field::Attr(id_tau.clone());
            let key_target = Field::Attr(id_target.clone());
            check_inverse_planned(
                idx,
                doc,
                c,
                tau,
                &key_tau,
                attr,
                target,
                &key_target,
                target_attr,
                inner,
                obs,
                out,
            );
            check_inverse_planned(
                idx,
                doc,
                c,
                target,
                &key_target,
                target_attr,
                tau,
                &key_tau,
                attr,
                inner,
                obs,
                out,
            );
        }
    }
}

/// The shared scan of set-valued FK variants: every member of `ext(τ).attr`
/// must appear in `targets`.
#[allow(clippy::too_many_arguments)]
fn scan_set_fk(
    idx: &ExtIndex,
    doc: &DocIndex,
    c: &Constraint,
    tau: &Name,
    attr: &Name,
    targets: &SymSet,
    inner: usize,
    obs: &Obs,
    out: &mut Vec<Violation>,
) {
    let col = doc.set(tau, attr);
    let ext = idx.ext(tau);
    for chunk in chunked(inner, ext.len(), obs, "par.chunk", |range| {
        let cname = CName::new(c);
        let mut v = Vec::new();
        for pos in range {
            for &value in col.row(pos) {
                if !targets.contains(value) {
                    v.push(Violation::ForeignKey {
                        constraint: cname.get(),
                        node: ext[pos],
                        value: doc.resolve(value).to_string(),
                    });
                }
            }
        }
        v
    }) {
        out.extend(chunk);
    }
}

/// One direction of an inverse constraint over the columns:
/// `∀x ∈ ext(τ) ∀y ∈ ext(τ') (x.key ∈ y.attr' → y.key' ∈ x.attr)`.
///
/// `ext(τ)` is indexed on the key sequentially (doc order matters for the
/// violation sequence); the `ext(τ')` scan is per-`y` independent and
/// splits across chunks.
#[allow(clippy::too_many_arguments)]
fn check_inverse_planned(
    idx: &ExtIndex,
    doc: &DocIndex,
    c: &Constraint,
    tau: &Name,
    key: &Field,
    attr: &Name,
    target: &Name,
    target_key: &Field,
    target_attr: &Name,
    inner: usize,
    obs: &Obs,
    out: &mut Vec<Violation>,
) {
    let key_col = doc.single(tau, key);
    let ext_tau = idx.ext(tau);
    // Group `ext(τ)` positions by key symbol with a counting sort over the
    // dense symbol space (a CSR layout: `grouped[starts[s]..starts[s+1]]`
    // holds the positions carrying key `s`, in document order). Probing a
    // referenced value inside the scan is then two array reads — the scan
    // touches every member of every set, so a hash per member dominated.
    let n_syms = doc.sym_count();
    let mut starts = vec![0u32; n_syms + 1];
    for sym in key_col.iter().flatten() {
        starts[sym.index() + 1] += 1;
    }
    for i in 1..=n_syms {
        starts[i] += starts[i - 1];
    }
    let mut grouped = vec![0u32; starts[n_syms] as usize];
    let mut cursor: Vec<u32> = starts[..n_syms].to_vec();
    for (pos, sym) in key_col.iter().enumerate() {
        if let Some(sym) = sym {
            let c = &mut cursor[sym.index()];
            grouped[*c as usize] = u32::try_from(pos).expect("extent fits u32");
            *c += 1;
        }
    }
    let echo_col = doc.set(tau, attr);
    let target_key_col = doc.single(target, target_key);
    let target_attr_col = doc.set(target, target_attr);
    let ext_target = idx.ext(target);
    for chunk in chunked(inner, ext_target.len(), obs, "par.chunk", |range| {
        let cname = CName::new(c);
        let mut v = Vec::new();
        for ypos in range {
            let Some(yk) = target_key_col[ypos] else {
                continue;
            };
            for value in target_attr_col.row(ypos) {
                let (lo, hi) = (starts[value.index()], starts[value.index() + 1]);
                for &xpos in &grouped[lo as usize..hi as usize] {
                    // x.key ∈ y.target_attr holds; require
                    // y.target_key ∈ x.attr.
                    if !echo_col.row(xpos as usize).contains(&yk) {
                        v.push(Violation::Inverse {
                            constraint: cname.get(),
                            from: ext_target[ypos],
                            to: ext_tau[xpos as usize],
                        });
                    }
                }
            }
        }
        v
    }) {
        out.extend(chunk);
    }
}
