//! Property-based round trips: arbitrary data trees survive
//! serialize → parse with shape, labels, attributes and text preserved.

use proptest::prelude::*;
use xic_model::{AttrValue, Child, DataTree, NodeId, TreeBuilder};
use xic_xml::{parse_document, parse_events, serialize_document, Event, XmlError};

#[derive(Debug, Clone)]
struct Recipe {
    nodes: Vec<(usize, u8, Option<String>, Option<String>)>,
}

/// Attribute values / text avoiding only the characters the serializer
/// legitimately cannot round-trip in this profile (leading/trailing
/// whitespace in text is dropped as ignorable when text is
/// whitespace-only).
fn payload() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9<>&\"' ]{1,12}".prop_filter("not whitespace-only", |s| !s.trim().is_empty())
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop::collection::vec(
        (
            0usize..32,
            0u8..4,
            prop::option::of(payload()),
            prop::option::of(payload()),
        ),
        0..24,
    )
    .prop_map(|nodes| Recipe { nodes })
}

fn build(recipe: &Recipe) -> DataTree {
    let labels = ["a", "b", "c", "d"];
    let mut b = TreeBuilder::new();
    let root = b.node("root");
    let mut ids = vec![root];
    for (parent, label, attr, text) in &recipe.nodes {
        let parent = ids[parent % ids.len()];
        let n = b.child_node(parent, labels[*label as usize]).unwrap();
        if let Some(v) = attr {
            b.attr(n, "x", AttrValue::single(v.clone())).unwrap();
        }
        if let Some(t) = text {
            b.text(n, t.clone()).unwrap();
        }
        ids.push(n);
    }
    b.finish(root).unwrap()
}

fn trees_equal(a: &DataTree, b: &DataTree) -> bool {
    fn node_eq(a: &DataTree, x: xic_model::NodeId, b: &DataTree, y: xic_model::NodeId) -> bool {
        if a.label(x) != b.label(y) {
            return false;
        }
        let na = a.node(x);
        let nb = b.node(y);
        if na.attrs().count() != nb.attrs().count() {
            return false;
        }
        for ((la, va), (lb, vb)) in na.attrs().zip(nb.attrs()) {
            if la != lb || va != vb {
                return false;
            }
        }
        // Text may be re-chunked by parsing: compare concatenation.
        if na.text() != nb.text() {
            return false;
        }
        let ca: Vec<_> = na.child_nodes().collect();
        let cb: Vec<_> = nb.child_nodes().collect();
        ca.len() == cb.len() && ca.iter().zip(&cb).all(|(&x2, &y2)| node_eq(a, x2, b, y2))
    }
    node_eq(a, a.root(), b, b.root())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn serialize_parse_round_trip(r in recipe_strategy()) {
        let t = build(&r);
        let xml = serialize_document(&t);
        let back = parse_document(&xml)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml}"));
        prop_assert!(trees_equal(&t, &back.tree), "round trip mismatch:\n{}", xml);
    }

    #[test]
    fn serialized_output_is_reasonably_escaped(r in recipe_strategy()) {
        let t = build(&r);
        let xml = serialize_document(&t);
        // No raw '<' inside attribute values: every '<' starts a tag or
        // entity-escaped content.
        for (i, c) in xml.char_indices() {
            if c == '<' {
                let next = xml[i + 1..].chars().next().unwrap_or(' ');
                prop_assert!(
                    next.is_alphabetic() || next == '/' || next == '!',
                    "stray '<' at byte {i}:\n{xml}"
                );
            }
        }
    }

    #[test]
    fn parse_never_panics_on_mutations(r in recipe_strategy(), cut in 0usize..64) {
        let t = build(&r);
        let mut xml = serialize_document(&t);
        // Truncate at an arbitrary char boundary: parsing must error or
        // succeed, never panic.
        let cut = xml
            .char_indices()
            .map(|(i, _)| i)
            .nth(cut.min(xml.chars().count().saturating_sub(1)))
            .unwrap_or(0);
        xml.truncate(cut);
        let _ = parse_document(&xml);
    }
}

#[test]
fn text_with_children_round_trips() {
    // Mixed content ordering is preserved.
    let mut b = TreeBuilder::new();
    let root = b.node("root");
    b.text(root, "before ").unwrap();
    let c = b.child_node(root, "a").unwrap();
    b.text(c, "inner").unwrap();
    b.text(root, " after").unwrap();
    let t = b.finish(root).unwrap();
    let xml = serialize_document(&t);
    let back = parse_document(&xml).unwrap();
    let kinds: Vec<bool> = back
        .tree
        .node(back.tree.root())
        .children
        .iter()
        .map(|c| matches!(c, Child::Text(_)))
        .collect();
    assert_eq!(kinds, vec![true, false, true], "{xml}");
}

// ---------------------------------------------------------------------
// Differential coverage for the byte-level lexer: the tree parser and the
// event parser are two independent consumers of the same byte scanner, so
// feeding both a document that exercises every decode path — entity
// escapes, character references, CDATA sections, multi-byte UTF-8 — and
// demanding identical trees pins the lexer's semantics from two sides.

/// Payload characters spanning 1-, 2-, 3- and 4-byte UTF-8 encodings plus
/// the XML-special set. `]` is excluded so generated text can be wrapped
/// in a CDATA section without ever forming `]]>`.
const UNI_CHARS: &[char] = &[
    'a', 'b', 'Z', '9', ' ', '&', '<', '>', '"', '\'', 'é', 'ß', 'Σ', 'λ', '中', '本', '🦀', '𝔘',
];

fn uni_payload() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..UNI_CHARS.len(), 1..10)
        .prop_map(|ix| ix.into_iter().map(|i| UNI_CHARS[i]).collect::<String>())
        .prop_filter("not whitespace-only", |s: &String| !s.trim().is_empty())
}

fn uni_recipe_strategy() -> impl Strategy<Value = (Recipe, Vec<u8>)> {
    let nodes = prop::collection::vec(
        (
            0usize..32,
            0u8..4,
            prop::option::of(uni_payload()),
            prop::option::of(uni_payload()),
        ),
        0..24,
    )
    .prop_map(|nodes| Recipe { nodes });
    (nodes, prop::collection::vec(0u8..6, 1..16))
}

fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

/// Renders every character as a decimal or hex character reference.
fn char_refs(s: &str, hex: bool, out: &mut String) {
    use std::fmt::Write;
    for c in s.chars() {
        if hex {
            let _ = write!(out, "&#x{:X};", c as u32);
        } else {
            let _ = write!(out, "&#{};", c as u32);
        }
    }
}

fn pick(encs: &[u8], i: &mut usize) -> u8 {
    let e = encs[*i % encs.len()];
    *i += 1;
    e
}

/// Serializes `t` by hand, cycling through encodings for each text run and
/// attribute value: plain escaped, CDATA (text only), decimal refs, hex
/// refs. All encodings decode to the same logical value.
fn render_encoded(t: &DataTree, id: NodeId, encs: &[u8], i: &mut usize, out: &mut String) {
    let node = t.node(id);
    let label = t.label(id).as_str();
    out.push('<');
    out.push_str(label);
    for (name, v) in node.attrs() {
        let v = v.as_single().expect("generated attrs are single-valued");
        out.push(' ');
        out.push_str(name.as_str());
        out.push_str("=\"");
        match pick(encs, i) % 3 {
            0 => escape_attr(v, out),
            1 => char_refs(v, false, out),
            _ => char_refs(v, true, out),
        }
        out.push('"');
    }
    if node.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &node.children {
        match c {
            Child::Text(s) => match pick(encs, i) % 4 {
                0 => escape_text(s, out),
                1 => {
                    out.push_str("<![CDATA[");
                    out.push_str(s);
                    out.push_str("]]>");
                }
                2 => char_refs(s, false, out),
                _ => char_refs(s, true, out),
            },
            Child::Node(n) => render_encoded(t, *n, encs, i, out),
        }
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

/// Replays the event stream into a [`TreeBuilder`]: the event-parser view
/// of the document as a tree.
fn tree_from_events(src: &str) -> Result<DataTree, XmlError> {
    let mut b = TreeBuilder::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut root = None;
    for ev in parse_events(src) {
        match ev? {
            Event::Open { name, .. } => {
                let id = match stack.last() {
                    Some(&parent) => b.child_node(parent, name).unwrap(),
                    None => b.node(name),
                };
                if root.is_none() {
                    root = Some(id);
                }
                stack.push(id);
            }
            Event::Attr { name, value, .. } => {
                b.attr(
                    *stack.last().unwrap(),
                    name,
                    AttrValue::single(value.into_owned()),
                )
                .unwrap();
            }
            Event::Text { value, .. } => {
                b.text(*stack.last().unwrap(), value.into_owned()).unwrap();
            }
            Event::Close { .. } => {
                stack.pop();
            }
        }
    }
    Ok(b.finish(root.expect("document has a root")).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Entities, character references, CDATA and multi-byte UTF-8 decode
    /// to the same tree through both byte-lexer consumers.
    #[test]
    fn tree_and_event_parsers_agree_on_encoded_documents((r, encs) in uni_recipe_strategy()) {
        let expected = build(&r);
        let mut xml = String::new();
        let mut i = 0usize;
        render_encoded(&expected, expected.root(), &encs, &mut i, &mut xml);
        let tree = parse_document(&xml)
            .unwrap_or_else(|e| panic!("tree parse failed: {e}\n{xml}"))
            .tree;
        prop_assert!(trees_equal(&expected, &tree), "tree parse mismatch:\n{xml}");
        let replayed = tree_from_events(&xml)
            .unwrap_or_else(|e| panic!("event parse failed: {e}\n{xml}"));
        prop_assert!(trees_equal(&expected, &replayed), "event replay mismatch:\n{xml}");
    }
}

/// Error positions are reported in characters, not bytes: multi-byte
/// UTF-8 before the error must not inflate the column (satellite of the
/// byte-level lexer — offsets are bytes internally, columns are chars).
#[test]
fn error_positions_count_characters_not_bytes() {
    // Line 2 holds 2-, 3- and 4-byte characters before the malformed tag;
    // the parsers reject at the `1` — character column 6, where a
    // byte-counting column would report 12.
    let src = "<a>\n é€🦀<1bad/></a>";
    let terr = parse_document(src).expect_err("tree parser must reject");
    let eerr = parse_events(src)
        .find_map(Result::err)
        .expect("event parser must reject")
        .locate(src);
    assert_eq!(
        (terr.line, terr.col),
        (eerr.line, eerr.col),
        "tree={terr} event={eerr}"
    );
    assert_eq!(terr.line, 2, "{terr}");
    assert_eq!(terr.col, 6, "column must count characters: {terr}");
}

/// Well-formed multi-byte content leaves both parsers agreeing on where a
/// later error is, even when the multi-byte runs sit in attributes and
/// CDATA on earlier lines.
#[test]
fn error_positions_agree_after_multibyte_content() {
    let src = "<r»oot attr=\"é中🦀\">\n  <x><![CDATA[Σλ𝔘]]></x>\n  </wrong>\n</root>";
    // The first error differs in kind between parsers only in message,
    // never in position semantics; compare a same-shape document instead.
    let good_prefix = "<root attr=\"é中🦀\">\n  <x><![CDATA[Σλ𝔘]]></x>\n  </wrong>\n</root>";
    let terr = parse_document(good_prefix).expect_err("mismatched close tag");
    let eerr = parse_events(good_prefix)
        .find_map(Result::err)
        .expect("mismatched close tag")
        .locate(good_prefix);
    assert_eq!((terr.line, terr.col), (eerr.line, eerr.col));
    assert_eq!(terr.line, 3, "{terr}");
    let _ = src;
}
