//! Property-based round trips: arbitrary data trees survive
//! serialize → parse with shape, labels, attributes and text preserved.

use proptest::prelude::*;
use xic_model::{AttrValue, Child, DataTree, TreeBuilder};
use xic_xml::{parse_document, serialize_document};

#[derive(Debug, Clone)]
struct Recipe {
    nodes: Vec<(usize, u8, Option<String>, Option<String>)>,
}

/// Attribute values / text avoiding only the characters the serializer
/// legitimately cannot round-trip in this profile (leading/trailing
/// whitespace in text is dropped as ignorable when text is
/// whitespace-only).
fn payload() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9<>&\"' ]{1,12}".prop_filter("not whitespace-only", |s| !s.trim().is_empty())
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop::collection::vec(
        (
            0usize..32,
            0u8..4,
            prop::option::of(payload()),
            prop::option::of(payload()),
        ),
        0..24,
    )
    .prop_map(|nodes| Recipe { nodes })
}

fn build(recipe: &Recipe) -> DataTree {
    let labels = ["a", "b", "c", "d"];
    let mut b = TreeBuilder::new();
    let root = b.node("root");
    let mut ids = vec![root];
    for (parent, label, attr, text) in &recipe.nodes {
        let parent = ids[parent % ids.len()];
        let n = b.child_node(parent, labels[*label as usize]).unwrap();
        if let Some(v) = attr {
            b.attr(n, "x", AttrValue::single(v.clone())).unwrap();
        }
        if let Some(t) = text {
            b.text(n, t.clone()).unwrap();
        }
        ids.push(n);
    }
    b.finish(root).unwrap()
}

fn trees_equal(a: &DataTree, b: &DataTree) -> bool {
    fn node_eq(a: &DataTree, x: xic_model::NodeId, b: &DataTree, y: xic_model::NodeId) -> bool {
        if a.label(x) != b.label(y) {
            return false;
        }
        let na = a.node(x);
        let nb = b.node(y);
        if na.attrs().count() != nb.attrs().count() {
            return false;
        }
        for ((la, va), (lb, vb)) in na.attrs().zip(nb.attrs()) {
            if la != lb || va != vb {
                return false;
            }
        }
        // Text may be re-chunked by parsing: compare concatenation.
        if na.text() != nb.text() {
            return false;
        }
        let ca: Vec<_> = na.child_nodes().collect();
        let cb: Vec<_> = nb.child_nodes().collect();
        ca.len() == cb.len() && ca.iter().zip(&cb).all(|(&x2, &y2)| node_eq(a, x2, b, y2))
    }
    node_eq(a, a.root(), b, b.root())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn serialize_parse_round_trip(r in recipe_strategy()) {
        let t = build(&r);
        let xml = serialize_document(&t);
        let back = parse_document(&xml)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml}"));
        prop_assert!(trees_equal(&t, &back.tree), "round trip mismatch:\n{}", xml);
    }

    #[test]
    fn serialized_output_is_reasonably_escaped(r in recipe_strategy()) {
        let t = build(&r);
        let xml = serialize_document(&t);
        // No raw '<' inside attribute values: every '<' starts a tag or
        // entity-escaped content.
        for (i, c) in xml.char_indices() {
            if c == '<' {
                let next = xml[i + 1..].chars().next().unwrap_or(' ');
                prop_assert!(
                    next.is_alphabetic() || next == '/' || next == '!',
                    "stray '<' at byte {i}:\n{xml}"
                );
            }
        }
    }

    #[test]
    fn parse_never_panics_on_mutations(r in recipe_strategy(), cut in 0usize..64) {
        let t = build(&r);
        let mut xml = serialize_document(&t);
        // Truncate at an arbitrary char boundary: parsing must error or
        // succeed, never panic.
        let cut = xml
            .char_indices()
            .map(|(i, _)| i)
            .nth(cut.min(xml.chars().count().saturating_sub(1)))
            .unwrap_or(0);
        xml.truncate(cut);
        let _ = parse_document(&xml);
    }
}

#[test]
fn text_with_children_round_trips() {
    // Mixed content ordering is preserved.
    let mut b = TreeBuilder::new();
    let root = b.node("root");
    b.text(root, "before ").unwrap();
    let c = b.child_node(root, "a").unwrap();
    b.text(c, "inner").unwrap();
    b.text(root, " after").unwrap();
    let t = b.finish(root).unwrap();
    let xml = serialize_document(&t);
    let back = parse_document(&xml).unwrap();
    let kinds: Vec<bool> = back
        .tree
        .node(back.tree.root())
        .children
        .iter()
        .map(|c| matches!(c, Child::Text(_)))
        .collect();
    assert_eq!(kinds, vec![true, false, true], "{xml}");
}
