//! The XML document parser.

use std::fmt;

use xic_constraints::DtdStructure;
use xic_model::{AttrValue, DataTree, ModelError, NodeId, TreeBuilder};

use crate::dtd::parse_dtd_declarations;
use crate::events::{Event, EventParser};
use crate::scan;

/// XML parse error with source position.
///
/// `offset` is always the byte position where the error was detected;
/// `line`/`col` are filled in (1-based) at the public API boundary and are
/// `0` when no source text was available to locate against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// 1-based line of `offset` (`0` if unlocated).
    pub line: u32,
    /// 1-based column of `offset`, in characters (`0` if unlocated).
    pub col: u32,
}

impl XmlError {
    pub(crate) fn new(message: impl Into<String>, offset: usize) -> Self {
        XmlError {
            message: message.into(),
            offset,
            line: 0,
            col: 0,
        }
    }

    /// Fills `line`/`col` from the source the offset refers to. Idempotent:
    /// an already-located error is returned unchanged.
    pub fn locate(mut self, src: &str) -> Self {
        if self.line > 0 {
            return self;
        }
        let mut line = 1u32;
        let mut col = 1u32;
        for (i, c) in src.char_indices() {
            if i >= self.offset {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        self.line = line;
        self.col = col;
        self
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "XML parse error at {}:{}: {}",
                self.line, self.col, self.message
            )
        } else {
            write!(
                f,
                "XML parse error at byte {}: {}",
                self.offset, self.message
            )
        }
    }
}

impl std::error::Error for XmlError {}

impl From<ModelError> for XmlError {
    fn from(e: ModelError) -> Self {
        XmlError::new(format!("model error: {e}"), 0)
    }
}

/// Result of [`parse_document`]: the data tree plus the DTD parsed from the
/// `<!DOCTYPE>` internal subset, when present.
#[derive(Debug)]
pub struct ParsedDocument {
    /// The document as a data tree.
    pub tree: DataTree,
    /// The DTD from the internal subset, if the document carried one.
    pub dtd: Option<DtdStructure>,
}

pub(crate) struct Cursor<'a> {
    pub src: &'a str,
    pub pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    pub fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    /// The unconsumed input as bytes (offsets into it are relative to
    /// `pos`). All scanning below works on bytes; since every delimiter is
    /// ASCII and ASCII bytes never occur inside multi-byte UTF-8 sequences,
    /// byte positions are always character boundaries.
    #[inline]
    pub fn bytes(&self) -> &'a [u8] {
        &self.src.as_bytes()[self.pos..]
    }

    #[inline]
    pub fn peek_byte(&self) -> Option<u8> {
        self.src.as_bytes().get(self.pos).copied()
    }

    pub fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    pub fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    pub fn skip_ws(&mut self) {
        let bytes = self.src.as_bytes();
        while let Some(&b) = bytes.get(self.pos) {
            if scan::is_ascii_ws(b) {
                self.pos += 1;
            } else if b < 0x80 {
                return;
            } else {
                // Non-ASCII: decode one char and apply the Unicode
                // predicate the old per-`char` loop used.
                match self.peek() {
                    Some(c) if c.is_whitespace() => self.pos += c.len_utf8(),
                    _ => return,
                }
            }
        }
    }

    pub fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError::new(msg, self.pos))
    }

    pub fn name(&mut self) -> Result<&'a str, XmlError> {
        let bytes = self.src.as_bytes();
        let start = self.pos;
        match bytes.get(self.pos) {
            Some(&b) if scan::is_ascii_name_start(b) => self.pos += 1,
            Some(&b) if b >= 0x80 => match self.peek() {
                Some(c) if c.is_alphabetic() => self.pos += c.len_utf8(),
                _ => return self.err("expected a name"),
            },
            _ => return self.err("expected a name"),
        }
        loop {
            match bytes.get(self.pos) {
                Some(&b) if scan::is_ascii_name_cont(b) => self.pos += 1,
                Some(&b) if b >= 0x80 => match self.peek() {
                    Some(c) if c.is_alphanumeric() => self.pos += c.len_utf8(),
                    _ => break,
                },
                _ => break,
            }
        }
        Ok(&self.src[start..self.pos])
    }

    /// Skips `<!-- … -->`, returning true if a comment was consumed.
    pub fn skip_comment(&mut self) -> Result<bool, XmlError> {
        if !self.eat("<!--") {
            return Ok(false);
        }
        match find_terminated(self.bytes(), b'-', b'-', Some(b'>')) {
            Some(i) => {
                self.pos += i + 3;
                Ok(true)
            }
            None => self.err("unterminated comment"),
        }
    }

    /// Skips `<? … ?>` processing instructions / the XML declaration.
    pub fn skip_pi(&mut self) -> Result<bool, XmlError> {
        if !self.eat("<?") {
            return Ok(false);
        }
        match scan::find_seq2(self.bytes(), b'?', b'>') {
            Some(i) => {
                self.pos += i + 2;
                Ok(true)
            }
            None => self.err("unterminated processing instruction"),
        }
    }
}

/// Finds `ab` (then `c`, when given) — the `-->` / `]]>` terminator scan.
pub(crate) fn find_terminated(hay: &[u8], a: u8, b: u8, c: Option<u8>) -> Option<usize> {
    let Some(c) = c else {
        return scan::find_seq2(hay, a, b);
    };
    let mut from = 0;
    while let Some(i) = scan::find_seq2(&hay[from..], a, b) {
        let at = from + i;
        if hay.get(at + 2) == Some(&c) {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

/// Decodes the five predefined entities and decimal/hex character
/// references into an owned string. Callers' byte scans already proved
/// `raw` contains a `&` (one pass over the text, not two); reference-free
/// values never reach this and stay borrowed.
pub(crate) fn decode_entities(raw: &str, at: usize) -> Result<String, XmlError> {
    let mut out = String::with_capacity(raw.len());
    let mut it = raw.char_indices();
    while let Some((i, c)) = it.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &raw[i + 1..];
        let Some(end) = rest.find(';') else {
            return Err(XmlError::new("unterminated entity reference", at + i));
        };
        let ent = &rest[..end];
        let decoded = match ent {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "apos" => '\'',
            "quot" => '"',
            _ => {
                if let Some(num) = ent.strip_prefix("#x").or_else(|| ent.strip_prefix("#X")) {
                    u32::from_str_radix(num, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| XmlError::new("bad character reference", at + i))?
                } else if let Some(num) = ent.strip_prefix('#') {
                    num.parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| XmlError::new("bad character reference", at + i))?
                } else {
                    return Err(XmlError::new(
                        format!("unknown entity &{ent}; (only predefined entities are supported)"),
                        at + i,
                    ));
                }
            }
        };
        out.push(decoded);
        // Advance the iterator past the entity.
        for _ in 0..ent.len() + 1 {
            it.next();
        }
    }
    Ok(out)
}

/// Parses an XML document into a data tree.
///
/// This is the event stream of [`EventParser`] folded into a
/// [`TreeBuilder`], so the tree and streaming paths share one lexer. If the
/// document has a `<!DOCTYPE root [ … ]>` with an internal subset, the
/// subset's `<!ELEMENT>`/`<!ATTLIST>` declarations are parsed into a
/// [`DtdStructure`] (rooted at the DOCTYPE name) and attributes declared
/// `IDREFS` are tokenized into value sets.
///
/// ```
/// use xic_xml::parse_document;
/// let doc = parse_document(r#"
/// <!DOCTYPE book [
///   <!ELEMENT book (entry, ref)>
///   <!ELEMENT entry EMPTY>
///   <!ELEMENT ref EMPTY>
///   <!ATTLIST entry isbn CDATA #REQUIRED>
///   <!ATTLIST ref to IDREFS #IMPLIED>
/// ]>
/// <book><entry isbn="1-55860"/><ref to="a b"/></book>"#).unwrap();
/// assert_eq!(doc.tree.label(doc.tree.root()).as_str(), "book");
/// let r = doc.tree.ext("ref").next().unwrap();
/// assert_eq!(doc.tree.attr(r, "to").unwrap().len(), 2);
/// ```
pub fn parse_document(src: &str) -> Result<ParsedDocument, XmlError> {
    let mut events = EventParser::new(src);
    let dtd = events.dtd()?.cloned();
    let mut b = TreeBuilder::new();
    // Stack of (node, element name) for the open elements.
    let mut stack: Vec<(NodeId, &str)> = Vec::new();
    let mut root: Option<NodeId> = None;
    for event in &mut events {
        match event? {
            Event::Open { name, .. } => {
                let node = b.node(name);
                match stack.last() {
                    Some(&(parent, _)) => {
                        b.child(parent, node)
                            .map_err(|e| XmlError::from(e).locate(src))?;
                    }
                    None => root = Some(node),
                }
                stack.push((node, name));
            }
            Event::Attr {
                name,
                value,
                offset,
            } => {
                let &(node, elem) = stack.last().expect("Attr implies an open element");
                let av = if dtd.as_ref().is_some_and(|d| d.is_set_valued(elem, name)) {
                    AttrValue::set(value.split_whitespace().map(str::to_string))
                } else {
                    AttrValue::single(value.into_owned())
                };
                b.attr(node, name, av).map_err(|e| {
                    XmlError::new(format!("attribute error: {e}"), offset).locate(src)
                })?;
            }
            Event::Text { value, .. } => {
                let &(node, _) = stack.last().expect("Text implies an open element");
                b.text(node, value.into_owned())
                    .map_err(|e| XmlError::from(e).locate(src))?;
            }
            Event::Close { .. } => {
                stack.pop();
            }
        }
    }
    let root = root.expect("a completed event stream contains a root element");
    let tree = b.finish(root).map_err(|e| XmlError::from(e).locate(src))?;
    Ok(ParsedDocument { tree, dtd })
}

pub(crate) fn parse_doctype(cur: &mut Cursor<'_>) -> Result<DtdStructure, XmlError> {
    assert!(cur.eat("<!DOCTYPE"));
    cur.skip_ws();
    let root = cur.name()?.to_string();
    cur.skip_ws();
    if !cur.eat("[") {
        return cur.err("expected '[' (only internal DTD subsets are supported)");
    }
    let subset_start = cur.pos;
    let Some(end) = cur.rest().find(']') else {
        return cur.err("unterminated DOCTYPE internal subset");
    };
    let subset = &cur.src[subset_start..subset_start + end];
    cur.pos += end + 1;
    cur.skip_ws();
    if !cur.eat(">") {
        return cur.err("expected '>' after DOCTYPE");
    }
    parse_dtd_declarations(subset, &root, subset_start)
}

/// Maximum element nesting depth accepted by the parser. The bound keeps
/// adversarially deep documents from exhausting downstream consumers that
/// hold per-open-element state (matching the guards of production XML
/// parsers).
pub const MAX_DEPTH: usize = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_book_document() {
        let src = r#"<?xml version="1.0"?>
<!-- the running example of Section 1 -->
<book>
  <entry isbn="1-55860-622-X">
    <title>Data on the Web</title>
    <publisher>Morgan Kaufmann</publisher>
  </entry>
  <author>Serge Abiteboul</author>
  <author>Peter Buneman</author>
  <author>Dan Suciu</author>
  <section sid="intro">
    <title>Introduction</title>
    <text>Data on the web...</text>
    <section sid="sub1"><title>Audience</title></section>
  </section>
  <ref to="1-55860-622-X 0-201-53771-0"/>
</book>"#;
        let doc = parse_document(src).unwrap();
        let t = &doc.tree;
        assert!(doc.dtd.is_none());
        assert_eq!(t.label(t.root()).as_str(), "book");
        assert_eq!(t.ext("author").count(), 3);
        assert_eq!(t.ext("section").count(), 2);
        let entry = t.ext("entry").next().unwrap();
        assert_eq!(
            t.attr(entry, "isbn").unwrap().as_single().unwrap(),
            "1-55860-622-X"
        );
        // Without a DTD, `to` stays single-valued.
        let r = t.ext("ref").next().unwrap();
        assert_eq!(t.attr(r, "to").unwrap().len(), 1);
        let title = t.ext("title").next().unwrap();
        assert_eq!(t.node(title).text(), "Data on the Web");
    }

    #[test]
    fn doctype_enables_idrefs_splitting() {
        let src = r#"<!DOCTYPE book [
  <!ELEMENT book (entry, ref)>
  <!ELEMENT entry (title)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT ref EMPTY>
  <!ATTLIST entry isbn CDATA #REQUIRED>
  <!ATTLIST ref to IDREFS #IMPLIED>
]>
<book><entry isbn="x"><title>T</title></entry><ref to="x y z"/></book>"#;
        let doc = parse_document(src).unwrap();
        let dtd = doc.dtd.as_ref().unwrap();
        assert_eq!(dtd.root().as_str(), "book");
        assert!(dtd.is_set_valued("ref", "to"));
        let r = doc.tree.ext("ref").next().unwrap();
        let to = doc.tree.attr(r, "to").unwrap();
        assert_eq!(to.len(), 3);
        assert!(to.contains("y"));
    }

    #[test]
    fn entities_and_char_refs() {
        let doc = parse_document("<a x=\"&lt;&amp;&quot;&#65;&#x42;\">&gt;text&apos;</a>").unwrap();
        let t = &doc.tree;
        let a = t.root();
        assert_eq!(t.attr(a, "x").unwrap().as_single().unwrap(), "<&\"AB");
        assert_eq!(t.node(a).text(), ">text'");
    }

    #[test]
    fn cdata_sections() {
        let doc = parse_document("<a><![CDATA[<not & markup>]]></a>").unwrap();
        assert_eq!(doc.tree.node(doc.tree.root()).text(), "<not & markup>");
    }

    #[test]
    fn whitespace_only_text_dropped_mixed_kept() {
        let doc = parse_document("<a>\n  <b/>\n  mixed\n  <b/>\n</a>").unwrap();
        let t = &doc.tree;
        let a = t.root();
        assert_eq!(t.node(a).children.len(), 3); // b, text, b
        assert!(t.node(a).text().contains("mixed"));
    }

    #[test]
    fn self_closing_and_nested() {
        let doc = parse_document("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(doc.tree.len(), 4);
    }

    #[test]
    fn rejects_malformed_documents() {
        for src in [
            "",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x=y/>",
            "<a x=\"1\" x=\"2\"/>",
            "<a>&unknown;</a>",
            "<a/><b/>",
            "text only",
            "<a><!-- unterminated </a>",
        ] {
            assert!(parse_document(src).is_err(), "should reject {src:?}");
        }
    }

    #[test]
    fn depth_guard_rejects_adversarial_nesting() {
        // Within the bound: fine.
        let deep_ok = format!("{}{}", "<a>".repeat(100), "</a>".repeat(100));
        assert_eq!(parse_document(&deep_ok).unwrap().tree.len(), 100);
        // Beyond the bound: a clean error, not unbounded consumer state.
        let n = super::MAX_DEPTH + 10;
        let deep_bad = format!("{}{}", "<a>".repeat(n), "</a>".repeat(n));
        let e = parse_document(&deep_bad).unwrap_err();
        assert!(e.message.contains("depth"), "{e}");
    }

    #[test]
    fn error_positions_are_plausible() {
        let e = parse_document("<a><b></c></a>").unwrap_err();
        assert!(e.offset >= 6, "{e}");
        assert!(e.to_string().contains("mismatched end tag"));
    }

    #[test]
    fn errors_carry_line_and_column() {
        // The bad end tag sits on line 3; `</c` starts at column 3.
        let e = parse_document("<a>\n  <b>\n  </c>\n</a>").unwrap_err();
        assert_eq!((e.line, e.col), (3, 6), "{e}");
        assert!(e.to_string().contains("at 3:6"), "{e}");
        // Single-line documents locate on line 1.
        let e = parse_document("<a x=1/>").unwrap_err();
        assert_eq!(e.line, 1, "{e}");
        assert!(e.col > 1, "{e}");
    }
}
