//! The XML document parser.

use std::fmt;

use xic_constraints::DtdStructure;
use xic_model::{AttrValue, DataTree, ModelError, TreeBuilder};

use crate::dtd::parse_dtd_declarations;

/// XML parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the error was detected.
    pub offset: usize,
}

impl XmlError {
    pub(crate) fn new(message: impl Into<String>, offset: usize) -> Self {
        XmlError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for XmlError {}

impl From<ModelError> for XmlError {
    fn from(e: ModelError) -> Self {
        XmlError::new(format!("model error: {e}"), 0)
    }
}

/// Result of [`parse_document`]: the data tree plus the DTD parsed from the
/// `<!DOCTYPE>` internal subset, when present.
#[derive(Debug)]
pub struct ParsedDocument {
    /// The document as a data tree.
    pub tree: DataTree,
    /// The DTD from the internal subset, if the document carried one.
    pub dtd: Option<DtdStructure>,
}

pub(crate) struct Cursor<'a> {
    pub src: &'a str,
    pub pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    pub fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    pub fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    pub fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    pub fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    pub fn err<T>(&self, msg: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError::new(msg, self.pos))
    }

    pub fn name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                self.bump();
            }
            _ => return self.err("expected a name"),
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
        {
            self.bump();
        }
        Ok(&self.src[start..self.pos])
    }

    /// Skips `<!-- … -->`, returning true if a comment was consumed.
    pub fn skip_comment(&mut self) -> Result<bool, XmlError> {
        if !self.eat("<!--") {
            return Ok(false);
        }
        match self.rest().find("-->") {
            Some(i) => {
                self.pos += i + 3;
                Ok(true)
            }
            None => self.err("unterminated comment"),
        }
    }

    /// Skips `<? … ?>` processing instructions / the XML declaration.
    pub fn skip_pi(&mut self) -> Result<bool, XmlError> {
        if !self.eat("<?") {
            return Ok(false);
        }
        match self.rest().find("?>") {
            Some(i) => {
                self.pos += i + 2;
                Ok(true)
            }
            None => self.err("unterminated processing instruction"),
        }
    }
}

/// Decodes the five predefined entities and decimal/hex character
/// references.
pub(crate) fn decode_text(raw: &str, at: usize) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut it = raw.char_indices();
    while let Some((i, c)) = it.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &raw[i + 1..];
        let Some(end) = rest.find(';') else {
            return Err(XmlError::new("unterminated entity reference", at + i));
        };
        let ent = &rest[..end];
        let decoded = match ent {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "apos" => '\'',
            "quot" => '"',
            _ => {
                if let Some(num) = ent.strip_prefix("#x").or_else(|| ent.strip_prefix("#X")) {
                    u32::from_str_radix(num, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| XmlError::new("bad character reference", at + i))?
                } else if let Some(num) = ent.strip_prefix('#') {
                    num.parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| XmlError::new("bad character reference", at + i))?
                } else {
                    return Err(XmlError::new(
                        format!("unknown entity &{ent}; (only predefined entities are supported)"),
                        at + i,
                    ));
                }
            }
        };
        out.push(decoded);
        // Advance the iterator past the entity.
        for _ in 0..ent.len() + 1 {
            it.next();
        }
    }
    Ok(out)
}

/// Parses an XML document into a data tree.
///
/// If the document has a `<!DOCTYPE root [ … ]>` with an internal subset,
/// the subset's `<!ELEMENT>`/`<!ATTLIST>` declarations are parsed into a
/// [`DtdStructure`] (rooted at the DOCTYPE name) and attributes declared
/// `IDREFS` are tokenized into value sets.
///
/// ```
/// use xic_xml::parse_document;
/// let doc = parse_document(r#"
/// <!DOCTYPE book [
///   <!ELEMENT book (entry, ref)>
///   <!ELEMENT entry EMPTY>
///   <!ELEMENT ref EMPTY>
///   <!ATTLIST entry isbn CDATA #REQUIRED>
///   <!ATTLIST ref to IDREFS #IMPLIED>
/// ]>
/// <book><entry isbn="1-55860"/><ref to="a b"/></book>"#).unwrap();
/// assert_eq!(doc.tree.label(doc.tree.root()).as_str(), "book");
/// let r = doc.tree.ext("ref").next().unwrap();
/// assert_eq!(doc.tree.attr(r, "to").unwrap().len(), 2);
/// ```
pub fn parse_document(src: &str) -> Result<ParsedDocument, XmlError> {
    let mut cur = Cursor::new(src);
    let mut dtd: Option<DtdStructure> = None;

    // Prolog: XML declaration, comments, DOCTYPE.
    loop {
        cur.skip_ws();
        if cur.skip_pi()? || cur.skip_comment()? {
            continue;
        }
        if cur.rest().starts_with("<!DOCTYPE") {
            dtd = Some(parse_doctype(&mut cur)?);
            continue;
        }
        break;
    }

    let mut b = TreeBuilder::new();
    let root = parse_element(&mut cur, &mut b, dtd.as_ref(), 0)?;
    // Trailing misc.
    loop {
        cur.skip_ws();
        if cur.skip_pi()? || cur.skip_comment()? {
            continue;
        }
        break;
    }
    if !cur.rest().is_empty() {
        return cur.err("content after the root element");
    }
    let tree = b.finish(root)?;
    Ok(ParsedDocument { tree, dtd })
}

fn parse_doctype(cur: &mut Cursor<'_>) -> Result<DtdStructure, XmlError> {
    assert!(cur.eat("<!DOCTYPE"));
    cur.skip_ws();
    let root = cur.name()?.to_string();
    cur.skip_ws();
    if !cur.eat("[") {
        return cur.err("expected '[' (only internal DTD subsets are supported)");
    }
    let subset_start = cur.pos;
    let Some(end) = cur.rest().find(']') else {
        return cur.err("unterminated DOCTYPE internal subset");
    };
    let subset = &cur.src[subset_start..subset_start + end];
    cur.pos += end + 1;
    cur.skip_ws();
    if !cur.eat(">") {
        return cur.err("expected '>' after DOCTYPE");
    }
    parse_dtd_declarations(subset, &root, subset_start)
}

fn parse_attr_value(cur: &mut Cursor<'_>) -> Result<String, XmlError> {
    cur.skip_ws();
    let quote = match cur.bump() {
        Some(q @ ('"' | '\'')) => q,
        _ => return cur.err("expected quoted attribute value"),
    };
    let start = cur.pos;
    let Some(end) = cur.rest().find(quote) else {
        return cur.err("unterminated attribute value");
    };
    let raw = &cur.src[start..start + end];
    cur.pos += end + 1;
    decode_text(raw, start)
}

/// Maximum element nesting depth accepted by the parser. Parsing is
/// recursive; the bound keeps adversarially deep documents from
/// overflowing the stack (matching the guards of production XML parsers).
pub const MAX_DEPTH: usize = 512;

fn parse_element(
    cur: &mut Cursor<'_>,
    b: &mut TreeBuilder,
    dtd: Option<&DtdStructure>,
    depth: usize,
) -> Result<xic_model::NodeId, XmlError> {
    if depth > MAX_DEPTH {
        return cur.err(format!(
            "element nesting exceeds the supported depth of {MAX_DEPTH}"
        ));
    }
    cur.skip_ws();
    if !cur.eat("<") {
        return cur.err("expected an element start tag");
    }
    let name = cur.name()?.to_string();
    let node = b.node(name.as_str());

    // Attributes.
    loop {
        cur.skip_ws();
        match cur.peek() {
            Some('>') | Some('/') => break,
            Some(c) if c.is_alphabetic() || c == '_' => {
                let attr_pos = cur.pos;
                let aname = cur.name()?.to_string();
                cur.skip_ws();
                if !cur.eat("=") {
                    return cur.err("expected '=' in attribute");
                }
                let value = parse_attr_value(cur)?;
                let av = if dtd.is_some_and(|d| d.is_set_valued(&name, &aname)) {
                    AttrValue::set(value.split_whitespace().map(str::to_string))
                } else {
                    AttrValue::single(value)
                };
                b.attr(node, aname.as_str(), av)
                    .map_err(|e| XmlError::new(format!("attribute error: {e}"), attr_pos))?;
            }
            _ => return cur.err("expected attribute or '>'"),
        }
    }

    if cur.eat("/>") {
        return Ok(node);
    }
    if !cur.eat(">") {
        return cur.err("expected '>'");
    }

    // Content.
    loop {
        // Character data up to the next markup.
        let start = cur.pos;
        let Some(lt) = cur.rest().find('<') else {
            return cur.err("unterminated element (missing end tag)");
        };
        if lt > 0 {
            let raw = &cur.src[start..start + lt];
            cur.pos += lt;
            let text = decode_text(raw, start)?;
            // Drop ignorable (whitespace-only) runs.
            if !text.trim().is_empty() {
                b.text(node, text)?;
            }
        }
        if cur.skip_comment()? || cur.skip_pi()? {
            continue;
        }
        if cur.eat("<![CDATA[") {
            let Some(end) = cur.rest().find("]]>") else {
                return cur.err("unterminated CDATA section");
            };
            let raw = cur.rest()[..end].to_string();
            cur.pos += end + 3;
            if !raw.is_empty() {
                b.text(node, raw)?;
            }
            continue;
        }
        if cur.rest().starts_with("</") {
            cur.eat("</");
            let close = cur.name()?;
            if close != name {
                return cur.err(format!(
                    "mismatched end tag: expected </{name}>, got </{close}>"
                ));
            }
            cur.skip_ws();
            if !cur.eat(">") {
                return cur.err("expected '>' in end tag");
            }
            return Ok(node);
        }
        // Child element.
        let child = parse_element(cur, b, dtd, depth + 1)?;
        b.child(node, child)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_book_document() {
        let src = r#"<?xml version="1.0"?>
<!-- the running example of Section 1 -->
<book>
  <entry isbn="1-55860-622-X">
    <title>Data on the Web</title>
    <publisher>Morgan Kaufmann</publisher>
  </entry>
  <author>Serge Abiteboul</author>
  <author>Peter Buneman</author>
  <author>Dan Suciu</author>
  <section sid="intro">
    <title>Introduction</title>
    <text>Data on the web...</text>
    <section sid="sub1"><title>Audience</title></section>
  </section>
  <ref to="1-55860-622-X 0-201-53771-0"/>
</book>"#;
        let doc = parse_document(src).unwrap();
        let t = &doc.tree;
        assert!(doc.dtd.is_none());
        assert_eq!(t.label(t.root()).as_str(), "book");
        assert_eq!(t.ext("author").count(), 3);
        assert_eq!(t.ext("section").count(), 2);
        let entry = t.ext("entry").next().unwrap();
        assert_eq!(
            t.attr(entry, "isbn").unwrap().as_single().unwrap(),
            "1-55860-622-X"
        );
        // Without a DTD, `to` stays single-valued.
        let r = t.ext("ref").next().unwrap();
        assert_eq!(t.attr(r, "to").unwrap().len(), 1);
        let title = t.ext("title").next().unwrap();
        assert_eq!(t.node(title).text(), "Data on the Web");
    }

    #[test]
    fn doctype_enables_idrefs_splitting() {
        let src = r#"<!DOCTYPE book [
  <!ELEMENT book (entry, ref)>
  <!ELEMENT entry (title)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT ref EMPTY>
  <!ATTLIST entry isbn CDATA #REQUIRED>
  <!ATTLIST ref to IDREFS #IMPLIED>
]>
<book><entry isbn="x"><title>T</title></entry><ref to="x y z"/></book>"#;
        let doc = parse_document(src).unwrap();
        let dtd = doc.dtd.as_ref().unwrap();
        assert_eq!(dtd.root().as_str(), "book");
        assert!(dtd.is_set_valued("ref", "to"));
        let r = doc.tree.ext("ref").next().unwrap();
        let to = doc.tree.attr(r, "to").unwrap();
        assert_eq!(to.len(), 3);
        assert!(to.contains("y"));
    }

    #[test]
    fn entities_and_char_refs() {
        let doc = parse_document("<a x=\"&lt;&amp;&quot;&#65;&#x42;\">&gt;text&apos;</a>").unwrap();
        let t = &doc.tree;
        let a = t.root();
        assert_eq!(t.attr(a, "x").unwrap().as_single().unwrap(), "<&\"AB");
        assert_eq!(t.node(a).text(), ">text'");
    }

    #[test]
    fn cdata_sections() {
        let doc = parse_document("<a><![CDATA[<not & markup>]]></a>").unwrap();
        assert_eq!(doc.tree.node(doc.tree.root()).text(), "<not & markup>");
    }

    #[test]
    fn whitespace_only_text_dropped_mixed_kept() {
        let doc = parse_document("<a>\n  <b/>\n  mixed\n  <b/>\n</a>").unwrap();
        let t = &doc.tree;
        let a = t.root();
        assert_eq!(t.node(a).children.len(), 3); // b, text, b
        assert!(t.node(a).text().contains("mixed"));
    }

    #[test]
    fn self_closing_and_nested() {
        let doc = parse_document("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(doc.tree.len(), 4);
    }

    #[test]
    fn rejects_malformed_documents() {
        for src in [
            "",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x=y/>",
            "<a x=\"1\" x=\"2\"/>",
            "<a>&unknown;</a>",
            "<a/><b/>",
            "text only",
            "<a><!-- unterminated </a>",
        ] {
            assert!(parse_document(src).is_err(), "should reject {src:?}");
        }
    }

    #[test]
    fn depth_guard_rejects_adversarial_nesting() {
        // Within the bound: fine.
        let deep_ok = format!("{}{}", "<a>".repeat(100), "</a>".repeat(100));
        assert_eq!(parse_document(&deep_ok).unwrap().tree.len(), 100);
        // Beyond the bound: a clean error, not a stack overflow.
        let n = super::MAX_DEPTH + 10;
        let deep_bad = format!("{}{}", "<a>".repeat(n), "</a>".repeat(n));
        let e = parse_document(&deep_bad).unwrap_err();
        assert!(e.message.contains("depth"), "{e}");
    }

    #[test]
    fn error_positions_are_plausible() {
        let e = parse_document("<a><b></c></a>").unwrap_err();
        assert!(e.offset >= 6, "{e}");
        assert!(e.to_string().contains("mismatched end tag"));
    }
}
