//! Word-at-a-time byte scanning for the lexer hot loops.
//!
//! The four dominant scans of a large document — text-until-`<`, name runs,
//! attribute values, and whitespace — spend their time looking for one or
//! two ASCII delimiter bytes. The workspace is dependency-free, so instead
//! of `memchr` these helpers hand-roll the same trick in safe code: process
//! the haystack in 8-byte little-endian words and detect a zero byte in
//! `word XOR splat(needle)` with the classic `(v - 0x0101…) & !v & 0x8080…`
//! mask. Every needle these scans look for is ASCII, and ASCII bytes never
//! occur inside a multi-byte UTF-8 sequence, so byte positions found here
//! are always character boundaries.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Non-zero iff `word` contains a zero byte (bits set within that byte).
#[inline(always)]
fn zero_byte_mask(word: u64) -> u64 {
    word.wrapping_sub(LO) & !word & HI
}

#[inline(always)]
fn splat(b: u8) -> u64 {
    u64::from(b) * LO
}

/// Index of the first occurrence of `needle` in `haystack`.
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let splatted = splat(needle);
    let mut chunks = haystack.chunks_exact(8);
    let mut base = 0;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let mask = zero_byte_mask(word ^ splatted);
        if mask != 0 {
            return Some(base + (mask.trailing_zeros() as usize) / 8);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| base + i)
}

/// Index of the first occurrence of `a` or `b` in `haystack`.
#[inline]
pub fn find_byte2(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
    let sa = splat(a);
    let sb = splat(b);
    let mut chunks = haystack.chunks_exact(8);
    let mut base = 0;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let mask = zero_byte_mask(word ^ sa) | zero_byte_mask(word ^ sb);
        if mask != 0 {
            return Some(base + (mask.trailing_zeros() as usize) / 8);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&x| x == a || x == b)
        .map(|i| base + i)
}

/// Index of the first occurrence of the two-byte sequence `ab` (e.g. the
/// `]]` of `]]>` or the `--` of `-->`), for terminator scans.
#[inline]
pub fn find_seq2(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
    let mut from = 0;
    while let Some(i) = find_byte(&haystack[from..], a) {
        let at = from + i;
        match haystack.get(at + 1) {
            Some(&next) if next == b => return Some(at),
            Some(_) => from = at + 1,
            None => return None,
        }
    }
    None
}

/// Byte classes for the ASCII fast paths of the lexer. Bytes ≥ 0x80 are
/// *not* classified here — the lexer falls back to `char`-level Unicode
/// predicates for those, so the byte paths and the old `char` paths agree
/// on every input.
const WS: u8 = 1 << 0; // space, tab, CR, LF, VT, FF (= ASCII is_whitespace)
const NAME_START: u8 = 1 << 1; // A-Z a-z _
const NAME_CONT: u8 = 1 << 2; // NAME_START ∪ 0-9 - . :

const fn class_table() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let b = i as u8;
        if matches!(b, b' ' | b'\t' | b'\r' | b'\n' | 0x0b | 0x0c) {
            t[i] |= WS;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            t[i] |= NAME_START | NAME_CONT;
        }
        if b.is_ascii_digit() || matches!(b, b'-' | b'.' | b':') {
            t[i] |= NAME_CONT;
        }
        i += 1;
    }
    t
}

static CLASS: [u8; 256] = class_table();

/// Whether `b` is ASCII whitespace (matches `char::is_whitespace` on the
/// ASCII range: space, tab, CR, LF, VT, FF).
#[inline(always)]
pub fn is_ascii_ws(b: u8) -> bool {
    CLASS[b as usize] & WS != 0
}

/// Whether `b` can start a name on the ASCII fast path (`A-Za-z_`).
#[inline(always)]
pub fn is_ascii_name_start(b: u8) -> bool {
    CLASS[b as usize] & NAME_START != 0
}

/// Whether `b` can continue a name on the ASCII fast path
/// (`A-Za-z0-9_-.:`).
#[inline(always)]
pub fn is_ascii_name_cont(b: u8) -> bool {
    CLASS[b as usize] & NAME_CONT != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_byte_agrees_with_position_at_every_offset() {
        // Cross word boundaries, hit in the remainder, miss entirely.
        let hay: Vec<u8> = (0..41u8).map(|i| i.wrapping_mul(7)).collect();
        for needle in 0..=255u8 {
            for start in 0..hay.len() {
                let h = &hay[start..];
                assert_eq!(
                    find_byte(h, needle),
                    h.iter().position(|&b| b == needle),
                    "needle {needle} from {start}"
                );
            }
        }
    }

    #[test]
    fn find_byte2_returns_the_earlier_of_either() {
        let h = b"aaaaaaaaaaXbbbbbbbbbbY";
        assert_eq!(find_byte2(h, b'X', b'Y'), Some(10));
        assert_eq!(find_byte2(h, b'Y', b'X'), Some(10));
        assert_eq!(find_byte2(h, b'Y', b'Z'), Some(21));
        assert_eq!(find_byte2(h, b'Q', b'Z'), None);
        assert_eq!(find_byte2(b"", b'a', b'b'), None);
    }

    #[test]
    fn find_seq2_skips_lone_first_bytes() {
        assert_eq!(find_seq2(b"a-b--c", b'-', b'-'), Some(3));
        assert_eq!(find_seq2(b"]x]]>", b']', b']'), Some(2));
        assert_eq!(find_seq2(b"-", b'-', b'-'), None);
        assert_eq!(find_seq2(b"- - - ", b'-', b'-'), None);
        // Overlapping candidates: "---" contains "--" at 0.
        assert_eq!(find_seq2(b"x---", b'-', b'-'), Some(1));
    }

    #[test]
    fn ascii_classes_match_char_predicates() {
        for b in 0..=127u8 {
            let c = b as char;
            assert_eq!(is_ascii_ws(b), c.is_whitespace(), "ws {b}");
            assert_eq!(
                is_ascii_name_start(b),
                c.is_alphabetic() || c == '_',
                "start {b}"
            );
            assert_eq!(
                is_ascii_name_cont(b),
                c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'),
                "cont {b}"
            );
        }
        // High bytes are never classified: the lexer must decode them.
        for b in 128..=255u8 {
            assert!(!is_ascii_ws(b) && !is_ascii_name_start(b) && !is_ascii_name_cont(b));
        }
    }
}
