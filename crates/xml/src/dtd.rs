//! The DTD parser: `<!ELEMENT>` / `<!ATTLIST>` declarations →
//! [`DtdStructure`].

use xic_constraints::{AttrKind, AttrType, DtdStructure};
use xic_model::Name;
use xic_regex::ContentModel;

use crate::parser::{Cursor, XmlError};

/// Parses a standalone DTD (the text one would put in a `.dtd` file or a
/// DOCTYPE internal subset) into a [`DtdStructure`] rooted at `root`.
///
/// Supported declarations: `<!ELEMENT name spec>` with
/// `EMPTY | ANY | (#PCDATA) | (#PCDATA|a|…)* |` children content models
/// using `,`/`|` and the `?`/`*`/`+` modifiers, and
/// `<!ATTLIST name (attr type default)*>` with types
/// `CDATA | ID | IDREF | IDREFS | NMTOKEN | NMTOKENS | (enumerations)` and
/// defaults `#REQUIRED | #IMPLIED | #FIXED "v" | "v"`. Comments and
/// parameter-entity declarations are skipped.
///
/// Mapping onto Definition 2.2: `(#PCDATA)` ↦ `S`; mixed content ↦
/// `(S + a + …)*`; `α?` ↦ `α + ε`; `α+` ↦ `α, α*`; `ANY` ↦
/// `(S + e₁ + … + eₙ)*` over all declared element types; `ID` ↦ kind `ID`
/// (single-valued); `IDREF`/`IDREFS` ↦ kind `IDREF` (single-/set-valued);
/// `NMTOKENS` ↦ `S*`; every other type ↦ `S`.
///
/// ```
/// use xic_xml::parse_dtd;
/// let dtd = parse_dtd(r#"
///   <!ELEMENT book (entry, author*, section*, ref)>
///   <!ELEMENT entry (title, publisher)>
///   <!ELEMENT title (#PCDATA)> <!ELEMENT publisher (#PCDATA)>
///   <!ELEMENT author (#PCDATA)> <!ELEMENT text (#PCDATA)>
///   <!ELEMENT section (title, (text | section)*)>
///   <!ELEMENT ref EMPTY>
///   <!ATTLIST entry isbn CDATA #REQUIRED>
///   <!ATTLIST section sid ID #REQUIRED>
///   <!ATTLIST ref to IDREFS #IMPLIED>
/// "#, "book").unwrap();
/// assert_eq!(dtd.content_model("book").unwrap().to_string(),
///            "entry, author*, section*, ref");
/// assert!(dtd.is_set_valued("ref", "to"));
/// ```
pub fn parse_dtd(src: &str, root: &str) -> Result<DtdStructure, XmlError> {
    parse_dtd_declarations(src, root, 0).map_err(|e| e.locate(src))
}

/// `ANY` placeholder resolved once all element names are known.
enum Spec {
    Model(ContentModel),
    Any,
}

pub(crate) fn parse_dtd_declarations(
    src: &str,
    root: &str,
    base_offset: usize,
) -> Result<DtdStructure, XmlError> {
    let mut cur = Cursor::new(src);
    let mut elems: Vec<(String, Spec)> = Vec::new();
    let mut attrs: Vec<(String, String, AttrType, Option<AttrKind>)> = Vec::new();

    loop {
        cur.skip_ws();
        if cur.rest().is_empty() {
            break;
        }
        if cur.skip_comment().map_err(|e| shift(e, base_offset))?
            || cur.skip_pi().map_err(|e| shift(e, base_offset))?
        {
            continue;
        }
        if cur.eat("<!ELEMENT") {
            cur.skip_ws();
            let name = cur.name().map_err(|e| shift(e, base_offset))?.to_string();
            cur.skip_ws();
            let spec = parse_content_spec(&mut cur).map_err(|e| shift(e, base_offset))?;
            cur.skip_ws();
            if !cur.eat(">") {
                return Err(shift(
                    cur.err::<()>("expected '>'").unwrap_err(),
                    base_offset,
                ));
            }
            elems.push((name, spec));
        } else if cur.eat("<!ATTLIST") {
            cur.skip_ws();
            let elem = cur.name().map_err(|e| shift(e, base_offset))?.to_string();
            loop {
                cur.skip_ws();
                if cur.eat(">") {
                    break;
                }
                let attr = cur.name().map_err(|e| shift(e, base_offset))?.to_string();
                cur.skip_ws();
                let (ty, kind) = parse_attr_type(&mut cur).map_err(|e| shift(e, base_offset))?;
                cur.skip_ws();
                parse_default(&mut cur).map_err(|e| shift(e, base_offset))?;
                attrs.push((elem.clone(), attr, ty, kind));
            }
        } else if cur.eat("<!ENTITY") || cur.eat("<!NOTATION") {
            // Skipped: out of the paper's scope.
            let Some(end) = cur.rest().find('>') else {
                return Err(XmlError::new(
                    "unterminated declaration",
                    base_offset + cur.pos,
                ));
            };
            cur.pos += end + 1;
        } else {
            return Err(XmlError::new(
                format!("unexpected DTD content: {:?}", truncate(cur.rest())),
                base_offset + cur.pos,
            ));
        }
    }

    let all_names: Vec<Name> = elems.iter().map(|(n, _)| Name::new(n)).collect();
    let any_model = || {
        ContentModel::star(ContentModel::alt_all(
            std::iter::once(ContentModel::S)
                .chain(all_names.iter().map(|n| ContentModel::Elem(n.clone()))),
        ))
    };

    let mut b = DtdStructure::builder(root);
    for (name, spec) in elems {
        let model = match spec {
            Spec::Model(m) => m,
            Spec::Any => any_model(),
        };
        b = b.elem_model(name.as_str(), model);
    }
    for (elem, attr, ty, kind) in attrs {
        b = b.attr_full(elem.as_str(), attr.as_str(), ty, kind);
    }
    b.build()
        .map_err(|e| XmlError::new(format!("invalid DTD: {e}"), base_offset))
}

fn shift(mut e: XmlError, base: usize) -> XmlError {
    e.offset += base;
    e
}

fn truncate(s: &str) -> &str {
    &s[..s.len().min(24)]
}

fn parse_content_spec(cur: &mut Cursor<'_>) -> Result<Spec, XmlError> {
    if cur.eat("EMPTY") {
        return Ok(Spec::Model(ContentModel::Epsilon));
    }
    if cur.eat("ANY") {
        return Ok(Spec::Any);
    }
    if cur.peek() != Some('(') {
        return cur.err("expected '(' , EMPTY or ANY in content spec");
    }
    // Mixed content?
    {
        let save = cur.pos;
        cur.eat("(");
        cur.skip_ws();
        if cur.eat("#PCDATA") {
            let mut names = Vec::new();
            loop {
                cur.skip_ws();
                if cur.eat(")") {
                    break;
                }
                if !cur.eat("|") {
                    return cur.err("expected '|' or ')' in mixed content");
                }
                cur.skip_ws();
                names.push(cur.name()?.to_string());
            }
            let starred = cur.eat("*");
            if names.is_empty() {
                // `(#PCDATA)` — exactly one string child: Definition 2.2's S.
                // `(#PCDATA)*` — any number of string children.
                return Ok(Spec::Model(if starred {
                    ContentModel::star(ContentModel::S)
                } else {
                    ContentModel::S
                }));
            }
            if !starred {
                return cur.err("mixed content with names requires trailing '*'");
            }
            return Ok(Spec::Model(ContentModel::star(ContentModel::alt_all(
                std::iter::once(ContentModel::S)
                    .chain(names.iter().map(|n| ContentModel::elem(n.as_str()))),
            ))));
        }
        cur.pos = save;
    }
    let m = parse_cp(cur)?;
    Ok(Spec::Model(m))
}

/// `cp ::= (name | '(' choice-or-seq ')') ('?'|'*'|'+')?`
fn parse_cp(cur: &mut Cursor<'_>) -> Result<ContentModel, XmlError> {
    cur.skip_ws();
    let base = if cur.eat("(") {
        let first = parse_cp(cur)?;
        cur.skip_ws();
        let m = match cur.peek() {
            Some('|') => {
                let mut parts = vec![first];
                while cur.eat("|") {
                    parts.push(parse_cp(cur)?);
                    cur.skip_ws();
                }
                ContentModel::alt_all(parts)
            }
            Some(',') => {
                let mut parts = vec![first];
                while cur.eat(",") {
                    parts.push(parse_cp(cur)?);
                    cur.skip_ws();
                }
                ContentModel::seq_all(parts)
            }
            _ => first,
        };
        cur.skip_ws();
        if !cur.eat(")") {
            return cur.err("expected ')'");
        }
        m
    } else {
        ContentModel::elem(cur.name()?)
    };
    Ok(apply_modifier(cur, base))
}

fn apply_modifier(cur: &mut Cursor<'_>, m: ContentModel) -> ContentModel {
    if cur.eat("*") {
        ContentModel::star(m)
    } else if cur.eat("+") {
        ContentModel::seq(m.clone(), ContentModel::star(m))
    } else if cur.eat("?") {
        ContentModel::alt(m, ContentModel::Epsilon)
    } else {
        m
    }
}

fn parse_attr_type(cur: &mut Cursor<'_>) -> Result<(AttrType, Option<AttrKind>), XmlError> {
    // Order matters: IDREFS before IDREF before ID; NMTOKENS before NMTOKEN.
    if cur.eat("IDREFS") {
        Ok((AttrType::SetValued, Some(AttrKind::IdRef)))
    } else if cur.eat("IDREF") {
        Ok((AttrType::Single, Some(AttrKind::IdRef)))
    } else if cur.eat("ID") {
        Ok((AttrType::Single, Some(AttrKind::Id)))
    } else if cur.eat("CDATA") {
        Ok((AttrType::Single, None))
    } else if cur.eat("NMTOKENS") {
        Ok((AttrType::SetValued, None))
    } else if cur.eat("NMTOKEN") {
        Ok((AttrType::Single, None))
    } else if cur.eat("ENTITIES") {
        Ok((AttrType::SetValued, None))
    } else if cur.eat("ENTITY") {
        Ok((AttrType::Single, None))
    } else if cur.peek() == Some('(') {
        // Enumeration: (a | b | c) — single-valued string.
        let Some(end) = cur.rest().find(')') else {
            return cur.err("unterminated enumeration type");
        };
        cur.pos += end + 1;
        Ok((AttrType::Single, None))
    } else {
        cur.err("unsupported attribute type")
    }
}

fn parse_default(cur: &mut Cursor<'_>) -> Result<(), XmlError> {
    if cur.eat("#REQUIRED") || cur.eat("#IMPLIED") {
        return Ok(());
    }
    if cur.eat("#FIXED") {
        cur.skip_ws();
    }
    // Quoted default value.
    match cur.bump() {
        Some(q @ ('"' | '\'')) => {
            let Some(end) = cur.rest().find(q) else {
                return cur.err("unterminated default value");
            };
            cur.pos += end + 1;
            Ok(())
        }
        _ => cur.err("expected #REQUIRED, #IMPLIED, #FIXED or a quoted default"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOOK_DTD: &str = r#"
      <!ELEMENT book (entry, author*, section*, ref)>
      <!ELEMENT entry (title, publisher)>
      <!ELEMENT title (#PCDATA)>
      <!ELEMENT publisher (#PCDATA)>
      <!ELEMENT author (#PCDATA)>
      <!ELEMENT text (#PCDATA)>
      <!ELEMENT section (title, (text | section)*)>
      <!ELEMENT ref EMPTY>
      <!ATTLIST entry isbn CDATA #REQUIRED>
      <!ATTLIST section sid ID #REQUIRED>
      <!ATTLIST ref to IDREFS #IMPLIED>
    "#;

    #[test]
    fn parses_the_paper_book_dtd() {
        let dtd = parse_dtd(BOOK_DTD, "book").unwrap();
        assert_eq!(dtd.root().as_str(), "book");
        assert_eq!(dtd.num_element_types(), 8);
        assert_eq!(
            dtd.content_model("section").unwrap().to_string(),
            "title, (text + section)*"
        );
        assert_eq!(dtd.attr_kind("section", "sid"), Some(AttrKind::Id));
        assert_eq!(dtd.attr_kind("ref", "to"), Some(AttrKind::IdRef));
        assert!(dtd.is_set_valued("ref", "to"));
        assert_eq!(dtd.attr_kind("entry", "isbn"), None);
        assert_eq!(dtd.content_model("ref").unwrap(), &ContentModel::Epsilon);
    }

    #[test]
    fn parses_the_paper_company_dtd() {
        let src = r#"
          <!ELEMENT db (person*, dept*)>
          <!ELEMENT person (name, address)>
          <!ELEMENT name (#PCDATA)> <!ELEMENT address (#PCDATA)>
          <!ELEMENT dname (#PCDATA)>
          <!ELEMENT dept (dname)>
          <!ATTLIST person oid ID #REQUIRED
                           in_dept IDREFS #IMPLIED>
          <!ATTLIST dept oid ID #REQUIRED
                         manager IDREF #REQUIRED
                         has_staff IDREFS #IMPLIED>
        "#;
        let dtd = parse_dtd(src, "db").unwrap();
        assert_eq!(dtd.id_attr("person").unwrap().as_str(), "oid");
        assert_eq!(dtd.attr_kind("dept", "manager"), Some(AttrKind::IdRef));
        assert!(dtd.is_single_valued("dept", "manager"));
        assert!(dtd.is_set_valued("dept", "has_staff"));
    }

    #[test]
    fn modifiers_desugar() {
        let dtd = parse_dtd(
            "<!ELEMENT a (b?, c+, (d | e)*)>
             <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>
             <!ELEMENT d EMPTY> <!ELEMENT e EMPTY>",
            "a",
        )
        .unwrap();
        assert_eq!(
            dtd.content_model("a").unwrap().to_string(),
            "(b + EMPTY), c, c*, (d + e)*"
        );
    }

    #[test]
    fn any_expands_over_all_types() {
        let dtd = parse_dtd("<!ELEMENT a ANY> <!ELEMENT b EMPTY>", "a").unwrap();
        let m = dtd.content_model("a").unwrap();
        use xic_regex::Symbol;
        // ANY accepts any mix of declared elements and text.
        assert!(xic_regex::Dfa::from_model(m).matches(&[
            Symbol::elem("b"),
            Symbol::S,
            Symbol::elem("a"),
        ]));
    }

    #[test]
    fn mixed_content_forms() {
        let dtd = parse_dtd(
            "<!ELEMENT a (#PCDATA | b)*> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)*>
             <!ELEMENT root (a, b, c)>",
            "root",
        )
        .unwrap();
        assert_eq!(dtd.content_model("a").unwrap().to_string(), "(S + b)*");
        assert_eq!(dtd.content_model("b").unwrap().to_string(), "S");
        assert_eq!(dtd.content_model("c").unwrap().to_string(), "S*");
    }

    #[test]
    fn attribute_types_and_defaults() {
        let dtd = parse_dtd(
            r#"<!ELEMENT a EMPTY>
               <!ATTLIST a w CDATA "dflt"
                           x NMTOKEN #IMPLIED
                           y NMTOKENS #IMPLIED
                           z (yes|no) #FIXED "yes">"#,
            "a",
        )
        .unwrap();
        assert!(dtd.is_single_valued("a", "w"));
        assert!(dtd.is_single_valued("a", "x"));
        assert!(dtd.is_set_valued("a", "y"));
        assert!(dtd.is_single_valued("a", "z"));
    }

    #[test]
    fn rejects_bad_dtds() {
        for src in [
            "<!ELEMENT a (b)>",                                 // undeclared b
            "<!ELEMENT a EMPTY> <!ATTLIST b x CDATA #IMPLIED>", // attlist on unknown
            "<!ELEMENT a (#PCDATA | b)>",                       // mixed without *
            "<!ELEMENT a >",
            "<!GARBAGE>",
            "<!ELEMENT a EMPTY> <!ATTLIST a x ID #REQUIRED y ID #REQUIRED>", // two IDs
        ] {
            assert!(parse_dtd(src, "a").is_err(), "should reject {src:?}");
        }
    }

    #[test]
    fn comments_and_entities_skipped() {
        let dtd = parse_dtd(
            "<!-- c --> <!ENTITY % x \"y\"> <!ELEMENT a EMPTY> <!-- d -->",
            "a",
        )
        .unwrap();
        assert_eq!(dtd.num_element_types(), 1);
    }
}
