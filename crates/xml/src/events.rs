//! SAX-style event parsing.
//!
//! [`EventParser`] lexes a document into a flat stream of
//! Open/Attr/Text/Close [`Event`]s without building a tree, which is what
//! lets the streaming validator run in O(depth) memory. It shares the
//! cursor, entity decoder and DOCTYPE machinery with the tree parser — in
//! fact [`parse_document`](crate::parse_document) is itself a consumer of
//! this stream, so the two paths cannot diverge on lexical questions
//! (whitespace dropping, CDATA, entity decoding, error positions).
//!
//! Event invariants, relied on by consumers:
//!
//! * events appear in document order; `Open`/`Close` nest properly and the
//!   stream ends exactly when the root closes (after trailing misc);
//! * all `Attr` events of an element immediately follow its `Open`;
//! * `Text` carries only non-ignorable character data: whitespace-only
//!   decoded runs are dropped, non-empty CDATA is kept verbatim;
//! * a self-closing `<a/>` yields `Open` (plus attributes) then `Close`.

use std::borrow::Cow;

use xic_constraints::DtdStructure;

use crate::parser::{decode_entities, find_terminated, parse_doctype, Cursor, XmlError, MAX_DEPTH};
use crate::scan;

/// One parse event. Borrowed slices point into the source text; attribute
/// and text values are borrowed too unless entity decoding forced a copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event<'s> {
    /// `<name` — an element opens. Offset is the byte position of `<`.
    Open {
        /// The element name.
        name: &'s str,
        /// Byte offset of the `<` of the start tag.
        offset: usize,
    },
    /// One attribute of the most recently opened element.
    Attr {
        /// The attribute name.
        name: &'s str,
        /// The decoded attribute value.
        value: Cow<'s, str>,
        /// Byte offset of the attribute name.
        offset: usize,
    },
    /// A non-ignorable character data run (decoded text or CDATA).
    Text {
        /// The decoded text.
        value: Cow<'s, str>,
        /// Byte offset of the start of the run.
        offset: usize,
    },
    /// `</name>` (or the implicit close of `<name/>`).
    Close {
        /// The element name (always equal to the matching `Open`'s).
        name: &'s str,
        /// Byte offset of the `</` (or of the `/>` for self-closing tags).
        offset: usize,
    },
}

/// Parses `src` as a stream of events; alias for [`EventParser::new`].
pub fn parse_events(src: &str) -> EventParser<'_> {
    EventParser::new(src)
}

enum State {
    /// Prolog not consumed yet (XML declaration, comments, DOCTYPE).
    Prolog,
    /// Prolog consumed, root start tag not seen yet.
    BeforeRoot,
    /// Inside a start tag, emitting `Attr` events.
    InTag,
    /// Inside element content.
    Content,
    /// Root closed; only trailing misc may remain.
    Epilog,
    /// Stream exhausted (successfully or after an error).
    Done,
}

/// A pull parser producing [`Event`]s.
///
/// ```
/// use xic_xml::{parse_events, Event};
/// let mut ev = parse_events("<a x=\"1\"><b/>hi</a>");
/// assert!(matches!(ev.next(), Some(Ok(Event::Open { name: "a", .. }))));
/// assert!(matches!(ev.next(), Some(Ok(Event::Attr { name: "x", .. }))));
/// assert!(matches!(ev.next(), Some(Ok(Event::Open { name: "b", .. }))));
/// assert!(matches!(ev.next(), Some(Ok(Event::Close { name: "b", .. }))));
/// assert!(matches!(ev.next(), Some(Ok(Event::Text { .. }))));
/// assert!(matches!(ev.next(), Some(Ok(Event::Close { name: "a", .. }))));
/// assert!(ev.next().is_none());
/// ```
pub struct EventParser<'s> {
    cur: Cursor<'s>,
    state: State,
    dtd: Option<DtdStructure>,
    /// Names of the currently open elements (the O(depth) stack).
    stack: Vec<&'s str>,
    /// Attribute names seen in the current start tag (duplicate detection).
    attrs_seen: Vec<&'s str>,
    stats: ParseStats,
}

/// Cheap per-parse counters, maintained unconditionally — each is a plain
/// integer increment on an already-taken branch, so there is no observable
/// cost and no collector dependency in this crate. Consumers that surface
/// metrics read them once via [`EventParser::stats`] after the parse.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Events produced so far (`Open`/`Attr`/`Text`/`Close`).
    pub events: u64,
    /// Text and attribute values whose entity decoding forced a copy
    /// (values containing at least one entity or character reference).
    pub entity_expansions: u64,
}

impl<'s> EventParser<'s> {
    /// A parser positioned at the start of `src`.
    pub fn new(src: &'s str) -> Self {
        EventParser {
            cur: Cursor::new(src),
            state: State::Prolog,
            dtd: None,
            stack: Vec::new(),
            attrs_seen: Vec::new(),
            stats: ParseStats::default(),
        }
    }

    /// Counters accumulated so far (final after the stream is exhausted).
    pub fn stats(&self) -> ParseStats {
        self.stats
    }

    /// Consumes the prolog (if not yet consumed) and returns the DTD from
    /// the `<!DOCTYPE … [ … ]>` internal subset, when present.
    pub fn dtd(&mut self) -> Result<Option<&DtdStructure>, XmlError> {
        self.ensure_prolog()?;
        Ok(self.dtd.as_ref())
    }

    /// Takes ownership of the internal-subset DTD (consuming the prolog
    /// first if necessary).
    pub fn take_dtd(&mut self) -> Result<Option<DtdStructure>, XmlError> {
        self.ensure_prolog()?;
        Ok(self.dtd.take())
    }

    /// Current byte offset into the source.
    pub fn offset(&self) -> usize {
        self.cur.pos
    }

    fn ensure_prolog(&mut self) -> Result<(), XmlError> {
        if !matches!(self.state, State::Prolog) {
            return Ok(());
        }
        loop {
            self.cur.skip_ws();
            if self.cur.skip_pi()? || self.cur.skip_comment()? {
                continue;
            }
            if self.cur.rest().starts_with("<!DOCTYPE") {
                self.dtd = Some(parse_doctype(&mut self.cur)?);
                continue;
            }
            break;
        }
        self.state = State::BeforeRoot;
        Ok(())
    }

    /// Lexes a start tag at the cursor (positioned at `<`). Emits `Open`.
    fn open_tag(&mut self) -> Result<Event<'s>, XmlError> {
        if self.stack.len() > MAX_DEPTH {
            return self.cur.err(format!(
                "element nesting exceeds the supported depth of {MAX_DEPTH}"
            ));
        }
        let offset = self.cur.pos;
        if !self.cur.eat("<") {
            return self.cur.err("expected an element start tag");
        }
        let name = self.cur.name()?;
        self.stack.push(name);
        self.attrs_seen.clear();
        self.state = State::InTag;
        Ok(Event::Open { name, offset })
    }

    /// One step inside a start tag: the next attribute, or tag end.
    fn in_tag(&mut self) -> Result<Option<Event<'s>>, XmlError> {
        self.cur.skip_ws();
        match self.cur.peek_byte() {
            Some(b'/') => {
                let offset = self.cur.pos;
                if !self.cur.eat("/>") {
                    return self.cur.err("expected '>'");
                }
                let name = self.stack.pop().expect("InTag implies an open element");
                self.state = if self.stack.is_empty() {
                    State::Epilog
                } else {
                    State::Content
                };
                Ok(Some(Event::Close { name, offset }))
            }
            Some(b'>') => {
                self.cur.pos += 1;
                self.state = State::Content;
                Ok(None)
            }
            Some(b)
                if scan::is_ascii_name_start(b)
                    || (b >= 0x80 && matches!(self.cur.peek(), Some(c) if c.is_alphabetic())) =>
            {
                let offset = self.cur.pos;
                let name = self.cur.name()?;
                if self.attrs_seen.contains(&name) {
                    return Err(XmlError::new(
                        format!("attribute error: attribute {name} set twice on one element"),
                        offset,
                    ));
                }
                self.attrs_seen.push(name);
                self.cur.skip_ws();
                if !self.cur.eat("=") {
                    return self.cur.err("expected '=' in attribute");
                }
                let value = parse_attr_value(&mut self.cur)?;
                Ok(Some(Event::Attr {
                    name,
                    value,
                    offset,
                }))
            }
            _ => self.cur.err("expected attribute or '>'"),
        }
    }

    /// One step inside element content; `None` means "consumed markup that
    /// produces no event, go around again".
    fn content(&mut self) -> Result<Option<Event<'s>>, XmlError> {
        let rest = self.cur.rest();
        if rest.starts_with("</") && !self.stack.is_empty() {
            let offset = self.cur.pos;
            self.cur.eat("</");
            let close = self.cur.name()?;
            let name = *self.stack.last().expect("checked non-empty");
            if close != name {
                return self.cur.err(format!(
                    "mismatched end tag: expected </{name}>, got </{close}>"
                ));
            }
            self.cur.skip_ws();
            if !self.cur.eat(">") {
                return self.cur.err("expected '>' in end tag");
            }
            self.stack.pop();
            if self.stack.is_empty() {
                self.state = State::Epilog;
            }
            return Ok(Some(Event::Close { name, offset }));
        }
        if self.cur.skip_comment()? || self.cur.skip_pi()? {
            return Ok(None);
        }
        if self.cur.eat("<![CDATA[") {
            let Some(end) = find_terminated(self.cur.bytes(), b']', b']', Some(b'>')) else {
                return self.cur.err("unterminated CDATA section");
            };
            let offset = self.cur.pos;
            let raw = &self.cur.rest()[..end];
            self.cur.pos += end + 3;
            if raw.is_empty() {
                return Ok(None);
            }
            return Ok(Some(Event::Text {
                value: Cow::Borrowed(raw),
                offset,
            }));
        }
        if rest.starts_with('<') {
            return self.open_tag().map(Some);
        }
        // Character data up to the next markup: one byte scan finds both
        // the terminating `<` and (en passant) whether entity decoding
        // will be needed, so clean text is borrowed without a second pass.
        let start = self.cur.pos;
        let bytes = self.cur.bytes();
        let first = scan::find_byte2(bytes, b'<', b'&');
        let (lt, has_amp) = match first {
            Some(i) if bytes[i] == b'<' => (i, false),
            Some(i) => match scan::find_byte(&bytes[i..], b'<') {
                Some(j) => (i + j, true),
                None => return self.cur.err("unterminated element (missing end tag)"),
            },
            None => return self.cur.err("unterminated element (missing end tag)"),
        };
        let raw = &self.cur.src[start..start + lt];
        self.cur.pos += lt;
        let text: Cow<'s, str> = if has_amp {
            Cow::Owned(decode_entities(raw, start)?)
        } else {
            Cow::Borrowed(raw)
        };
        if text.trim().is_empty() {
            return Ok(None);
        }
        Ok(Some(Event::Text {
            value: text,
            offset: start,
        }))
    }

    fn epilog(&mut self) -> Result<(), XmlError> {
        loop {
            self.cur.skip_ws();
            if self.cur.skip_pi()? || self.cur.skip_comment()? {
                continue;
            }
            break;
        }
        if !self.cur.rest().is_empty() {
            return self.cur.err("content after the root element");
        }
        self.state = State::Done;
        Ok(())
    }

    fn step(&mut self) -> Result<Option<Event<'s>>, XmlError> {
        loop {
            match self.state {
                State::Prolog => {
                    self.ensure_prolog()?;
                }
                State::BeforeRoot => {
                    // The prolog loop stops at the first non-misc token,
                    // which must be the root start tag.
                    if !self.cur.rest().starts_with('<') {
                        return self.cur.err("expected an element start tag");
                    }
                    return self.open_tag().map(Some);
                }
                State::InTag => {
                    if let Some(ev) = self.in_tag()? {
                        return Ok(Some(ev));
                    }
                }
                State::Content => {
                    if let Some(ev) = self.content()? {
                        return Ok(Some(ev));
                    }
                }
                State::Epilog => {
                    self.epilog()?;
                }
                State::Done => return Ok(None),
            }
        }
    }
}

impl<'s> Iterator for EventParser<'s> {
    type Item = Result<Event<'s>, XmlError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.step() {
            Ok(ev) => {
                if let Some(ev) = &ev {
                    self.stats.events += 1;
                    if matches!(
                        ev,
                        Event::Attr {
                            value: Cow::Owned(_),
                            ..
                        } | Event::Text {
                            value: Cow::Owned(_),
                            ..
                        }
                    ) {
                        self.stats.entity_expansions += 1;
                    }
                }
                ev.map(Ok)
            }
            Err(e) => {
                self.state = State::Done;
                Some(Err(e.locate(self.cur.src)))
            }
        }
    }
}

/// Lexes a quoted attribute value and decodes entities. Like text runs,
/// the value is scanned once: the closing quote and any `&` fall out of
/// the same byte pass.
fn parse_attr_value<'a>(cur: &mut Cursor<'a>) -> Result<Cow<'a, str>, XmlError> {
    cur.skip_ws();
    let quote = match cur.bump() {
        Some('"') => b'"',
        Some('\'') => b'\'',
        _ => return cur.err("expected quoted attribute value"),
    };
    let start = cur.pos;
    let bytes = cur.bytes();
    let first = scan::find_byte2(bytes, quote, b'&');
    let (end, has_amp) = match first {
        Some(i) if bytes[i] == quote => (i, false),
        Some(i) => match scan::find_byte(&bytes[i..], quote) {
            Some(j) => (i + j, true),
            None => return cur.err("unterminated attribute value"),
        },
        None => return cur.err("unterminated attribute value"),
    };
    let raw = &cur.src[start..start + end];
    cur.pos += end + 1;
    if has_amp {
        decode_entities(raw, start).map(Cow::Owned)
    } else {
        Ok(Cow::Borrowed(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event<'_>> {
        parse_events(src).collect::<Result<Vec<_>, _>>().unwrap()
    }

    fn texts(src: &str) -> Vec<String> {
        events(src)
            .into_iter()
            .filter_map(|e| match e {
                Event::Text { value, .. } => Some(value.into_owned()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn event_stream_shape_and_order() {
        let evs = events(r#"<a x="1" y="2"><b/>mid<c>t</c></a>"#);
        let shape: Vec<String> = evs
            .iter()
            .map(|e| match e {
                Event::Open { name, .. } => format!("<{name}"),
                Event::Attr { name, value, .. } => format!("@{name}={value}"),
                Event::Text { value, .. } => format!("'{value}'"),
                Event::Close { name, .. } => format!("</{name}"),
            })
            .collect();
        assert_eq!(
            shape,
            ["<a", "@x=1", "@y=2", "<b", "</b", "'mid'", "<c", "'t'", "</c", "</a"]
        );
    }

    #[test]
    fn cdata_runs_stay_separate_and_verbatim() {
        // Adjacent CDATA sections and text produce one Text event each,
        // CDATA kept verbatim (no entity decoding), empty CDATA dropped.
        let t = texts("<a>x &amp; y<![CDATA[<raw & stuff>]]><![CDATA[]]><![CDATA[ ]]></a>");
        assert_eq!(t, ["x & y", "<raw & stuff>", " "]);
    }

    #[test]
    fn cdata_may_contain_markupish_text_and_brackets() {
        let t = texts("<a><![CDATA[a]]b</a><c>]]></a>");
        assert_eq!(t, ["a]]b</a><c>"]);
        let e = parse_events("<a><![CDATA[never closed</a>")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(e.message.contains("unterminated CDATA"), "{e}");
    }

    #[test]
    fn entities_at_value_boundaries() {
        // References flush against the quotes / run edges decode correctly.
        let evs = events("<a x=\"&lt;mid&gt;\">&amp;start end&amp;</a>");
        match &evs[1] {
            Event::Attr { name, value, .. } => {
                assert_eq!(*name, "x");
                assert_eq!(value.as_ref(), "<mid>");
            }
            other => panic!("expected Attr, got {other:?}"),
        }
        assert_eq!(texts("<a>&amp;start end&amp;</a>"), ["&start end&"]);
        // A reference cut off by the end of its run is an error.
        let e = parse_events("<a>&amp</a>")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(e.message.contains("entity"), "{e}");
    }

    #[test]
    fn borrowed_unless_decoding_forces_a_copy() {
        let evs = events("<a x=\"plain\">plain &lt;coded&gt;</a>");
        let borrowed: Vec<bool> = evs
            .iter()
            .filter_map(|e| match e {
                Event::Attr { value, .. } | Event::Text { value, .. } => {
                    Some(matches!(value, Cow::Borrowed(_)))
                }
                _ => None,
            })
            .collect();
        assert_eq!(borrowed, [true, false]);
    }

    #[test]
    fn mismatched_and_stray_close_tags() {
        let e = parse_events("<a><b></c></b></a>")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(
            e.message.contains("expected </b>, got </c>"),
            "message: {}",
            e.message
        );
        assert!(e.line == 1 && e.col > 1, "{e}");
        // Interleaved (non-well-nested) tags report the inner expectation.
        let e = parse_events("<a><b></a></b>")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(e.message.contains("expected </b>, got </a>"), "{e}");
        // A close tag with no open element at all.
        assert!(parse_events("</a>").collect::<Result<Vec<_>, _>>().is_err());
    }

    #[test]
    fn duplicate_attributes_rejected_in_the_lexer() {
        let e = parse_events("<a x=\"1\" x=\"2\"/>")
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(e.message.contains("set twice"), "{e}");
    }

    #[test]
    fn self_closing_emits_open_then_close() {
        let evs = events("<a><b x=\"1\"/></a>");
        assert!(matches!(evs[1], Event::Open { name: "b", .. }));
        assert!(matches!(evs[2], Event::Attr { name: "x", .. }));
        assert!(matches!(evs[3], Event::Close { name: "b", .. }));
    }

    #[test]
    fn prolog_dtd_is_exposed_before_the_first_event() {
        let src = r#"<!DOCTYPE r [
  <!ELEMENT r EMPTY>
  <!ATTLIST r to IDREFS #IMPLIED>
]>
<r to="a b"/>"#;
        let mut ev = parse_events(src);
        let dtd = ev.dtd().unwrap().cloned().unwrap();
        assert!(dtd.is_set_valued("r", "to"));
        // The stream itself is unaffected by the dtd() call.
        assert!(matches!(ev.next(), Some(Ok(Event::Open { name: "r", .. }))));
    }

    #[test]
    fn depth_guard_matches_tree_parser() {
        let n = MAX_DEPTH + 2;
        let deep = format!("{}{}", "<a>".repeat(n), "</a>".repeat(n));
        let e = parse_events(&deep)
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        assert!(e.message.contains("depth"), "{e}");
        let ok = format!("{}{}", "<a>".repeat(MAX_DEPTH), "</a>".repeat(MAX_DEPTH));
        assert_eq!(
            events(&ok).len(),
            2 * MAX_DEPTH,
            "exactly MAX_DEPTH nesting is accepted"
        );
    }

    #[test]
    fn trailing_content_and_truncation_errors() {
        for (src, needle) in [
            ("<a></a><b/>", "content after the root"),
            ("<a>", "missing end tag"),
            ("<a", "expected attribute or '>'"),
            ("", "expected an element start tag"),
            ("just text", "expected an element start tag"),
        ] {
            let e = parse_events(src)
                .collect::<Result<Vec<_>, _>>()
                .unwrap_err();
            assert!(e.message.contains(needle), "{src:?}: {e}");
        }
    }

    #[test]
    fn iterator_fuses_after_an_error() {
        let mut ev = parse_events("<a></b>");
        assert!(matches!(ev.next(), Some(Ok(Event::Open { .. }))));
        assert!(matches!(ev.next(), Some(Err(_))));
        assert!(ev.next().is_none());
    }

    #[test]
    fn offsets_point_into_the_source() {
        let src = "<a>text<b/></a>";
        for e in events(src) {
            match e {
                Event::Open { name, offset } => {
                    assert!(src[offset..].starts_with(&format!("<{name}")))
                }
                Event::Text { offset, .. } => assert!(src[offset..].starts_with("text")),
                Event::Close { offset, .. } => {
                    assert!(src[offset..].starts_with("</") || src[offset..].starts_with("/>"))
                }
                Event::Attr { offset, name, .. } => assert!(src[offset..].starts_with(name)),
            }
        }
    }
}
