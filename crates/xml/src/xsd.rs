//! Interop with XML Schema identity constraints (`xs:key` / `xs:keyref`).
//!
//! The paper's key/foreign-key proposals predate and influenced XML
//! Schema's identity constraints. This module maps between the two — and
//! makes the *gap* precise:
//!
//! | `DTD^C` constraint | XML Schema |
//! |---|---|
//! | `τ[X] → τ` (key, `L`/`L_u`/`L_id`) | `xs:key` with selector `.//τ` and one field per component |
//! | `τ[X] ⊆ τ'[Y]` (foreign key) | `xs:keyref` referring to the target key |
//! | `τ.l ⊆ τ'.id` (`L_id` reference) | `xs:keyref` (the ID side exports as an `xs:key`) |
//! | `τ.id →_id τ` (object identity) | `xs:key` on the ID attribute (the *document-wide* scope of `→_id` is weakened to per-type — XML Schema selectors scope keys) |
//! | `τ.l ⊆_S τ'.l'` (set-valued FK) | **not expressible** — `xs:field` must select a single node |
//! | `τ(l_k).l ⇌ τ'(l'_k).l'` (inverse) | **not expressible** |
//!
//! [`constraints_to_xsd`] emits the expressible subset (returning the
//! remainder), and [`xsd_to_constraints`] reads the emitted subset back.

use std::fmt::Write as _;

use xic_constraints::{Constraint, DtdC, DtdStructure, Field, Language};
use xic_model::Name;

use crate::parser::{parse_document, XmlError};

/// Result of exporting a constraint set to XML Schema identity
/// constraints.
#[derive(Debug)]
pub struct XsdExport {
    /// The `<xs:key>`/`<xs:keyref>` declarations (to be placed under the
    /// root element declaration of a schema).
    pub xml: String,
    /// Constraints that XML Schema identity constraints cannot express
    /// (set-valued foreign keys and inverse constraints).
    pub unsupported: Vec<Constraint>,
}

fn field_xpath(f: &Field) -> String {
    match f {
        Field::Attr(l) => format!("@{l}"),
        Field::Sub(e) => e.to_string(),
    }
}

fn key_name(tau: &Name, fields: &[Field]) -> String {
    let mut s = format!("key_{tau}");
    for f in fields {
        s.push('_');
        s.push_str(f.name().as_str());
    }
    s
}

fn emit_identity(
    out: &mut String,
    kind: &str,
    name: &str,
    refer: Option<&str>,
    tau: &Name,
    fields: &[Field],
) {
    let refer_attr = refer.map(|r| format!(" refer=\"{r}\"")).unwrap_or_default();
    let _ = writeln!(out, "<xs:{kind} name=\"{name}\"{refer_attr}>");
    let _ = writeln!(out, "  <xs:selector xpath=\".//{tau}\"/>");
    for f in fields {
        let _ = writeln!(out, "  <xs:field xpath=\"{}\"/>", field_xpath(f));
    }
    let _ = writeln!(out, "</xs:{kind}>");
}

/// Exports `Σ` to XML Schema identity-constraint declarations.
///
/// Keys (including `L_id` ID constraints, weakened to per-type scope) come
/// out first so that every emitted `xs:keyref` can `refer` to one;
/// references to IDs synthesize the target's ID key if no explicit key was
/// exported for it. Inexpressible constraints are returned in
/// [`XsdExport::unsupported`].
pub fn constraints_to_xsd(dtdc: &DtdC) -> XsdExport {
    let s = dtdc.structure();
    let mut xml = String::new();
    let mut unsupported = Vec::new();
    let mut emitted_keys: Vec<(Name, Vec<Field>)> = Vec::new();

    let ensure_key = |xml: &mut String,
                      emitted: &mut Vec<(Name, Vec<Field>)>,
                      tau: &Name,
                      fields: &[Field]|
     -> String {
        let name = key_name(tau, fields);
        if !emitted.iter().any(|(t, fs)| t == tau && fs == fields) {
            emit_identity(xml, "key", &name, None, tau, fields);
            emitted.push((tau.clone(), fields.to_vec()));
        }
        name
    };

    // Pass 1: keys and ID constraints.
    for c in dtdc.constraints() {
        match c {
            Constraint::Key { tau, fields } => {
                ensure_key(&mut xml, &mut emitted_keys, tau, fields);
            }
            Constraint::Id { tau } => {
                let id_attr = s.id_attr(tau).cloned().unwrap_or_else(|| Name::new("id"));
                ensure_key(&mut xml, &mut emitted_keys, tau, &[Field::Attr(id_attr)]);
            }
            _ => {}
        }
    }
    // Pass 2: references.
    for c in dtdc.constraints() {
        match c {
            Constraint::Key { .. } | Constraint::Id { .. } => {}
            Constraint::ForeignKey {
                tau,
                fields,
                target,
                target_fields,
            } => {
                let refer = ensure_key(&mut xml, &mut emitted_keys, target, target_fields);
                let name = format!("ref_{tau}_{}", fields[0].name());
                emit_identity(&mut xml, "keyref", &name, Some(&refer), tau, fields);
            }
            Constraint::FkToId { tau, attr, target } => {
                let id_attr = s
                    .id_attr(target)
                    .cloned()
                    .unwrap_or_else(|| Name::new("id"));
                let refer =
                    ensure_key(&mut xml, &mut emitted_keys, target, &[Field::Attr(id_attr)]);
                let name = format!("ref_{tau}_{attr}");
                emit_identity(
                    &mut xml,
                    "keyref",
                    &name,
                    Some(&refer),
                    tau,
                    &[Field::Attr(attr.clone())],
                );
            }
            Constraint::SetForeignKey { .. }
            | Constraint::SetFkToId { .. }
            | Constraint::InverseU { .. }
            | Constraint::InverseId { .. } => unsupported.push(c.clone()),
        }
    }
    XsdExport { xml, unsupported }
}

/// Reads identity-constraint declarations (the subset emitted by
/// [`constraints_to_xsd`]) back into basic XML constraints.
///
/// `xs:key` becomes a key constraint; `xs:keyref` becomes a foreign key
/// against the referred key's type and fields. Field XPaths `@l` resolve
/// to attributes, bare names to sub-elements.
pub fn xsd_to_constraints(
    src: &str,
    _structure: &DtdStructure,
    _lang: Language,
) -> Result<Vec<Constraint>, XmlError> {
    // Wrap the declarations so they parse as one document.
    let doc = parse_document(&format!("<xs:schema>{src}</xs:schema>"))?;
    let tree = &doc.tree;
    let mut keys: Vec<(String, Name, Vec<Field>)> = Vec::new(); // (name, τ, fields)
    let mut out = Vec::new();

    let parse_decl =
        |id: xic_model::NodeId| -> Result<(String, Option<String>, Name, Vec<Field>), XmlError> {
            let node = tree.node(id);
            let name = node
                .attr("name")
                .and_then(|v| v.as_single())
                .cloned()
                .ok_or_else(|| XmlError::new("identity constraint without name", 0))?;
            let refer = node.attr("refer").and_then(|v| v.as_single()).cloned();
            let mut tau: Option<Name> = None;
            let mut fields = Vec::new();
            for c in node.child_nodes() {
                let child = tree.node(c);
                match child.label.as_str() {
                    "xs:selector" => {
                        let xpath = child
                            .attr("xpath")
                            .and_then(|v| v.as_single())
                            .cloned()
                            .unwrap_or_default();
                        let t = xpath
                            .trim_start_matches('.')
                            .trim_start_matches('/')
                            .trim_start_matches('/');
                        tau = Some(Name::new(t));
                    }
                    "xs:field" => {
                        let xpath = child
                            .attr("xpath")
                            .and_then(|v| v.as_single())
                            .cloned()
                            .unwrap_or_default();
                        fields.push(match xpath.strip_prefix('@') {
                            Some(a) => Field::attr(a),
                            None => Field::sub(xpath.as_str()),
                        });
                    }
                    _ => {}
                }
            }
            let tau =
                tau.ok_or_else(|| XmlError::new("identity constraint without selector", 0))?;
            Ok((name, refer, tau, fields))
        };

    // Keys first.
    for id in tree.node_ids() {
        if tree.label(id).as_str() == "xs:key" {
            let (name, _, tau, fields) = parse_decl(id)?;
            out.push(Constraint::Key {
                tau: tau.clone(),
                fields: {
                    let mut fs = fields.clone();
                    fs.sort();
                    fs.dedup();
                    fs
                },
            });
            keys.push((name, tau, fields));
        }
    }
    for id in tree.node_ids() {
        if tree.label(id).as_str() == "xs:keyref" {
            let (_, refer, tau, fields) = parse_decl(id)?;
            let refer = refer.ok_or_else(|| XmlError::new("xs:keyref without refer", 0))?;
            let (_, target, target_fields) = keys
                .iter()
                .find(|(n, _, _)| *n == refer)
                .ok_or_else(|| XmlError::new(format!("unknown key {refer:?}"), 0))?;
            out.push(Constraint::ForeignKey {
                tau,
                fields,
                target: target.clone(),
                target_fields: target_fields.clone(),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::examples::{book_dtdc, company_dtdc, publishers_dtdc};

    #[test]
    fn publishers_export_round_trips() {
        let d = publishers_dtdc();
        let export = constraints_to_xsd(&d);
        assert!(export.unsupported.is_empty(), "{:?}", export.unsupported);
        assert!(export.xml.contains("xs:key"));
        assert!(export.xml.contains("xs:keyref"));
        assert!(export.xml.contains(".//publisher"));
        assert!(export.xml.contains("@pname"));

        let back = xsd_to_constraints(&export.xml, d.structure(), Language::L).unwrap();
        // Both original keys, plus the FK (sequences preserved).
        assert!(back.contains(&Constraint::key("publisher", ["pname", "country"])));
        assert!(back.contains(&Constraint::key("editor", ["name"])));
        assert!(back.contains(&Constraint::fk(
            "editor",
            ["pname", "country"],
            "publisher",
            ["pname", "country"]
        )));
    }

    #[test]
    fn book_export_flags_set_valued_fk() {
        let d = book_dtdc();
        let export = constraints_to_xsd(&d);
        // entry.isbn and section.sid keys export; ref.to ⊆_S does not.
        assert!(export.xml.contains("key_entry_isbn"));
        assert!(export.xml.contains("key_section_sid"));
        assert_eq!(export.unsupported.len(), 1);
        assert!(matches!(
            export.unsupported[0],
            Constraint::SetForeignKey { .. }
        ));
    }

    #[test]
    fn company_export_weakens_ids_and_flags_inverse() {
        let d = company_dtdc();
        let export = constraints_to_xsd(&d);
        // ID constraints export as per-type keys on oid.
        assert!(export.xml.contains("key_person_oid"));
        assert!(export.xml.contains("key_dept_oid"));
        // manager ⊆ person.id exports as a keyref.
        assert!(export.xml.contains("ref_dept_manager"));
        assert!(export.xml.contains("refer=\"key_person_oid\""));
        // Sub-element keys use element-name field XPaths.
        assert!(export.xml.contains("<xs:field xpath=\"name\"/>"));
        // The set-valued references and the inverse are unsupported.
        assert_eq!(export.unsupported.len(), 3, "{:?}", export.unsupported);

        // The expressible subset round-trips.
        let back = xsd_to_constraints(&export.xml, d.structure(), Language::L).unwrap();
        assert!(back.contains(&Constraint::sub_key("person", "name")));
        assert!(back.iter().any(|c| matches!(
            c,
            Constraint::ForeignKey { tau, .. } if tau.as_str() == "dept"
        )));
    }

    #[test]
    fn keyrefs_synthesize_missing_target_keys() {
        // An FkToId whose Id key was not separately declared still gets a
        // referable xs:key.
        let d = DtdC::new_unchecked(
            xic_constraints::examples::company_structure(),
            Language::Lid,
            vec![Constraint::FkToId {
                tau: "dept".into(),
                attr: "manager".into(),
                target: "person".into(),
            }],
        );
        let export = constraints_to_xsd(&d);
        assert!(export.xml.contains("<xs:key name=\"key_person_oid\">"));
        assert!(export.xml.contains("refer=\"key_person_oid\""));
    }

    #[test]
    fn malformed_xsd_rejected() {
        let s = xic_constraints::examples::book_structure();
        for src in [
            "<xs:key><xs:selector xpath=\".//a\"/></xs:key>", // no name
            "<xs:key name=\"k\"><xs:field xpath=\"@x\"/></xs:key>", // no selector
            "<xs:keyref name=\"r\"><xs:selector xpath=\".//a\"/></xs:keyref>", // no refer
            "<xs:keyref name=\"r\" refer=\"ghost\"><xs:selector xpath=\".//a\"/></xs:keyref>",
        ] {
            assert!(
                xsd_to_constraints(src, &s, Language::L).is_err(),
                "should reject {src:?}"
            );
        }
    }
}
