//! # xic-xml — XML documents and DTDs, from scratch
//!
//! A self-contained parser and serializer for the fragment of XML 1.0 that
//! the paper's data model covers (elements, attributes, character data,
//! `<!ELEMENT>`/`<!ATTLIST>` declarations with `CDATA`/`ID`/`IDREF`/`IDREFS`
//! attribute types). Namespaces, general entities (beyond the five
//! predefined ones and character references), processing instructions and
//! external subsets are out of the paper's scope and are skipped or
//! rejected as noted on each function.
//!
//! * [`parse_document`] — XML text → [`xic_model::DataTree`] (plus the
//!   internal-subset DTD if a `<!DOCTYPE … [ … ]>` is present);
//! * [`parse_events`] — XML text → a SAX-style stream of
//!   Open/Attr/Text/Close [`Event`]s, sharing the same lexer, for
//!   consumers (like the streaming validator) that never build a tree;
//! * [`parse_dtd`] — DTD text → [`xic_constraints::DtdStructure`];
//! * [`serialize_document`] / [`serialize_dtd`] — the inverses; round-trips
//!   are exercised by tests.
//!
//! ### Whitespace and set-valued attributes
//!
//! Whitespace-only text between elements is dropped (it is "ignorable" for
//! element-content models); all other character data is preserved verbatim.
//! When a [`DtdStructure`](xic_constraints::DtdStructure) is available,
//! attributes it declares as set-valued (`S*`) are tokenized on whitespace
//! into value *sets*, matching XML's `IDREFS` convention; all other
//! attributes stay single-valued.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtd;
mod events;
mod parser;
mod scan;
mod serialize;
mod xsd;

pub use dtd::parse_dtd;
pub use events::{parse_events, Event, EventParser, ParseStats};
pub use parser::{parse_document, ParsedDocument, XmlError, MAX_DEPTH};
pub use serialize::{serialize_document, serialize_dtd};
pub use xsd::{constraints_to_xsd, xsd_to_constraints, XsdExport};
