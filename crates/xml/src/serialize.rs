//! Serializers: data trees → XML text, DTD structures → DTD text.

use std::fmt::Write as _;

use xic_constraints::{AttrKind, AttrType, DtdStructure};
use xic_model::{Child, DataTree, NodeId};

/// Escapes character data / attribute values.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Serializes a data tree as XML text.
///
/// Set-valued attributes are emitted as whitespace-joined tokens (the XML
/// `IDREFS` convention); the values themselves must then be
/// whitespace-free for a faithful round-trip, which holds for ID-style
/// values. Elements with no children are emitted self-closing. Output is
/// pretty-printed with two-space indentation except inside mixed content.
///
/// ```
/// use xic_model::{TreeBuilder, AttrValue};
/// use xic_xml::{serialize_document, parse_document};
/// let mut b = TreeBuilder::new();
/// let book = b.node("book");
/// let e = b.child_node(book, "entry").unwrap();
/// b.attr(e, "isbn", AttrValue::single("x")).unwrap();
/// let t = b.finish(book).unwrap();
/// let xml = serialize_document(&t);
/// let back = parse_document(&xml).unwrap();
/// assert_eq!(back.tree.len(), 2);
/// ```
pub fn serialize_document(tree: &DataTree) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), 0, &mut out);
    out
}

fn has_text_child(tree: &DataTree, id: NodeId) -> bool {
    tree.node(id)
        .children
        .iter()
        .any(|c| matches!(c, Child::Text(_)))
}

fn write_node(tree: &DataTree, id: NodeId, depth: usize, out: &mut String) {
    let node = tree.node(id);
    let pad = "  ".repeat(depth);
    let _ = write!(out, "{pad}<{}", node.label);
    for (name, value) in node.attrs() {
        let _ = write!(out, " {name}=\"");
        let mut first = true;
        for v in value.iter() {
            if !first {
                out.push(' ');
            }
            first = false;
            escape(v, out);
        }
        out.push('"');
    }
    if node.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    out.push('>');
    if has_text_child(tree, id) {
        // Mixed / text content: no pretty-printing inside.
        for c in &node.children {
            match c {
                Child::Text(t) => escape(t, out),
                Child::Node(n) => {
                    let mut inner = String::new();
                    write_node(tree, *n, 0, &mut inner);
                    out.push_str(inner.trim_end());
                }
            }
        }
        let _ = writeln!(out, "</{}>", node.label);
    } else {
        out.push('\n');
        for c in &node.children {
            if let Child::Node(n) = c {
                write_node(tree, *n, depth + 1, out);
            }
        }
        let _ = writeln!(out, "{pad}</{}>", node.label);
    }
}

/// Serializes a DTD structure as `<!ELEMENT>`/`<!ATTLIST>` declarations.
///
/// Content models print in DTD syntax (`|` for union, `EMPTY`, `(#PCDATA)`
/// for a single `S`); attribute kinds map back to `ID`/`IDREF`/`IDREFS`,
/// and unkinded attributes to `CDATA`/`NMTOKENS`. Everything is declared
/// `#IMPLIED` except `ID` attributes, which XML requires on every element
/// (`#REQUIRED`).
pub fn serialize_dtd(dtd: &DtdStructure) -> String {
    let mut out = String::new();
    for tau in dtd.element_types() {
        let m = dtd.content_model(tau).expect("declared element");
        let _ = writeln!(out, "<!ELEMENT {tau} {}>", dtd_content(m));
    }
    for tau in dtd.element_types() {
        let attrs: Vec<_> = dtd.attributes(tau).collect();
        if attrs.is_empty() {
            continue;
        }
        let _ = write!(out, "<!ATTLIST {tau}");
        for (l, ty) in attrs {
            let (tyname, default) = match (dtd.attr_kind(tau, l), ty) {
                (Some(AttrKind::Id), _) => ("ID", "#REQUIRED"),
                (Some(AttrKind::IdRef), AttrType::Single) => ("IDREF", "#IMPLIED"),
                (Some(AttrKind::IdRef), AttrType::SetValued) => ("IDREFS", "#IMPLIED"),
                (None, AttrType::Single) => ("CDATA", "#IMPLIED"),
                (None, AttrType::SetValued) => ("NMTOKENS", "#IMPLIED"),
            };
            let _ = write!(out, " {l} {tyname} {default}");
        }
        let _ = writeln!(out, ">");
    }
    out
}

/// Prints a content model in DTD syntax.
fn dtd_content(m: &xic_regex::ContentModel) -> String {
    use xic_regex::ContentModel as M;
    fn go(m: &M, prec: u8, out: &mut String) {
        match m {
            M::S => out.push_str("#PCDATA"),
            M::Elem(n) => out.push_str(n.as_str()),
            M::Epsilon => out.push_str("EMPTY"),
            M::Alt(a, b) => {
                let wrap = prec > 0;
                if wrap {
                    out.push('(');
                }
                go(a, 0, out);
                out.push_str(" | ");
                go(b, 0, out);
                if wrap {
                    out.push(')');
                }
            }
            M::Seq(a, b) => {
                let wrap = prec > 1;
                if wrap {
                    out.push('(');
                }
                go(a, 1, out);
                out.push_str(", ");
                go(b, 1, out);
                if wrap {
                    out.push(')');
                }
            }
            M::Star(a) => {
                go(a, 2, out);
                out.push('*');
            }
        }
    }
    // Mixed content must print `#PCDATA` first — XML's grammar (and our
    // parser) reject it elsewhere in the alternation.
    if let M::Star(inner) = m {
        if let Some(s) = mixed_content(inner) {
            return s;
        }
    }
    match m {
        // Top-level forms XML requires parenthesized or bare.
        M::Epsilon => "EMPTY".to_string(),
        M::S => "(#PCDATA)".to_string(),
        _ => {
            let mut s = String::new();
            go(m, 2, &mut s);
            if s.starts_with('(') {
                s
            } else {
                format!("({s})")
            }
        }
    }
}

/// `(#PCDATA | a | b)*` for a starred alternation of leaves that includes
/// `S` (also covering `S*` as `(#PCDATA)*`); `None` when the starred body
/// is not DTD mixed content. The parse-back is `(S + a + b)*` — `#PCDATA`
/// moves to the front, which preserves the language.
fn mixed_content(inner: &xic_regex::ContentModel) -> Option<String> {
    use xic_regex::ContentModel as M;
    fn leaves<'m>(m: &'m M, out: &mut Vec<&'m M>) -> bool {
        match m {
            M::Alt(a, b) => leaves(a, out) && leaves(b, out),
            M::S | M::Elem(_) => {
                out.push(m);
                true
            }
            _ => false,
        }
    }
    let mut ls = Vec::new();
    if !leaves(inner, &mut ls) || !ls.iter().any(|m| matches!(m, M::S)) {
        return None;
    }
    let mut s = String::from("(#PCDATA");
    for l in ls {
        if let M::Elem(n) = l {
            s.push_str(" | ");
            s.push_str(n.as_str());
        }
    }
    s.push_str(")*");
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;
    use crate::parse_dtd;
    use xic_model::{AttrValue, TreeBuilder};

    fn book_tree() -> DataTree {
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        let entry = b.child_node(book, "entry").unwrap();
        b.attr(entry, "isbn", AttrValue::single("1-55860-622-X"))
            .unwrap();
        b.leaf(entry, "title", "Data on the Web").unwrap();
        b.leaf(entry, "publisher", "Morgan Kaufmann").unwrap();
        b.leaf(book, "author", "Abiteboul").unwrap();
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["1-55860-622-X", "0-201"]))
            .unwrap();
        b.finish(book).unwrap()
    }

    #[test]
    fn document_round_trip_without_dtd() {
        let t = book_tree();
        let xml = serialize_document(&t);
        let back = parse_document(&xml).unwrap().tree;
        assert_eq!(back.len(), t.len());
        let e = back.ext("entry").next().unwrap();
        assert_eq!(
            back.attr(e, "isbn").unwrap().as_single().unwrap(),
            "1-55860-622-X"
        );
        // Without a DTD the IDREFS attribute reads back as one token string.
        let r = back.ext("ref").next().unwrap();
        assert_eq!(
            back.attr(r, "to").unwrap().as_single().unwrap(),
            "0-201 1-55860-622-X"
        );
    }

    #[test]
    fn document_round_trip_with_dtd_preserves_sets() {
        let t = book_tree();
        let dtd = parse_dtd(
            "<!ELEMENT book (entry, author*, ref)>
             <!ELEMENT entry (title, publisher)>
             <!ELEMENT title (#PCDATA)> <!ELEMENT publisher (#PCDATA)>
             <!ELEMENT author (#PCDATA)> <!ELEMENT ref EMPTY>
             <!ATTLIST entry isbn CDATA #REQUIRED>
             <!ATTLIST ref to IDREFS #IMPLIED>",
            "book",
        )
        .unwrap();
        let xml = format!(
            "<!DOCTYPE book [\n{}]>\n{}",
            serialize_dtd(&dtd),
            serialize_document(&t)
        );
        let back = parse_document(&xml).unwrap();
        let bt = back.tree;
        let r = bt.ext("ref").next().unwrap();
        let to = bt.attr(r, "to").unwrap();
        assert_eq!(to.len(), 2);
        assert!(to.contains("0-201"));
    }

    #[test]
    fn escaping_round_trips() {
        let mut b = TreeBuilder::new();
        let a = b.node("a");
        b.attr(a, "x", AttrValue::single("a<b>&\"c")).unwrap();
        b.text(a, "1 < 2 & 3 > 2 \"q\"").unwrap();
        let t = b.finish(a).unwrap();
        let xml = serialize_document(&t);
        let back = parse_document(&xml).unwrap().tree;
        assert_eq!(
            back.attr(back.root(), "x").unwrap().as_single().unwrap(),
            "a<b>&\"c"
        );
        assert_eq!(back.node(back.root()).text(), "1 < 2 & 3 > 2 \"q\"");
    }

    #[test]
    fn dtd_round_trip() {
        let src = "<!ELEMENT book (entry, author*, section*, ref)>
             <!ELEMENT entry (title, publisher)>
             <!ELEMENT title (#PCDATA)> <!ELEMENT publisher (#PCDATA)>
             <!ELEMENT author (#PCDATA)> <!ELEMENT text (#PCDATA)>
             <!ELEMENT section (title, (text | section)*)>
             <!ELEMENT ref EMPTY>
             <!ATTLIST entry isbn CDATA #REQUIRED>
             <!ATTLIST section sid ID #REQUIRED>
             <!ATTLIST ref to IDREFS #IMPLIED>";
        let dtd = parse_dtd(src, "book").unwrap();
        let printed = serialize_dtd(&dtd);
        let again = parse_dtd(&printed, "book").unwrap();
        for tau in ["book", "entry", "section", "ref", "title"] {
            assert_eq!(
                dtd.content_model(tau).unwrap(),
                again.content_model(tau).unwrap(),
                "content model of {tau} through:\n{printed}"
            );
        }
        assert_eq!(again.attr_kind("section", "sid"), Some(AttrKind::Id));
        assert_eq!(again.attr_kind("ref", "to"), Some(AttrKind::IdRef));
        assert!(again.is_set_valued("ref", "to"));
    }

    #[test]
    fn mixed_and_starred_pcdata_models_round_trip() {
        // Builder-made structures can hold `S` anywhere in an alternation
        // (e.g. `(e0 + e1 + S)*`) and bare `S*`; both must print in the
        // `#PCDATA`-first form our parser (and XML) accept.
        let dtd = xic_constraints::DtdStructure::builder("a")
            .elem("a", "(b + c + S)*")
            .elem("b", "S*")
            .elem("c", "S")
            .build()
            .unwrap();
        let printed = serialize_dtd(&dtd);
        assert!(
            printed.contains("<!ELEMENT a (#PCDATA | b | c)*>"),
            "{printed}"
        );
        assert!(printed.contains("<!ELEMENT b (#PCDATA)*>"), "{printed}");
        let again = parse_dtd(&printed, "a").unwrap();
        assert_eq!(
            again.content_model("a").unwrap().to_string(),
            "(S + b + c)*"
        );
        assert_eq!(again.content_model("b").unwrap().to_string(), "S*");
        assert_eq!(
            again.content_model("c").unwrap(),
            dtd.content_model("c").unwrap()
        );
    }

    #[test]
    fn pretty_printing_indents_element_content() {
        let t = book_tree();
        let xml = serialize_document(&t);
        assert!(xml.contains("\n  <entry"));
        assert!(xml.contains("    <title>Data on the Web</title>"));
        assert!(xml.contains("<ref to=\"0-201 1-55860-622-X\"/>"));
    }
}
