//! The write-ahead log of edit batches.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"XICW"
//! version u32                        (currently 2)
//! record*:
//!   len     u64                      payload byte length
//!   seq     u64                      batch sequence number (strictly increasing)
//!   crc     u32                      CRC-32 of seq (8 LE bytes) ++ payload
//!   payload len bytes                (one encoded `Vec<BatchEdit>`)
//! ```
//!
//! Callers append a batch *before* applying it to the live validator, so
//! after a crash the log replays every batch the daemon acknowledged.
//! On open, the tail is scanned: a record cut short by a crash (the file
//! ends inside its header or payload) is a *torn write* and is truncated
//! away; a record that is fully present but fails its checksum is
//! *corruption* and surfaces as a clean error — it is never truncated
//! silently, and never deserialized.
//!
//! The **sequence number** ties the log to its snapshot. Every record
//! carries the monotonic sequence the batch was acknowledged under, and a
//! snapshot stores the sequence of the last batch it captures. Recovery
//! ([`crate::DocStore::load`]) replays only records *above* the
//! snapshot's sequence — so a crash between publishing a snapshot and
//! emptying the log it subsumes leaves stale records that are skipped,
//! never replayed a second time onto state that already contains them.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use xic_validate::BatchEdit;

use crate::codec::{dec_batch, enc_batch, Dec, Enc};
use crate::crc::crc32;
use crate::StorageError;

/// The WAL file magic.
pub const WAL_MAGIC: [u8; 4] = *b"XICW";
/// The current WAL format version.
pub const WAL_VERSION: u32 = 2;

const HEADER_LEN: u64 = 8;
const RECORD_HEADER_LEN: u64 = 20;

/// When appends reach the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: an acknowledged edit survives
    /// power loss. This is the safe default.
    Always,
    /// Leave flushing to the OS page cache: an acknowledged edit survives
    /// a process crash but may be lost on power loss. The torn-tail scan
    /// still recovers the longest durable prefix.
    Never,
}

impl FsyncPolicy {
    /// Parses `always` / `never` (as accepted by `--fsync`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => Err(format!("unknown fsync policy '{s}' (use always|never)")),
        }
    }
}

/// A position in a [`Wal`], captured by [`Wal::mark`] before an append so
/// [`Wal::rollback`] can undo it when the batch fails to apply.
#[derive(Clone, Copy, Debug)]
pub struct WalMark {
    len: u64,
    records: u64,
    next_seq: u64,
}

/// The intact `(sequence, batch)` records [`Wal::open`] replayed from
/// disk, in append order.
pub type ReplayedBatches = Vec<(u64, Vec<BatchEdit>)>;

/// An open write-ahead log, positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    /// Byte length of the valid prefix (header + intact records).
    len: u64,
    /// Number of intact records currently in the log.
    records: u64,
    /// The sequence number the next appended record is stamped with.
    /// Strictly greater than every sequence already in the log, and — once
    /// [`Wal::skip_to`] has applied the owning snapshot's last sequence —
    /// than every batch a snapshot has already captured.
    next_seq: u64,
}

fn io_err(context: String) -> impl FnOnce(std::io::Error) -> StorageError {
    move |source| StorageError::Io { context, source }
}

impl Wal {
    /// Opens (or creates) the log at `path` and replays its records.
    ///
    /// Returns the log positioned for appending plus every intact
    /// `(sequence, batch)` in append order. A torn final record — the file
    /// ends inside it — is truncated away; a complete record failing its
    /// checksum, a bad header, a non-increasing sequence number, or a
    /// malformed payload is a clean error.
    pub fn open(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> Result<(Wal, ReplayedBatches), StorageError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err(format!("open {}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(io_err(format!("read {}", path.display())))?;

        if bytes.is_empty() {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(&WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            file.write_all(&header)
                .map_err(io_err(format!("write header of {}", path.display())))?;
            if policy == FsyncPolicy::Always {
                file.sync_all()
                    .map_err(io_err(format!("sync {}", path.display())))?;
            }
            return Ok((
                Wal {
                    file,
                    path,
                    policy,
                    len: HEADER_LEN,
                    records: 0,
                    next_seq: 1,
                },
                Vec::new(),
            ));
        }
        if bytes.len() < HEADER_LEN as usize || bytes[..4] != WAL_MAGIC {
            return Err(StorageError::Format {
                detail: format!("{}: bad magic (not a WAL file)", path.display()),
            });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(StorageError::Format {
                detail: format!(
                    "{}: WAL version {version} (this build reads {WAL_VERSION})",
                    path.display()
                ),
            });
        }

        let mut batches: Vec<(u64, Vec<BatchEdit>)> = Vec::new();
        let mut pos = HEADER_LEN as usize;
        let mut last_seq = 0u64;
        let mut torn = false;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < RECORD_HEADER_LEN as usize {
                torn = true; // record header cut short
                break;
            }
            let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            let seq_bytes: [u8; 8] = bytes[pos + 8..pos + 16].try_into().unwrap();
            let seq = u64::from_le_bytes(seq_bytes);
            let crc = u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().unwrap());
            let body = pos + RECORD_HEADER_LEN as usize;
            let Some(end) = (body as u64)
                .checked_add(len)
                .filter(|&e| e <= bytes.len() as u64)
            else {
                torn = true; // payload cut short
                break;
            };
            let payload = &bytes[body..end as usize];
            if record_crc(&seq_bytes, payload) != crc {
                return Err(StorageError::Corrupt {
                    detail: format!(
                        "{}: record {} fails its checksum",
                        path.display(),
                        batches.len()
                    ),
                });
            }
            if seq <= last_seq {
                return Err(StorageError::Corrupt {
                    detail: format!(
                        "{}: record {} has sequence {seq}, not above its predecessor's {last_seq}",
                        path.display(),
                        batches.len()
                    ),
                });
            }
            let mut d = Dec::new(payload, "wal record");
            let batch = dec_batch(&mut d)?;
            if !d.is_empty() {
                return Err(StorageError::Corrupt {
                    detail: format!(
                        "{}: record {} has trailing bytes",
                        path.display(),
                        batches.len()
                    ),
                });
            }
            batches.push((seq, batch));
            last_seq = seq;
            pos = end as usize;
        }
        if torn {
            file.set_len(pos as u64)
                .map_err(io_err(format!("truncate torn tail of {}", path.display())))?;
        }
        file.seek(SeekFrom::Start(pos as u64))
            .map_err(io_err(format!("seek {}", path.display())))?;
        let records = batches.len() as u64;
        Ok((
            Wal {
                file,
                path,
                policy,
                len: pos as u64,
                records,
                next_seq: last_seq + 1,
            },
            batches,
        ))
    }

    /// Appends one batch as a checksummed record, honouring the fsync
    /// policy, and returns the sequence number it was stamped with. Call
    /// this *before* applying the batch to the validator.
    pub fn append(&mut self, batch: &[BatchEdit]) -> Result<u64, StorageError> {
        let mut payload = Enc::default();
        enc_batch(&mut payload, batch);
        let seq = self.next_seq;
        let seq_bytes = seq.to_le_bytes();
        let mut rec = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.buf.len());
        rec.extend_from_slice(&(payload.buf.len() as u64).to_le_bytes());
        rec.extend_from_slice(&seq_bytes);
        rec.extend_from_slice(&record_crc(&seq_bytes, &payload.buf).to_le_bytes());
        rec.extend_from_slice(&payload.buf);
        self.file
            .write_all(&rec)
            .map_err(io_err(format!("append to {}", self.path.display())))?;
        if self.policy == FsyncPolicy::Always {
            self.file
                .sync_all()
                .map_err(io_err(format!("sync {}", self.path.display())))?;
        }
        self.len += rec.len() as u64;
        self.records += 1;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// The current end-of-log position, for [`Wal::rollback`].
    pub fn mark(&self) -> WalMark {
        WalMark {
            len: self.len,
            records: self.records,
            next_seq: self.next_seq,
        }
    }

    /// Truncates the log back to `mark` — the undo for appends whose
    /// batches then failed to apply, keeping the log (and its sequence
    /// counter) in lockstep with the validator. `mark` must come from this
    /// log's [`Wal::mark`], at or before the current end.
    pub fn rollback(&mut self, mark: WalMark) -> Result<(), StorageError> {
        if mark.len > self.len || mark.records > self.records {
            return Err(StorageError::Corrupt {
                detail: format!(
                    "{}: rollback mark is past the end of the log",
                    self.path.display()
                ),
            });
        }
        self.file
            .set_len(mark.len)
            .map_err(io_err(format!("truncate {}", self.path.display())))?;
        self.file
            .seek(SeekFrom::Start(mark.len))
            .map_err(io_err(format!("seek {}", self.path.display())))?;
        if self.policy == FsyncPolicy::Always {
            self.file
                .sync_all()
                .map_err(io_err(format!("sync {}", self.path.display())))?;
        }
        self.len = mark.len;
        self.records = mark.records;
        self.next_seq = mark.next_seq;
        Ok(())
    }

    /// Discards every record (after a successful snapshot has made them
    /// redundant), leaving an empty log. The sequence counter is *not*
    /// rewound: later appends stay above every sequence the snapshot has
    /// captured, so a record can never be mistaken for un-snapshotted work.
    pub fn reset(&mut self) -> Result<(), StorageError> {
        self.file
            .set_len(HEADER_LEN)
            .map_err(io_err(format!("truncate {}", self.path.display())))?;
        self.file
            .seek(SeekFrom::Start(HEADER_LEN))
            .map_err(io_err(format!("seek {}", self.path.display())))?;
        if self.policy == FsyncPolicy::Always {
            self.file
                .sync_all()
                .map_err(io_err(format!("sync {}", self.path.display())))?;
        }
        self.len = HEADER_LEN;
        self.records = 0;
        Ok(())
    }

    /// The sequence number of the most recently acknowledged batch: what a
    /// snapshot of the current validator state must record as its last
    /// applied sequence. Zero when nothing has ever been appended (or
    /// skipped to).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Raises the sequence counter past `last_applied` (the owning
    /// snapshot's last captured sequence), so the next append is stamped
    /// above every batch that snapshot subsumes. Never lowers it.
    pub fn skip_to(&mut self, last_applied: u64) {
        self.next_seq = self.next_seq.max(last_applied + 1);
    }

    /// Number of intact records currently in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Byte length of the log's valid prefix.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True iff the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A record's checksum covers its sequence number as well as its payload,
/// so a flipped sequence is caught by the CRC before the monotonicity
/// check ever sees it.
fn record_crc(seq_bytes: &[u8; 8], payload: &[u8]) -> u32 {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(seq_bytes);
    buf.extend_from_slice(payload);
    crc32(&buf)
}
