//! Little-endian binary codecs for the model and validator types.
//!
//! The encoding is deliberately plain: fixed-width integers, u64 length
//! prefixes, and tag bytes for enums, all little-endian. Every decode
//! validates lengths against the remaining input *before* allocating, so
//! corrupted length fields produce a clean [`StorageError::Corrupt`]
//! instead of an allocation panic.

use xic_constraints::Field;
use xic_model::{AttrValue, Child, DataTree, Name, NodeId, RawNode, Sym};
use xic_validate::{BatchEdit, LiveState, Violation};

use crate::StorageError;

/// An append-only encode buffer.
#[derive(Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.len(v.len());
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// A bounds-checked decode cursor over one buffer.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    /// What is being decoded, for error messages ("snapshot", "wal record").
    what: &'static str,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8], what: &'static str) -> Self {
        Dec { buf, pos: 0, what }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn corrupt<T>(&self, detail: &str) -> Result<T, StorageError> {
        Err(StorageError::Corrupt {
            detail: format!("{}: {} at byte {}", self.what, detail, self.pos),
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.buf.len() - self.pos < n {
            return self.corrupt("input ends early");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// A raw sub-slice of exactly `n` bytes (a section payload).
    pub(crate) fn section(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        self.take(n)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A u64 length prefix, validated to fit in the remaining input when
    /// each element occupies at least `min_elem` bytes (pass 0 to skip the
    /// occupancy check, e.g. for element counts of variable-size records).
    pub(crate) fn len(&mut self, min_elem: usize) -> Result<usize, StorageError> {
        let n = self.u64()?;
        let Ok(n) = usize::try_from(n) else {
            return self.corrupt("length does not fit this platform");
        };
        if min_elem > 0 && n > (self.buf.len() - self.pos) / min_elem {
            return self.corrupt("length exceeds remaining input");
        }
        Ok(n)
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], StorageError> {
        let n = self.len(1)?;
        self.take(n)
    }

    pub(crate) fn str(&mut self) -> Result<&'a str, StorageError> {
        let pos = self.pos;
        match std::str::from_utf8(self.bytes()?) {
            Ok(s) => Ok(s),
            Err(_) => {
                self.pos = pos;
                self.corrupt("string is not valid UTF-8")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar wrappers.

fn enc_opt_u32(e: &mut Enc, v: Option<u32>) {
    // 0 = absent, else value + 1 — mirrors the `NonZeroU32` niche the
    // in-memory types use.
    e.u32(match v {
        None => 0,
        Some(x) => x
            .checked_add(1)
            .expect("index + 1 fits u32 (enforced at interning/build time)"),
    });
}

fn dec_opt_u32(d: &mut Dec<'_>) -> Result<Option<u32>, StorageError> {
    Ok(match d.u32()? {
        0 => None,
        x => Some(x - 1),
    })
}

pub(crate) fn enc_sym(e: &mut Enc, s: Sym) {
    e.u32(s.index() as u32);
}

pub(crate) fn dec_sym(d: &mut Dec<'_>) -> Result<Sym, StorageError> {
    let index = d.u32()?;
    // u32::MAX is the one index `Sym` cannot represent (index + 1 must be
    // non-zero); constructing it would panic, and decoding never panics.
    if index == u32::MAX {
        return Err(StorageError::Corrupt {
            detail: "symbol index is the reserved sentinel u32::MAX".into(),
        });
    }
    Ok(Sym::from_index(index))
}

fn enc_node_id(e: &mut Enc, n: NodeId) {
    e.u32(n.index() as u32);
}

fn dec_node_id(d: &mut Dec<'_>) -> Result<NodeId, StorageError> {
    Ok(NodeId::from_index(d.u32()? as usize))
}

fn enc_attr_value(e: &mut Enc, v: &AttrValue) {
    e.len(v.values().len());
    for m in v.values() {
        e.str(m);
    }
}

fn dec_attr_value(d: &mut Dec<'_>) -> Result<AttrValue, StorageError> {
    let n = d.len(8)?;
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        members.push(d.str()?.to_string());
    }
    Ok(AttrValue::set(members))
}

// ---------------------------------------------------------------------------
// Trees.

pub(crate) fn enc_tree(e: &mut Enc, t: &DataTree) {
    let (nodes, root, dead) = t.raw_parts();
    e.len(nodes.len());
    e.u32(root.index() as u32);
    e.u8(if dead.is_empty() { 0 } else { 1 });
    if !dead.is_empty() {
        let mut bits = vec![0u8; nodes.len().div_ceil(8)];
        for (i, &flag) in dead.iter().enumerate() {
            if flag {
                bits[i / 8] |= 1 << (i % 8);
            }
        }
        e.buf.extend_from_slice(&bits);
    }
    for node in &nodes {
        e.str(&node.label);
        enc_opt_u32(e, node.parent.map(|p| p.index() as u32));
        e.len(node.children.len());
        for c in &node.children {
            match c {
                Child::Text(t) => {
                    e.u8(0);
                    e.str(t);
                }
                Child::Node(n) => {
                    e.u8(1);
                    enc_node_id(e, *n);
                }
            }
        }
        e.len(node.attrs.len());
        for (name, val) in &node.attrs {
            e.str(name);
            enc_attr_value(e, val);
        }
    }
}

/// Reuses one [`Name`] per distinct spelling while decoding a tree:
/// element labels and attribute names repeat across every vertex, and a
/// refcount bump is far cheaper than allocating a fresh `Arc<str>` for
/// each of a million nodes.
#[derive(Default)]
struct NameCache<'a> {
    seen: std::collections::HashMap<&'a str, Name>,
}

impl<'a> NameCache<'a> {
    fn get(&mut self, s: &'a str) -> Name {
        self.seen.entry(s).or_insert_with(|| Name::new(s)).clone()
    }
}

pub(crate) fn dec_tree(d: &mut Dec<'_>) -> Result<DataTree, StorageError> {
    let n = d.len(1)?;
    let root = NodeId::from_index(d.u32()? as usize);
    let dead = if d.u8()? != 0 {
        let bits = d.take(n.div_ceil(8))?;
        (0..n).map(|i| bits[i / 8] & (1 << (i % 8)) != 0).collect()
    } else {
        Vec::new()
    };
    let mut names = NameCache::default();
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let label = names.get(d.str()?);
        let parent = dec_opt_u32(d)?.map(|p| NodeId::from_index(p as usize));
        let nchildren = d.len(1)?;
        let mut children = Vec::with_capacity(nchildren);
        for _ in 0..nchildren {
            children.push(match d.u8()? {
                0 => Child::Text(d.str()?.to_string()),
                1 => Child::Node(dec_node_id(d)?),
                t => {
                    return Err(StorageError::Corrupt {
                        detail: format!("tree: unknown child tag {t}"),
                    })
                }
            });
        }
        let nattrs = d.len(8)?;
        let mut attrs = Vec::with_capacity(nattrs);
        for _ in 0..nattrs {
            let name = names.get(d.str()?);
            attrs.push((name, dec_attr_value(d)?));
        }
        nodes.push(RawNode {
            label,
            children,
            attrs,
            parent,
        });
    }
    DataTree::from_raw_parts(nodes, root, dead).map_err(|e| StorageError::Corrupt {
        detail: format!("tree: decoded parts are inconsistent: {e}"),
    })
}

// ---------------------------------------------------------------------------
// Constraint fields and violations.

fn enc_field(e: &mut Enc, f: &Field) {
    match f {
        Field::Attr(n) => {
            e.u8(0);
            e.str(n);
        }
        Field::Sub(n) => {
            e.u8(1);
            e.str(n);
        }
    }
}

fn dec_field(d: &mut Dec<'_>) -> Result<Field, StorageError> {
    let tag = d.u8()?;
    let name = Name::new(d.str()?);
    match tag {
        0 => Ok(Field::Attr(name)),
        1 => Ok(Field::Sub(name)),
        t => Err(StorageError::Corrupt {
            detail: format!("field: unknown tag {t}"),
        }),
    }
}

fn enc_violation(e: &mut Enc, v: &Violation) {
    match v {
        Violation::RootLabel { expected, found } => {
            e.u8(0);
            e.str(expected);
            e.str(found);
        }
        Violation::UnknownElementType { node, label } => {
            e.u8(1);
            enc_node_id(e, *node);
            e.str(label);
        }
        Violation::ContentModel {
            node,
            tau,
            expected,
            found,
        } => {
            e.u8(2);
            enc_node_id(e, *node);
            e.str(tau);
            e.str(expected);
            e.str(found);
        }
        Violation::UndeclaredAttribute { node, attr } => {
            e.u8(3);
            enc_node_id(e, *node);
            e.str(attr);
        }
        Violation::MissingAttribute { node, attr } => {
            e.u8(4);
            enc_node_id(e, *node);
            e.str(attr);
        }
        Violation::NotSingleton { node, attr, len } => {
            e.u8(5);
            enc_node_id(e, *node);
            e.str(attr);
            e.len(*len);
        }
        Violation::Key {
            constraint,
            a,
            b,
            value,
        } => {
            e.u8(6);
            e.str(constraint);
            enc_node_id(e, *a);
            enc_node_id(e, *b);
            e.str(value);
        }
        Violation::ForeignKey {
            constraint,
            node,
            value,
        } => {
            e.u8(7);
            e.str(constraint);
            enc_node_id(e, *node);
            e.str(value);
        }
        Violation::MissingField {
            constraint,
            node,
            field,
        } => {
            e.u8(8);
            e.str(constraint);
            enc_node_id(e, *node);
            e.str(field);
        }
        Violation::DuplicateId {
            constraint,
            a,
            b,
            value,
        } => {
            e.u8(9);
            e.str(constraint);
            enc_node_id(e, *a);
            enc_node_id(e, *b);
            e.str(value);
        }
        Violation::Inverse {
            constraint,
            from,
            to,
        } => {
            e.u8(10);
            e.str(constraint);
            enc_node_id(e, *from);
            enc_node_id(e, *to);
        }
    }
}

fn dec_violation(d: &mut Dec<'_>) -> Result<Violation, StorageError> {
    Ok(match d.u8()? {
        0 => Violation::RootLabel {
            expected: Name::new(d.str()?),
            found: Name::new(d.str()?),
        },
        1 => Violation::UnknownElementType {
            node: dec_node_id(d)?,
            label: Name::new(d.str()?),
        },
        2 => Violation::ContentModel {
            node: dec_node_id(d)?,
            tau: Name::new(d.str()?),
            expected: d.str()?.to_string(),
            found: d.str()?.to_string(),
        },
        3 => Violation::UndeclaredAttribute {
            node: dec_node_id(d)?,
            attr: Name::new(d.str()?),
        },
        4 => Violation::MissingAttribute {
            node: dec_node_id(d)?,
            attr: Name::new(d.str()?),
        },
        5 => Violation::NotSingleton {
            node: dec_node_id(d)?,
            attr: Name::new(d.str()?),
            len: d.len(0)?,
        },
        6 => Violation::Key {
            constraint: d.str()?.to_string(),
            a: dec_node_id(d)?,
            b: dec_node_id(d)?,
            value: d.str()?.to_string(),
        },
        7 => Violation::ForeignKey {
            constraint: d.str()?.to_string(),
            node: dec_node_id(d)?,
            value: d.str()?.to_string(),
        },
        8 => Violation::MissingField {
            constraint: d.str()?.to_string(),
            node: dec_node_id(d)?,
            field: d.str()?.to_string(),
        },
        9 => Violation::DuplicateId {
            constraint: d.str()?.to_string(),
            a: dec_node_id(d)?,
            b: dec_node_id(d)?,
            value: d.str()?.to_string(),
        },
        10 => Violation::Inverse {
            constraint: d.str()?.to_string(),
            from: dec_node_id(d)?,
            to: dec_node_id(d)?,
        },
        t => {
            return Err(StorageError::Corrupt {
                detail: format!("violation: unknown tag {t}"),
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Live-validator state sections.

pub(crate) fn enc_interner(e: &mut Enc, arena: &[u8], spans: &[(u32, u32)]) {
    e.bytes(arena);
    e.len(spans.len());
    for &(start, len) in spans {
        e.u32(start);
        e.u32(len);
    }
}

/// The decoded interner parts: the byte arena plus its `(start, len)`
/// spans, in the shape `Interner::from_parts` consumes.
pub(crate) type InternerParts = (Vec<u8>, Vec<(u32, u32)>);

pub(crate) fn dec_interner(d: &mut Dec<'_>) -> Result<InternerParts, StorageError> {
    let arena = d.bytes()?.to_vec();
    let n = d.len(8)?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        spans.push((d.u32()?, d.u32()?));
    }
    Ok((arena, spans))
}

pub(crate) fn enc_columns(e: &mut Enc, state: &LiveState) {
    e.len(state.singles.len());
    for ((tau, field), vals) in &state.singles {
        e.str(tau);
        enc_field(e, field);
        e.len(vals.len());
        for cell in vals {
            enc_opt_u32(e, cell.map(|s| s.index() as u32));
        }
    }
    e.len(state.sets.len());
    for ((tau, attr), rows) in &state.sets {
        e.str(tau);
        e.str(attr);
        e.len(rows.len());
        for row in rows {
            e.len(row.len());
            for &m in row {
                enc_sym(e, m);
            }
        }
    }
}

type Singles = Vec<((Name, Field), Vec<Option<Sym>>)>;
type Sets = Vec<((Name, Name), Vec<Vec<Sym>>)>;

pub(crate) fn dec_columns(d: &mut Dec<'_>) -> Result<(Singles, Sets), StorageError> {
    let nsingles = d.len(8)?;
    let mut singles = Vec::with_capacity(nsingles);
    for _ in 0..nsingles {
        let tau = Name::new(d.str()?);
        let field = dec_field(d)?;
        let ncells = d.len(4)?;
        let mut vals = Vec::with_capacity(ncells);
        for _ in 0..ncells {
            vals.push(dec_opt_u32(d)?.map(Sym::from_index));
        }
        singles.push(((tau, field), vals));
    }
    let nsets = d.len(8)?;
    let mut sets = Vec::with_capacity(nsets);
    for _ in 0..nsets {
        let tau = Name::new(d.str()?);
        let attr = Name::new(d.str()?);
        let nrows = d.len(8)?;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let nmembers = d.len(4)?;
            let mut row = Vec::with_capacity(nmembers);
            for _ in 0..nmembers {
                row.push(dec_sym(d)?);
            }
            rows.push(row);
        }
        sets.push(((tau, attr), rows));
    }
    Ok((singles, sets))
}

pub(crate) fn enc_struct_viols(e: &mut Enc, entries: &[(u32, Vec<Violation>)]) {
    e.len(entries.len());
    for (x, viols) in entries {
        e.u32(*x);
        e.len(viols.len());
        for v in viols {
            enc_violation(e, v);
        }
    }
}

pub(crate) fn dec_struct_viols(
    d: &mut Dec<'_>,
) -> Result<Vec<(u32, Vec<Violation>)>, StorageError> {
    let n = d.len(4)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let x = d.u32()?;
        let nviols = d.len(1)?;
        let mut viols = Vec::with_capacity(nviols);
        for _ in 0..nviols {
            viols.push(dec_violation(d)?);
        }
        entries.push((x, viols));
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Batched edits (the WAL payload).

pub(crate) fn enc_batch(e: &mut Enc, batch: &[BatchEdit]) {
    e.len(batch.len());
    for edit in batch {
        match edit {
            BatchEdit::SetAttr { node, attr, value } => {
                e.u8(0);
                enc_node_id(e, *node);
                e.str(attr);
                enc_attr_value(e, value);
            }
            BatchEdit::RemoveAttr { node, attr } => {
                e.u8(1);
                enc_node_id(e, *node);
                e.str(attr);
            }
            BatchEdit::SetText { node, index, text } => {
                e.u8(2);
                enc_node_id(e, *node);
                e.len(*index);
                e.str(text);
            }
            BatchEdit::InsertSubtree {
                parent,
                position,
                fragment,
            } => {
                e.u8(3);
                enc_node_id(e, *parent);
                e.len(*position);
                enc_tree(e, fragment);
            }
            BatchEdit::DeleteSubtree { node } => {
                e.u8(4);
                enc_node_id(e, *node);
            }
        }
    }
}

pub(crate) fn dec_batch(d: &mut Dec<'_>) -> Result<Vec<BatchEdit>, StorageError> {
    let n = d.len(1)?;
    let mut batch = Vec::with_capacity(n);
    for _ in 0..n {
        batch.push(match d.u8()? {
            0 => BatchEdit::SetAttr {
                node: dec_node_id(d)?,
                attr: Name::new(d.str()?),
                value: dec_attr_value(d)?,
            },
            1 => BatchEdit::RemoveAttr {
                node: dec_node_id(d)?,
                attr: Name::new(d.str()?),
            },
            2 => BatchEdit::SetText {
                node: dec_node_id(d)?,
                index: d.len(0)?,
                text: d.str()?.to_string(),
            },
            3 => BatchEdit::InsertSubtree {
                parent: dec_node_id(d)?,
                position: d.len(0)?,
                fragment: dec_tree(d)?,
            },
            4 => BatchEdit::DeleteSubtree {
                node: dec_node_id(d)?,
            },
            t => {
                return Err(StorageError::Corrupt {
                    detail: format!("wal record: unknown edit tag {t}"),
                })
            }
        });
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The one unrepresentable symbol index decodes to a clean error, not
    /// the `Sym::from_index` panic — a crafted snapshot with a valid
    /// section CRC must never abort the process.
    #[test]
    fn dec_sym_rejects_the_sentinel_index() {
        let bytes = u32::MAX.to_le_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert!(matches!(dec_sym(&mut d), Err(StorageError::Corrupt { .. })));
        // Every other index decodes.
        let bytes = (u32::MAX - 1).to_le_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert_eq!(dec_sym(&mut d).unwrap().index(), (u32::MAX - 1) as usize);
    }
}
