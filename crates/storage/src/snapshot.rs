//! The versioned, checksummed snapshot file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"XICS"
//! version u32                        (currently 2)
//! section*:
//!   tag     u32                      (1 tree, 2 interner, 3 columns, 4 struct, 5 meta)
//!   len     u64                      payload byte length
//!   crc     u32                      CRC-32 of the payload
//!   payload len bytes
//! ```
//!
//! Each section is independently length-prefixed and checksummed: a torn
//! write truncates or corrupts the byte stream and is *detected* (the CRC
//! or the length check fails) rather than deserialized. Writers never
//! publish a torn file in the first place — [`write_snapshot`] writes to a
//! temporary sibling, fsyncs, then renames over the target atomically.
//!
//! The **meta** section records the WAL sequence number of the last edit
//! batch the snapshot captures (zero for a freshly ingested document).
//! Recovery replays only WAL records *above* it, so a crash between
//! publishing a snapshot and emptying the log it subsumes can never
//! replay a batch twice.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

use xic_validate::LiveState;

use crate::codec::{
    dec_columns, dec_interner, dec_struct_viols, dec_tree, enc_columns, enc_interner,
    enc_struct_viols, enc_tree, Dec, Enc,
};
use crate::crc::crc32;
use crate::StorageError;

/// The snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"XICS";
/// The current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 2;

const SEC_TREE: u32 = 1;
const SEC_INTERNER: u32 = 2;
const SEC_COLUMNS: u32 = 3;
const SEC_STRUCT: u32 = 4;
const SEC_META: u32 = 5;

/// Serializes `state` into the snapshot byte format. `last_seq` is the WAL
/// sequence number of the last batch already applied to `state` (zero when
/// no log exists yet): recovery replays only records above it.
pub fn encode_snapshot(state: &LiveState, last_seq: u64) -> Vec<u8> {
    let mut out = Enc::default();
    out.buf.extend_from_slice(&SNAPSHOT_MAGIC);
    out.u32(SNAPSHOT_VERSION);

    let section = |out: &mut Enc, tag: u32, payload: Enc| {
        out.u32(tag);
        out.u64(payload.buf.len() as u64);
        out.u32(crc32(&payload.buf));
        out.buf.extend_from_slice(&payload.buf);
    };

    let mut meta = Enc::default();
    meta.u64(last_seq);
    section(&mut out, SEC_META, meta);

    let mut tree = Enc::default();
    enc_tree(&mut tree, &state.tree);
    section(&mut out, SEC_TREE, tree);

    let mut interner = Enc::default();
    enc_interner(&mut interner, &state.interner_arena, &state.interner_spans);
    section(&mut out, SEC_INTERNER, interner);

    let mut columns = Enc::default();
    enc_columns(&mut columns, state);
    section(&mut out, SEC_COLUMNS, columns);

    let mut sv = Enc::default();
    enc_struct_viols(&mut sv, &state.struct_viols);
    section(&mut out, SEC_STRUCT, sv);

    out.buf
}

/// Deserializes a snapshot produced by [`encode_snapshot`], returning the
/// state plus the WAL sequence number of the last batch it captures.
///
/// Fails cleanly — never panics — on truncation, checksum mismatch,
/// unknown sections or versions, and structurally inconsistent payloads
/// (the decoded tree and intern pool are re-validated by the model layer).
pub fn decode_snapshot(bytes: &[u8]) -> Result<(LiveState, u64), StorageError> {
    let mut d = Dec::new(bytes, "snapshot");
    let magic = d.u32()?;
    if magic.to_le_bytes() != SNAPSHOT_MAGIC {
        return Err(StorageError::Format {
            detail: "snapshot: bad magic (not a snapshot file)".into(),
        });
    }
    let version = d.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(StorageError::Format {
            detail: format!(
                "snapshot: format version {version} (this build reads {SNAPSHOT_VERSION})"
            ),
        });
    }

    let mut last_seq = None;
    let mut tree = None;
    let mut interner = None;
    let mut columns = None;
    let mut struct_viols = None;
    while !d.is_empty() {
        let tag = d.u32()?;
        let len = d.u64()?;
        let crc = d.u32()?;
        let Ok(len) = usize::try_from(len) else {
            return Err(StorageError::Corrupt {
                detail: "snapshot: section length does not fit this platform".into(),
            });
        };
        let payload = d.section(len)?;
        if crc32(payload) != crc {
            return Err(StorageError::Corrupt {
                detail: format!("snapshot: section {tag} fails its checksum"),
            });
        }
        let mut pd = Dec::new(payload, "snapshot");
        match tag {
            SEC_META => last_seq = Some(pd.u64()?),
            SEC_TREE => tree = Some(dec_tree(&mut pd)?),
            SEC_INTERNER => interner = Some(dec_interner(&mut pd)?),
            SEC_COLUMNS => columns = Some(dec_columns(&mut pd)?),
            SEC_STRUCT => struct_viols = Some(dec_struct_viols(&mut pd)?),
            t => {
                return Err(StorageError::Format {
                    detail: format!("snapshot: unknown section {t} (newer format?)"),
                })
            }
        }
        if !pd.is_empty() {
            return Err(StorageError::Corrupt {
                detail: format!("snapshot: section {tag} has trailing bytes"),
            });
        }
    }

    let missing = |what: &str| StorageError::Corrupt {
        detail: format!("snapshot: missing {what} section"),
    };
    let (interner_arena, interner_spans) = interner.ok_or_else(|| missing("interner"))?;
    let (singles, sets) = columns.ok_or_else(|| missing("columns"))?;
    Ok((
        LiveState {
            tree: tree.ok_or_else(|| missing("tree"))?,
            interner_arena,
            interner_spans,
            singles,
            sets,
            struct_viols: struct_viols.ok_or_else(|| missing("structural violation"))?,
        },
        last_seq.ok_or_else(|| missing("meta"))?,
    ))
}

/// Writes `state` (with its last applied WAL sequence, see
/// [`encode_snapshot`]) to `path` atomically: encode, write a `.tmp`
/// sibling, fsync it, rename over `path`, fsync the directory. A crash at
/// any point leaves either the old snapshot or the new one — never a torn
/// file.
pub fn write_snapshot(path: &Path, state: &LiveState, last_seq: u64) -> Result<(), StorageError> {
    let bytes = encode_snapshot(state, last_seq);
    let tmp = path.with_extension("tmp");
    let io = |context: &str| {
        let context = context.to_string();
        move |source: std::io::Error| StorageError::Io { context, source }
    };
    let mut f = File::create(&tmp).map_err(io(&format!("create {}", tmp.display())))?;
    f.write_all(&bytes)
        .map_err(io(&format!("write {}", tmp.display())))?;
    f.sync_all()
        .map_err(io(&format!("sync {}", tmp.display())))?;
    drop(f);
    fs::rename(&tmp, path).map_err(io(&format!(
        "rename {} over {}",
        tmp.display(),
        path.display()
    )))?;
    if let Some(dir) = path.parent() {
        // Make the rename itself durable.
        File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(io(&format!("sync directory {}", dir.display())))?;
    }
    Ok(())
}

/// Reads and decodes the snapshot at `path`; see [`decode_snapshot`] for
/// the returned pair.
pub fn read_snapshot(path: &Path) -> Result<(LiveState, u64), StorageError> {
    let bytes = fs::read(path).map_err(|source| StorageError::Io {
        context: format!("read {}", path.display()),
        source,
    })?;
    decode_snapshot(&bytes)
}
