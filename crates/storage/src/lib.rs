//! # xic-storage — durable state for live validators
//!
//! The engine's in-memory state ([`xic_validate::LiveState`]) persists
//! through two cooperating artifacts:
//!
//! * **Snapshots** ([`write_snapshot`]/[`read_snapshot`]) — a compact,
//!   versioned binary image of the document tree, the intern pool, every
//!   planned constraint column, and the structural violation table. Each
//!   section is length-prefixed and CRC-32-checksummed; files are
//!   published by atomic rename, so a reader never observes a torn
//!   snapshot.
//! * **A write-ahead log** ([`Wal`]) — checksummed
//!   [`BatchEdit`] records appended *before*
//!   each batch is applied, each stamped with a monotonic sequence
//!   number. On reopen the log replays intact records, truncates a torn
//!   final record, and refuses (with a clean error) to deserialize
//!   corruption.
//!
//! **Warm start** is `snapshot + WAL replay`: decode the snapshot, hand it
//! to [`xic_validate::LiveValidator::from_state`] (which skips parsing,
//! extraction, and the structural scan), then re-apply the logged batches.
//! The recovered validator's report is byte-identical to validating the
//! current document from scratch. The snapshot records the sequence of
//! the last batch it captures, and replay skips records at or below it —
//! so a crash landing between a snapshot publication and the WAL reset
//! that follows it can never apply a batch twice.
//!
//! [`DocStore`] arranges both artifacts in a per-document directory layout
//! (`<state-dir>/<doc-id>/snapshot.bin` + `wal.log`) for the multi-tenant
//! daemon; the `xic snapshot` / `xic recover` subcommands and `xic serve
//! --state-dir` build on it.
//!
//! The crate is dependency-free beyond the workspace's own model and
//! validator crates: codecs, checksums, and file handling are all local.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod crc;
mod snapshot;
mod wal;

use std::fs;
use std::path::{Path, PathBuf};

use xic_validate::{BatchEdit, LiveState};

pub use crc::crc32;
pub use snapshot::{
    decode_snapshot, encode_snapshot, read_snapshot, write_snapshot, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use wal::{FsyncPolicy, ReplayedBatches, Wal, WalMark, WAL_MAGIC, WAL_VERSION};

/// Why a storage operation failed.
///
/// Decoding never panics: torn or flipped bytes surface as
/// [`StorageError::Corrupt`], files from other tools or future format
/// versions as [`StorageError::Format`], and operating-system failures as
/// [`StorageError::Io`] with the failing operation named.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io {
        /// The operation that failed (includes the path).
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The bytes are recognizably ours but fail a checksum, end early, or
    /// decode to structurally impossible state.
    Corrupt {
        /// What was wrong.
        detail: String,
    },
    /// The file is not ours, or was written by an incompatible format
    /// version.
    Format {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { context, source } => write!(f, "{context}: {source}"),
            StorageError::Corrupt { detail } => write!(f, "corrupt state: {detail}"),
            StorageError::Format { detail } => write!(f, "unrecognized format: {detail}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A document recovered from disk: its snapshot state, the batches logged
/// since that snapshot (in append order), and the open log positioned for
/// further appends.
#[derive(Debug)]
pub struct Recovered {
    /// The decoded snapshot.
    pub state: LiveState,
    /// The WAL sequence number of the last batch the snapshot captures.
    /// WAL records at or below it were subsumed by the snapshot and are
    /// *not* in [`Recovered::batches`].
    pub last_seq: u64,
    /// Batches appended after the snapshot (sequence above
    /// [`Recovered::last_seq`]), to re-apply in order.
    pub batches: Vec<Vec<BatchEdit>>,
    /// The open write-ahead log, its sequence counter positioned above
    /// both the snapshot and every logged record.
    pub wal: Wal,
}

/// File-metadata facts about a document's on-disk snapshot (see
/// [`DocStore::snapshot_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// When the snapshot was last written (filesystem mtime) — its age is
    /// `now − modified`, the staleness an operator alerts on.
    pub modified: std::time::SystemTime,
}

/// The per-document state-directory layout used by `xic serve --state-dir`:
/// one subdirectory per document id holding `snapshot.bin` and `wal.log`.
///
/// Document ids are restricted to `[A-Za-z0-9._-]+` (excluding `.` and
/// `..`), matching the daemon's id grammar, so an id can never escape the
/// root directory.
#[derive(Debug, Clone)]
pub struct DocStore {
    root: PathBuf,
    policy: FsyncPolicy,
}

/// The snapshot file name inside a document's subdirectory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// The WAL file name inside a document's subdirectory.
pub const WAL_FILE: &str = "wal.log";

fn io_err(context: String) -> impl FnOnce(std::io::Error) -> StorageError {
    move |source| StorageError::Io { context, source }
}

/// True iff `id` is a safe document id (`[A-Za-z0-9._-]+`, not `.`/`..`).
pub fn valid_doc_id(id: &str) -> bool {
    !id.is_empty()
        && id != "."
        && id != ".."
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

impl DocStore {
    /// Opens (creating if needed) the state directory at `root`.
    pub fn open(root: impl Into<PathBuf>, policy: FsyncPolicy) -> Result<Self, StorageError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_err(format!("create {}", root.display())))?;
        Ok(DocStore { root, policy })
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The state directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn doc_dir(&self, id: &str) -> Result<PathBuf, StorageError> {
        if !valid_doc_id(id) {
            return Err(StorageError::Format {
                detail: format!("invalid document id '{id}'"),
            });
        }
        Ok(self.root.join(id))
    }

    /// The snapshot path for `id` (the file may not exist yet).
    pub fn snapshot_path(&self, id: &str) -> Result<PathBuf, StorageError> {
        Ok(self.doc_dir(id)?.join(SNAPSHOT_FILE))
    }

    /// The WAL path for `id` (the file may not exist yet).
    pub fn wal_path(&self, id: &str) -> Result<PathBuf, StorageError> {
        Ok(self.doc_dir(id)?.join(WAL_FILE))
    }

    /// Size and age of `id`'s on-disk snapshot, from file metadata —
    /// `Ok(None)` when the doc has never been snapshotted. Cheap (one
    /// `stat`), so introspection surfaces like `xic serve`'s `/status`
    /// can call it per scrape without touching snapshot contents.
    pub fn snapshot_stats(&self, id: &str) -> Result<Option<SnapshotStats>, StorageError> {
        let path = self.snapshot_path(id)?;
        let meta = match fs::metadata(&path) {
            Ok(meta) => meta,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(format!("stat {}", path.display()))(e)),
        };
        let modified = meta
            .modified()
            .map_err(io_err(format!("stat {}", path.display())))?;
        Ok(Some(SnapshotStats {
            bytes: meta.len(),
            modified,
        }))
    }

    /// Every document id with persisted state, ascending.
    pub fn doc_ids(&self) -> Result<Vec<String>, StorageError> {
        let mut ids = Vec::new();
        let entries =
            fs::read_dir(&self.root).map_err(io_err(format!("list {}", self.root.display())))?;
        for entry in entries {
            let entry = entry.map_err(io_err(format!("list {}", self.root.display())))?;
            let name = entry.file_name();
            let Some(id) = name.to_str() else { continue };
            if valid_doc_id(id) && entry.path().join(SNAPSHOT_FILE).is_file() {
                ids.push(id.to_string());
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Snapshots `state` for `id` and empties its WAL (the snapshot
    /// subsumes every logged batch). Creates the subdirectory on first
    /// save.
    ///
    /// Crash-safe ordering: the snapshot is stamped with the WAL's last
    /// sequence number and published (atomic rename) *before* the log is
    /// emptied, so a crash between the two steps leaves stale records that
    /// [`DocStore::load`] skips by sequence — never replays onto state
    /// that already contains them.
    pub fn save(&self, id: &str, state: &LiveState) -> Result<(), StorageError> {
        let dir = self.doc_dir(id)?;
        fs::create_dir_all(&dir).map_err(io_err(format!("create {}", dir.display())))?;
        let wal_path = dir.join(WAL_FILE);
        let mut wal = if wal_path.exists() {
            let (wal, _) = Wal::open(&wal_path, self.policy)?;
            Some(wal)
        } else {
            None
        };
        let last_seq = wal.as_ref().map_or(0, Wal::last_seq);
        write_snapshot(&dir.join(SNAPSHOT_FILE), state, last_seq)?;
        if let Some(wal) = wal.as_mut() {
            wal.reset()?;
        }
        Ok(())
    }

    /// Recovers `id`: decodes its snapshot, replays the WAL records above
    /// the snapshot's last applied sequence (records at or below it were
    /// subsumed by the snapshot — the artifact of a crash between a
    /// snapshot publication and the log reset), and returns the open log.
    /// `Ok(None)` when no snapshot exists for `id`.
    pub fn load(&self, id: &str) -> Result<Option<Recovered>, StorageError> {
        let dir = self.doc_dir(id)?;
        let snap = dir.join(SNAPSHOT_FILE);
        if !snap.is_file() {
            return Ok(None);
        }
        let (state, last_seq) = read_snapshot(&snap)?;
        let (mut wal, records) = Wal::open(dir.join(WAL_FILE), self.policy)?;
        wal.skip_to(last_seq);
        let batches = records
            .into_iter()
            .filter(|&(seq, _)| seq > last_seq)
            .map(|(_, batch)| batch)
            .collect();
        Ok(Some(Recovered {
            state,
            last_seq,
            batches,
            wal,
        }))
    }

    /// Opens `id`'s WAL for appending (discarding the replayed batches —
    /// use [`DocStore::load`] when recovering). Creates the subdirectory
    /// and an empty log if needed.
    pub fn open_wal(&self, id: &str) -> Result<Wal, StorageError> {
        let dir = self.doc_dir(id)?;
        fs::create_dir_all(&dir).map_err(io_err(format!("create {}", dir.display())))?;
        let (wal, _) = Wal::open(dir.join(WAL_FILE), self.policy)?;
        Ok(wal)
    }

    /// Deletes every trace of `id`'s persisted state.
    pub fn purge(&self, id: &str) -> Result<(), StorageError> {
        let dir = self.doc_dir(id)?;
        if dir.exists() {
            fs::remove_dir_all(&dir).map_err(io_err(format!("remove {}", dir.display())))?;
        }
        Ok(())
    }
}
