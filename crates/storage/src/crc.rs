//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Checksums guard every snapshot section and WAL record so that a torn
//! or bit-flipped write is *detected* — the decoder refuses to interpret
//! bytes whose checksum does not match, instead of deserializing garbage.

/// Eight 256-entry lookup tables, computed at compile time: `TABLES[0]`
/// is the classic byte-at-a-time table, `TABLES[k]` advances a byte `k`
/// positions further, enabling the slice-by-8 kernel below.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

/// The CRC-32 of `bytes`.
///
/// Slice-by-8: each iteration folds eight bytes through eight parallel
/// table lookups instead of chaining eight serial single-byte steps, so
/// checksumming a multi-megabyte snapshot section costs milliseconds, not
/// tens of them.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(chunk[4..].try_into().unwrap());
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn slice_by_8_matches_bytewise_reference() {
        // A pseudo-random buffer long enough to exercise the 8-byte
        // kernel plus every remainder length.
        let mut x = 0x2545_F491u32;
        let data: Vec<u8> = (0..4099)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        for end in [0, 1, 7, 8, 9, 63, 64, 65, 4099] {
            let mut c = !0u32;
            for &b in &data[..end] {
                c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            assert_eq!(crc32(&data[..end]), !c, "divergence at len {end}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"constraint state".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
