//! Property tests for the durable-state formats.
//!
//! Random documents and edit sequences round-trip through the snapshot
//! codec and the WAL: the recovered validator's report is byte-identical
//! to from-scratch validation. Corruption corpora — truncated tails and
//! bit flips — must produce clean errors (or, for a torn WAL tail, the
//! longest intact prefix), never panics or silently wrong state.

use proptest::prelude::*;
use xic_constraints::{Constraint, DtdC, DtdStructure, Field, Language};
use xic_model::{AttrValue, DataTree, NodeId, TreeBuilder};
use xic_storage::{
    crc32, decode_snapshot, encode_snapshot, write_snapshot, DocStore, FsyncPolicy, StorageError,
    Wal, WAL_MAGIC, WAL_VERSION,
};
use xic_validate::{BatchEdit, LiveValidator, MatcherKind, Options, Validator};

/// Three element types with an ID attribute, single attributes, set-valued
/// attributes, and sub-element labels — every column shape the plan can
/// produce.
fn test_structure() -> DtdStructure {
    let mut b = DtdStructure::builder("db").elem("db", "(t0 + t1 + t2)*");
    for t in ["t0", "t1", "t2"] {
        b = b
            .elem(t, "(e0 + e1 + S)*")
            .id_attr(t, "id")
            .attr(t, "a0", "S")
            .attr(t, "a1", "S")
            .idrefs_attr(t, "r0")
            .attr(t, "r1", "S*");
    }
    b.elem("e0", "S")
        .elem("e1", "S")
        .build()
        .expect("test structure is well-formed")
}

/// A Σ exercising every constraint family (hence every column kind).
fn test_sigma() -> Vec<Constraint> {
    vec![
        Constraint::Key {
            tau: "t0".into(),
            fields: vec![Field::attr("id"), Field::sub("e0")],
        },
        Constraint::ForeignKey {
            tau: "t1".into(),
            fields: vec![Field::attr("a0")],
            target: "t0".into(),
            target_fields: vec![Field::attr("a1")],
        },
        Constraint::SetForeignKey {
            tau: "t2".into(),
            attr: "r1".into(),
            target: "t1".into(),
            target_field: Field::sub("e1"),
        },
        Constraint::Id { tau: "t0".into() },
        Constraint::FkToId {
            tau: "t2".into(),
            attr: "a1".into(),
            target: "t0".into(),
        },
        Constraint::SetFkToId {
            tau: "t1".into(),
            attr: "r0".into(),
            target: "t0".into(),
        },
        Constraint::InverseId {
            tau: "t0".into(),
            attr: "r0".into(),
            target: "t1".into(),
            target_attr: "r0".into(),
        },
    ]
}

/// One random element: `((type, id, a0, a1), (r0, r1, sub-elements))`.
type NodeRecipe = (
    (u8, Option<u8>, Option<u8>, Option<u8>),
    (Vec<u8>, Vec<u8>, Vec<(u8, u8)>),
);

fn node_recipe() -> BoxedStrategy<NodeRecipe> {
    let head = (
        0u8..3,
        prop::option::of(0u8..6),
        prop::option::of(0u8..6),
        prop::option::of(0u8..6),
    );
    let tail = (
        prop::collection::vec(0u8..6, 0..3),
        prop::collection::vec(0u8..6, 0..3),
        prop::collection::vec((0u8..2, 0u8..6), 0..4),
    );
    (head, tail).boxed()
}

fn val(v: u8) -> String {
    format!("v{v}")
}

fn fill_node(b: &mut TreeBuilder, p: NodeId, recipe: &NodeRecipe) {
    let ((_, id, a0, a1), (r0, r1, subs)) = recipe;
    if let Some(v) = id {
        b.attr(p, "id", AttrValue::single(val(*v))).unwrap();
    }
    if let Some(v) = a0 {
        b.attr(p, "a0", AttrValue::single(val(*v))).unwrap();
    }
    if let Some(v) = a1 {
        b.attr(p, "a1", AttrValue::single(val(*v))).unwrap();
    }
    b.attr(p, "r0", AttrValue::set(r0.iter().map(|&v| val(v))))
        .unwrap();
    b.attr(p, "r1", AttrValue::set(r1.iter().map(|&v| val(v))))
        .unwrap();
    for (w, tv) in subs {
        b.leaf(p, format!("e{w}"), val(*tv)).unwrap();
    }
}

fn build_tree(recipes: &[NodeRecipe]) -> DataTree {
    let mut b = TreeBuilder::new();
    let db = b.node("db");
    for recipe in recipes {
        let p = b.child_node(db, format!("t{}", recipe.0 .0)).unwrap();
        fill_node(&mut b, p, recipe);
    }
    b.finish(db).unwrap()
}

fn build_fragment(recipe: &NodeRecipe) -> DataTree {
    let mut b = TreeBuilder::new();
    let p = b.node(format!("t{}", recipe.0 .0));
    fill_node(&mut b, p, recipe);
    b.finish(p).unwrap()
}

const ATTRS: [&str; 5] = ["id", "a0", "a1", "r0", "r1"];

/// One random edit, resolved against the live tree at application time.
#[derive(Debug, Clone)]
enum EditRecipe {
    SetAttr(u8, u8, Vec<u8>),
    RemoveAttr(u8, u8),
    Delete(u8),
    Insert(u8, u8, NodeRecipe),
}

fn edit_recipe() -> BoxedStrategy<EditRecipe> {
    prop_oneof![
        (any::<u8>(), 0u8..5, prop::collection::vec(0u8..6, 1..3))
            .prop_map(|(n, a, vs)| EditRecipe::SetAttr(n, a, vs)),
        (any::<u8>(), 0u8..5).prop_map(|(n, a)| EditRecipe::RemoveAttr(n, a)),
        any::<u8>().prop_map(EditRecipe::Delete),
        (any::<u8>(), any::<u8>(), node_recipe()).prop_map(|(n, p, r)| EditRecipe::Insert(n, p, r)),
    ]
    .boxed()
}

/// Resolves one recipe into a concrete request, or `None` if inapplicable.
fn resolve_edit(live: &LiveValidator<'_, '_>, e: &EditRecipe) -> Option<BatchEdit> {
    let ids: Vec<NodeId> = live.tree().node_ids().collect();
    let pick = |sel: u8| ids[sel as usize % ids.len()];
    match e {
        EditRecipe::SetAttr(n, a, vs) => Some(BatchEdit::SetAttr {
            node: pick(*n),
            attr: ATTRS[*a as usize].into(),
            value: AttrValue::set(vs.iter().map(|&v| val(v))),
        }),
        EditRecipe::RemoveAttr(n, a) => {
            let node = pick(*n);
            live.tree()
                .attr(node, ATTRS[*a as usize])
                .is_some()
                .then(|| BatchEdit::RemoveAttr {
                    node,
                    attr: ATTRS[*a as usize].into(),
                })
        }
        EditRecipe::Delete(n) => {
            let node = pick(*n);
            (node != live.tree().root()).then_some(BatchEdit::DeleteSubtree { node })
        }
        EditRecipe::Insert(n, p, recipe) => {
            let parent = pick(*n);
            let len = live.tree().node(parent).children.len();
            Some(BatchEdit::InsertSubtree {
                parent,
                position: *p as usize % (len + 1),
                fragment: build_fragment(recipe),
            })
        }
    }
}

fn validator(dtdc: &DtdC) -> Validator<'_> {
    let opts = Options {
        strict_attributes: false,
        threads: 1,
    };
    Validator::with_matcher(dtdc, MatcherKind::Dfa, opts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snapshot + WAL replay reproduces a byte-identical report after any
    /// edit history: edits up to a random snapshot point are captured by
    /// the snapshot, the rest by the log — exactly the daemon's crash
    /// recovery path.
    #[test]
    fn snapshot_plus_wal_replay_is_byte_identical(
        nodes in prop::collection::vec(node_recipe(), 0..15),
        edits in prop::collection::vec(edit_recipe(), 0..10),
        snap_at in any::<u8>(),
    ) {
        let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, test_sigma());
        let v = validator(&dtdc);
        let mut live = LiveValidator::new(&v, build_tree(&nodes));

        let dir = tempdir("roundtrip");
        let store = DocStore::open(&dir, FsyncPolicy::Never).unwrap();

        // Play the prefix, snapshot, then log + play the suffix.
        let cut = if edits.is_empty() { 0 } else { snap_at as usize % (edits.len() + 1) };
        for e in &edits[..cut] {
            if let Some(b) = resolve_edit(&live, e) {
                live.apply_batch(&[b]).unwrap();
            }
        }
        store.save("doc", &live.export_state()).unwrap();
        let mut wal = store.open_wal("doc").unwrap();
        for e in &edits[cut..] {
            if let Some(b) = resolve_edit(&live, e) {
                let batch = vec![b];
                wal.append(&batch).unwrap();
                live.apply_batch(&batch).unwrap();
            }
        }
        drop(wal);

        // Recover into a fresh validator.
        let rec = store.load("doc").unwrap().expect("state was saved");
        let mut warm = LiveValidator::from_state(&v, rec.state).unwrap();
        for batch in &rec.batches {
            warm.apply_batch(batch).unwrap();
        }
        prop_assert_eq!(
            &warm.report().violations,
            &live.report().violations,
            "recovered report diverged from the living validator"
        );
        prop_assert_eq!(
            &warm.report().violations,
            &v.validate(warm.tree()).violations,
            "recovered report diverged from scratch validation"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Any truncation of a snapshot decodes to a clean error, never a
    /// panic or a silently wrong state.
    #[test]
    fn truncated_snapshot_fails_cleanly(
        nodes in prop::collection::vec(node_recipe(), 0..8),
        frac in 0u32..1000,
    ) {
        let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, test_sigma());
        let v = validator(&dtdc);
        let live = LiveValidator::new(&v, build_tree(&nodes));
        let bytes = encode_snapshot(&live.export_state(), 0);
        let cut = (bytes.len() as u64 * frac as u64 / 1000) as usize;
        prop_assert!(
            decode_snapshot(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} was not detected", bytes.len()
        );
    }

    /// Any single-bit flip in a snapshot decodes to a clean error.
    #[test]
    fn bit_flipped_snapshot_fails_cleanly(
        nodes in prop::collection::vec(node_recipe(), 0..8),
        pos in any::<u32>(),
        bit in 0u8..8,
    ) {
        let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, test_sigma());
        let v = validator(&dtdc);
        let live = LiveValidator::new(&v, build_tree(&nodes));
        let mut bytes = encode_snapshot(&live.export_state(), 0);
        let at = pos as usize % bytes.len();
        bytes[at] ^= 1 << bit;
        prop_assert!(
            decode_snapshot(&bytes).is_err(),
            "flip at {at}:{bit} was not detected"
        );
    }

    /// A WAL whose tail was cut mid-record recovers the longest intact
    /// prefix of batches; a complete record with a flipped byte is a
    /// clean checksum error.
    #[test]
    fn wal_tail_truncation_recovers_prefix(
        nodes in prop::collection::vec(node_recipe(), 1..8),
        edits in prop::collection::vec(edit_recipe(), 1..6),
        chop in 1u32..64,
    ) {
        let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, test_sigma());
        let v = validator(&dtdc);
        let live = LiveValidator::new(&v, build_tree(&nodes));
        let dir = tempdir("wal-torn");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        let mut logged = Vec::new();
        for e in &edits {
            if let Some(b) = resolve_edit(&live, e) {
                let batch = vec![b];
                wal.append(&batch).unwrap();
                logged.push(batch);
            }
        }
        drop(wal);

        // Tear the tail off and reopen: an intact prefix must survive.
        let full = std::fs::read(&path).unwrap();
        let cut = full.len().saturating_sub(chop as usize).max(8);
        if cut < full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (reopened, records) = Wal::open(&path, FsyncPolicy::Never).unwrap();
            let batches: Vec<&Vec<BatchEdit>> = records.iter().map(|(_, b)| b).collect();
            prop_assert!(batches.len() <= logged.len());
            prop_assert_eq!(
                format!("{:?}", batches),
                format!("{:?}", logged[..batches.len()].iter().collect::<Vec<_>>()),
                "recovered batches are not a prefix"
            );
            drop(reopened);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A bit flip inside a complete WAL record is detected as corruption.
    #[test]
    fn bit_flipped_wal_record_fails_cleanly(
        nodes in prop::collection::vec(node_recipe(), 1..8),
        edits in prop::collection::vec(edit_recipe(), 1..6),
        pos in any::<u32>(),
        bit in 0u8..8,
    ) {
        let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, test_sigma());
        let v = validator(&dtdc);
        let live = LiveValidator::new(&v, build_tree(&nodes));
        let dir = tempdir("wal-flip");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        let mut logged = Vec::new();
        for e in &edits {
            if let Some(b) = resolve_edit(&live, e) {
                let batch = vec![b];
                wal.append(&batch).unwrap();
                logged.push(batch);
            }
        }
        drop(wal);

        let mut bytes = std::fs::read(&path).unwrap();
        let at = pos as usize % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        // The flip lands in the header (format error), a record header
        // (detected as corruption or a phantom torn tail), or a payload
        // (checksum error). Whatever happens must be clean — and if the
        // open succeeds, the result must still be a prefix of the truth.
        match Wal::open(&path, FsyncPolicy::Never) {
            Err(StorageError::Corrupt { .. }) | Err(StorageError::Format { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
            Ok((_, records)) => {
                // A flipped length field can masquerade as a torn tail;
                // the recovered records must still be an intact prefix.
                let batches: Vec<&Vec<BatchEdit>> = records.iter().map(|(_, b)| b).collect();
                prop_assert!(batches.len() <= logged.len());
                prop_assert_eq!(
                    format!("{:?}", batches),
                    format!("{:?}", logged[..batches.len()].iter().collect::<Vec<_>>()),
                    "corrupted WAL replayed non-prefix data"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A fresh per-test scratch directory under the target dir.
fn tempdir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("xic-storage-test-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The daemon's crash window: a batch is appended to the WAL but the
/// process dies before (or during) propagation. Recovery replays it, and
/// the recovered report is byte-identical to scratch validation of the
/// post-batch document.
#[test]
fn crash_between_wal_append_and_propagation_recovers() {
    let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, test_sigma());
    let v = validator(&dtdc);
    let recipes: Vec<NodeRecipe> = vec![
        ((0, Some(1), Some(2), None), (vec![1], vec![], vec![(0, 3)])),
        ((1, Some(2), Some(3), Some(1)), (vec![], vec![2], vec![])),
    ];
    let mut live = LiveValidator::new(&v, build_tree(&recipes));

    let dir = tempdir("crash");
    let store = DocStore::open(&dir, FsyncPolicy::Always).unwrap();
    store.save("doc", &live.export_state()).unwrap();
    let mut wal = store.open_wal("doc").unwrap();

    // The daemon acknowledges this batch: WAL first, then propagation —
    // but we "crash" before apply_batch ever runs.
    let t1 = live
        .tree()
        .node_ids()
        .find(|&x| live.tree().label(x).as_str() == "t1")
        .unwrap();
    let batch = vec![
        BatchEdit::SetAttr {
            node: t1,
            attr: "a0".into(),
            value: AttrValue::single("v9"),
        },
        BatchEdit::DeleteSubtree { node: t1 },
    ];
    wal.append(&batch).unwrap();
    drop(wal); // crash

    let rec = store.load("doc").unwrap().unwrap();
    assert_eq!(rec.batches.len(), 1, "the acknowledged batch replays");
    let mut warm = LiveValidator::from_state(&v, rec.state).unwrap();
    for b in &rec.batches {
        warm.apply_batch(b).unwrap();
    }
    // The ground truth: the same batch applied to the living validator.
    live.apply_batch(&batch).unwrap();
    assert_eq!(warm.report().violations, live.report().violations);
    assert_eq!(warm.report().violations, v.validate(warm.tree()).violations);
    std::fs::remove_dir_all(&dir).ok();
}

/// DocStore lifecycle: ids are validated, save resets the WAL, purge
/// removes everything.
#[test]
fn doc_store_lifecycle() {
    let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, test_sigma());
    let v = validator(&dtdc);
    let live = LiveValidator::new(&v, build_tree(&[]));

    let dir = tempdir("lifecycle");
    let store = DocStore::open(&dir, FsyncPolicy::Never).unwrap();
    assert!(store.doc_ids().unwrap().is_empty());
    assert!(store.load("absent").unwrap().is_none());
    for bad in ["", ".", "..", "a/b", "a\\b", "a b", "..evil/../x"] {
        assert!(
            store.save(bad, &live.export_state()).is_err(),
            "id '{bad}' accepted"
        );
    }

    store.save("doc-1", &live.export_state()).unwrap();
    store.save("doc.2", &live.export_state()).unwrap();
    assert_eq!(store.doc_ids().unwrap(), vec!["doc-1", "doc.2"]);

    // Log two batches, then save: the snapshot subsumes them.
    let mut wal = store.open_wal("doc-1").unwrap();
    wal.append(&[]).unwrap();
    wal.append(&[]).unwrap();
    assert_eq!(wal.records(), 2);
    drop(wal);
    store.save("doc-1", &live.export_state()).unwrap();
    let rec = store.load("doc-1").unwrap().unwrap();
    assert!(rec.batches.is_empty(), "save did not reset the WAL");
    assert!(rec.wal.is_empty());

    store.purge("doc-1").unwrap();
    assert_eq!(store.doc_ids().unwrap(), vec!["doc.2"]);
    std::fs::remove_dir_all(&dir).ok();
}

/// The other crash window: a snapshot is published (stamped with the WAL's
/// last sequence) but the process dies before the log it subsumes is
/// emptied. The stale records — non-idempotent inserts — must be skipped
/// by sequence on recovery, never replayed onto state that already
/// contains them; and appends after recovery land above them, so only the
/// genuinely new batches replay on the boot after that.
#[test]
fn crash_between_snapshot_publication_and_wal_reset_skips_stale_records() {
    let dtdc = DtdC::new_unchecked(test_structure(), Language::Lid, test_sigma());
    let v = validator(&dtdc);
    let recipes: Vec<NodeRecipe> =
        vec![((0, Some(1), Some(2), None), (vec![1], vec![], vec![(0, 3)]))];
    let mut live = LiveValidator::new(&v, build_tree(&recipes));

    let dir = tempdir("stale-wal");
    let store = DocStore::open(&dir, FsyncPolicy::Always).unwrap();
    store.save("doc", &live.export_state()).unwrap();
    let mut wal = store.open_wal("doc").unwrap();

    // Acknowledge an insert (replaying it twice would duplicate the
    // subtree and raise a key violation the living validator never saw).
    let insert: NodeRecipe = ((0, Some(1), None, None), (vec![], vec![], vec![]));
    let batch = vec![BatchEdit::InsertSubtree {
        parent: live.tree().root(),
        position: 0,
        fragment: build_fragment(&insert),
    }];
    wal.append(&batch).unwrap();
    live.apply_batch(&batch).unwrap();

    // The snapshot lands (atomic rename), the reset never does.
    write_snapshot(
        &store.snapshot_path("doc").unwrap(),
        &live.export_state(),
        wal.last_seq(),
    )
    .unwrap();
    drop(wal); // crash

    let rec = store.load("doc").unwrap().unwrap();
    assert!(
        rec.batches.is_empty(),
        "a record subsumed by the snapshot was queued for replay"
    );
    let warm = LiveValidator::from_state(&v, rec.state).unwrap();
    assert_eq!(
        warm.report().violations,
        live.report().violations,
        "recovery diverged from the acknowledged pre-crash state"
    );

    // The recovered log appends above the stale record, so the next boot
    // replays exactly the post-snapshot work.
    let mut wal = rec.wal;
    let batch2 = vec![BatchEdit::SetAttr {
        node: live.tree().root(),
        attr: "a0".into(),
        value: AttrValue::single("v5"),
    }];
    let seq2 = wal.append(&batch2).unwrap();
    assert!(
        seq2 > rec.last_seq,
        "append did not clear the snapshot's sequence"
    );
    live.apply_batch(&batch2).unwrap();
    drop(wal);

    let rec2 = store.load("doc").unwrap().unwrap();
    assert_eq!(rec2.batches.len(), 1, "exactly the new batch replays");
    let mut warm = LiveValidator::from_state(&v, rec2.state).unwrap();
    for b in &rec2.batches {
        warm.apply_batch(b).unwrap();
    }
    assert_eq!(warm.report().violations, live.report().violations);
    assert_eq!(warm.report().violations, v.validate(warm.tree()).violations);
    std::fs::remove_dir_all(&dir).ok();
}

/// Sequence numbers in a WAL must strictly increase; a regression or a
/// duplicate is corruption, reported cleanly. Monotonically increasing
/// (even non-contiguous) sequences open fine, and the log then appends
/// above the highest one.
#[test]
fn non_increasing_wal_sequences_are_corruption() {
    // One raw record holding an encoded empty batch (a u64 zero count).
    let record = |seq: u64| -> Vec<u8> {
        let payload = 0u64.to_le_bytes();
        let mut covered = seq.to_le_bytes().to_vec();
        covered.extend_from_slice(&payload);
        let mut rec = (payload.len() as u64).to_le_bytes().to_vec();
        rec.extend_from_slice(&seq.to_le_bytes());
        rec.extend_from_slice(&crc32(&covered).to_le_bytes());
        rec.extend_from_slice(&payload);
        rec
    };
    let wal_with = |dir: &std::path::Path, seqs: &[u64]| -> std::path::PathBuf {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&WAL_VERSION.to_le_bytes());
        for &s in seqs {
            bytes.extend_from_slice(&record(s));
        }
        let path = dir.join(format!("wal-{seqs:?}.log"));
        std::fs::write(&path, &bytes).unwrap();
        path
    };

    let dir = tempdir("wal-seq");
    for bad in [&[2u64, 1][..], &[1, 1], &[3, 5, 4]] {
        let path = wal_with(&dir, bad);
        match Wal::open(&path, FsyncPolicy::Never) {
            Err(StorageError::Corrupt { detail }) => {
                assert!(detail.contains("sequence"), "{detail}")
            }
            other => panic!("seqs {bad:?} must be corruption, got {other:?}"),
        }
    }

    let path = wal_with(&dir, &[3, 7]);
    let (mut wal, records) = Wal::open(&path, FsyncPolicy::Never).unwrap();
    assert_eq!(
        records.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
        vec![3, 7]
    );
    assert_eq!(wal.last_seq(), 7);
    assert_eq!(wal.append(&[]).unwrap(), 8);
    std::fs::remove_dir_all(&dir).ok();
}
