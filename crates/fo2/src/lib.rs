//! # xic-fo2 — two-variable logic and the key-constraint inexpressibility
//!
//! Section 1 of Fan & Siméon (PODS 2000) shows that basic XML constraints
//! escape two-variable first-order logic (`FO²`): Figure 1 exhibits
//! structures `G` and `G'` that are `FO²`-equivalent (via the 2-pebble
//! Ehrenfeucht–Fraïssé game) yet are distinguished by the unary key
//! constraint
//!
//! ```text
//! φ = τ.l → τ  ≡  ∀x∀y (∃z (l(x,z) ∧ l(y,z)) → x = y)
//! ```
//!
//! (note φ needs *three* variables). This crate makes that argument
//! executable:
//!
//! * [`FoStructure`] — finite structures with named binary relations;
//! * [`two_pebble_equivalent`] — the duplicator-wins test for the
//!   unbounded 2-pebble game, computed as a greatest fixpoint over pebble
//!   configurations (this implies equivalence for every `FO²` sentence,
//!   indeed for infinitary 2-variable logic);
//! * [`FoStructure::satisfies_unary_key`] — direct evaluation of φ;
//! * [`figure1`] — the Figure-1 pair, reconstructed as a `2n`-edge
//!   *matching* (`G`: each xᵢ has its own l-value, φ holds) versus `n`
//!   *two-ray stars* (`G'`: xᵢ-pairs share an l-value, φ fails): the two
//!   are 2-pebble-equivalent because `FO²` without counting quantifiers
//!   cannot distinguish in-degree 1 from in-degree 2 once both 1-types
//!   occur at least twice.
//!
//! Experiment E9 runs the game on the pair, verifies equivalence, and
//! verifies φ separates them — the machine-checked version of the paper's
//! inexpressibility claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod formula;

pub use formula::{probes, Fo2, Var};

use std::collections::{BTreeMap, BTreeSet, HashSet};

use xic_model::Name;

/// A finite relational structure with named binary relations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FoStructure {
    /// Universe size; elements are `0..size`.
    pub size: u32,
    /// Named binary relations.
    pub rels: BTreeMap<Name, BTreeSet<(u32, u32)>>,
}

impl FoStructure {
    /// A structure with `size` elements and no relations.
    pub fn new(size: u32) -> Self {
        FoStructure {
            size,
            rels: BTreeMap::new(),
        }
    }

    /// Adds a tuple to relation `rel`.
    pub fn add(&mut self, rel: impl Into<Name>, a: u32, b: u32) -> &mut Self {
        assert!(a < self.size && b < self.size, "element out of universe");
        self.rels.entry(rel.into()).or_default().insert((a, b));
        self
    }

    /// Relation membership.
    pub fn holds(&self, rel: &str, a: u32, b: u32) -> bool {
        self.rels.get(rel).is_some_and(|r| r.contains(&(a, b)))
    }

    /// Evaluates the unary key constraint `φ = τ.l → τ`:
    /// no two distinct elements share an `l`-successor.
    pub fn satisfies_unary_key(&self, rel: &str) -> bool {
        let Some(r) = self.rels.get(rel) else {
            return true;
        };
        let mut owner: BTreeMap<u32, u32> = BTreeMap::new();
        for &(x, z) in r {
            match owner.get(&z) {
                Some(&y) if y != x => return false,
                _ => {
                    owner.insert(z, x);
                }
            }
        }
        true
    }

    /// All relation names of two structures (for the game's atom checks).
    fn rel_names<'a>(&'a self, other: &'a FoStructure) -> BTreeSet<&'a Name> {
        self.rels.keys().chain(other.rels.keys()).collect()
    }
}

/// A pebble configuration: positions of the two pebbles (unplaced = None).
type Config = (Option<u32>, Option<u32>);

/// Do the placed pebbles of two configurations have the same atomic type?
fn compatible(g: &FoStructure, h: &FoStructure, a: Config, b: Config) -> bool {
    if a.0.is_some() != b.0.is_some() || a.1.is_some() != b.1.is_some() {
        return false;
    }
    if let (Some(a0), Some(a1), Some(b0), Some(b1)) = (a.0, a.1, b.0, b.1) {
        if (a0 == a1) != (b0 == b1) {
            return false;
        }
    }
    for rel in g.rel_names(h) {
        let pairs = [(a.0, a.1, b.0, b.1), (a.1, a.0, b.1, b.0)];
        for (x, y, u, v) in pairs {
            if let (Some(x), Some(y), Some(u), Some(v)) = (x, y, u, v) {
                if g.holds(rel, x, y) != h.holds(rel, u, v) {
                    return false;
                }
            }
        }
        for (x, u) in [(a.0, b.0), (a.1, b.1)] {
            if let (Some(x), Some(u)) = (x, u) {
                if g.holds(rel, x, x) != h.holds(rel, u, u) {
                    return false;
                }
            }
        }
    }
    true
}

/// Decides whether the duplicator wins the **unbounded** 2-pebble
/// Ehrenfeucht–Fraïssé game on `(g, h)` from the empty configuration —
/// i.e. whether `g` and `h` agree on all of (infinitary) two-variable
/// logic, hence on every `FO²` sentence.
///
/// Greatest-fixpoint computation: start from all atom-compatible
/// configuration pairs; repeatedly delete pairs where the spoiler has a
/// move (re-placing either pebble, in either structure) that the
/// duplicator cannot answer; accept iff the empty pair survives.
pub fn two_pebble_equivalent(g: &FoStructure, h: &FoStructure) -> bool {
    game_fixpoint(g, h, None)
}

/// The **m-round** 2-pebble game: duplicator wins the game of `rounds`
/// rounds iff `g` and `h` agree on all `FO²` sentences of quantifier rank
/// ≤ `rounds`. (Monotone in `rounds`; the fixpoint of
/// [`two_pebble_equivalent`] is the limit.)
pub fn two_pebble_equivalent_bounded(g: &FoStructure, h: &FoStructure, rounds: usize) -> bool {
    game_fixpoint(g, h, Some(rounds))
}

/// Shared refinement loop: start from atom-compatible configuration pairs
/// and delete pairs the spoiler wins from, for `max_rounds` refinements
/// (or to the greatest fixpoint when `None`).
fn game_fixpoint(g: &FoStructure, h: &FoStructure, max_rounds: Option<usize>) -> bool {
    let g_confs: Vec<Config> = confs(g.size);
    let h_confs: Vec<Config> = confs(h.size);
    let mut w: HashSet<(Config, Config)> = HashSet::new();
    for &a in &g_confs {
        for &b in &h_confs {
            if compatible(g, h, a, b) {
                w.insert((a, b));
            }
        }
    }
    let mut round = 0usize;
    loop {
        if let Some(m) = max_rounds {
            if round >= m {
                break;
            }
        }
        // One round of the bounded game = one simultaneous refinement.
        let current: Vec<(Config, Config)> = w.iter().copied().collect();
        let snapshot = w.clone();
        let mut removed = false;
        for (a, b) in current {
            if !duplicator_survives(g, h, a, b, &snapshot) {
                w.remove(&(a, b));
                removed = true;
            }
        }
        round += 1;
        if !removed {
            break;
        }
    }
    w.contains(&((None, None), (None, None)))
}

fn confs(size: u32) -> Vec<Config> {
    let mut out = Vec::new();
    let opts: Vec<Option<u32>> = std::iter::once(None).chain((0..size).map(Some)).collect();
    for &p in &opts {
        for &q in &opts {
            out.push((p, q));
        }
    }
    out
}

/// Can the duplicator answer every spoiler move from `(a, b)` inside `w`?
fn duplicator_survives(
    g: &FoStructure,
    h: &FoStructure,
    a: Config,
    b: Config,
    w: &HashSet<(Config, Config)>,
) -> bool {
    // Spoiler re-places pebble `p` in g to any element; duplicator must
    // answer in h — and vice versa.
    for p in [0usize, 1] {
        // Spoiler plays in g.
        for x in 0..g.size {
            let a2 = place(a, p, x);
            let ok = (0..h.size).any(|u| w.contains(&(a2, place(b, p, u))));
            if !ok {
                return false;
            }
        }
        // Spoiler plays in h.
        for u in 0..h.size {
            let b2 = place(b, p, u);
            let ok = (0..g.size).any(|x| w.contains(&(place(a, p, x), b2)));
            if !ok {
                return false;
            }
        }
    }
    true
}

fn place(c: Config, p: usize, v: u32) -> Config {
    if p == 0 {
        (Some(v), c.1)
    } else {
        (c.0, Some(v))
    }
}

/// The Figure-1 pair, parameterized by `n ≥ 2`:
///
/// * `G` — a *matching* with `2n` edges: sources `x₀..x₂ₙ₋₁`, sinks
///   `z₀..z₂ₙ₋₁`, `l(xᵢ, zᵢ)`; every `l`-value is private, so the key
///   constraint `τ.l → τ` **holds**;
/// * `G'` — `n` *two-ray stars*: sources `x₀..x₂ₙ₋₁`, sinks `w₀..wₙ₋₁`,
///   with `l(x₂ᵢ, wᵢ)` and `l(x₂ᵢ₊₁, wᵢ)`; pairs of elements share their
///   `l`-value, so `τ.l → τ` **fails**.
///
/// The two are 2-pebble-equivalent: both realize the same 1-types (sources
/// with out-degree ≥ 1, sinks with in-degree ≥ 1) with multiplicity ≥ 2,
/// and with only two variables one cannot name two distinct predecessors
/// of a shared sink simultaneously — distinguishing them needs the third
/// variable of `φ = ∀x∀y(∃z(l(x,z) ∧ l(y,z)) → x = y)`.
pub fn figure1(n: u32) -> (FoStructure, FoStructure) {
    assert!(n >= 2, "need at least two stars for FO²-equivalence");
    let mut g = FoStructure::new(4 * n);
    for i in 0..2 * n {
        g.add("l", i, 2 * n + i);
    }
    let mut h = FoStructure::new(3 * n);
    for i in 0..n {
        h.add("l", 2 * i, 2 * n + i);
        h.add("l", 2 * i + 1, 2 * n + i);
    }
    (g, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reproduces_the_papers_claim() {
        for n in 2..=4 {
            let (g, h) = figure1(n);
            assert!(g.satisfies_unary_key("l"), "matching satisfies φ (n={n})");
            assert!(!h.satisfies_unary_key("l"), "star violates φ (n={n})");
            assert!(
                two_pebble_equivalent(&g, &h),
                "G ≡_FO² G' must hold (n={n})"
            );
        }
    }

    #[test]
    fn game_separates_structures_differing_in_fo2() {
        // An edge vs no edge is FO²-distinguishable (∃x∃y l(x,y)).
        let mut g = FoStructure::new(2);
        g.add("l", 0, 1);
        let h = FoStructure::new(2);
        assert!(!two_pebble_equivalent(&g, &h));

        // A reflexive point vs an irreflexive edge.
        let mut g = FoStructure::new(1);
        g.add("l", 0, 0);
        let mut h = FoStructure::new(2);
        h.add("l", 0, 1);
        assert!(!two_pebble_equivalent(&g, &h));
    }

    #[test]
    fn game_is_reflexive_and_respects_isomorphism() {
        let (g, _) = figure1(2);
        assert!(two_pebble_equivalent(&g, &g));
        // Renamed copy: the same 4-edge matching with indices reversed.
        let mut h = FoStructure::new(8);
        for i in 0..4u32 {
            h.add("l", 7 - i, i);
        }
        assert!(two_pebble_equivalent(&g, &h));
    }

    #[test]
    fn key_evaluation() {
        let mut g = FoStructure::new(3);
        g.add("l", 0, 2).add("l", 1, 2);
        assert!(!g.satisfies_unary_key("l"));
        assert!(g.satisfies_unary_key("m")); // absent relation: vacuous
        let mut h = FoStructure::new(4);
        h.add("l", 0, 2).add("l", 1, 3);
        assert!(h.satisfies_unary_key("l"));
        // An element with two l-values is fine (keys constrain sharing,
        // not multiplicity).
        let mut k = FoStructure::new(3);
        k.add("l", 0, 1).add("l", 0, 2);
        assert!(k.satisfies_unary_key("l"));
    }

    #[test]
    fn bounded_game_is_monotone_and_limits_to_fixpoint() {
        let (g, h) = figure1(2);
        // Equivalent pair: every bound agrees.
        for m in 0..6 {
            assert!(two_pebble_equivalent_bounded(&g, &h, m), "m={m}");
        }
        // Inequivalent pair: winning bound exists and is monotone.
        let mut a = FoStructure::new(2);
        a.add("l", 0, 1);
        let b = FoStructure::new(2);
        assert!(two_pebble_equivalent_bounded(&a, &b, 0));
        let first_sep = (1..6)
            .find(|&m| !two_pebble_equivalent_bounded(&a, &b, m))
            .expect("separated at some rank");
        for m in first_sep..6 {
            assert!(!two_pebble_equivalent_bounded(&a, &b, m));
        }
        // The separating sentence ∃x∃y l(x,y) has rank 2, so the game
        // separates by round 2 at the latest.
        assert!(first_sep <= 2, "first separation at {first_sep}");
    }

    #[test]
    fn different_relation_names_matter() {
        let mut g = FoStructure::new(2);
        g.add("l", 0, 1);
        let mut h = FoStructure::new(2);
        h.add("m", 0, 1);
        assert!(!two_pebble_equivalent(&g, &h));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn add_checks_universe() {
        FoStructure::new(1).add("l", 0, 1);
    }
}
