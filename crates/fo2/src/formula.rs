//! A syntax and evaluator for two-variable first-order sentences, used to
//! probe the Figure-1 pair: every `FO²` sentence must agree on `G` and
//! `G'` (the game certifies this wholesale; the evaluator lets tests try
//! concrete would-be distinguishers), while the three-variable key
//! sentence separates them.

use std::fmt;

use crate::FoStructure;

/// The two variables of `FO²`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Var {
    /// The variable `x`.
    X,
    /// The variable `y`.
    Y,
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Var::X => f.write_str("x"),
            Var::Y => f.write_str("y"),
        }
    }
}

/// An `FO²` formula over binary relations and equality.
#[derive(Clone, Debug)]
pub enum Fo2 {
    /// `r(v, w)`.
    Rel(String, Var, Var),
    /// `v = w`.
    Eq(Var, Var),
    /// Negation.
    Not(Box<Fo2>),
    /// Conjunction.
    And(Box<Fo2>, Box<Fo2>),
    /// Disjunction.
    Or(Box<Fo2>, Box<Fo2>),
    /// `∃v φ` (rebinds one of the two variables).
    Exists(Var, Box<Fo2>),
    /// `∀v φ`.
    Forall(Var, Box<Fo2>),
}

impl Fo2 {
    /// `r(v, w)`.
    pub fn rel(r: impl Into<String>, v: Var, w: Var) -> Fo2 {
        Fo2::Rel(r.into(), v, w)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)] // constructor mirroring ∃/∀/∧/∨
    pub fn not(f: Fo2) -> Fo2 {
        Fo2::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(a: Fo2, b: Fo2) -> Fo2 {
        Fo2::And(Box::new(a), Box::new(b))
    }

    /// Disjunction.
    pub fn or(a: Fo2, b: Fo2) -> Fo2 {
        Fo2::Or(Box::new(a), Box::new(b))
    }

    /// Existential quantification.
    pub fn exists(v: Var, f: Fo2) -> Fo2 {
        Fo2::Exists(v, Box::new(f))
    }

    /// Universal quantification.
    pub fn forall(v: Var, f: Fo2) -> Fo2 {
        Fo2::Forall(v, Box::new(f))
    }

    /// Quantifier rank.
    pub fn rank(&self) -> usize {
        match self {
            Fo2::Rel(..) | Fo2::Eq(..) => 0,
            Fo2::Not(f) => f.rank(),
            Fo2::And(a, b) | Fo2::Or(a, b) => a.rank().max(b.rank()),
            Fo2::Exists(_, f) | Fo2::Forall(_, f) => 1 + f.rank(),
        }
    }

    /// Evaluates under a (possibly partial) assignment; free variables
    /// must be assigned or evaluation panics — evaluate *sentences* with
    /// [`Fo2::holds`].
    fn eval(&self, s: &FoStructure, x: Option<u32>, y: Option<u32>) -> bool {
        let get = |v: Var| -> u32 {
            match v {
                Var::X => x.expect("free variable x"),
                Var::Y => y.expect("free variable y"),
            }
        };
        match self {
            Fo2::Rel(r, v, w) => s.holds(r, get(*v), get(*w)),
            Fo2::Eq(v, w) => get(*v) == get(*w),
            Fo2::Not(f) => !f.eval(s, x, y),
            Fo2::And(a, b) => a.eval(s, x, y) && b.eval(s, x, y),
            Fo2::Or(a, b) => a.eval(s, x, y) || b.eval(s, x, y),
            Fo2::Exists(v, f) => (0..s.size).any(|e| match v {
                Var::X => f.eval(s, Some(e), y),
                Var::Y => f.eval(s, x, Some(e)),
            }),
            Fo2::Forall(v, f) => (0..s.size).all(|e| match v {
                Var::X => f.eval(s, Some(e), y),
                Var::Y => f.eval(s, x, Some(e)),
            }),
        }
    }

    /// Truth of a *sentence* (no free variables) in `s`.
    pub fn holds(&self, s: &FoStructure) -> bool {
        self.eval(s, None, None)
    }
}

impl fmt::Display for Fo2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fo2::Rel(r, v, w) => write!(f, "{r}({v},{w})"),
            Fo2::Eq(v, w) => write!(f, "{v}={w}"),
            Fo2::Not(g) => write!(f, "¬{g}"),
            Fo2::And(a, b) => write!(f, "({a} ∧ {b})"),
            Fo2::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Fo2::Exists(v, g) => write!(f, "∃{v} {g}"),
            Fo2::Forall(v, g) => write!(f, "∀{v} {g}"),
        }
    }
}

/// A library of natural `FO²` probes over one binary relation `l` —
/// candidate distinguishers a reader might try against the Figure-1 pair.
pub fn probes(rel: &str) -> Vec<Fo2> {
    use Var::{X, Y};
    let l = |v, w| Fo2::rel(rel, v, w);
    vec![
        // Something has an l-successor.
        Fo2::exists(X, Fo2::exists(Y, l(X, Y))),
        // Everything has an l-successor.
        Fo2::forall(X, Fo2::exists(Y, l(X, Y))),
        // Something is an l-sink with a predecessor.
        Fo2::exists(
            X,
            Fo2::and(Fo2::exists(Y, l(Y, X)), Fo2::not(Fo2::exists(Y, l(X, Y)))),
        ),
        // Two distinct elements exist.
        Fo2::exists(X, Fo2::exists(Y, Fo2::not(Fo2::Eq(X, Y)))),
        // Every edge is irreflexive.
        Fo2::forall(X, Fo2::not(l(X, X))),
        // There are two distinct sinks (needs variable reuse).
        Fo2::exists(
            X,
            Fo2::and(
                Fo2::exists(Y, l(Y, X)),
                Fo2::exists(
                    Y,
                    Fo2::and(
                        Fo2::not(Fo2::Eq(X, Y)),
                        Fo2::exists(X, Fo2::and(Fo2::Eq(X, Y), Fo2::exists(Y, l(Y, X)))),
                    ),
                ),
            ),
        ),
        // Sources never coincide with sinks.
        Fo2::forall(
            X,
            Fo2::not(Fo2::and(Fo2::exists(Y, l(X, Y)), Fo2::exists(Y, l(Y, X)))),
        ),
        // Rank-3 nesting: everyone with a successor has a successor with a
        // predecessor.
        Fo2::forall(
            X,
            Fo2::or(
                Fo2::not(Fo2::exists(Y, l(X, Y))),
                Fo2::exists(Y, Fo2::and(l(X, Y), Fo2::exists(X, l(X, Y)))),
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{figure1, two_pebble_equivalent};

    #[test]
    fn evaluator_basics() {
        let mut s = FoStructure::new(3);
        s.add("l", 0, 1).add("l", 1, 2);
        use Var::{X, Y};
        // ∃x∃y l(x,y)
        assert!(Fo2::exists(X, Fo2::exists(Y, Fo2::rel("l", X, Y))).holds(&s));
        // ∀x∃y l(x,y) — 2 has no successor.
        assert!(!Fo2::forall(X, Fo2::exists(Y, Fo2::rel("l", X, Y))).holds(&s));
        // ∃x l(x,x) — no loops.
        assert!(!Fo2::exists(X, Fo2::rel("l", X, X)).holds(&s));
        // Ranks.
        assert_eq!(
            Fo2::exists(X, Fo2::exists(Y, Fo2::rel("l", X, Y))).rank(),
            2
        );
    }

    #[test]
    fn probes_agree_on_the_figure1_pair() {
        // The game certifies FO² equivalence; every concrete probe must
        // therefore agree — including the rank-3 ones (variable *reuse*
        // stays within FO²).
        for n in [2, 3] {
            let (g, h) = figure1(n);
            assert!(two_pebble_equivalent(&g, &h));
            for p in probes("l") {
                assert_eq!(
                    p.holds(&g),
                    p.holds(&h),
                    "FO² probe {p} distinguishes the pair at n={n}"
                );
            }
        }
    }

    #[test]
    fn probes_distinguish_inequivalent_pairs() {
        // Sanity: the probe library is not trivially constant — it
        // separates an edge from an empty structure.
        let mut g = FoStructure::new(2);
        g.add("l", 0, 1);
        let h = FoStructure::new(2);
        let separated = probes("l").iter().any(|p| p.holds(&g) != p.holds(&h));
        assert!(separated);
    }

    #[test]
    fn display_renders() {
        use Var::{X, Y};
        let f = Fo2::forall(X, Fo2::not(Fo2::and(Fo2::rel("l", X, Y), Fo2::Eq(X, Y))));
        assert_eq!(f.to_string(), "∀x ¬(l(x,y) ∧ x=y)");
    }
}
