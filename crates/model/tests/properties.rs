//! Property-based tests for the data-tree model: builder invariants,
//! traversal consistency, and index agreement on arbitrary trees.

use proptest::prelude::*;
use xic_model::{AttrValue, DataTree, ExtIndex, TreeBuilder};

/// A recipe for building an arbitrary tree: for each node after the root,
/// the parent index (within already-created nodes), a label index, and an
/// optional attribute/text payload.
#[derive(Debug, Clone)]
struct Recipe {
    nodes: Vec<(usize, u8, bool, bool)>, // (parent, label, has_attr, has_text)
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop::collection::vec((0usize..64, 0u8..5, any::<bool>(), any::<bool>()), 0..40)
        .prop_map(|nodes| Recipe { nodes })
}

fn build(recipe: &Recipe) -> DataTree {
    let labels = ["a", "b", "c", "d", "e"];
    let mut b = TreeBuilder::new();
    let root = b.node("root");
    let mut ids = vec![root];
    for (i, &(parent, label, has_attr, has_text)) in recipe.nodes.iter().enumerate() {
        let parent = ids[parent % ids.len()];
        let n = b.child_node(parent, labels[label as usize]).unwrap();
        if has_attr {
            b.attr(n, "x", AttrValue::single(format!("v{i}"))).unwrap();
        }
        if has_text {
            b.text(n, format!("t{i}")).unwrap();
        }
        ids.push(n);
    }
    b.finish(root).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn preorder_visits_every_node_once(r in recipe_strategy()) {
        let t = build(&r);
        let visited: Vec<_> = t.preorder().collect();
        prop_assert_eq!(visited.len(), t.len());
        let mut sorted = visited.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), t.len());
        prop_assert_eq!(visited[0], t.root());
    }

    #[test]
    fn ext_index_agrees_with_scan(r in recipe_strategy()) {
        let t = build(&r);
        let idx = ExtIndex::build(&t);
        for tau in ["root", "a", "b", "c", "d", "e", "zzz"] {
            let scan: Vec<_> = t.ext(tau).collect();
            prop_assert_eq!(idx.ext(tau), scan.as_slice());
        }
    }

    #[test]
    fn depth_is_consistent_with_parent_links(r in recipe_strategy()) {
        let t = build(&r);
        for id in t.node_ids() {
            match t.node(id).parent() {
                None => prop_assert_eq!(t.depth(id), 0),
                Some(p) => prop_assert_eq!(t.depth(id), t.depth(p) + 1),
            }
        }
    }

    #[test]
    fn children_point_back_to_parent(r in recipe_strategy()) {
        let t = build(&r);
        for id in t.node_ids() {
            for c in t.node(id).child_nodes() {
                prop_assert_eq!(t.node(c).parent(), Some(id));
            }
        }
    }

    #[test]
    fn attr_values_round_trip(r in recipe_strategy()) {
        let t = build(&r);
        for (i, &(_, _, has_attr, _)) in r.nodes.iter().enumerate() {
            if has_attr {
                // Node i+1 (after root) carries attribute x = v{i}.
                let id = t.node_ids().nth(i + 1).unwrap();
                let expected = format!("v{i}");
                prop_assert_eq!(
                    t.attr(id, "x").and_then(AttrValue::as_single),
                    Some(&expected)
                );
            }
        }
    }
}
