//! # xic-model — the XML data model of "Integrity Constraints for XML"
//!
//! This crate implements the data model of Section 2.1 of
//! Fan & Siméon, *Integrity Constraints for XML* (PODS 2000).
//!
//! An XML document is represented as an ordered, annotated **data tree**
//! `(V, elem, att, root)` (Definition 2.1):
//!
//! * `V` — a set of vertices ([`NodeId`]s into a [`DataTree`]);
//! * `elem` — maps each vertex to its element label and its ordered list of
//!   children, each child being either a string value or a sub-tree;
//! * `att` — a partial function from (vertex, attribute name) to a *set* of
//!   atomic values (XML attributes are unordered, and `IDREFS`-style
//!   attributes are set-valued);
//! * `root` — the distinguished root vertex.
//!
//! The crate also provides the notation of §2.1:
//!
//! * [`DataTree::ext`] — `ext(τ)`, the set of vertices labelled `τ`;
//! * [`DataTree::attr`] — `x.l`, the value of attribute `l` at vertex `x`;
//! * [`DataTree::tuple`] — `x[X]` for a sequence `X` of attributes;
//! * [`ExtIndex`] — a precomputed `τ ↦ ext(τ)` index for hot paths;
//! * [`Interner`]/[`Sym`] — a string intern pool turning attribute-value
//!   comparisons into `u32` operations in hot validation paths.
//!
//! Trees are built through [`TreeBuilder`], which enforces the single-parent
//! invariant of Definition 2.1 by construction. Finished trees can be
//! *edited* in place (subtree insert/delete, attribute and text updates);
//! every mutation returns a typed [`Edit`] delta so that derived indexes —
//! notably incremental validators — can follow along without rescanning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod interner;
mod name;
mod render;
mod tree;

pub use hash::{FastHashMap, FastHashSet, FastHasher};
pub use interner::{Interner, Sym};
pub use name::Name;
pub use render::{render_tree, RenderOptions};
pub use tree::{
    AttrValue, Child, DataTree, Edit, ExtIndex, ModelError, Node, NodeId, RawNode, TreeBuilder,
    Value,
};
