//! String interning for hot validation paths.
//!
//! Constraint checking compares attribute and sub-element *values* — not
//! names — millions of times on large documents. Interning each distinct
//! value once turns every subsequent comparison, hash, and set probe into a
//! `u32` operation, and shrinks columnar value indexes to a quarter of the
//! pointer size.
//!
//! The pool is built for the streaming hot path: distinct strings live
//! back-to-back in one bump-allocated byte arena (addressed by
//! `(offset, len)` spans, so a million symbols cost two flat `Vec`s, not a
//! million heap allocations), and lookups go through an open-addressing
//! table of 8-byte slots, each holding a 32-bit hash tag. A call to
//! [`Interner::intern_bytes`] hashes the *borrowed* slice exactly once,
//! compares candidates tag-first, and copies bytes only when the string has
//! never been seen — no owned temporaries on the hit path, and table growth
//! rehashes nothing because the stored tags are reused.

use std::hash::Hasher;
use std::num::NonZeroU32;

use crate::hash::FastHasher;

/// An interned string: a dense `u32` handle into an [`Interner`].
///
/// Two `Sym`s from the same interner are equal iff the strings they denote
/// are equal, so `Sym` supports O(1) equality/hash where the underlying
/// values would need full comparisons. `Sym` order is *allocation* order,
/// not lexicographic order.
///
/// Internally the handle is a `NonZeroU32` (index + 1), so `Option<Sym>` is
/// 4 bytes — columnar value indexes holding millions of optional symbols
/// stay half the size they would be with a plain `u32`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(NonZeroU32);

impl Sym {
    /// The symbol with dense index `index` (0-based allocation order): the
    /// inverse of [`Sym::index`]. This is the decode path for serialized
    /// symbol columns; a symbol fabricated for an index the owning
    /// interner never allocated makes a later [`Interner::resolve`] panic,
    /// so deserializers must bounds-check against [`Interner::len`].
    ///
    /// # Panics
    /// If `index == u32::MAX` (the unrepresentable handle).
    #[inline]
    pub fn from_index(index: u32) -> Self {
        Sym(NonZeroU32::new(index.wrapping_add(1)).expect("interner overflow"))
    }

    /// The dense index of this symbol (0-based allocation order).
    #[inline]
    pub fn index(self) -> usize {
        self.0.get() as usize - 1
    }
}

/// One open-addressing slot: a 32-bit hash tag plus the symbol (offset by
/// one so the all-zero slot means *empty*). Eight bytes per slot — eight
/// slots per cache line — matters more than tag width here: with millions
/// of distinct values the table far exceeds cache, and every intern is one
/// random memory touch whose cost is set by how much of the line is
/// useful. The tag folds the full 64-bit hash, so growth is pure
/// reinsertion (no string is ever rehashed) and probes reject non-matches
/// without touching the arena; a 1-in-2³² tag collision just falls back to
/// the byte comparison.
#[derive(Clone, Copy, Debug)]
struct Slot {
    tag: u32,
    sym_plus1: u32,
}

const EMPTY: Slot = Slot {
    tag: 0,
    sym_plus1: 0,
};

/// Folds a string's 64-bit hash into the 32-bit slot tag, which also
/// provides the probe start index.
#[inline]
fn hash_tag(s: &[u8]) -> u32 {
    let mut h = FastHasher::default();
    h.write(s);
    let hash = h.finish();
    (hash ^ (hash >> 32)) as u32
}

/// A string intern pool mapping distinct strings to dense [`Sym`] handles.
///
/// ```
/// use xic_model::Interner;
/// let mut pool = Interner::new();
/// let a = pool.intern("alice");
/// let b = pool.intern("bob");
/// assert_eq!(a, pool.intern("alice"));
/// assert_ne!(a, b);
/// assert_eq!(pool.resolve(a), "alice");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Interner {
    /// Every distinct string's bytes, bump-allocated back to back.
    arena: Vec<u8>,
    /// `sym.index() ↦ (arena offset, byte length)`.
    spans: Vec<(u32, u32)>,
    /// Open-addressing lookup table; power-of-two capacity.
    table: Vec<Slot>,
}

impl Interner {
    /// An empty pool.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `s`, returning its symbol (allocating one if new).
    pub fn intern(&mut self, s: &str) -> Sym {
        self.intern_bytes(s.as_bytes())
    }

    /// Interns a borrowed UTF-8 byte slice, hashing it exactly once and
    /// copying it into the arena only on first sight.
    ///
    /// The slice must be valid UTF-8 (callers hold `&str`-derived slices;
    /// this signature only avoids forcing an owned temporary per lookup).
    /// Interning invalid UTF-8 makes a later [`Interner::resolve`] of the
    /// symbol panic.
    pub fn intern_bytes(&mut self, s: &[u8]) -> Sym {
        debug_assert!(
            std::str::from_utf8(s).is_ok(),
            "interned bytes must be UTF-8"
        );
        if self.spans.len() + 1 > self.table.len() / 2 {
            self.grow();
        }
        let tag = hash_tag(s);
        let mask = self.table.len() - 1;
        let mut i = tag as usize & mask;
        loop {
            let slot = self.table[i];
            if slot.sym_plus1 == 0 {
                let sym = u32::try_from(self.spans.len()).expect("interner overflow");
                let start = u32::try_from(self.arena.len()).expect("interner arena overflow");
                let len = u32::try_from(s.len()).expect("interner arena overflow");
                self.arena.extend_from_slice(s);
                self.spans.push((start, len));
                self.table[i] = Slot {
                    tag,
                    sym_plus1: sym + 1,
                };
                return Sym::from_index(sym);
            }
            if slot.tag == tag && self.span_bytes(slot.sym_plus1 - 1) == s {
                return Sym::from_index(slot.sym_plus1 - 1);
            }
            i = (i + 1) & mask;
        }
    }

    /// The symbol of `s` if it has been interned, without allocating.
    pub fn get(&self, s: &str) -> Option<Sym> {
        if self.table.is_empty() {
            return None;
        }
        let bytes = s.as_bytes();
        let tag = hash_tag(bytes);
        let mask = self.table.len() - 1;
        let mut i = tag as usize & mask;
        loop {
            let slot = self.table[i];
            if slot.sym_plus1 == 0 {
                return None;
            }
            if slot.tag == tag && self.span_bytes(slot.sym_plus1 - 1) == bytes {
                return Some(Sym::from_index(slot.sym_plus1 - 1));
            }
            i = (i + 1) & mask;
        }
    }

    /// The string a symbol denotes.
    ///
    /// # Panics
    /// If `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        std::str::from_utf8(self.span_bytes(sym.index() as u32))
            .expect("interner holds valid UTF-8")
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// The raw byte arena: every distinct string's bytes back to back, in
    /// allocation order. Together with [`Interner::spans`] this is the
    /// complete persistent state of the pool — the lookup table is a pure
    /// cache rebuilt by [`Interner::from_parts`].
    pub fn arena(&self) -> &[u8] {
        &self.arena
    }

    /// The `(arena offset, byte length)` span of each symbol, indexed by
    /// [`Sym::index`]. See [`Interner::arena`].
    pub fn spans(&self) -> &[(u32, u32)] {
        &self.spans
    }

    /// Reassembles a pool from a previously captured
    /// ([`Interner::arena`], [`Interner::spans`]) pair, rebuilding the
    /// lookup table by rehashing every span.
    ///
    /// Returns an error (never panics) when the parts do not describe a
    /// valid pool: an arena that is not UTF-8, a span out of arena bounds
    /// or cutting through a multi-byte character, or two spans denoting
    /// the same string (which would break the one-symbol-per-string
    /// invariant).
    pub fn from_parts(arena: Vec<u8>, spans: Vec<(u32, u32)>) -> Result<Interner, String> {
        if spans.len() >= u32::MAX as usize {
            return Err(format!("interner: {} spans overflow u32", spans.len()));
        }
        // The intern path caps the arena at u32::MAX bytes (span offsets
        // are u32); enforce the same bound here so no span arithmetic can
        // overflow after the rebuild.
        if arena.len() > u32::MAX as usize {
            return Err(format!(
                "interner: arena of {} bytes overflows the u32 span space",
                arena.len()
            ));
        }
        // One SIMD-accelerated UTF-8 pass over the whole arena, then an
        // O(1) char-boundary check per span endpoint. A substring of valid
        // UTF-8 whose endpoints sit on character boundaries is itself
        // valid, so this replaces a `from_utf8` call per span — the
        // dominant cost when warm-starting million-symbol pools.
        let text = std::str::from_utf8(&arena).map_err(|e| {
            format!(
                "interner: arena is not valid UTF-8 at byte {}",
                e.valid_up_to()
            )
        })?;
        for (i, &(start, len)) in spans.iter().enumerate() {
            let end = (start as u64) + (len as u64);
            if end > arena.len() as u64 {
                return Err(format!(
                    "interner: span {i} ({start}+{len}) exceeds arena of {} bytes",
                    arena.len()
                ));
            }
            if !text.is_char_boundary(start as usize) || !text.is_char_boundary(end as usize) {
                return Err(format!("interner: span {i} splits a multi-byte character"));
            }
        }
        let cap = (spans.len() * 2 + 2).next_power_of_two().max(32);
        let mut pool = Interner {
            arena,
            spans,
            table: vec![EMPTY; cap],
        };
        let mask = cap - 1;
        for sym in 0..pool.spans.len() as u32 {
            let tag = hash_tag(pool.span_bytes(sym));
            let mut i = tag as usize & mask;
            loop {
                let slot = pool.table[i];
                if slot.sym_plus1 == 0 {
                    pool.table[i] = Slot {
                        tag,
                        sym_plus1: sym + 1,
                    };
                    break;
                }
                if slot.tag == tag && pool.span_bytes(slot.sym_plus1 - 1) == pool.span_bytes(sym) {
                    return Err(format!(
                        "interner: spans {} and {sym} denote the same string",
                        slot.sym_plus1 - 1
                    ));
                }
                i = (i + 1) & mask;
            }
        }
        Ok(pool)
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    #[inline]
    fn span_bytes(&self, sym: u32) -> &[u8] {
        let (start, len) = self.spans[sym as usize];
        // usize arithmetic: start + len can reach u32::MAX + 1 at the very
        // end of a maximal arena, which would wrap in u32.
        &self.arena[start as usize..start as usize + len as usize]
    }

    /// Doubles the table (≤50% load), reinserting entries from their stored
    /// tags — no string is rehashed.
    #[cold]
    fn grow(&mut self) {
        let cap = (self.table.len() * 2).max(32);
        let old = std::mem::replace(&mut self.table, vec![EMPTY; cap]);
        let mask = cap - 1;
        for slot in old {
            if slot.sym_plus1 == 0 {
                continue;
            }
            let mut i = slot.tag as usize & mask;
            while self.table[i].sym_plus1 != 0 {
                i = (i + 1) & mask;
            }
            self.table[i] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut pool = Interner::new();
        let a = pool.intern("x");
        let b = pool.intern("y");
        let a2 = pool.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.resolve(a), "x");
        assert_eq!(pool.resolve(b), "y");
    }

    #[test]
    fn get_does_not_allocate() {
        let mut pool = Interner::new();
        assert!(pool.get("v").is_none());
        let s = pool.intern("v");
        assert_eq!(pool.get("v"), Some(s));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn intern_bytes_matches_intern() {
        let mut pool = Interner::new();
        let a = pool.intern("värde");
        assert_eq!(pool.intern_bytes("värde".as_bytes()), a);
        assert_eq!(pool.resolve(a), "värde");
        let b = pool.intern_bytes(b"raw");
        assert_eq!(pool.get("raw"), Some(b));
    }

    #[test]
    fn survives_growth_with_many_symbols() {
        let mut pool = Interner::new();
        let syms: Vec<Sym> = (0..10_000).map(|i| pool.intern(&format!("v{i}"))).collect();
        assert_eq!(pool.len(), 10_000);
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(pool.resolve(*s), format!("v{i}"), "symbol {i} after growth");
            assert_eq!(pool.get(&format!("v{i}")), Some(*s));
        }
        // Re-interning allocates nothing new.
        assert_eq!(pool.intern("v123"), syms[123]);
        assert_eq!(pool.len(), 10_000);
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut pool = Interner::new();
        let e = pool.intern("");
        assert_eq!(pool.resolve(e), "");
        assert_eq!(pool.intern(""), e);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn from_parts_round_trips_and_rejects_bad_parts() {
        let mut pool = Interner::new();
        let syms: Vec<Sym> = (0..1000).map(|i| pool.intern(&format!("v{i}"))).collect();
        let rebuilt = Interner::from_parts(pool.arena().to_vec(), pool.spans().to_vec()).unwrap();
        assert_eq!(rebuilt.len(), pool.len());
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(rebuilt.resolve(*s), format!("v{i}"));
            assert_eq!(rebuilt.get(&format!("v{i}")), Some(*s));
        }
        // The rebuilt pool keeps interning new strings densely.
        let mut rebuilt = rebuilt;
        assert_eq!(rebuilt.intern("v42"), syms[42]);
        assert_eq!(rebuilt.intern("fresh").index(), 1000);

        // Span out of bounds.
        assert!(Interner::from_parts(vec![b'a'], vec![(0, 2)]).is_err());
        // Invalid UTF-8.
        assert!(Interner::from_parts(vec![0xFF], vec![(0, 1)]).is_err());
        // Span endpoint inside a multi-byte character.
        assert!(Interner::from_parts("é".as_bytes().to_vec(), vec![(0, 1)]).is_err());
        // Duplicate string.
        assert!(Interner::from_parts(b"xx".to_vec(), vec![(0, 1), (1, 1)]).is_err());
    }

    #[test]
    fn sym_from_index_is_the_inverse_of_index() {
        for i in [0u32, 1, 7, 1 << 20] {
            assert_eq!(Sym::from_index(i).index(), i as usize);
        }
    }

    #[test]
    fn symbols_are_shareable_across_threads() {
        let mut pool = Interner::new();
        let s = pool.intern("shared");
        let pool = std::sync::Arc::new(pool);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || pool.resolve(s).to_string())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), "shared");
        }
    }
}
