//! String interning for hot validation paths.
//!
//! Constraint checking compares attribute and sub-element *values* — not
//! names — millions of times on large documents. Interning each distinct
//! value once turns every subsequent comparison, hash, and set probe into a
//! `u32` operation, and shrinks columnar value indexes to a quarter of the
//! pointer size.

use std::sync::Arc;

use crate::hash::FastHashMap;

/// An interned string: a dense `u32` handle into an [`Interner`].
///
/// Two `Sym`s from the same interner are equal iff the strings they denote
/// are equal, so `Sym` supports O(1) equality/hash where the underlying
/// values would need full comparisons. `Sym` order is *allocation* order,
/// not lexicographic order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(u32);

impl Sym {
    /// The dense index of this symbol (0-based allocation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string intern pool mapping distinct strings to dense [`Sym`] handles.
///
/// ```
/// use xic_model::Interner;
/// let mut pool = Interner::new();
/// let a = pool.intern("alice");
/// let b = pool.intern("bob");
/// assert_eq!(a, pool.intern("alice"));
/// assert_ne!(a, b);
/// assert_eq!(pool.resolve(a), "alice");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Interner {
    // `Arc<str>` is shared between the lookup map and the dense table, so
    // each distinct string is stored once.
    strings: Vec<Arc<str>>,
    map: FastHashMap<Arc<str>, Sym>,
}

impl Interner {
    /// An empty pool.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `s`, returning its symbol (allocating one if new).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.strings.len()).expect("interner overflow"));
        let shared: Arc<str> = Arc::from(s);
        self.strings.push(Arc::clone(&shared));
        self.map.insert(shared, sym);
        sym
    }

    /// The symbol of `s` if it has been interned, without allocating.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// The string a symbol denotes.
    ///
    /// # Panics
    /// If `sym` did not come from this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut pool = Interner::new();
        let a = pool.intern("x");
        let b = pool.intern("y");
        let a2 = pool.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.resolve(a), "x");
        assert_eq!(pool.resolve(b), "y");
    }

    #[test]
    fn get_does_not_allocate() {
        let mut pool = Interner::new();
        assert!(pool.get("v").is_none());
        let s = pool.intern("v");
        assert_eq!(pool.get("v"), Some(s));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn symbols_are_shareable_across_threads() {
        let mut pool = Interner::new();
        let s = pool.intern("shared");
        let pool = std::sync::Arc::new(pool);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || pool.resolve(s).to_string())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), "shared");
        }
    }
}
