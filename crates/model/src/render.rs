//! Textual rendering of data trees in the style of the paper's Figure 2.

use std::fmt::Write as _;

use crate::{Child, DataTree, NodeId};

/// Options controlling [`render_tree`].
#[derive(Clone, Debug)]
pub struct RenderOptions {
    /// Maximum depth rendered (`usize::MAX` for unlimited).
    pub max_depth: usize,
    /// Whether attributes are shown.
    pub show_attrs: bool,
    /// Whether string children are shown.
    pub show_text: bool,
    /// Whether each vertex is prefixed with its node number (`#N`) — the
    /// id an edit script passes to `apply-edits`.
    pub show_ids: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            max_depth: usize::MAX,
            show_attrs: true,
            show_text: true,
            show_ids: false,
        }
    }
}

/// Renders a data tree as an indented outline, one vertex per line, in the
/// style of the paper's Figure 2 (element labels as interior nodes,
/// attributes as `@name = value` annotations, strings as quoted leaves).
///
/// ```
/// use xic_model::{TreeBuilder, AttrValue, render_tree, RenderOptions};
/// let mut b = TreeBuilder::new();
/// let book = b.node("book");
/// let entry = b.child_node(book, "entry").unwrap();
/// b.attr(entry, "isbn", AttrValue::single("1-55860")).unwrap();
/// b.leaf(entry, "title", "Data on the Web").unwrap();
/// let t = b.finish(book).unwrap();
/// let out = render_tree(&t, &RenderOptions::default());
/// assert!(out.contains("book"));
/// assert!(out.contains("@isbn = \"1-55860\""));
/// ```
pub fn render_tree(tree: &DataTree, opts: &RenderOptions) -> String {
    let mut out = String::new();
    render_node(tree, tree.root(), 0, opts, &mut out);
    out
}

fn render_node(tree: &DataTree, id: NodeId, depth: usize, opts: &RenderOptions, out: &mut String) {
    let pad = "  ".repeat(depth);
    let node = tree.node(id);
    if opts.show_ids {
        let _ = write!(out, "{pad}#{} {}", id.index(), node.label);
    } else {
        let _ = write!(out, "{pad}{}", node.label);
    }
    if opts.show_attrs {
        for (name, value) in node.attrs() {
            let _ = write!(out, "  @{name} = {value}");
        }
    }
    out.push('\n');
    if depth >= opts.max_depth {
        return;
    }
    for c in &node.children {
        match c {
            Child::Node(n) => render_node(tree, *n, depth + 1, opts, out),
            Child::Text(t) => {
                if opts.show_text {
                    let _ = writeln!(out, "{pad}  {t:?}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrValue, TreeBuilder};

    fn small() -> DataTree {
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        let entry = b.child_node(book, "entry").unwrap();
        b.attr(entry, "isbn", AttrValue::single("x")).unwrap();
        b.leaf(entry, "title", "T").unwrap();
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["x", "y"])).unwrap();
        b.finish(book).unwrap()
    }

    #[test]
    fn renders_all_vertices() {
        let t = small();
        let s = render_tree(&t, &RenderOptions::default());
        for lbl in ["book", "entry", "title", "ref"] {
            assert!(s.contains(lbl), "missing {lbl} in:\n{s}");
        }
        assert!(s.contains("@isbn = \"x\""));
        assert!(s.contains(r#"{"x", "y"}"#));
        assert!(s.contains("\"T\""));
    }

    #[test]
    fn respects_depth_and_flags() {
        let t = small();
        let s = render_tree(
            &t,
            &RenderOptions {
                max_depth: 0,
                show_attrs: false,
                show_text: false,
                show_ids: false,
            },
        );
        assert_eq!(s.trim(), "book");
    }

    #[test]
    fn show_ids_prefixes_node_numbers() {
        let t = small();
        let s = render_tree(
            &t,
            &RenderOptions {
                show_ids: true,
                ..RenderOptions::default()
            },
        );
        assert!(s.lines().next().unwrap().starts_with("#0 book"), "{s}");
        assert!(s.contains("#1 entry"), "{s}");
    }

    #[test]
    fn indentation_tracks_depth() {
        let t = small();
        let s = render_tree(&t, &RenderOptions::default());
        let entry_line = s.lines().find(|l| l.contains("entry")).unwrap();
        assert!(entry_line.starts_with("  entry"));
        let title_line = s.lines().find(|l| l.contains("title")).unwrap();
        assert!(title_line.starts_with("    title"));
    }
}
