//! A fast, non-cryptographic hasher for hot validation paths.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed against
//! hash-flooding, which costs tens of nanoseconds per probe. Constraint
//! checking hashes short value strings and dense `u32` symbols millions of
//! times per document over data the process generated or parsed itself, so
//! flooding resistance buys nothing here. [`FastHasher`] is a multiply-rotate
//! word hasher (FxHash-style): each 8-byte word is folded into the state
//! with a rotate, xor, and multiply by a Fibonacci-like constant.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate word hasher; see the module docs for the trade-off.
#[derive(Clone, Copy, Debug)]
pub struct FastHasher {
    hash: u64,
}

impl Default for FastHasher {
    fn default() -> Self {
        // A non-zero start state: with a zero state, folding in a zero
        // word would be the identity and e.g. "" / "\0" would collide.
        FastHasher { hash: SEED }
    }
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Full-avalanche finalizer (xor-shift-multiply, Murmur3-style).
        // The word mixer alone leaves high input bits underrepresented in
        // the low output bits, and the table index is taken from the low
        // bits: short little-endian strings with sequential suffixes
        // ("p123456", "p123457", …) would otherwise cluster into long
        // probe chains in large tables.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        BuildHasherDefault::<FastHasher>::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of("abc"), hash_of("abc"));
        assert_eq!(hash_of(42u32), hash_of(42u32));
        assert_eq!(hash_of(vec![1u32, 2, 3]), hash_of(vec![1u32, 2, 3]));
    }

    #[test]
    fn distinct_values_disperse() {
        // Not a collision-freeness proof, just a smoke test that the mixer
        // is not degenerate on small keys.
        let hashes: FastHashSet<u64> = (0..10_000u32).map(hash_of).collect();
        assert_eq!(hashes.len(), 10_000);
        assert_ne!(hash_of("ab"), hash_of("ba"));
        assert_ne!(hash_of(""), hash_of("\0"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastHashMap<String, usize> = FastHashMap::default();
        for i in 0..100 {
            m.insert(format!("k{i}"), i);
        }
        for i in 0..100 {
            assert_eq!(m.get(&format!("k{i}")), Some(&i));
        }
    }
}
