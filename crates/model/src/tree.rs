//! Data trees (Definition 2.1) and their construction.

use std::collections::HashMap;
use std::fmt;

use crate::Name;

/// An atomic value, i.e. an element of the paper's set **S** of string
/// values. All atomic values are of the single type `S`.
pub type Value = String;

/// Identifier of a vertex in a [`DataTree`]'s vertex set `V`.
///
/// Node ids are dense indices assigned in creation order; the root of a tree
/// built with [`TreeBuilder`] is always the node passed to
/// [`TreeBuilder::finish`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A node id from its dense index.
    ///
    /// For engines that reconstruct document order without materializing a
    /// [`DataTree`] (e.g. streaming validation): both the tree and the
    /// event parser assign ids in element-open order, so a counter of open
    /// tags yields ids identical to the tree path's.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index fits u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One entry of a vertex's ordered child list: `elem` maps a vertex to
/// `E × F(S ∪ V)`, so a child is either a string value or a sub-tree vertex.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Child {
    /// A string child (a member of **S**).
    Text(Value),
    /// An element child (a member of `V`).
    Node(NodeId),
}

impl Child {
    /// The node id if this child is an element, else `None`.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Child::Node(n) => Some(*n),
            Child::Text(_) => None,
        }
    }

    /// The text if this child is a string value, else `None`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Child::Text(t) => Some(t),
            Child::Node(_) => None,
        }
    }
}

/// The value of one attribute: a non-empty set of atomic values.
///
/// Definition 2.1 types `att` as `V × A → P(S)`. Single-valued attributes
/// hold a singleton set; set-valued (`IDREFS`-style) attributes hold any
/// finite set. Values are kept sorted and deduplicated so that two equal
/// sets compare equal structurally.
#[derive(Clone, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct AttrValue(Vec<Value>);

impl AttrValue {
    /// A singleton attribute value.
    pub fn single(v: impl Into<Value>) -> Self {
        AttrValue(vec![v.into()])
    }

    /// A set-valued attribute value; duplicates are removed and order is
    /// normalized.
    pub fn set<I, T>(vs: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Value>,
    {
        let mut v: Vec<Value> = vs.into_iter().map(Into::into).collect();
        v.sort();
        v.dedup();
        AttrValue(v)
    }

    /// The members of the value set, in sorted order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// True iff the set is a singleton (as required of single-valued
    /// attributes by Definition 2.4).
    pub fn is_singleton(&self) -> bool {
        self.0.len() == 1
    }

    /// For a singleton set, the unique member.
    pub fn as_single(&self) -> Option<&Value> {
        if self.0.len() == 1 {
            self.0.first()
        } else {
            None
        }
    }

    /// Set membership test (`s ∈ x.l`).
    pub fn contains(&self, v: &str) -> bool {
        self.0.binary_search_by(|x| x.as_str().cmp(v)).is_ok()
    }

    /// Number of values in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the value set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the members in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_single() {
            write!(f, "{v:?}")
        } else {
            write!(f, "{{")?;
            for (i, v) in self.0.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:?}")?;
            }
            write!(f, "}}")
        }
    }
}

/// One vertex of a data tree: its label, ordered children, attributes and
/// parent link.
#[derive(Clone, Debug)]
pub struct Node {
    /// The element name labelling this vertex (first component of `elem`).
    pub label: Name,
    /// The ordered child list (second component of `elem`).
    pub children: Vec<Child>,
    /// The attributes of this vertex (`att(v, ·)`), name-sorted.
    attrs: Vec<(Name, AttrValue)>,
    /// Parent vertex; `None` only for the root.
    parent: Option<NodeId>,
}

impl Node {
    /// Attribute lookup by name.
    pub fn attr(&self, l: &str) -> Option<&AttrValue> {
        self.attrs
            .binary_search_by(|(n, _)| n.as_str().cmp(l))
            .ok()
            .map(|i| &self.attrs[i].1)
    }

    /// Iterates over `(name, value)` attribute pairs in name order.
    pub fn attrs(&self) -> impl Iterator<Item = (&Name, &AttrValue)> {
        self.attrs.iter().map(|(n, v)| (n, v))
    }

    /// The parent vertex, or `None` for the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Iterates over the element children in document order.
    pub fn child_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.children.iter().filter_map(Child::as_node)
    }

    /// Concatenation of the immediate text children (useful for `PCDATA`
    /// content such as `<title>Some title</title>`).
    pub fn text(&self) -> String {
        let mut s = String::new();
        for c in &self.children {
            if let Child::Text(t) = c {
                s.push_str(t);
            }
        }
        s
    }
}

/// Errors raised while constructing or editing a data tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A node was attached below two different parents, violating the tree
    /// condition of Definition 2.1 ("a vertex has at most one parent").
    SecondParent {
        /// The node that already had a parent.
        node: NodeId,
    },
    /// A node id did not belong to this builder/tree.
    UnknownNode(NodeId),
    /// The designated root already has a parent, so it is not a root.
    RootHasParent(NodeId),
    /// The same attribute was set twice on one node.
    DuplicateAttribute {
        /// The node carrying the attribute.
        node: NodeId,
        /// The attribute name set twice.
        attr: Name,
    },
    /// A node other than the root is not reachable from the root.
    Unreachable {
        /// Count of vertices outside the root's tree.
        orphans: usize,
    },
    /// An edit addressed a vertex that was already deleted.
    DeadNode(NodeId),
    /// The root vertex cannot be deleted.
    RootDelete(NodeId),
    /// An insert position exceeded the parent's child count.
    BadPosition {
        /// The parent vertex.
        node: NodeId,
        /// The requested child-list position.
        position: usize,
        /// The parent's current child count.
        len: usize,
    },
    /// [`DataTree::set_text`] addressed a text child that does not exist.
    NoSuchText {
        /// The vertex.
        node: NodeId,
        /// The requested text-child index.
        index: usize,
    },
    /// [`DataTree::remove_attr`] addressed an attribute that is not set.
    NoSuchAttribute {
        /// The vertex.
        node: NodeId,
        /// The missing attribute.
        attr: Name,
    },
    /// [`DataTree::from_raw_parts`] was given parts that do not describe a
    /// well-formed tree (inconsistent tombstone flags, a live vertex
    /// below a dead one, …).
    InvalidParts {
        /// What was inconsistent.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::SecondParent { node } => {
                write!(f, "vertex {node:?} attached below a second parent")
            }
            ModelError::UnknownNode(n) => write!(f, "unknown vertex {n:?}"),
            ModelError::RootHasParent(n) => {
                write!(f, "designated root {n:?} has a parent")
            }
            ModelError::DuplicateAttribute { node, attr } => {
                write!(f, "attribute {attr} set twice on {node:?}")
            }
            ModelError::Unreachable { orphans } => {
                write!(f, "{orphans} vertices are not reachable from the root")
            }
            ModelError::DeadNode(n) => write!(f, "vertex {n:?} was deleted"),
            ModelError::RootDelete(n) => {
                write!(f, "cannot delete the root vertex {n:?}")
            }
            ModelError::BadPosition {
                node,
                position,
                len,
            } => {
                write!(
                    f,
                    "position {position} out of range for {node:?} with {len} children"
                )
            }
            ModelError::NoSuchText { node, index } => {
                write!(f, "vertex {node:?} has no text child #{index}")
            }
            ModelError::NoSuchAttribute { node, attr } => {
                write!(f, "no attribute {attr} on {node:?}")
            }
            ModelError::InvalidParts { detail } => {
                write!(f, "invalid raw tree parts: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A typed delta describing one successful mutation of a [`DataTree`].
///
/// Edits are the currency of incremental revalidation: applying a mutation
/// method on [`DataTree`] returns the `Edit` actually performed, carrying
/// enough context (parent, position, displaced values) for a consumer to
/// update derived indexes without rescanning the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Edit {
    /// A subtree was grafted under `parent` at child-list `position`.
    InsertSubtree {
        /// The vertex the subtree was attached to.
        parent: NodeId,
        /// Position in `parent`'s full (text + element) child list.
        position: usize,
        /// The root of the newly created subtree (ids are freshly
        /// allocated at the end of the arena, in fragment document order).
        root: NodeId,
        /// Number of vertices created.
        count: usize,
    },
    /// The subtree rooted at `root` was detached and deleted.
    DeleteSubtree {
        /// The former parent of the deleted root.
        parent: NodeId,
        /// The child-list position the subtree was removed from.
        position: usize,
        /// The root of the deleted subtree (its id is never reused).
        root: NodeId,
        /// Number of vertices deleted.
        count: usize,
    },
    /// Attribute `attr` on `node` was set (created or replaced).
    SetAttr {
        /// The vertex edited.
        node: NodeId,
        /// The attribute name.
        attr: Name,
        /// The previous value, if the attribute was already set.
        old: Option<AttrValue>,
        /// The new value.
        new: AttrValue,
    },
    /// Attribute `attr` on `node` was removed.
    RemoveAttr {
        /// The vertex edited.
        node: NodeId,
        /// The attribute name.
        attr: Name,
        /// The removed value.
        old: AttrValue,
    },
    /// The `index`-th text child of `node` was replaced.
    SetText {
        /// The vertex edited.
        node: NodeId,
        /// Index among the vertex's text children (element children do
        /// not count).
        index: usize,
        /// The previous text.
        old: Value,
        /// The new text.
        new: Value,
    },
}

impl fmt::Display for Edit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edit::InsertSubtree {
                parent,
                position,
                root,
                count,
            } => write!(
                f,
                "insert {root:?} ({count} vertices) under {parent:?} at {position}"
            ),
            Edit::DeleteSubtree {
                parent,
                position,
                root,
                count,
            } => write!(
                f,
                "delete {root:?} ({count} vertices) from {parent:?} at {position}"
            ),
            Edit::SetAttr {
                node, attr, new, ..
            } => write!(f, "set {node:?}.{attr} = {new}"),
            Edit::RemoveAttr { node, attr, .. } => write!(f, "remove {node:?}.{attr}"),
            Edit::SetText {
                node, index, new, ..
            } => write!(f, "set text #{index} of {node:?} to {new:?}"),
        }
    }
}

/// A data tree `(V, elem, att, root)` per Definition 2.1.
///
/// Construct via [`TreeBuilder`]. A finished tree may afterwards be edited
/// through the mutation methods ([`DataTree::insert_subtree`],
/// [`DataTree::delete_subtree`], [`DataTree::set_attr`],
/// [`DataTree::remove_attr`], [`DataTree::set_text`]), each returning the
/// [`Edit`] delta performed. Deleted vertices become *tombstones*: their
/// ids are never reused, [`DataTree::node`] still resolves them (so
/// consumers of deltas can read the removed content), but they are
/// excluded from `len`, `node_ids`, `ext` and every derived view.
#[derive(Clone, Debug)]
pub struct DataTree {
    nodes: Vec<Node>,
    root: NodeId,
    /// Tombstone flags; empty means "no vertex was ever deleted" (the
    /// common case for freshly built trees), otherwise one flag per arena
    /// slot.
    dead: Vec<bool>,
    /// Count of tombstoned vertices.
    dead_count: usize,
}

impl DataTree {
    /// The root vertex.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of live vertices `|V|` (tombstones excluded).
    pub fn len(&self) -> usize {
        self.nodes.len() - self.dead_count
    }

    /// True iff the tree has no vertices (never true for built trees).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exclusive upper bound on node ids ever allocated in this tree,
    /// including tombstones. Freshly inserted subtrees receive ids in
    /// `id_bound()..` at the moment of insertion.
    pub fn id_bound(&self) -> usize {
        self.nodes.len()
    }

    /// True iff `id` belongs to this tree and has not been deleted.
    pub fn is_alive(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len() && !self.dead.get(id.index()).copied().unwrap_or(false)
    }

    /// Access a vertex.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this tree.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The element label of a vertex.
    pub fn label(&self, id: NodeId) -> &Name {
        &self.node(id).label
    }

    /// `x.l` — the value of attribute `l` at vertex `x` (`att(x, l)`).
    pub fn attr(&self, x: NodeId, l: &str) -> Option<&AttrValue> {
        self.node(x).attr(l)
    }

    /// `x[X]` — the tuple of attribute values for the sequence `X`.
    ///
    /// Returns `None` if any attribute in the sequence is missing or not
    /// single-valued at `x`.
    pub fn tuple(&self, x: NodeId, xs: &[Name]) -> Option<Vec<&Value>> {
        xs.iter()
            .map(|l| self.attr(x, l).and_then(AttrValue::as_single))
            .collect()
    }

    /// All live vertices, in creation order.
    ///
    /// For trees that were never edited, creation order coincides with
    /// document order; after subtree insertions the two may diverge (new
    /// vertices always take ids at the end of the arena), but creation
    /// order remains the canonical scan order of every validation path.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&id| self.is_alive(id))
    }

    /// `ext(τ)` — the vertices labelled `τ`, in document order.
    ///
    /// This is a linear scan; use [`ExtIndex`] when querying repeatedly.
    pub fn ext<'a>(&'a self, tau: &'a str) -> impl Iterator<Item = NodeId> + 'a {
        self.node_ids()
            .filter(move |&id| self.label(id).as_str() == tau)
    }

    /// Pre-order (document order) traversal from the root.
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![self.root],
        }
    }

    /// Depth of a vertex (root has depth 0).
    pub fn depth(&self, mut id: NodeId) -> usize {
        let mut d = 0;
        while let Some(p) = self.node(id).parent() {
            id = p;
            d += 1;
        }
        d
    }

    /// Total count of text children across all live vertices.
    pub fn text_len(&self) -> usize {
        self.node_ids()
            .map(|id| {
                self.node(id)
                    .children
                    .iter()
                    .filter(|c| c.as_text().is_some())
                    .count()
            })
            .sum()
    }

    fn check_alive(&self, id: NodeId) -> Result<(), ModelError> {
        if id.index() >= self.nodes.len() {
            Err(ModelError::UnknownNode(id))
        } else if !self.is_alive(id) {
            Err(ModelError::DeadNode(id))
        } else {
            Ok(())
        }
    }

    /// Sets attribute `l` on `node`, creating or replacing it, and returns
    /// the [`Edit::SetAttr`] delta (carrying the displaced value, if any).
    pub fn set_attr(
        &mut self,
        node: NodeId,
        l: impl Into<Name>,
        value: AttrValue,
    ) -> Result<Edit, ModelError> {
        self.check_alive(node)?;
        let l = l.into();
        let attrs = &mut self.nodes[node.index()].attrs;
        let old = match attrs.binary_search_by(|(n, _)| n.cmp(&l)) {
            Ok(i) => Some(std::mem::replace(&mut attrs[i].1, value.clone())),
            Err(pos) => {
                attrs.insert(pos, (l.clone(), value.clone()));
                None
            }
        };
        Ok(Edit::SetAttr {
            node,
            attr: l,
            old,
            new: value,
        })
    }

    /// Removes attribute `l` from `node`, returning the
    /// [`Edit::RemoveAttr`] delta. Errors if the attribute is not set.
    pub fn remove_attr(&mut self, node: NodeId, l: &str) -> Result<Edit, ModelError> {
        self.check_alive(node)?;
        let attrs = &mut self.nodes[node.index()].attrs;
        match attrs.binary_search_by(|(n, _)| n.as_str().cmp(l)) {
            Ok(i) => {
                let (attr, old) = attrs.remove(i);
                Ok(Edit::RemoveAttr { node, attr, old })
            }
            Err(_) => Err(ModelError::NoSuchAttribute {
                node,
                attr: Name::new(l),
            }),
        }
    }

    /// Replaces the `index`-th *text* child of `node` (element children do
    /// not count towards `index`), returning the [`Edit::SetText`] delta.
    ///
    /// The child word of `node` is unchanged by this edit (a text slot
    /// stays a text slot), so content models never need rechecking.
    pub fn set_text(
        &mut self,
        node: NodeId,
        index: usize,
        text: impl Into<Value>,
    ) -> Result<Edit, ModelError> {
        self.check_alive(node)?;
        let text = text.into();
        let mut k = 0usize;
        for c in &mut self.nodes[node.index()].children {
            if let Child::Text(t) = c {
                if k == index {
                    let old = std::mem::replace(t, text.clone());
                    return Ok(Edit::SetText {
                        node,
                        index,
                        old,
                        new: text,
                    });
                }
                k += 1;
            }
        }
        Err(ModelError::NoSuchText { node, index })
    }

    /// [`DataTree::set_attr`] without the [`Edit`] delta: returns only the
    /// displaced value. Batch appliers that coalesce many writes to the
    /// same cell use this to avoid cloning the value into a delta that
    /// would be discarded anyway.
    pub fn set_attr_quiet(
        &mut self,
        node: NodeId,
        l: Name,
        value: AttrValue,
    ) -> Result<Option<AttrValue>, ModelError> {
        self.check_alive(node)?;
        let attrs = &mut self.nodes[node.index()].attrs;
        Ok(match attrs.binary_search_by(|(n, _)| n.cmp(&l)) {
            Ok(i) => Some(std::mem::replace(&mut attrs[i].1, value)),
            Err(pos) => {
                attrs.insert(pos, (l, value));
                None
            }
        })
    }

    /// [`DataTree::remove_attr`] without the [`Edit`] delta; removing an
    /// absent attribute is a no-op returning `Ok(None)` (a batch applier
    /// may have coalesced away the write that would have created it).
    pub fn remove_attr_quiet(
        &mut self,
        node: NodeId,
        l: &str,
    ) -> Result<Option<AttrValue>, ModelError> {
        self.check_alive(node)?;
        let attrs = &mut self.nodes[node.index()].attrs;
        Ok(match attrs.binary_search_by(|(n, _)| n.as_str().cmp(l)) {
            Ok(i) => Some(attrs.remove(i).1),
            Err(_) => None,
        })
    }

    /// [`DataTree::set_text`] without the [`Edit`] delta: returns only the
    /// displaced text.
    pub fn set_text_quiet(
        &mut self,
        node: NodeId,
        index: usize,
        text: Value,
    ) -> Result<Value, ModelError> {
        self.check_alive(node)?;
        let mut k = 0usize;
        for c in &mut self.nodes[node.index()].children {
            if let Child::Text(t) = c {
                if k == index {
                    return Ok(std::mem::replace(t, text));
                }
                k += 1;
            }
        }
        Err(ModelError::NoSuchText { node, index })
    }

    /// Grafts a copy of `fragment` (its live vertices) under `parent` at
    /// child-list `position`, returning the [`Edit::InsertSubtree`] delta.
    ///
    /// The copied vertices receive fresh ids at the end of this tree's
    /// arena, assigned in `fragment` creation order, so existing ids are
    /// undisturbed and `ext(τ)` views only ever *append*.
    pub fn insert_subtree(
        &mut self,
        parent: NodeId,
        position: usize,
        fragment: &DataTree,
    ) -> Result<Edit, ModelError> {
        self.check_alive(parent)?;
        let len = self.nodes[parent.index()].children.len();
        if position > len {
            return Err(ModelError::BadPosition {
                node: parent,
                position,
                len,
            });
        }
        // Map live fragment ids to fresh ids, in creation order.
        let map: HashMap<u32, u32> = (self.nodes.len() as u32..)
            .zip(fragment.node_ids())
            .map(|(next, id)| (id.0, next))
            .collect();
        for id in fragment.node_ids() {
            let src = fragment.node(id);
            let children = src
                .children
                .iter()
                .map(|c| match c {
                    Child::Text(t) => Child::Text(t.clone()),
                    Child::Node(n) => Child::Node(NodeId(map[&n.0])),
                })
                .collect();
            let parent_link = if id == fragment.root() {
                Some(parent)
            } else {
                src.parent().map(|p| NodeId(map[&p.0]))
            };
            self.nodes.push(Node {
                label: src.label.clone(),
                children,
                attrs: src.attrs.clone(),
                parent: parent_link,
            });
        }
        if !self.dead.is_empty() {
            self.dead.resize(self.nodes.len(), false);
        }
        let root = NodeId(map[&fragment.root().0]);
        self.nodes[parent.index()]
            .children
            .insert(position, Child::Node(root));
        Ok(Edit::InsertSubtree {
            parent,
            position,
            root,
            count: map.len(),
        })
    }

    /// Detaches and deletes the subtree rooted at `node`, returning the
    /// [`Edit::DeleteSubtree`] delta. The root of the tree cannot be
    /// deleted. Deleted vertices become tombstones readable via
    /// [`DataTree::node`] but excluded from all live views.
    pub fn delete_subtree(&mut self, node: NodeId) -> Result<Edit, ModelError> {
        self.check_alive(node)?;
        if node == self.root {
            return Err(ModelError::RootDelete(node));
        }
        let parent = self.nodes[node.index()]
            .parent
            .expect("non-root vertex has a parent");
        let position = self.nodes[parent.index()]
            .children
            .iter()
            .position(|c| c.as_node() == Some(node))
            .expect("parent lists the vertex as a child");
        self.nodes[parent.index()].children.remove(position);
        self.nodes[node.index()].parent = None;
        if self.dead.is_empty() {
            self.dead = vec![false; self.nodes.len()];
        }
        let mut stack = vec![node];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if self.dead[id.index()] {
                continue;
            }
            self.dead[id.index()] = true;
            count += 1;
            for c in &self.nodes[id.index()].children {
                if let Child::Node(n) = c {
                    stack.push(*n);
                }
            }
        }
        self.dead_count += count;
        Ok(Edit::DeleteSubtree {
            parent,
            position,
            root: node,
            count,
        })
    }
}

/// One vertex description for [`DataTree::from_raw_parts`]: the complete
/// per-slot state a serializer must capture (the public views
/// [`Node::attrs`] and [`Node::parent`] expose the same data for encoding).
#[derive(Clone, Debug)]
pub struct RawNode {
    /// The element name labelling this vertex.
    pub label: Name,
    /// The ordered child list.
    pub children: Vec<Child>,
    /// The attributes of the vertex; any order, duplicates rejected.
    pub attrs: Vec<(Name, AttrValue)>,
    /// Parent vertex; `None` for the root (and for tombstoned subtree
    /// roots, whose parent link was severed by the delete).
    pub parent: Option<NodeId>,
}

impl DataTree {
    /// Disassembles the tree into per-slot vertex descriptions, the root
    /// id, and tombstone flags — the encode path for persisted trees, and
    /// the exact inverse of [`DataTree::from_raw_parts`]: feeding the
    /// parts back reproduces a tree equal slot-for-slot (tombstones
    /// included, so node ids stay stable across a round trip).
    pub fn raw_parts(&self) -> (Vec<RawNode>, NodeId, Vec<bool>) {
        let nodes = (0..self.id_bound())
            .map(|i| {
                let node = &self.nodes[i];
                RawNode {
                    label: node.label.clone(),
                    children: node.children.clone(),
                    attrs: node.attrs().map(|(n, v)| (n.clone(), v.clone())).collect(),
                    parent: node.parent(),
                }
            })
            .collect();
        (nodes, self.root, self.dead.clone())
    }

    /// Reassembles a tree from per-slot vertex descriptions, the root id,
    /// and tombstone flags (`dead` may be empty when no vertex is
    /// tombstoned; otherwise it must cover every slot).
    ///
    /// This is the decode path for persisted trees. Unlike
    /// [`TreeBuilder`], the input may contain tombstones, so the full
    /// invariant set is re-checked in O(n): ids in bounds, the root alive
    /// and parentless, attributes duplicate-free (they are re-sorted, so
    /// encoders need not preserve order), every live element child alive
    /// with a matching parent link (single-parent condition), and every
    /// live vertex reachable from the root. Returns a [`ModelError`] —
    /// never panics — when any check fails, so corrupted input is
    /// reported, not propagated.
    pub fn from_raw_parts(
        nodes: Vec<RawNode>,
        root: NodeId,
        dead: Vec<bool>,
    ) -> Result<DataTree, ModelError> {
        let n = nodes.len();
        if root.index() >= n {
            return Err(ModelError::UnknownNode(root));
        }
        if !dead.is_empty() && dead.len() != n {
            return Err(ModelError::InvalidParts {
                detail: format!("tombstone flags cover {} of {} slots", dead.len(), n),
            });
        }
        let is_dead = |i: usize| dead.get(i).copied().unwrap_or(false);
        if is_dead(root.index()) {
            return Err(ModelError::DeadNode(root));
        }
        if nodes[root.index()].parent.is_some() {
            return Err(ModelError::RootHasParent(root));
        }
        let mut built: Vec<Node> = Vec::with_capacity(n);
        for (i, raw) in nodes.into_iter().enumerate() {
            let id = NodeId(i as u32);
            let mut attrs = raw.attrs;
            attrs.sort_by(|(a, _), (b, _)| a.cmp(b));
            if let Some(w) = attrs.windows(2).find(|w| w[0].0 == w[1].0) {
                return Err(ModelError::DuplicateAttribute {
                    node: id,
                    attr: w[0].0.clone(),
                });
            }
            for c in &raw.children {
                if let Child::Node(cn) = c {
                    if cn.index() >= n {
                        return Err(ModelError::UnknownNode(*cn));
                    }
                }
            }
            if let Some(p) = raw.parent {
                if p.index() >= n {
                    return Err(ModelError::UnknownNode(p));
                }
            }
            built.push(Node {
                label: raw.label,
                children: raw.children,
                attrs,
                parent: raw.parent,
            });
        }
        for (i, node) in built.iter().enumerate() {
            if is_dead(i) {
                continue;
            }
            let id = NodeId(i as u32);
            for c in &node.children {
                if let Child::Node(cn) = c {
                    if is_dead(cn.index()) {
                        return Err(ModelError::InvalidParts {
                            detail: format!("live vertex {id:?} lists tombstoned child {cn:?}"),
                        });
                    }
                    if built[cn.index()].parent != Some(id) {
                        return Err(ModelError::SecondParent { node: *cn });
                    }
                }
            }
        }
        // Reachability over live vertices: live children of live vertices
        // were verified above, so the walk only visits live slots.
        let live = n - dead.iter().filter(|&&d| d).count();
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            count += 1;
            for c in &built[id.index()].children {
                if let Child::Node(cn) = c {
                    stack.push(*cn);
                }
            }
        }
        if count != live {
            return Err(ModelError::Unreachable {
                orphans: live - count,
            });
        }
        let dead_count = n - live;
        // Normalize: an all-false flag vector is the empty one.
        let dead = if dead_count == 0 { Vec::new() } else { dead };
        Ok(DataTree {
            nodes: built,
            root,
            dead,
            dead_count,
        })
    }
}

/// Pre-order iterator over a [`DataTree`].
pub struct Preorder<'a> {
    tree: &'a DataTree,
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let node = self.tree.node(id);
        // Push children reversed so they pop in document order.
        for c in node.children.iter().rev() {
            if let Child::Node(n) = c {
                self.stack.push(*n);
            }
        }
        Some(id)
    }
}

/// Precomputed `τ ↦ ext(τ)` index over a [`DataTree`].
///
/// ```
/// use xic_model::{TreeBuilder, ExtIndex};
/// let mut b = TreeBuilder::new();
/// let root = b.node("db");
/// let p1 = b.node("person");
/// let p2 = b.node("person");
/// b.child(root, p1).unwrap();
/// b.child(root, p2).unwrap();
/// let tree = b.finish(root).unwrap();
/// let idx = ExtIndex::build(&tree);
/// assert_eq!(idx.ext("person").len(), 2);
/// assert!(idx.ext("dept").is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct ExtIndex {
    by_label: HashMap<Name, Vec<NodeId>>,
}

impl ExtIndex {
    /// Builds the index in one pass over the tree.
    pub fn build(tree: &DataTree) -> Self {
        let mut by_label: HashMap<Name, Vec<NodeId>> = HashMap::new();
        for id in tree.node_ids() {
            by_label.entry(tree.label(id).clone()).or_default().push(id);
        }
        ExtIndex { by_label }
    }

    /// An empty index, for incremental construction (e.g. while streaming
    /// a document without materializing a tree).
    pub fn empty() -> Self {
        ExtIndex {
            by_label: HashMap::new(),
        }
    }

    /// Appends `id` to `ext(label)`. Callers must push nodes in document
    /// order to preserve the `ext(τ)`-is-document-ordered invariant.
    pub fn push(&mut self, label: &Name, id: NodeId) {
        self.by_label.entry(label.clone()).or_default().push(id);
    }

    /// Installs a whole extent column at once (the streaming checker keeps
    /// per-label columns and assembles the index at end-of-document instead
    /// of paying one hash probe per node). `ids` must already be in document
    /// order; extends the extent if `label` was inserted before.
    pub fn insert_extent(&mut self, label: Name, ids: Vec<NodeId>) {
        match self.by_label.entry(label) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().extend(ids),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(ids);
            }
        }
    }

    /// `ext(τ)` in document order (empty slice if `τ` never occurs).
    pub fn ext(&self, tau: &str) -> &[NodeId] {
        self.by_label.get(tau).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The element labels that actually occur in the tree.
    pub fn labels(&self) -> impl Iterator<Item = &Name> {
        self.by_label.keys()
    }
}

/// Builder enforcing the invariants of Definition 2.1.
///
/// Create nodes with [`TreeBuilder::node`], link them with
/// [`TreeBuilder::child`]/[`TreeBuilder::text`], set attributes, then call
/// [`TreeBuilder::finish`] with the root. `finish` verifies the root is
/// parentless and every vertex is reachable from it.
#[derive(Default, Debug)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
}

impl TreeBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fresh, unattached vertex labelled `label`.
    pub fn node(&mut self, label: impl Into<Name>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label: label.into(),
            children: Vec::new(),
            attrs: Vec::new(),
            parent: None,
        });
        id
    }

    fn check(&self, id: NodeId) -> Result<(), ModelError> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(ModelError::UnknownNode(id))
        }
    }

    /// Appends `child` to `parent`'s child list. Errors if `child` already
    /// has a parent (the tree condition).
    pub fn child(&mut self, parent: NodeId, child: NodeId) -> Result<(), ModelError> {
        self.check(parent)?;
        self.check(child)?;
        if self.nodes[child.index()].parent.is_some() {
            return Err(ModelError::SecondParent { node: child });
        }
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(Child::Node(child));
        Ok(())
    }

    /// Appends a string child to `parent`.
    pub fn text(&mut self, parent: NodeId, text: impl Into<Value>) -> Result<(), ModelError> {
        self.check(parent)?;
        self.nodes[parent.index()]
            .children
            .push(Child::Text(text.into()));
        Ok(())
    }

    /// Sets attribute `l` on `node` (an empty value set is allowed: XML's
    /// `l=""` on a set-valued attribute denotes the empty set). Errors if
    /// the attribute is already set.
    pub fn attr(
        &mut self,
        node: NodeId,
        l: impl Into<Name>,
        value: AttrValue,
    ) -> Result<(), ModelError> {
        self.check(node)?;
        let l = l.into();
        let attrs = &mut self.nodes[node.index()].attrs;
        match attrs.binary_search_by(|(n, _)| n.cmp(&l)) {
            Ok(_) => Err(ModelError::DuplicateAttribute { node, attr: l }),
            Err(pos) => {
                attrs.insert(pos, (l, value));
                Ok(())
            }
        }
    }

    /// Convenience: creates a node, attaches it under `parent`, and returns
    /// its id.
    pub fn child_node(
        &mut self,
        parent: NodeId,
        label: impl Into<Name>,
    ) -> Result<NodeId, ModelError> {
        let id = self.node(label);
        self.child(parent, id)?;
        Ok(id)
    }

    /// Convenience: a child element holding a single text child, e.g.
    /// `<title>t</title>`.
    pub fn leaf(
        &mut self,
        parent: NodeId,
        label: impl Into<Name>,
        text: impl Into<Value>,
    ) -> Result<NodeId, ModelError> {
        let id = self.child_node(parent, label)?;
        self.text(id, text)?;
        Ok(id)
    }

    /// Finishes the tree rooted at `root`, checking that `root` is
    /// parentless and that every created vertex is reachable from it.
    pub fn finish(self, root: NodeId) -> Result<DataTree, ModelError> {
        if root.index() >= self.nodes.len() {
            return Err(ModelError::UnknownNode(root));
        }
        if self.nodes[root.index()].parent.is_some() {
            return Err(ModelError::RootHasParent(root));
        }
        // Reachability check.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            count += 1;
            for c in &self.nodes[id.index()].children {
                if let Child::Node(n) = c {
                    stack.push(*n);
                }
            }
        }
        if count != self.nodes.len() {
            return Err(ModelError::Unreachable {
                orphans: self.nodes.len() - count,
            });
        }
        Ok(DataTree {
            nodes: self.nodes,
            root,
            dead: Vec::new(),
            dead_count: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book_tree() -> DataTree {
        // The paper's Figure 2 book document, abbreviated.
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        let entry = b.child_node(book, "entry").unwrap();
        b.attr(entry, "isbn", AttrValue::single("1-55860-622-X"))
            .unwrap();
        b.leaf(entry, "title", "Data on the Web").unwrap();
        b.leaf(entry, "publisher", "Morgan Kaufmann").unwrap();
        for a in ["Abiteboul", "Buneman", "Suciu"] {
            b.leaf(book, "author", a).unwrap();
        }
        let s1 = b.child_node(book, "section").unwrap();
        b.attr(s1, "sid", AttrValue::single("intro")).unwrap();
        b.leaf(s1, "title", "Introduction").unwrap();
        let s11 = b.child_node(s1, "section").unwrap();
        b.attr(s11, "sid", AttrValue::single("audience")).unwrap();
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["1-55860-622-X", "0-201-53771-0"]))
            .unwrap();
        b.finish(book).unwrap()
    }

    #[test]
    fn builds_and_navigates_figure2_document() {
        let t = book_tree();
        assert_eq!(t.label(t.root()).as_str(), "book");
        assert_eq!(t.ext("author").count(), 3);
        assert_eq!(t.ext("section").count(), 2);
        let entry = t.ext("entry").next().unwrap();
        assert_eq!(
            t.attr(entry, "isbn").unwrap().as_single().unwrap(),
            "1-55860-622-X"
        );
        assert_eq!(t.depth(entry), 1);
        let inner = t.ext("section").nth(1).unwrap();
        assert_eq!(t.depth(inner), 2);
    }

    #[test]
    fn preorder_is_document_order() {
        let t = book_tree();
        let labels: Vec<&str> = t.preorder().map(|n| t.label(n).as_str()).collect();
        assert_eq!(labels[0], "book");
        assert_eq!(labels[1], "entry");
        assert_eq!(labels[2], "title");
        assert_eq!(*labels.last().unwrap(), "ref");
        assert_eq!(labels.len(), t.len());
    }

    #[test]
    fn ext_index_matches_scan() {
        let t = book_tree();
        let idx = ExtIndex::build(&t);
        for tau in ["book", "entry", "author", "section", "ref", "missing"] {
            let scan: Vec<NodeId> = t.ext(tau).collect();
            assert_eq!(idx.ext(tau), scan.as_slice(), "label {tau}");
        }
    }

    #[test]
    fn tuple_projects_attribute_sequences() {
        let mut b = TreeBuilder::new();
        let p = b.node("publisher");
        b.attr(p, "pname", AttrValue::single("MK")).unwrap();
        b.attr(p, "country", AttrValue::single("USA")).unwrap();
        let t = b.finish(p).unwrap();
        let xs = [Name::new("pname"), Name::new("country")];
        let tup = t.tuple(p, &xs).unwrap();
        assert_eq!(tup, [&"MK".to_string(), &"USA".to_string()]);
        assert!(t.tuple(p, &[Name::new("missing")]).is_none());
    }

    #[test]
    fn tuple_rejects_set_valued_components() {
        let mut b = TreeBuilder::new();
        let r = b.node("ref");
        b.attr(r, "to", AttrValue::set(["a", "b"])).unwrap();
        let t = b.finish(r).unwrap();
        assert!(t.tuple(r, &[Name::new("to")]).is_none());
    }

    #[test]
    fn second_parent_rejected() {
        let mut b = TreeBuilder::new();
        let r = b.node("r");
        let c = b.node("c");
        let d = b.node("d");
        b.child(r, c).unwrap();
        assert_eq!(b.child(d, c), Err(ModelError::SecondParent { node: c }));
    }

    #[test]
    fn root_with_parent_rejected() {
        let mut b = TreeBuilder::new();
        let r = b.node("r");
        let c = b.node("c");
        b.child(r, c).unwrap();
        assert_eq!(b.finish(c).unwrap_err(), ModelError::RootHasParent(c));
    }

    #[test]
    fn unreachable_nodes_rejected() {
        let mut b = TreeBuilder::new();
        let r = b.node("r");
        let _orphan = b.node("o");
        assert_eq!(
            b.finish(r).unwrap_err(),
            ModelError::Unreachable { orphans: 1 }
        );
    }

    #[test]
    fn duplicate_attrs_rejected_empty_sets_allowed() {
        let mut b = TreeBuilder::new();
        let r = b.node("r");
        b.attr(r, "a", AttrValue::single("1")).unwrap();
        assert!(matches!(
            b.attr(r, "a", AttrValue::single("2")),
            Err(ModelError::DuplicateAttribute { .. })
        ));
        b.attr(r, "b", AttrValue::set(Vec::<String>::new()))
            .unwrap();
        let t = b.finish(r).unwrap();
        assert!(t.attr(r, "b").unwrap().is_empty());
    }

    #[test]
    fn attr_value_set_normalizes() {
        let v = AttrValue::set(["b", "a", "b"]);
        assert_eq!(v.len(), 2);
        assert!(v.contains("a") && v.contains("b"));
        assert!(!v.contains("c"));
        assert_eq!(v, AttrValue::set(["a", "b"]));
        assert!(!v.is_singleton());
        assert_eq!(v.as_single(), None);
    }

    #[test]
    fn node_text_concatenates() {
        let mut b = TreeBuilder::new();
        let r = b.node("t");
        b.text(r, "Data ").unwrap();
        b.text(r, "on the Web").unwrap();
        let t = b.finish(r).unwrap();
        assert_eq!(t.node(r).text(), "Data on the Web");
    }

    #[test]
    fn set_attr_replaces_and_creates() {
        let mut t = book_tree();
        let entry = t.ext("entry").next().unwrap();
        let e = t
            .set_attr(entry, "isbn", AttrValue::single("0-201-53771-0"))
            .unwrap();
        assert_eq!(
            e,
            Edit::SetAttr {
                node: entry,
                attr: Name::new("isbn"),
                old: Some(AttrValue::single("1-55860-622-X")),
                new: AttrValue::single("0-201-53771-0"),
            }
        );
        assert_eq!(
            t.attr(entry, "isbn").unwrap().as_single().unwrap(),
            "0-201-53771-0"
        );
        let e = t.set_attr(entry, "lang", AttrValue::single("en")).unwrap();
        assert!(matches!(e, Edit::SetAttr { old: None, .. }));
        assert_eq!(t.attr(entry, "lang").unwrap().as_single().unwrap(), "en");
    }

    #[test]
    fn remove_attr_and_errors() {
        let mut t = book_tree();
        let entry = t.ext("entry").next().unwrap();
        let e = t.remove_attr(entry, "isbn").unwrap();
        assert!(matches!(e, Edit::RemoveAttr { .. }));
        assert!(t.attr(entry, "isbn").is_none());
        assert_eq!(
            t.remove_attr(entry, "isbn"),
            Err(ModelError::NoSuchAttribute {
                node: entry,
                attr: Name::new("isbn")
            })
        );
    }

    #[test]
    fn set_text_replaces_kth_text_child() {
        let mut t = book_tree();
        let title = t.ext("title").next().unwrap();
        let e = t.set_text(title, 0, "Web Data").unwrap();
        assert_eq!(
            e,
            Edit::SetText {
                node: title,
                index: 0,
                old: "Data on the Web".into(),
                new: "Web Data".into(),
            }
        );
        assert_eq!(t.node(title).text(), "Web Data");
        assert_eq!(
            t.set_text(title, 1, "x"),
            Err(ModelError::NoSuchText {
                node: title,
                index: 1
            })
        );
    }

    #[test]
    fn delete_subtree_tombstones_without_id_reuse() {
        let mut t = book_tree();
        let before = t.len();
        let bound = t.id_bound();
        let s1 = t.ext("section").next().unwrap();
        let e = t.delete_subtree(s1).unwrap();
        // s1 holds a title leaf and a nested section: 3 vertices total.
        assert_eq!(
            e,
            Edit::DeleteSubtree {
                parent: t.root(),
                position: 4,
                root: s1,
                count: 3,
            }
        );
        assert_eq!(t.len(), before - 3);
        assert_eq!(t.id_bound(), bound, "ids are never reclaimed");
        assert!(!t.is_alive(s1));
        assert_eq!(t.ext("section").count(), 0);
        assert!(t.node_ids().all(|id| t.is_alive(id)));
        // Tombstones stay readable (delta consumers need the content)...
        assert_eq!(t.node(s1).label.as_str(), "section");
        // ...but cannot be edited or deleted again.
        assert_eq!(t.delete_subtree(s1), Err(ModelError::DeadNode(s1)));
        assert_eq!(
            t.set_attr(s1, "sid", AttrValue::single("x")),
            Err(ModelError::DeadNode(s1))
        );
        assert_eq!(
            t.delete_subtree(t.root()),
            Err(ModelError::RootDelete(t.root()))
        );
    }

    #[test]
    fn insert_subtree_grafts_fresh_ids_at_arena_end() {
        let mut t = book_tree();
        let mut fb = TreeBuilder::new();
        let s = fb.node("section");
        fb.attr(s, "sid", AttrValue::single("new")).unwrap();
        fb.leaf(s, "title", "New Section").unwrap();
        let frag = fb.finish(s).unwrap();

        let bound = t.id_bound();
        let before = t.len();
        let e = t.insert_subtree(t.root(), 0, &frag).unwrap();
        let Edit::InsertSubtree {
            parent,
            position,
            root,
            count,
        } = e
        else {
            panic!("expected InsertSubtree, got {e:?}");
        };
        assert_eq!((parent, position, count), (t.root(), 0, 2));
        assert_eq!(root.index(), bound, "fresh ids start at the old bound");
        assert_eq!(t.len(), before + 2);
        assert_eq!(t.node(root).parent(), Some(t.root()));
        assert_eq!(t.node(t.root()).children[0].as_node(), Some(root));
        assert_eq!(t.attr(root, "sid").unwrap().as_single().unwrap(), "new");
        assert_eq!(t.ext("section").count(), 3);
        // Position past the end is rejected.
        let n = t.node(t.root()).children.len();
        assert_eq!(
            t.insert_subtree(t.root(), n + 1, &frag),
            Err(ModelError::BadPosition {
                node: t.root(),
                position: n + 1,
                len: n,
            })
        );
    }

    /// Captures a tree's complete raw state.
    fn raw_parts_of(t: &DataTree) -> (Vec<RawNode>, NodeId, Vec<bool>) {
        t.raw_parts()
    }

    #[test]
    fn from_raw_parts_round_trips_edited_trees() {
        let mut t = book_tree();
        let s1 = t.ext("section").next().unwrap();
        t.delete_subtree(s1).unwrap();
        let entry = t.ext("entry").next().unwrap();
        t.set_attr(entry, "lang", AttrValue::single("en")).unwrap();
        let (nodes, root, dead) = raw_parts_of(&t);
        let rebuilt = DataTree::from_raw_parts(nodes, root, dead).unwrap();
        assert_eq!(rebuilt.len(), t.len());
        assert_eq!(rebuilt.id_bound(), t.id_bound());
        assert_eq!(rebuilt.root(), t.root());
        for id in t.node_ids() {
            assert!(rebuilt.is_alive(id));
            assert_eq!(rebuilt.label(id), t.label(id));
            assert_eq!(rebuilt.node(id).children, t.node(id).children);
            assert_eq!(rebuilt.node(id).parent(), t.node(id).parent());
            assert!(rebuilt.node(id).attrs().eq(t.node(id).attrs()));
        }
        assert!(!rebuilt.is_alive(s1));
        // A pristine tree round-trips with an empty tombstone vector.
        let t = book_tree();
        let (nodes, root, _) = raw_parts_of(&t);
        let rebuilt = DataTree::from_raw_parts(nodes, root, Vec::new()).unwrap();
        assert_eq!(rebuilt.len(), t.len());
    }

    #[test]
    fn from_raw_parts_rejects_inconsistent_input() {
        let t = book_tree();
        let (nodes, root, dead) = raw_parts_of(&t);

        // Root out of bounds.
        let bad = NodeId::from_index(nodes.len());
        assert!(matches!(
            DataTree::from_raw_parts(nodes.clone(), bad, dead.clone()),
            Err(ModelError::UnknownNode(_))
        ));
        // Tombstone flags of the wrong length.
        assert!(matches!(
            DataTree::from_raw_parts(nodes.clone(), root, vec![false; 2]),
            Err(ModelError::InvalidParts { .. })
        ));
        // Dead root.
        let mut all_dead_root = vec![false; nodes.len()];
        all_dead_root[root.index()] = true;
        assert!(matches!(
            DataTree::from_raw_parts(nodes.clone(), root, all_dead_root),
            Err(ModelError::DeadNode(_))
        ));
        // A child whose parent link points elsewhere (second parent).
        let mut torn = nodes.clone();
        torn[1].parent = Some(NodeId::from_index(2));
        assert!(matches!(
            DataTree::from_raw_parts(torn, root, dead.clone()),
            Err(ModelError::SecondParent { .. })
        ));
        // A live vertex listing a tombstoned child.
        let mut flags = vec![false; nodes.len()];
        flags[2] = true; // entry's title leaf
        assert!(matches!(
            DataTree::from_raw_parts(nodes.clone(), root, flags),
            Err(ModelError::InvalidParts { .. })
        ));
        // An unreachable live vertex.
        let mut cut = nodes.clone();
        cut[0]
            .children
            .retain(|c| c.as_node() != Some(NodeId::from_index(1)));
        assert!(matches!(
            DataTree::from_raw_parts(cut, root, dead.clone()),
            Err(ModelError::Unreachable { .. })
        ));
        // Duplicate attributes on one vertex.
        let mut dup = nodes;
        let repeat = dup[1].attrs[0].clone();
        dup[1].attrs.push(repeat);
        assert!(matches!(
            DataTree::from_raw_parts(dup, root, dead),
            Err(ModelError::DuplicateAttribute { .. })
        ));
    }

    #[test]
    fn insert_skips_fragment_tombstones() {
        let mut fb = TreeBuilder::new();
        let r = fb.node("db");
        let keep = fb.child_node(r, "keep").unwrap();
        let drop_ = fb.child_node(r, "drop").unwrap();
        let mut frag = fb.finish(r).unwrap();
        frag.delete_subtree(drop_).unwrap();

        let mut tb = TreeBuilder::new();
        let host = tb.node("host");
        let mut t = tb.finish(host).unwrap();
        let e = t.insert_subtree(host, 0, &frag).unwrap();
        let Edit::InsertSubtree { root, count, .. } = e else {
            panic!()
        };
        assert_eq!(count, 2, "only live fragment vertices are copied");
        assert_eq!(t.node(root).label.as_str(), "db");
        let kids: Vec<_> = t.node(root).child_nodes().collect();
        assert_eq!(kids.len(), 1);
        assert_eq!(t.node(kids[0]).label.as_str(), "keep");
        let _ = keep;
    }
}
