//! Data trees (Definition 2.1) and their construction.

use std::collections::HashMap;
use std::fmt;

use crate::Name;

/// An atomic value, i.e. an element of the paper's set **S** of string
/// values. All atomic values are of the single type `S`.
pub type Value = String;

/// Identifier of a vertex in a [`DataTree`]'s vertex set `V`.
///
/// Node ids are dense indices assigned in creation order; the root of a tree
/// built with [`TreeBuilder`] is always the node passed to
/// [`TreeBuilder::finish`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A node id from its dense index.
    ///
    /// For engines that reconstruct document order without materializing a
    /// [`DataTree`] (e.g. streaming validation): both the tree and the
    /// event parser assign ids in element-open order, so a counter of open
    /// tags yields ids identical to the tree path's.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index fits u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One entry of a vertex's ordered child list: `elem` maps a vertex to
/// `E × F(S ∪ V)`, so a child is either a string value or a sub-tree vertex.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Child {
    /// A string child (a member of **S**).
    Text(Value),
    /// An element child (a member of `V`).
    Node(NodeId),
}

impl Child {
    /// The node id if this child is an element, else `None`.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Child::Node(n) => Some(*n),
            Child::Text(_) => None,
        }
    }

    /// The text if this child is a string value, else `None`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Child::Text(t) => Some(t),
            Child::Node(_) => None,
        }
    }
}

/// The value of one attribute: a non-empty set of atomic values.
///
/// Definition 2.1 types `att` as `V × A → P(S)`. Single-valued attributes
/// hold a singleton set; set-valued (`IDREFS`-style) attributes hold any
/// finite set. Values are kept sorted and deduplicated so that two equal
/// sets compare equal structurally.
#[derive(Clone, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct AttrValue(Vec<Value>);

impl AttrValue {
    /// A singleton attribute value.
    pub fn single(v: impl Into<Value>) -> Self {
        AttrValue(vec![v.into()])
    }

    /// A set-valued attribute value; duplicates are removed and order is
    /// normalized.
    pub fn set<I, T>(vs: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Value>,
    {
        let mut v: Vec<Value> = vs.into_iter().map(Into::into).collect();
        v.sort();
        v.dedup();
        AttrValue(v)
    }

    /// The members of the value set, in sorted order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// True iff the set is a singleton (as required of single-valued
    /// attributes by Definition 2.4).
    pub fn is_singleton(&self) -> bool {
        self.0.len() == 1
    }

    /// For a singleton set, the unique member.
    pub fn as_single(&self) -> Option<&Value> {
        if self.0.len() == 1 {
            self.0.first()
        } else {
            None
        }
    }

    /// Set membership test (`s ∈ x.l`).
    pub fn contains(&self, v: &str) -> bool {
        self.0.binary_search_by(|x| x.as_str().cmp(v)).is_ok()
    }

    /// Number of values in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the value set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the members in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_single() {
            write!(f, "{v:?}")
        } else {
            write!(f, "{{")?;
            for (i, v) in self.0.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:?}")?;
            }
            write!(f, "}}")
        }
    }
}

/// One vertex of a data tree: its label, ordered children, attributes and
/// parent link.
#[derive(Clone, Debug)]
pub struct Node {
    /// The element name labelling this vertex (first component of `elem`).
    pub label: Name,
    /// The ordered child list (second component of `elem`).
    pub children: Vec<Child>,
    /// The attributes of this vertex (`att(v, ·)`), name-sorted.
    attrs: Vec<(Name, AttrValue)>,
    /// Parent vertex; `None` only for the root.
    parent: Option<NodeId>,
}

impl Node {
    /// Attribute lookup by name.
    pub fn attr(&self, l: &str) -> Option<&AttrValue> {
        self.attrs
            .binary_search_by(|(n, _)| n.as_str().cmp(l))
            .ok()
            .map(|i| &self.attrs[i].1)
    }

    /// Iterates over `(name, value)` attribute pairs in name order.
    pub fn attrs(&self) -> impl Iterator<Item = (&Name, &AttrValue)> {
        self.attrs.iter().map(|(n, v)| (n, v))
    }

    /// The parent vertex, or `None` for the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Iterates over the element children in document order.
    pub fn child_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.children.iter().filter_map(Child::as_node)
    }

    /// Concatenation of the immediate text children (useful for `PCDATA`
    /// content such as `<title>Some title</title>`).
    pub fn text(&self) -> String {
        let mut s = String::new();
        for c in &self.children {
            if let Child::Text(t) = c {
                s.push_str(t);
            }
        }
        s
    }
}

/// Errors raised while constructing a data tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A node was attached below two different parents, violating the tree
    /// condition of Definition 2.1 ("a vertex has at most one parent").
    SecondParent {
        /// The node that already had a parent.
        node: NodeId,
    },
    /// A node id did not belong to this builder/tree.
    UnknownNode(NodeId),
    /// The designated root already has a parent, so it is not a root.
    RootHasParent(NodeId),
    /// The same attribute was set twice on one node.
    DuplicateAttribute {
        /// The node carrying the attribute.
        node: NodeId,
        /// The attribute name set twice.
        attr: Name,
    },
    /// A node other than the root is not reachable from the root.
    Unreachable {
        /// Count of vertices outside the root's tree.
        orphans: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::SecondParent { node } => {
                write!(f, "vertex {node:?} attached below a second parent")
            }
            ModelError::UnknownNode(n) => write!(f, "unknown vertex {n:?}"),
            ModelError::RootHasParent(n) => {
                write!(f, "designated root {n:?} has a parent")
            }
            ModelError::DuplicateAttribute { node, attr } => {
                write!(f, "attribute {attr} set twice on {node:?}")
            }
            ModelError::Unreachable { orphans } => {
                write!(f, "{orphans} vertices are not reachable from the root")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A data tree `(V, elem, att, root)` per Definition 2.1.
///
/// Construct via [`TreeBuilder`]; a finished tree is immutable and all its
/// vertices are reachable from [`DataTree::root`].
#[derive(Clone, Debug)]
pub struct DataTree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl DataTree {
    /// The root vertex.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of vertices `|V|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the tree has no vertices (never true for built trees).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a vertex.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this tree.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The element label of a vertex.
    pub fn label(&self, id: NodeId) -> &Name {
        &self.node(id).label
    }

    /// `x.l` — the value of attribute `l` at vertex `x` (`att(x, l)`).
    pub fn attr(&self, x: NodeId, l: &str) -> Option<&AttrValue> {
        self.node(x).attr(l)
    }

    /// `x[X]` — the tuple of attribute values for the sequence `X`.
    ///
    /// Returns `None` if any attribute in the sequence is missing or not
    /// single-valued at `x`.
    pub fn tuple(&self, x: NodeId, xs: &[Name]) -> Option<Vec<&Value>> {
        xs.iter()
            .map(|l| self.attr(x, l).and_then(AttrValue::as_single))
            .collect()
    }

    /// All vertices, in creation (document) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// `ext(τ)` — the vertices labelled `τ`, in document order.
    ///
    /// This is a linear scan; use [`ExtIndex`] when querying repeatedly.
    pub fn ext<'a>(&'a self, tau: &'a str) -> impl Iterator<Item = NodeId> + 'a {
        self.node_ids()
            .filter(move |&id| self.label(id).as_str() == tau)
    }

    /// Pre-order (document order) traversal from the root.
    pub fn preorder(&self) -> Preorder<'_> {
        Preorder {
            tree: self,
            stack: vec![self.root],
        }
    }

    /// Depth of a vertex (root has depth 0).
    pub fn depth(&self, mut id: NodeId) -> usize {
        let mut d = 0;
        while let Some(p) = self.node(id).parent() {
            id = p;
            d += 1;
        }
        d
    }

    /// Total count of text children across all vertices.
    pub fn text_len(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.children.iter().filter(|c| c.as_text().is_some()).count())
            .sum()
    }
}

/// Pre-order iterator over a [`DataTree`].
pub struct Preorder<'a> {
    tree: &'a DataTree,
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let node = self.tree.node(id);
        // Push children reversed so they pop in document order.
        for c in node.children.iter().rev() {
            if let Child::Node(n) = c {
                self.stack.push(*n);
            }
        }
        Some(id)
    }
}

/// Precomputed `τ ↦ ext(τ)` index over a [`DataTree`].
///
/// ```
/// use xic_model::{TreeBuilder, ExtIndex};
/// let mut b = TreeBuilder::new();
/// let root = b.node("db");
/// let p1 = b.node("person");
/// let p2 = b.node("person");
/// b.child(root, p1).unwrap();
/// b.child(root, p2).unwrap();
/// let tree = b.finish(root).unwrap();
/// let idx = ExtIndex::build(&tree);
/// assert_eq!(idx.ext("person").len(), 2);
/// assert!(idx.ext("dept").is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct ExtIndex {
    by_label: HashMap<Name, Vec<NodeId>>,
}

impl ExtIndex {
    /// Builds the index in one pass over the tree.
    pub fn build(tree: &DataTree) -> Self {
        let mut by_label: HashMap<Name, Vec<NodeId>> = HashMap::new();
        for id in tree.node_ids() {
            by_label.entry(tree.label(id).clone()).or_default().push(id);
        }
        ExtIndex { by_label }
    }

    /// An empty index, for incremental construction (e.g. while streaming
    /// a document without materializing a tree).
    pub fn empty() -> Self {
        ExtIndex {
            by_label: HashMap::new(),
        }
    }

    /// Appends `id` to `ext(label)`. Callers must push nodes in document
    /// order to preserve the `ext(τ)`-is-document-ordered invariant.
    pub fn push(&mut self, label: &Name, id: NodeId) {
        self.by_label.entry(label.clone()).or_default().push(id);
    }

    /// `ext(τ)` in document order (empty slice if `τ` never occurs).
    pub fn ext(&self, tau: &str) -> &[NodeId] {
        self.by_label.get(tau).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The element labels that actually occur in the tree.
    pub fn labels(&self) -> impl Iterator<Item = &Name> {
        self.by_label.keys()
    }
}

/// Builder enforcing the invariants of Definition 2.1.
///
/// Create nodes with [`TreeBuilder::node`], link them with
/// [`TreeBuilder::child`]/[`TreeBuilder::text`], set attributes, then call
/// [`TreeBuilder::finish`] with the root. `finish` verifies the root is
/// parentless and every vertex is reachable from it.
#[derive(Default, Debug)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
}

impl TreeBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fresh, unattached vertex labelled `label`.
    pub fn node(&mut self, label: impl Into<Name>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label: label.into(),
            children: Vec::new(),
            attrs: Vec::new(),
            parent: None,
        });
        id
    }

    fn check(&self, id: NodeId) -> Result<(), ModelError> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(ModelError::UnknownNode(id))
        }
    }

    /// Appends `child` to `parent`'s child list. Errors if `child` already
    /// has a parent (the tree condition).
    pub fn child(&mut self, parent: NodeId, child: NodeId) -> Result<(), ModelError> {
        self.check(parent)?;
        self.check(child)?;
        if self.nodes[child.index()].parent.is_some() {
            return Err(ModelError::SecondParent { node: child });
        }
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(Child::Node(child));
        Ok(())
    }

    /// Appends a string child to `parent`.
    pub fn text(&mut self, parent: NodeId, text: impl Into<Value>) -> Result<(), ModelError> {
        self.check(parent)?;
        self.nodes[parent.index()]
            .children
            .push(Child::Text(text.into()));
        Ok(())
    }

    /// Sets attribute `l` on `node` (an empty value set is allowed: XML's
    /// `l=""` on a set-valued attribute denotes the empty set). Errors if
    /// the attribute is already set.
    pub fn attr(
        &mut self,
        node: NodeId,
        l: impl Into<Name>,
        value: AttrValue,
    ) -> Result<(), ModelError> {
        self.check(node)?;
        let l = l.into();
        let attrs = &mut self.nodes[node.index()].attrs;
        match attrs.binary_search_by(|(n, _)| n.cmp(&l)) {
            Ok(_) => Err(ModelError::DuplicateAttribute { node, attr: l }),
            Err(pos) => {
                attrs.insert(pos, (l, value));
                Ok(())
            }
        }
    }

    /// Convenience: creates a node, attaches it under `parent`, and returns
    /// its id.
    pub fn child_node(
        &mut self,
        parent: NodeId,
        label: impl Into<Name>,
    ) -> Result<NodeId, ModelError> {
        let id = self.node(label);
        self.child(parent, id)?;
        Ok(id)
    }

    /// Convenience: a child element holding a single text child, e.g.
    /// `<title>t</title>`.
    pub fn leaf(
        &mut self,
        parent: NodeId,
        label: impl Into<Name>,
        text: impl Into<Value>,
    ) -> Result<NodeId, ModelError> {
        let id = self.child_node(parent, label)?;
        self.text(id, text)?;
        Ok(id)
    }

    /// Finishes the tree rooted at `root`, checking that `root` is
    /// parentless and that every created vertex is reachable from it.
    pub fn finish(self, root: NodeId) -> Result<DataTree, ModelError> {
        if root.index() >= self.nodes.len() {
            return Err(ModelError::UnknownNode(root));
        }
        if self.nodes[root.index()].parent.is_some() {
            return Err(ModelError::RootHasParent(root));
        }
        // Reachability check.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            count += 1;
            for c in &self.nodes[id.index()].children {
                if let Child::Node(n) = c {
                    stack.push(*n);
                }
            }
        }
        if count != self.nodes.len() {
            return Err(ModelError::Unreachable {
                orphans: self.nodes.len() - count,
            });
        }
        Ok(DataTree {
            nodes: self.nodes,
            root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book_tree() -> DataTree {
        // The paper's Figure 2 book document, abbreviated.
        let mut b = TreeBuilder::new();
        let book = b.node("book");
        let entry = b.child_node(book, "entry").unwrap();
        b.attr(entry, "isbn", AttrValue::single("1-55860-622-X"))
            .unwrap();
        b.leaf(entry, "title", "Data on the Web").unwrap();
        b.leaf(entry, "publisher", "Morgan Kaufmann").unwrap();
        for a in ["Abiteboul", "Buneman", "Suciu"] {
            b.leaf(book, "author", a).unwrap();
        }
        let s1 = b.child_node(book, "section").unwrap();
        b.attr(s1, "sid", AttrValue::single("intro")).unwrap();
        b.leaf(s1, "title", "Introduction").unwrap();
        let s11 = b.child_node(s1, "section").unwrap();
        b.attr(s11, "sid", AttrValue::single("audience")).unwrap();
        let r = b.child_node(book, "ref").unwrap();
        b.attr(r, "to", AttrValue::set(["1-55860-622-X", "0-201-53771-0"]))
            .unwrap();
        b.finish(book).unwrap()
    }

    #[test]
    fn builds_and_navigates_figure2_document() {
        let t = book_tree();
        assert_eq!(t.label(t.root()).as_str(), "book");
        assert_eq!(t.ext("author").count(), 3);
        assert_eq!(t.ext("section").count(), 2);
        let entry = t.ext("entry").next().unwrap();
        assert_eq!(
            t.attr(entry, "isbn").unwrap().as_single().unwrap(),
            "1-55860-622-X"
        );
        assert_eq!(t.depth(entry), 1);
        let inner = t.ext("section").nth(1).unwrap();
        assert_eq!(t.depth(inner), 2);
    }

    #[test]
    fn preorder_is_document_order() {
        let t = book_tree();
        let labels: Vec<&str> = t.preorder().map(|n| t.label(n).as_str()).collect();
        assert_eq!(labels[0], "book");
        assert_eq!(labels[1], "entry");
        assert_eq!(labels[2], "title");
        assert_eq!(*labels.last().unwrap(), "ref");
        assert_eq!(labels.len(), t.len());
    }

    #[test]
    fn ext_index_matches_scan() {
        let t = book_tree();
        let idx = ExtIndex::build(&t);
        for tau in ["book", "entry", "author", "section", "ref", "missing"] {
            let scan: Vec<NodeId> = t.ext(tau).collect();
            assert_eq!(idx.ext(tau), scan.as_slice(), "label {tau}");
        }
    }

    #[test]
    fn tuple_projects_attribute_sequences() {
        let mut b = TreeBuilder::new();
        let p = b.node("publisher");
        b.attr(p, "pname", AttrValue::single("MK")).unwrap();
        b.attr(p, "country", AttrValue::single("USA")).unwrap();
        let t = b.finish(p).unwrap();
        let xs = [Name::new("pname"), Name::new("country")];
        let tup = t.tuple(p, &xs).unwrap();
        assert_eq!(tup, [&"MK".to_string(), &"USA".to_string()]);
        assert!(t.tuple(p, &[Name::new("missing")]).is_none());
    }

    #[test]
    fn tuple_rejects_set_valued_components() {
        let mut b = TreeBuilder::new();
        let r = b.node("ref");
        b.attr(r, "to", AttrValue::set(["a", "b"])).unwrap();
        let t = b.finish(r).unwrap();
        assert!(t.tuple(r, &[Name::new("to")]).is_none());
    }

    #[test]
    fn second_parent_rejected() {
        let mut b = TreeBuilder::new();
        let r = b.node("r");
        let c = b.node("c");
        let d = b.node("d");
        b.child(r, c).unwrap();
        assert_eq!(b.child(d, c), Err(ModelError::SecondParent { node: c }));
    }

    #[test]
    fn root_with_parent_rejected() {
        let mut b = TreeBuilder::new();
        let r = b.node("r");
        let c = b.node("c");
        b.child(r, c).unwrap();
        assert_eq!(b.finish(c).unwrap_err(), ModelError::RootHasParent(c));
    }

    #[test]
    fn unreachable_nodes_rejected() {
        let mut b = TreeBuilder::new();
        let r = b.node("r");
        let _orphan = b.node("o");
        assert_eq!(
            b.finish(r).unwrap_err(),
            ModelError::Unreachable { orphans: 1 }
        );
    }

    #[test]
    fn duplicate_attrs_rejected_empty_sets_allowed() {
        let mut b = TreeBuilder::new();
        let r = b.node("r");
        b.attr(r, "a", AttrValue::single("1")).unwrap();
        assert!(matches!(
            b.attr(r, "a", AttrValue::single("2")),
            Err(ModelError::DuplicateAttribute { .. })
        ));
        b.attr(r, "b", AttrValue::set(Vec::<String>::new()))
            .unwrap();
        let t = b.finish(r).unwrap();
        assert!(t.attr(r, "b").unwrap().is_empty());
    }

    #[test]
    fn attr_value_set_normalizes() {
        let v = AttrValue::set(["b", "a", "b"]);
        assert_eq!(v.len(), 2);
        assert!(v.contains("a") && v.contains("b"));
        assert!(!v.contains("c"));
        assert_eq!(v, AttrValue::set(["a", "b"]));
        assert!(!v.is_singleton());
        assert_eq!(v.as_single(), None);
    }

    #[test]
    fn node_text_concatenates() {
        let mut b = TreeBuilder::new();
        let r = b.node("t");
        b.text(r, "Data ").unwrap();
        b.text(r, "on the Web").unwrap();
        let t = b.finish(r).unwrap();
        assert_eq!(t.node(r).text(), "Data on the Web");
    }
}
