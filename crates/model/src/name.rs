//! Cheaply clonable interned-ish names for element types and attributes.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A name drawn from the paper's alphabets **E** (element names) or **A**
/// (attribute names).
///
/// `Name` is an immutable, reference-counted string: cloning is O(1) and the
/// same spelling compares equal regardless of provenance. It is used for
/// element-type names, attribute names, and path labels throughout the
/// workspace.
///
/// ```
/// use xic_model::Name;
/// let a = Name::new("entry");
/// let b: Name = "entry".into();
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "entry");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(Arc<str>);

impl Name {
    /// Creates a name from any string-like value.
    pub fn new(s: impl AsRef<str>) -> Self {
        Name(Arc::from(s.as_ref()))
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Name {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name(Arc::from(s))
    }
}

impl From<&Name> for Name {
    fn from(n: &Name) -> Self {
        n.clone()
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equality_is_by_spelling() {
        let a = Name::new(String::from("book"));
        let b = Name::new("book");
        assert_eq!(a, b);
        assert_ne!(a, Name::new("entry"));
    }

    #[test]
    fn borrow_allows_str_lookup() {
        let mut m: HashMap<Name, u32> = HashMap::new();
        m.insert(Name::new("isbn"), 7);
        assert_eq!(m.get("isbn"), Some(&7));
        assert_eq!(m.get("sid"), None);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![Name::new("c"), Name::new("a"), Name::new("b")];
        v.sort();
        assert_eq!(v, vec![Name::new("a"), Name::new("b"), Name::new("c")]);
    }

    #[test]
    fn display_and_compare_with_str() {
        let n = Name::new("dept");
        assert_eq!(n.to_string(), "dept");
        assert!(n == "dept");
        assert_eq!(&*n, "dept");
    }
}
