//! Property-based tests for the implication engine: proof-checker
//! robustness (mutated proofs are rejected), solver/oracle agreement on
//! proptest-generated constraint sets, and chase soundness.

use proptest::prelude::*;
use xic_constraints::Constraint;
use xic_implication::bruteforce::{find_countermodel, Bounds};
use xic_implication::chase::{Chase, ChaseLimits, ChaseOutcome};
use xic_implication::lu::Mode;
use xic_implication::{LuSolver, Rule, Verdict};

fn tight_bounds() -> Bounds {
    Bounds {
        max_per_type: 2,
        max_values: 2,
        budget: 60_000,
    }
}

/// A small well-formed L_u Σ from index choices: keys on (tᵢ, k) and FK
/// edges among them.
fn lu_sigma(edges: &[(u8, u8)], keys: &[u8]) -> Vec<Constraint> {
    let mut sigma: Vec<Constraint> = keys
        .iter()
        .map(|&i| Constraint::unary_key(format!("t{}", i % 4), "k"))
        .collect();
    for &(a, b) in edges {
        sigma.push(Constraint::unary_fk(
            format!("t{}", a % 4),
            "k",
            format!("t{}", b % 4),
            "k",
        ));
    }
    sigma.sort_by_key(ToString::to_string);
    sigma.dedup();
    sigma
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lu_finite_verdicts_match_small_oracle(
        edges in prop::collection::vec((0u8..4, 0u8..4), 0..5),
        keys in prop::collection::vec(0u8..4, 0..3),
        qa in 0u8..4, qb in 0u8..4,
    ) {
        let sigma = lu_sigma(&edges, &keys);
        let solver = LuSolver::new(&sigma).unwrap();
        let phi = Constraint::unary_fk(format!("t{qa}"), "k", format!("t{qb}"), "k");
        if sigma.contains(&phi) {
            return Ok(());
        }
        let v = solver.implies(&phi, Mode::Finite).unwrap();
        let cm = find_countermodel(&sigma, &phi, tight_bounds());
        match (&v, &cm) {
            (Verdict::Implied(p), Some(m)) => {
                prop_assert!(false, "solver implied but oracle found:\n{m}\nproof:\n{p}");
            }
            (Verdict::Implied(p), None) => {
                p.verify(&sigma, None).map_err(|e| {
                    TestCaseError::fail(format!("bad proof: {e}\n{p}"))
                })?;
            }
            _ => {}
        }
    }

    #[test]
    fn proof_mutations_are_rejected(
        edges in prop::collection::vec((0u8..4, 0u8..4), 1..5),
        keys in prop::collection::vec(0u8..4, 1..3),
        victim in 0usize..8,
    ) {
        // Build a genuine proof, then corrupt one step's rule; the checker
        // must reject (or the mutation was a no-op because the rule names
        // coincide semantically — exclude by picking a definitely-wrong
        // rule).
        let sigma = lu_sigma(&edges, &keys);
        let solver = LuSolver::new(&sigma).unwrap();
        // Find any implied FK query with a multi-step proof.
        'outer: for a in 0..4u8 {
            for b in 0..4u8 {
                let phi = Constraint::unary_fk(format!("t{a}"), "k", format!("t{b}"), "k");
                if let Verdict::Implied(p) = solver.implies(&phi, Mode::Finite).unwrap() {
                    if p.steps.len() < 2 {
                        continue;
                    }
                    let mut bad = p.clone();
                    let i = victim % bad.steps.len();
                    // Rewrite the conclusion to a definitely-unrelated fact.
                    bad.steps[i].conclusion = Constraint::unary_key("zzz", "nope");
                    prop_assert!(
                        bad.verify(&sigma, None).is_err(),
                        "mutated proof accepted:\n{bad}"
                    );
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn chase_never_misclassifies_small_instances(
        has_fk in any::<bool>(),
        key_on_a in any::<bool>(),
        qa in any::<bool>(),
    ) {
        // Tiny L schemas: compare the chase against the oracle.
        let mut sigma = vec![];
        if key_on_a {
            sigma.push(Constraint::key("r", ["a"]));
        } else {
            sigma.push(Constraint::key("r", ["b"]));
        }
        if has_fk {
            sigma.push(Constraint::fk("s", ["x"], "r", if key_on_a { ["a"] } else { ["b"] }));
        }
        let phi = if qa {
            Constraint::key("r", ["a"])
        } else {
            Constraint::key("s", ["x"])
        };
        let chase = Chase::new(&sigma, ChaseLimits::default()).unwrap();
        match chase.implies(&phi) {
            ChaseOutcome::Implied => {
                prop_assert!(find_countermodel(&sigma, &phi, tight_bounds()).is_none());
            }
            ChaseOutcome::NotImplied(m) => {
                prop_assert!(m.satisfies_all(&sigma));
                prop_assert!(!m.satisfies(&phi));
            }
            ChaseOutcome::ResourceLimit => {}
        }
    }
}

#[test]
fn hypothesis_rule_checks_set_membership_strictly() {
    let sigma = vec![Constraint::unary_key("a", "x")];
    let mut p = xic_implication::Proof::hypothesis(Constraint::unary_key("a", "y"));
    assert!(p.verify(&sigma, None).is_err());
    p.steps[0].conclusion = Constraint::unary_key("a", "x");
    assert!(p.verify(&sigma, None).is_ok());
    // Wrong rule name on a hypothesis-shaped step.
    p.steps[0].rule = Rule::UfkK;
    assert!(p.verify(&sigma, None).is_err());
}
