//! Machine-checkable derivations in the paper's axiom systems.
//!
//! A [`Proof`] is a linear derivation: a list of [`Step`]s, each concluding
//! a constraint by one [`Rule`] from earlier steps (or from `Σ` by
//! [`Rule::Hypothesis`]). [`Proof::verify`] re-checks every step, so solver
//! answers of `Implied` are independently auditable — this is how the
//! test-suite exercises the *soundness* halves of Prop 3.1, Thm 3.2, Thm
//! 3.4 and Thm 3.8.
//!
//! Rule inventory:
//!
//! * `I_id` (§3.1): `ID-FK`, `FK-ID`, `SFK-ID`, `Inv-SFK-ID`, plus `ID-Key`
//!   (the ID constraint is strictly stronger than the unary key on the ID
//!   attribute; see DESIGN.md) and inverse symmetry.
//! * `I_u` (§3.2): `UK-FK`, `UFK-K`, `SFK-K`, `UFK-trans`, `USFK-trans`,
//!   `Inv-SFK`, inverse symmetry; `I_u^f` adds the cycle rules `C_k`.
//! * `I_p` (§3.3): `PK-FK`, `PFK-K`, `PFK-perm`, `PFK-trans`.

use std::collections::BTreeSet;
use std::fmt;

use xic_constraints::{Constraint, DtdStructure, Field};

/// The inference rules across all three axiom systems.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// The conclusion is a member of `Σ`.
    Hypothesis,
    /// `ID-FK`: `τ.id →_id τ ⊢ τ.id ⊆ τ.id`.
    IdFk,
    /// `FK-ID`: `τ.l ⊆ τ'.id ⊢ τ'.id →_id τ'`.
    FkId,
    /// `SFK-ID`: `τ.l ⊆_S τ'.id ⊢ τ'.id →_id τ'`.
    SfkId,
    /// `Inv-SFK-ID`: `τ.l ⇌ τ'.l' ⊢ τ.l ⊆_S τ'.id` (and symmetrically).
    InvSfkId,
    /// `ID-Key`: `τ.id →_id τ ⊢ τ.id → τ` (document-wide uniqueness
    /// implies per-type uniqueness).
    IdKey,
    /// Symmetry of `L_id` inverse constraints.
    InvIdSym,
    /// `UK-FK`: `τ.l → τ ⊢ τ.l ⊆ τ.l`.
    UkFk,
    /// `UFK-K`: `τ.l ⊆ τ'.l' ⊢ τ'.l' → τ'`.
    UfkK,
    /// `SFK-K`: `τ.l ⊆_S τ'.l' ⊢ τ'.l' → τ'`.
    SfkK,
    /// `UFK-trans`: `τ₁.l₁ ⊆ τ₂.l₂, τ₂.l₂ ⊆ τ₃.l₃ ⊢ τ₁.l₁ ⊆ τ₃.l₃`.
    UfkTrans,
    /// `USFK-trans`: `τ₁.l₁ ⊆_S τ₂.l₂, τ₂.l₂ ⊆ τ₃.l₃ ⊢ τ₁.l₁ ⊆_S τ₃.l₃`.
    UsfkTrans,
    /// `Inv-SFK`: `τ(l_k).l ⇌ τ'(l'_k).l' ⊢ τ.l_k → τ` (and the partner
    /// key).
    InvSfk,
    /// Symmetry of `L_u` inverse constraints.
    InvUSym,
    /// `C_k` (finite implication only): a cardinality cycle reverses a
    /// unary foreign key. The first premise is the foreign key
    /// `τ.l ⊆ τ'.l'` being reversed; the remaining premises trace a
    /// cardinality-nonincreasing chain from `τ'.l'` back to `τ.l`, each
    /// being either a foreign key (a value-inclusion step) or a key
    /// constraint `σ.g → σ` (a same-type step `σ.f ⇒ σ.g`, sound because
    /// `|ext(σ).f| ≤ |ext(σ)| = |ext(σ).g|`).
    Cycle,
    /// `PK-FK`: `τ[X] → τ ⊢ τ[X] ⊆ τ[X]`.
    PkFk,
    /// `PFK-K`: `τ[X] ⊆ τ'[Y] ⊢ τ'[Y] → τ'`.
    PfkK,
    /// `PFK-perm`: jointly permute the two sides of a foreign key.
    PfkPerm,
    /// `PFK-trans`: compose column-aligned foreign keys.
    PfkTrans,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::Hypothesis => "hyp",
            Rule::IdFk => "ID-FK",
            Rule::FkId => "FK-ID",
            Rule::SfkId => "SFK-ID",
            Rule::InvSfkId => "Inv-SFK-ID",
            Rule::IdKey => "ID-Key",
            Rule::InvIdSym => "Inv-sym",
            Rule::UkFk => "UK-FK",
            Rule::UfkK => "UFK-K",
            Rule::SfkK => "SFK-K",
            Rule::UfkTrans => "UFK-trans",
            Rule::UsfkTrans => "USFK-trans",
            Rule::InvSfk => "Inv-SFK",
            Rule::InvUSym => "Inv-sym",
            Rule::Cycle => "C_k",
            Rule::PkFk => "PK-FK",
            Rule::PfkK => "PFK-K",
            Rule::PfkPerm => "PFK-perm",
            Rule::PfkTrans => "PFK-trans",
        };
        f.write_str(s)
    }
}

/// One derivation step.
#[derive(Clone, Debug)]
pub struct Step {
    /// The constraint concluded by this step.
    pub conclusion: Constraint,
    /// The rule applied.
    pub rule: Rule,
    /// Indices of earlier steps serving as premises.
    pub premises: Vec<usize>,
}

/// A linear derivation; the last step's conclusion is what the proof
/// proves.
#[derive(Clone, Debug, Default)]
pub struct Proof {
    /// The steps, in order.
    pub steps: Vec<Step>,
}

/// Why a proof failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofError {
    /// The failing step index.
    pub step: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proof step {} invalid: {}", self.step, self.reason)
    }
}

impl std::error::Error for ProofError {}

/// True iff `attr` denotes the ID attribute of `tau` — either the literal
/// pseudo-name `id`, or (when a structure is given) the declared one.
fn is_id_attr(
    structure: Option<&DtdStructure>,
    tau: &xic_model::Name,
    attr: &xic_model::Name,
) -> bool {
    attr.as_str() == "id" || structure.is_some_and(|s| s.id_attr(tau) == Some(attr))
}

impl Proof {
    /// A one-step proof from a hypothesis.
    pub fn hypothesis(c: Constraint) -> Proof {
        Proof {
            steps: vec![Step {
                conclusion: c,
                rule: Rule::Hypothesis,
                premises: vec![],
            }],
        }
    }

    /// Appends a step and returns its index.
    pub fn push(&mut self, conclusion: Constraint, rule: Rule, premises: Vec<usize>) -> usize {
        self.steps.push(Step {
            conclusion,
            rule,
            premises,
        });
        self.steps.len() - 1
    }

    /// The proved constraint (the last conclusion).
    pub fn conclusion(&self) -> Option<&Constraint> {
        self.steps.last().map(|s| &s.conclusion)
    }

    /// Verifies every step against `Σ` (and optionally a structure, used to
    /// resolve the `id` pseudo-attribute of `L_id` rules).
    pub fn verify(
        &self,
        sigma: &[Constraint],
        structure: Option<&DtdStructure>,
    ) -> Result<(), ProofError> {
        for (i, step) in self.steps.iter().enumerate() {
            let err = |reason: String| ProofError { step: i, reason };
            for &p in &step.premises {
                if p >= i {
                    return Err(err(format!("premise {p} is not an earlier step")));
                }
            }
            let prem: Vec<&Constraint> = step
                .premises
                .iter()
                .map(|&p| &self.steps[p].conclusion)
                .collect();
            let c = &step.conclusion;
            let ok = match step.rule {
                Rule::Hypothesis => sigma.contains(c),
                Rule::IdFk => matches!(
                    (prem.as_slice(), c),
                    ([Constraint::Id { tau }], Constraint::FkToId { tau: t, attr, target })
                        if t == tau && target == tau && is_id_attr(structure, tau, attr)
                ),
                Rule::FkId => matches!(
                    (prem.as_slice(), c),
                    ([Constraint::FkToId { target, .. }], Constraint::Id { tau })
                        if tau == target
                ),
                Rule::SfkId => matches!(
                    (prem.as_slice(), c),
                    ([Constraint::SetFkToId { target, .. }], Constraint::Id { tau })
                        if tau == target
                ),
                Rule::InvSfkId => match (prem.as_slice(), c) {
                    (
                        [Constraint::InverseId {
                            tau,
                            attr,
                            target,
                            target_attr,
                        }],
                        Constraint::SetFkToId {
                            tau: ct,
                            attr: ca,
                            target: cg,
                        },
                    ) => {
                        (ct == tau && ca == attr && cg == target)
                            || (ct == target && ca == target_attr && cg == tau)
                    }
                    _ => false,
                },
                Rule::IdKey => match (prem.as_slice(), c) {
                    ([Constraint::Id { tau }], Constraint::Key { tau: ct, fields }) => {
                        ct == tau
                            && fields.len() == 1
                            && matches!(&fields[0], Field::Attr(a) if is_id_attr(structure, tau, a))
                    }
                    _ => false,
                },
                Rule::InvIdSym => match (prem.as_slice(), c) {
                    (
                        [Constraint::InverseId {
                            tau,
                            attr,
                            target,
                            target_attr,
                        }],
                        Constraint::InverseId {
                            tau: ct,
                            attr: ca,
                            target: cg,
                            target_attr: cga,
                        },
                    ) => ct == target && ca == target_attr && cg == tau && cga == attr,
                    _ => false,
                },
                Rule::UkFk => match (prem.as_slice(), c) {
                    (
                        [Constraint::Key { tau, fields }],
                        Constraint::ForeignKey {
                            tau: ct,
                            fields: cf,
                            target,
                            target_fields,
                        },
                    ) => {
                        fields.len() == 1
                            && ct == tau
                            && target == tau
                            && cf == fields
                            && target_fields == fields
                    }
                    _ => false,
                },
                Rule::UfkK => match (prem.as_slice(), c) {
                    (
                        [Constraint::ForeignKey {
                            target,
                            target_fields,
                            ..
                        }],
                        Constraint::Key { tau, fields },
                    ) => target_fields.len() == 1 && tau == target && fields == target_fields,
                    _ => false,
                },
                Rule::SfkK => match (prem.as_slice(), c) {
                    (
                        [Constraint::SetForeignKey {
                            target,
                            target_field,
                            ..
                        }],
                        Constraint::Key { tau, fields },
                    ) => tau == target && fields.len() == 1 && &fields[0] == target_field,
                    _ => false,
                },
                Rule::UfkTrans => match (prem.as_slice(), c) {
                    (
                        [Constraint::ForeignKey {
                            tau: t1,
                            fields: f1,
                            target: t2,
                            target_fields: g2,
                        }, Constraint::ForeignKey {
                            tau: t2b,
                            fields: f2b,
                            target: t3,
                            target_fields: g3,
                        }],
                        Constraint::ForeignKey {
                            tau: ct,
                            fields: cf,
                            target: cg,
                            target_fields: cgf,
                        },
                    ) => {
                        f1.len() == 1
                            && t2 == t2b
                            && g2 == f2b
                            && ct == t1
                            && cf == f1
                            && cg == t3
                            && cgf == g3
                    }
                    _ => false,
                },
                Rule::UsfkTrans => match (prem.as_slice(), c) {
                    (
                        [Constraint::SetForeignKey {
                            tau: t1,
                            attr: l1,
                            target: t2,
                            target_field: g2,
                        }, Constraint::ForeignKey {
                            tau: t2b,
                            fields: f2b,
                            target: t3,
                            target_fields: g3,
                        }],
                        Constraint::SetForeignKey {
                            tau: ct,
                            attr: ca,
                            target: cg,
                            target_field: cgf,
                        },
                    ) => {
                        t2 == t2b
                            && f2b.len() == 1
                            && &f2b[0] == g2
                            && g3.len() == 1
                            && ct == t1
                            && ca == l1
                            && cg == t3
                            && cgf == &g3[0]
                    }
                    _ => false,
                },
                Rule::InvSfk => match (prem.as_slice(), c) {
                    (
                        [Constraint::InverseU {
                            tau,
                            key,
                            target,
                            target_key,
                            ..
                        }],
                        Constraint::Key { tau: ct, fields },
                    ) => {
                        fields.len() == 1
                            && ((ct == tau && &fields[0] == key)
                                || (ct == target && &fields[0] == target_key))
                    }
                    _ => false,
                },
                Rule::InvUSym => match (prem.as_slice(), c) {
                    (
                        [Constraint::InverseU {
                            tau,
                            key,
                            attr,
                            target,
                            target_key,
                            target_attr,
                        }],
                        Constraint::InverseU {
                            tau: ct,
                            key: ck,
                            attr: ca,
                            target: cg,
                            target_key: cgk,
                            target_attr: cga,
                        },
                    ) => {
                        ct == target
                            && ck == target_key
                            && ca == target_attr
                            && cg == tau
                            && cgk == key
                            && cga == attr
                    }
                    _ => false,
                },
                Rule::Cycle => self.check_cycle(&prem, c).map_err(err)?,
                Rule::PkFk => match (prem.as_slice(), c) {
                    (
                        [Constraint::Key { tau, fields }],
                        Constraint::ForeignKey {
                            tau: ct,
                            fields: cf,
                            target,
                            target_fields,
                        },
                    ) => {
                        ct == tau
                            && target == tau
                            && cf == target_fields
                            && as_set(cf) == as_set(fields)
                    }
                    _ => false,
                },
                Rule::PfkK => match (prem.as_slice(), c) {
                    (
                        [Constraint::ForeignKey {
                            target,
                            target_fields,
                            ..
                        }],
                        Constraint::Key { tau, fields },
                    ) => tau == target && as_set(fields) == as_set(target_fields),
                    _ => false,
                },
                Rule::PfkPerm => match (prem.as_slice(), c) {
                    (
                        [Constraint::ForeignKey {
                            tau: t1,
                            fields: f1,
                            target: t2,
                            target_fields: g1,
                        }],
                        Constraint::ForeignKey {
                            tau: ct,
                            fields: cf,
                            target: cg,
                            target_fields: cgf,
                        },
                    ) => {
                        ct == t1
                            && cg == t2
                            && f1.len() == cf.len()
                            && pair_set(f1, g1) == pair_set(cf, cgf)
                    }
                    _ => false,
                },
                Rule::PfkTrans => match (prem.as_slice(), c) {
                    (
                        [Constraint::ForeignKey {
                            tau: t1,
                            fields: f1,
                            target: t2,
                            target_fields: g2,
                        }, Constraint::ForeignKey {
                            tau: t2b,
                            fields: f2b,
                            target: t3,
                            target_fields: g3,
                        }],
                        Constraint::ForeignKey {
                            tau: ct,
                            fields: cf,
                            target: cg,
                            target_fields: cgf,
                        },
                    ) => t2 == t2b && g2 == f2b && ct == t1 && cf == f1 && cg == t3 && cgf == g3,
                    _ => false,
                },
            };
            if !ok {
                return Err(ProofError {
                    step: i,
                    reason: format!(
                        "rule {} does not conclude {} from {:?}",
                        step.rule,
                        step.conclusion,
                        prem.iter().map(ToString::to_string).collect::<Vec<_>>()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Checks a `C_k` instance (see [`Rule::Cycle`]).
    fn check_cycle(&self, prem: &[&Constraint], c: &Constraint) -> Result<bool, String> {
        let Constraint::ForeignKey {
            tau: ctau,
            fields: cfields,
            target: ctarget,
            target_fields: ctfields,
        } = c
        else {
            return Ok(false);
        };
        if cfields.len() != 1 || ctfields.len() != 1 {
            return Ok(false);
        }
        let Some((
            Constraint::ForeignKey {
                tau: a_tau,
                fields: a_fields,
                target: b_tau,
                target_fields: b_fields,
            },
            chain,
        )) = prem.split_first().map(|(f, r)| (*f, r))
        else {
            return Ok(false);
        };
        if a_fields.len() != 1 || b_fields.len() != 1 {
            return Ok(false);
        }
        // Conclusion must reverse the first premise.
        if !(ctau == b_tau && cfields == b_fields && ctarget == a_tau && ctfields == a_fields) {
            return Ok(false);
        }
        // Walk the chain from (b_tau, b_field) back to (a_tau, a_field).
        let mut cur = (b_tau.clone(), b_fields[0].clone());
        for step in chain {
            match step {
                Constraint::ForeignKey {
                    tau,
                    fields,
                    target,
                    target_fields,
                } if fields.len() == 1 && target_fields.len() == 1 => {
                    if !(tau == &cur.0 && fields[0] == cur.1) {
                        return Err(format!("cycle chain breaks at {}.{}", cur.0, cur.1));
                    }
                    cur = (target.clone(), target_fields[0].clone());
                }
                Constraint::Key { tau, fields } if fields.len() == 1 => {
                    if tau != &cur.0 {
                        return Err(format!("cycle key step on {tau} but chain is at {}", cur.0));
                    }
                    cur = (tau.clone(), fields[0].clone());
                }
                other => {
                    return Err(format!("bad cycle premise {other}"));
                }
            }
        }
        Ok(cur.0 == *a_tau && cur.1 == a_fields[0])
    }
}

fn as_set(fields: &[Field]) -> BTreeSet<&Field> {
    fields.iter().collect()
}

fn pair_set<'a>(xs: &'a [Field], ys: &'a [Field]) -> BTreeSet<(&'a Field, &'a Field)> {
    xs.iter().zip(ys.iter()).collect()
}

impl fmt::Display for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            write!(f, "{i}. {}   [{}", s.conclusion, s.rule)?;
            if !s.premises.is_empty() {
                write!(
                    f,
                    " {}",
                    s.premises
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                )?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypothesis_checks_membership() {
        let k = Constraint::unary_key("a", "x");
        let p = Proof::hypothesis(k.clone());
        assert!(p.verify(std::slice::from_ref(&k), None).is_ok());
        assert!(p.verify(&[], None).is_err());
        assert_eq!(p.conclusion(), Some(&k));
    }

    #[test]
    fn uk_fk_and_ufk_k() {
        let k = Constraint::unary_key("a", "x");
        let mut p = Proof::hypothesis(k.clone());
        let i = p.push(
            Constraint::unary_fk("a", "x", "a", "x"),
            Rule::UkFk,
            vec![0],
        );
        p.push(Constraint::unary_key("a", "x"), Rule::UfkK, vec![i]);
        assert!(p.verify(&[k], None).is_ok());
    }

    #[test]
    fn transitivity_chain() {
        let f1 = Constraint::unary_fk("a", "x", "b", "y");
        let f2 = Constraint::unary_fk("b", "y", "c", "z");
        let mut p = Proof::hypothesis(f1.clone());
        p.push(f2.clone(), Rule::Hypothesis, vec![]);
        p.push(
            Constraint::unary_fk("a", "x", "c", "z"),
            Rule::UfkTrans,
            vec![0, 1],
        );
        assert!(p.verify(&[f1.clone(), f2.clone()], None).is_ok());
        // Mismatched middle attribute fails.
        let mut bad = Proof::hypothesis(f1.clone());
        bad.push(
            Constraint::unary_fk("b", "OTHER", "c", "z"),
            Rule::Hypothesis,
            vec![],
        );
        bad.push(
            Constraint::unary_fk("a", "x", "c", "z"),
            Rule::UfkTrans,
            vec![0, 1],
        );
        assert!(bad
            .verify(&[f1, Constraint::unary_fk("b", "OTHER", "c", "z")], None)
            .is_err());
    }

    #[test]
    fn lid_rules() {
        let sigma = vec![
            Constraint::Id { tau: "p".into() },
            Constraint::InverseId {
                tau: "d".into(),
                attr: "staff".into(),
                target: "p".into(),
                target_attr: "in".into(),
            },
        ];
        let mut p = Proof::hypothesis(sigma[1].clone());
        let s = p.push(
            Constraint::SetFkToId {
                tau: "d".into(),
                attr: "staff".into(),
                target: "p".into(),
            },
            Rule::InvSfkId,
            vec![0],
        );
        p.push(Constraint::Id { tau: "p".into() }, Rule::SfkId, vec![s]);
        p.push(
            Constraint::FkToId {
                tau: "p".into(),
                attr: "id".into(),
                target: "p".into(),
            },
            Rule::IdFk,
            vec![2],
        );
        p.push(Constraint::unary_key("p", "id"), Rule::IdKey, vec![2]);
        assert!(p.verify(&sigma, None).is_ok(), "{p}");
    }

    #[test]
    fn cycle_rule_instance() {
        // Σ = {a key, b key (same type t), t.a ⊆ t.b}; C_k reverses it:
        // t.b ⊆ t.a via the chain t.b ⇒(key a) t.a.
        let ka = Constraint::unary_key("t", "a");
        let kb = Constraint::unary_key("t", "b");
        let fk = Constraint::unary_fk("t", "a", "t", "b");
        let sigma = vec![ka.clone(), kb.clone(), fk.clone()];
        let mut p = Proof::hypothesis(fk);
        p.push(ka.clone(), Rule::Hypothesis, vec![]);
        p.push(
            Constraint::unary_fk("t", "b", "t", "a"),
            Rule::Cycle,
            vec![0, 1],
        );
        assert!(p.verify(&sigma, None).is_ok(), "{p}");

        // A longer (redundant) chain is still valid: b ⇒(key b) b
        // ⇒(key a) a.
        let mut long = Proof::hypothesis(sigma[2].clone());
        long.push(kb, Rule::Hypothesis, vec![]);
        long.push(ka, Rule::Hypothesis, vec![]);
        long.push(
            Constraint::unary_fk("t", "b", "t", "a"),
            Rule::Cycle,
            vec![0, 1, 2],
        );
        assert!(long.verify(&sigma, None).is_ok(), "{long}");

        // A chain ending at the wrong node is rejected.
        let mut bad2 = Proof::hypothesis(sigma[2].clone());
        bad2.push(Constraint::unary_key("t", "zzz"), Rule::Hypothesis, vec![]);
        bad2.push(
            Constraint::unary_fk("t", "b", "t", "a"),
            Rule::Cycle,
            vec![0, 1],
        );
        assert!(bad2
            .verify(&[sigma[2].clone(), Constraint::unary_key("t", "zzz")], None)
            .is_err());
    }

    #[test]
    fn primary_rules() {
        let k = Constraint::key("p", ["a", "b"]);
        let fk = Constraint::fk("e", ["x", "y"], "p", ["a", "b"]);
        let sigma = vec![k.clone(), fk.clone()];
        let mut p = Proof::hypothesis(fk.clone());
        // Permute jointly.
        p.push(
            Constraint::fk("e", ["y", "x"], "p", ["b", "a"]),
            Rule::PfkPerm,
            vec![0],
        );
        // PFK-K on the permuted FK.
        p.push(Constraint::key("p", ["a", "b"]), Rule::PfkK, vec![1]);
        // PK-FK.
        p.push(
            Constraint::fk("p", ["a", "b"], "p", ["a", "b"]),
            Rule::PkFk,
            vec![2],
        );
        assert!(p.verify(&sigma, None).is_ok(), "{p}");

        // Non-joint permutation rejected.
        let mut bad = Proof::hypothesis(fk.clone());
        bad.push(
            Constraint::fk("e", ["y", "x"], "p", ["a", "b"]),
            Rule::PfkPerm,
            vec![0],
        );
        assert!(bad.verify(&sigma, None).is_err());
    }

    #[test]
    fn premise_ordering_enforced() {
        let mut p = Proof::default();
        p.push(Constraint::unary_key("a", "x"), Rule::UfkK, vec![5]);
        assert!(p.verify(&[], None).is_err());
    }

    #[test]
    fn display_shows_rules() {
        let mut p = Proof::hypothesis(Constraint::unary_key("a", "x"));
        p.push(
            Constraint::unary_fk("a", "x", "a", "x"),
            Rule::UkFk,
            vec![0],
        );
        let s = p.to_string();
        assert!(s.contains("[hyp]"));
        assert!(s.contains("[UK-FK 0]"));
    }
}
