//! Implication of multi-attribute **primary** keys and foreign keys
//! (§3.3, Theorem 3.8).
//!
//! General `L` implication is undecidable (Theorem 3.6; see
//! [`crate::chase`]); under the primary-key restriction — at most one key
//! per element type, minimal, with all foreign keys into a type targeting
//! that key — the axiom system
//! `I_p` = {`PK-FK`, `PFK-K`, `PFK-perm`, `PFK-trans`} is sound and
//! complete for both implication and finite implication (which coincide).
//!
//! A multi-attribute foreign key `τ[X] ⊆ τ'[Y]` is canonicalized to the
//! *column bijection* `{(xᵢ, yᵢ)}` (a sorted pair set): `PFK-perm` says
//! exactly that jointly permuted forms are interchangeable. The solver
//! saturates canonical foreign keys under composition (`PFK-trans` through
//! a `PFK-perm` alignment), then answers key queries from the declared
//! primary keys and foreign-key queries from the saturated set.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use xic_constraints::{Constraint, Field};
use xic_model::Name;
use xic_obs::Obs;

use crate::bruteforce::{find_countermodel, Bounds};
use crate::proof::{Proof, Rule};
use crate::Verdict;

/// A canonical foreign key: source type, target type, and the column
/// bijection as a sorted `(source field, target field)` pair list.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct CanonFk {
    tau: Name,
    target: Name,
    columns: Vec<(Field, Field)>,
}

fn canon(c: &Constraint) -> Option<CanonFk> {
    match c {
        Constraint::ForeignKey {
            tau,
            fields,
            target,
            target_fields,
        } => {
            let mut columns: Vec<(Field, Field)> = fields
                .iter()
                .cloned()
                .zip(target_fields.iter().cloned())
                .collect();
            columns.sort();
            Some(CanonFk {
                tau: tau.clone(),
                target: target.clone(),
                columns,
            })
        }
        _ => None,
    }
}

/// Violations of the primary-key restriction for `L`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// A constraint outside `L` (e.g. `L_id` forms) was supplied.
    NotL(String),
    /// Two distinct key sets declared on one element type.
    TwoKeys(Name),
    /// A foreign key targets a field set that is not the target's primary
    /// key.
    TargetNotPrimary(String),
    /// Source columns of a foreign key repeat an attribute.
    RepeatedColumn(String),
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::NotL(c) => write!(f, "constraint is not in L: {c}"),
            LpError::TwoKeys(t) => write!(f, "primary-key restriction: {t} has two keys"),
            LpError::TargetNotPrimary(c) => {
                write!(f, "{c}: foreign key must target the primary key")
            }
            LpError::RepeatedColumn(c) => write!(f, "{c}: repeated column"),
        }
    }
}

impl std::error::Error for LpError {}

/// The primary-key `L` implication solver (Theorem 3.8; Corollary 3.9 is
/// the same statement read over relational schemas).
///
/// Under the primary-key restriction the implication and finite implication
/// problems coincide, so one `implies` answers both.
///
/// ```
/// use xic_constraints::Constraint;
/// use xic_implication::LpSolver;
///
/// let sigma = vec![
///     Constraint::key("publisher", ["pname", "country"]),
///     Constraint::key("editor", ["name"]),
///     Constraint::fk("editor", ["pname", "country"], "publisher", ["pname", "country"]),
/// ];
/// let solver = LpSolver::new(&sigma).unwrap();
/// // Jointly permuted form of the declared FK:
/// let phi = Constraint::fk("editor", ["country", "pname"], "publisher", ["country", "pname"]);
/// let v = solver.implies(&phi);
/// assert!(v.is_implied());
/// v.proof().unwrap().verify(&sigma, None).unwrap();
/// // Mismatched (non-joint) permutation is NOT implied:
/// let bad = Constraint::fk("editor", ["pname", "country"], "publisher", ["country", "pname"]);
/// assert!(!solver.implies(&bad).is_implied());
/// ```
pub struct LpSolver {
    sigma: Vec<Constraint>,
    obs: Obs,
    /// Primary key (field set) per type.
    primary: BTreeMap<Name, BTreeSet<Field>>,
    /// Step index of each declared key's hypothesis.
    key_steps: HashMap<Name, usize>,
    /// Saturated canonical FKs → proof step concluding (a permuted form
    /// of) them.
    fks: HashMap<CanonFk, usize>,
    base: Proof,
}

impl LpSolver {
    /// Builds and saturates; errors if `Σ` violates the primary-key
    /// restriction.
    pub fn new(sigma: &[Constraint]) -> Result<Self, LpError> {
        let mut primary: BTreeMap<Name, BTreeSet<Field>> = BTreeMap::new();
        let mut key_steps: HashMap<Name, usize> = HashMap::new();
        let mut base = Proof::default();
        let mut fks: HashMap<CanonFk, usize> = HashMap::new();

        for c in sigma {
            match c {
                Constraint::Key { tau, fields } => {
                    let set: BTreeSet<Field> = fields.iter().cloned().collect();
                    let h = base.push(c.clone(), Rule::Hypothesis, vec![]);
                    match primary.get(tau) {
                        Some(existing) if existing != &set => {
                            return Err(LpError::TwoKeys(tau.clone()))
                        }
                        _ => {
                            primary.insert(tau.clone(), set);
                            key_steps.entry(tau.clone()).or_insert(h);
                        }
                    }
                }
                Constraint::ForeignKey { .. } => {} // second pass
                other => return Err(LpError::NotL(other.to_string())),
            }
        }
        for c in sigma {
            let Constraint::ForeignKey {
                tau: _,
                fields,
                target,
                target_fields,
            } = c
            else {
                continue;
            };
            let distinct: BTreeSet<&Field> = fields.iter().collect();
            if distinct.len() != fields.len() {
                return Err(LpError::RepeatedColumn(c.to_string()));
            }
            let tset: BTreeSet<Field> = target_fields.iter().cloned().collect();
            match primary.get(target) {
                Some(pk) if pk == &tset => {}
                _ => return Err(LpError::TargetNotPrimary(c.to_string())),
            }
            let h = base.push(c.clone(), Rule::Hypothesis, vec![]);
            let cf = canon(c).expect("foreign key");
            fks.entry(cf).or_insert(h);
        }

        let mut solver = LpSolver {
            sigma: sigma.to_vec(),
            obs: Obs::off(),
            primary,
            key_steps,
            fks,
            base,
        };
        solver.saturate();
        Ok(solver)
    }

    /// Attaches an observability handle: subsequent queries record an
    /// `implication.query` span and, when implied, the derivation length
    /// on the `implication.rules` counter. Verdicts are unaffected.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Saturates canonical FKs under `PFK-trans` (worklist).
    fn saturate(&mut self) {
        let mut work: Vec<CanonFk> = self.fks.keys().cloned().collect();
        while let Some(f) = work.pop() {
            // Compose f : τ₁ → τ₂ with every g : τ₂ → τ₃ (f's target
            // columns are τ₂'s primary key; g's source columns must be the
            // same set for composition to apply).
            let f_step = self.fks[&f];
            let g_list: Vec<(CanonFk, usize)> = self
                .fks
                .iter()
                .filter(|(g, _)| g.tau == f.target)
                .map(|(g, &s)| (g.clone(), s))
                .collect();
            let mut new_fks: Vec<(CanonFk, usize)> = Vec::new();
            for (g, g_step) in g_list {
                let f_targets: BTreeSet<&Field> = f.columns.iter().map(|(_, y)| y).collect();
                let g_sources: BTreeSet<&Field> = g.columns.iter().map(|(x, _)| x).collect();
                if f_targets != g_sources {
                    continue;
                }
                // Compose the bijections.
                let g_map: HashMap<&Field, &Field> =
                    g.columns.iter().map(|(x, y)| (x, y)).collect();
                let mut columns: Vec<(Field, Field)> = f
                    .columns
                    .iter()
                    .map(|(x, y)| (x.clone(), (*g_map[y]).clone()))
                    .collect();
                columns.sort();
                let h = CanonFk {
                    tau: f.tau.clone(),
                    target: g.target.clone(),
                    columns,
                };
                if self.fks.contains_key(&h) {
                    continue;
                }
                // Proof: align g's columns to f's target order (PFK-perm),
                // then PFK-trans.
                let f_c = permuted_constraint(&f, None);
                let f_sorted = self.base.push(f_c.clone(), Rule::PfkPerm, vec![f_step]);
                // g permuted so its source sequence equals f_c's target
                // sequence.
                let order: Vec<&Field> = match &f_c {
                    Constraint::ForeignKey { target_fields, .. } => target_fields.iter().collect(),
                    _ => unreachable!(),
                };
                let g_aligned = permuted_constraint(&g, Some(&order));
                let g_perm = self
                    .base
                    .push(g_aligned.clone(), Rule::PfkPerm, vec![g_step]);
                let comp = match (&f_c, &g_aligned) {
                    (
                        Constraint::ForeignKey { tau, fields, .. },
                        Constraint::ForeignKey {
                            target,
                            target_fields,
                            ..
                        },
                    ) => Constraint::ForeignKey {
                        tau: tau.clone(),
                        fields: fields.clone(),
                        target: target.clone(),
                        target_fields: target_fields.clone(),
                    },
                    _ => unreachable!(),
                };
                let step = self.base.push(comp, Rule::PfkTrans, vec![f_sorted, g_perm]);
                new_fks.push((h, step));
            }
            for (h, step) in new_fks {
                self.fks.insert(h.clone(), step);
                work.push(h);
            }
        }
    }

    /// The constraint set `Σ`.
    pub fn sigma(&self) -> &[Constraint] {
        &self.sigma
    }

    /// Answers `Σ ⊨ φ` (equivalently `Σ ⊨_f φ`: the problems coincide
    /// under the primary-key restriction). Errors if `φ` breaks the
    /// restriction relative to `Σ`.
    pub fn implies(&self, phi: &Constraint) -> Verdict {
        let _q = self.obs.span("implication.query");
        let verdict = self.implies_inner(phi);
        crate::record_verdict(&self.obs, &verdict);
        verdict
    }

    fn implies_inner(&self, phi: &Constraint) -> Verdict {
        match phi {
            Constraint::Key { tau, fields } => {
                let set: BTreeSet<Field> = fields.iter().cloned().collect();
                if self.primary.get(tau) == Some(&set) {
                    let i = self.key_steps[tau];
                    return Verdict::Implied(self.prefix(i));
                }
                // PFK-K: the target of any derived FK is a key — but under
                // the restriction that key is already declared, so this
                // adds nothing beyond the table lookup.
                Verdict::NotImplied(self.countermodel(phi))
            }
            Constraint::ForeignKey { .. } => {
                let cf = canon(phi).expect("foreign key");
                match self.fks.get(&cf) {
                    Some(&i) => {
                        // The stored step concludes the sorted-column form;
                        // permute to the queried order.
                        let mut p = self.prefix(i);
                        let last = p.steps.len() - 1;
                        if p.steps[last].conclusion != *phi {
                            p.push(phi.clone(), Rule::PfkPerm, vec![last]);
                        }
                        Verdict::Implied(p)
                    }
                    None => {
                        // Reflexive primary-key FK (PK-FK).
                        if let Constraint::ForeignKey {
                            tau,
                            fields,
                            target,
                            target_fields,
                        } = phi
                        {
                            if tau == target && fields == target_fields {
                                let set: BTreeSet<Field> = fields.iter().cloned().collect();
                                if self.primary.get(tau) == Some(&set) {
                                    let i = self.key_steps[tau];
                                    let mut p = self.prefix(i);
                                    p.push(phi.clone(), Rule::PkFk, vec![i]);
                                    return Verdict::Implied(p);
                                }
                            }
                        }
                        Verdict::NotImplied(self.countermodel(phi))
                    }
                }
            }
            _ => Verdict::NotImplied(self.countermodel(phi)),
        }
    }

    /// Decides implication without proofs or countermodels (fast path).
    pub fn decide(&self, phi: &Constraint) -> bool {
        match phi {
            Constraint::Key { tau, fields } => {
                let set: BTreeSet<Field> = fields.iter().cloned().collect();
                self.primary.get(tau) == Some(&set)
            }
            Constraint::ForeignKey {
                tau,
                fields,
                target,
                target_fields,
            } => {
                canon(phi).is_some_and(|cf| self.fks.contains_key(&cf))
                    || (tau == target && fields == target_fields && {
                        let set: BTreeSet<Field> = fields.iter().cloned().collect();
                        self.primary.get(tau) == Some(&set)
                    })
            }
            _ => false,
        }
    }

    fn prefix(&self, i: usize) -> Proof {
        Proof {
            steps: self.base.steps[..=i].to_vec(),
        }
    }

    /// Countermodel per the paper's §3.3 construction sketch: populate
    /// extents with two tuples per type, bending the queried constraint.
    /// Falls back to bounded brute-force search.
    fn countermodel(&self, phi: &Constraint) -> Option<crate::Instance> {
        find_countermodel(
            &self.sigma,
            phi,
            Bounds {
                max_per_type: 2,
                max_values: 3,
                budget: 400_000,
            },
        )
    }
}

/// A concrete constraint for a canonical FK; when `target_order` is given,
/// columns are emitted so the *target* sequence equals it, otherwise
/// sorted-column order is used.
fn permuted_constraint(f: &CanonFk, target_order: Option<&[&Field]>) -> Constraint {
    let columns: Vec<(Field, Field)> = match target_order {
        None => f.columns.clone(),
        Some(order) => order
            .iter()
            .map(|want| {
                f.columns
                    .iter()
                    .find(|(x, _)| &x == want)
                    .expect("column present")
                    .clone()
            })
            .collect(),
    };
    Constraint::ForeignKey {
        tau: f.tau.clone(),
        fields: columns.iter().map(|(x, _)| x.clone()).collect(),
        target: f.target.clone(),
        target_fields: columns.iter().map(|(_, y)| y.clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::examples::publishers_dtdc;

    fn publishers_sigma() -> Vec<Constraint> {
        publishers_dtdc().constraints().to_vec()
    }

    #[test]
    fn declared_and_permuted_fks() {
        let sigma = publishers_sigma();
        let s = LpSolver::new(&sigma).unwrap();
        let declared = Constraint::fk(
            "editor",
            ["pname", "country"],
            "publisher",
            ["pname", "country"],
        );
        let v = s.implies(&declared);
        assert!(v.is_implied());
        v.proof().unwrap().verify(&sigma, None).unwrap();
        let permuted = Constraint::fk(
            "editor",
            ["country", "pname"],
            "publisher",
            ["country", "pname"],
        );
        let v = s.implies(&permuted);
        assert!(v.is_implied());
        v.proof().unwrap().verify(&sigma, None).unwrap();
        // Keys.
        assert!(s
            .implies(&Constraint::key("publisher", ["pname", "country"]))
            .is_implied());
        assert!(!s
            .implies(&Constraint::key("publisher", ["pname"]))
            .is_implied());
    }

    #[test]
    fn non_joint_permutation_rejected_with_countermodel() {
        let sigma = publishers_sigma();
        let s = LpSolver::new(&sigma).unwrap();
        let bad = Constraint::fk(
            "editor",
            ["pname", "country"],
            "publisher",
            ["country", "pname"],
        );
        let v = s.implies(&bad);
        assert!(!v.is_implied());
        if let Some(m) = v.countermodel() {
            assert!(m.satisfies_all(&sigma), "{m}");
            assert!(!m.satisfies(&bad), "{m}");
        }
    }

    #[test]
    fn transitive_composition_with_permutation() {
        // a[x, y] ⊆ b[u, v]; b[v, u] ⊆ c[q, p] — note the twisted order:
        // composing maps x→u→p? u aligns with v-column of the second FK…
        let sigma = vec![
            Constraint::key("b", ["u", "v"]),
            Constraint::key("c", ["p", "q"]),
            Constraint::fk("a", ["x", "y"], "b", ["u", "v"]),
            Constraint::fk("b", ["v", "u"], "c", ["q", "p"]),
        ];
        let s = LpSolver::new(&sigma).unwrap();
        // x ↦ u ↦ p and y ↦ v ↦ q.
        let phi = Constraint::fk("a", ["x", "y"], "c", ["p", "q"]);
        let v = s.implies(&phi);
        assert!(v.is_implied());
        v.proof().unwrap().verify(&sigma, None).unwrap();
        // The twisted composition is not implied.
        let bad = Constraint::fk("a", ["x", "y"], "c", ["q", "p"]);
        assert!(!s.implies(&bad).is_implied());
    }

    #[test]
    fn pk_fk_reflexive() {
        let sigma = vec![Constraint::key("p", ["a", "b"])];
        let s = LpSolver::new(&sigma).unwrap();
        let phi = Constraint::fk("p", ["a", "b"], "p", ["a", "b"]);
        let v = s.implies(&phi);
        assert!(v.is_implied());
        v.proof().unwrap().verify(&sigma, None).unwrap();
        // Non-key reflexive is not implied.
        let bad = Constraint::fk("p", ["a"], "p", ["a"]);
        assert!(!s.implies(&bad).is_implied());
    }

    #[test]
    fn restriction_violations_rejected() {
        assert!(matches!(
            LpSolver::new(&[Constraint::key("p", ["a"]), Constraint::key("p", ["b"]),]),
            Err(LpError::TwoKeys(_))
        ));
        assert!(matches!(
            LpSolver::new(&[
                Constraint::key("p", ["a"]),
                Constraint::fk("e", ["x"], "p", ["b"]),
            ]),
            Err(LpError::TargetNotPrimary(_))
        ));
        assert!(matches!(
            LpSolver::new(&[Constraint::Id { tau: "p".into() }]),
            Err(LpError::NotL(_))
        ));
        assert!(matches!(
            LpSolver::new(&[
                Constraint::key("p", ["a", "b"]),
                Constraint::fk("e", ["x", "x"], "p", ["a", "b"]),
            ]),
            Err(LpError::RepeatedColumn(_))
        ));
    }

    #[test]
    fn diamond_compositions_agree() {
        // r0 → r1 → r3 and r0 → r2 → r3, with a column twist on one arm:
        // the two composed FKs differ, and only the untwisted one holds.
        let sigma = vec![
            Constraint::key("r1", ["a", "b"]),
            Constraint::key("r2", ["a", "b"]),
            Constraint::key("r3", ["a", "b"]),
            // Left arm: straight-through.
            Constraint::fk("r0", ["x", "y"], "r1", ["a", "b"]),
            Constraint::fk("r1", ["a", "b"], "r3", ["a", "b"]),
            // Right arm: twisted into r2, untwisted out.
            Constraint::fk("r0", ["y", "x"], "r2", ["a", "b"]),
            Constraint::fk("r2", ["b", "a"], "r3", ["a", "b"]),
        ];
        let s = LpSolver::new(&sigma).unwrap();
        // Left arm composition: x→a, y→b.
        let left = Constraint::fk("r0", ["x", "y"], "r3", ["a", "b"]);
        let v = s.implies(&left);
        assert!(v.is_implied());
        v.proof().unwrap().verify(&sigma, None).unwrap();
        // Right arm composition: y→a→b?? trace: r0.y→r2.a, r0.x→r2.b;
        // then r2.b→r3.a, r2.a→r3.b: so x→a and y→b — the SAME bijection;
        // the diamond commutes and nothing new appears.
        let twisted = Constraint::fk("r0", ["x", "y"], "r3", ["b", "a"]);
        assert!(!s.implies(&twisted).is_implied());
        assert!(s.decide(&left));
        assert!(!s.decide(&twisted));
    }

    #[test]
    fn diamond_with_conflicting_arms() {
        // Same diamond but the right arm composes to the twisted bijection:
        // both compositions are then derivable facts (they are different
        // constraints on the same pair of relations).
        let sigma = vec![
            Constraint::key("r1", ["a", "b"]),
            Constraint::key("r2", ["a", "b"]),
            Constraint::key("r3", ["a", "b"]),
            Constraint::fk("r0", ["x", "y"], "r1", ["a", "b"]),
            Constraint::fk("r1", ["a", "b"], "r3", ["a", "b"]),
            Constraint::fk("r0", ["x", "y"], "r2", ["a", "b"]),
            Constraint::fk("r2", ["a", "b"], "r3", ["b", "a"]),
        ];
        let s = LpSolver::new(&sigma).unwrap();
        for phi in [
            Constraint::fk("r0", ["x", "y"], "r3", ["a", "b"]),
            Constraint::fk("r0", ["x", "y"], "r3", ["b", "a"]),
        ] {
            let v = s.implies(&phi);
            assert!(v.is_implied(), "{phi}");
            v.proof().unwrap().verify(&sigma, None).unwrap();
        }
    }

    #[test]
    fn decide_matches_implies() {
        let sigma = publishers_sigma();
        let s = LpSolver::new(&sigma).unwrap();
        let queries = [
            Constraint::key("publisher", ["pname", "country"]),
            Constraint::key("publisher", ["pname"]),
            Constraint::fk(
                "editor",
                ["country", "pname"],
                "publisher",
                ["country", "pname"],
            ),
            Constraint::fk(
                "editor",
                ["pname", "country"],
                "publisher",
                ["country", "pname"],
            ),
            Constraint::fk(
                "publisher",
                ["pname", "country"],
                "publisher",
                ["pname", "country"],
            ),
        ];
        for phi in queries {
            assert_eq!(s.decide(&phi), s.implies(&phi).is_implied(), "{phi}");
        }
    }

    #[test]
    fn sub_element_composite_keys() {
        // §3.4 for L: a composite primary key mixing an attribute and a
        // unique sub-element.
        let k = Constraint::Key {
            tau: "person".into(),
            fields: vec![Field::attr("ssn"), Field::sub("name")],
        };
        let fk = Constraint::ForeignKey {
            tau: "employee".into(),
            fields: vec![Field::attr("p_ssn"), Field::sub("p_name")],
            target: "person".into(),
            target_fields: vec![Field::attr("ssn"), Field::sub("name")],
        };
        let sigma = vec![k.clone(), fk.clone()];
        let s = LpSolver::new(&sigma).unwrap();
        // Jointly permuted form is implied.
        let permuted = Constraint::ForeignKey {
            tau: "employee".into(),
            fields: vec![Field::sub("p_name"), Field::attr("p_ssn")],
            target: "person".into(),
            target_fields: vec![Field::sub("name"), Field::attr("ssn")],
        };
        let v = s.implies(&permuted);
        assert!(v.is_implied());
        v.proof().unwrap().verify(&sigma, None).unwrap();
        // Crossing attribute and sub-element columns is not.
        let crossed = Constraint::ForeignKey {
            tau: "employee".into(),
            fields: vec![Field::attr("p_ssn"), Field::sub("p_name")],
            target: "person".into(),
            target_fields: vec![Field::sub("name"), Field::attr("ssn")],
        };
        assert!(!s.implies(&crossed).is_implied());
    }

    #[test]
    fn longer_chain_saturates() {
        // A chain of four relations with arity-3 keys.
        let mut sigma = Vec::new();
        let names = ["r0", "r1", "r2", "r3"];
        for r in &names {
            sigma.push(Constraint::key(*r, ["k1", "k2", "k3"]));
        }
        for w in names.windows(2) {
            sigma.push(Constraint::fk(
                w[0],
                ["k1", "k2", "k3"],
                w[1],
                ["k1", "k2", "k3"],
            ));
        }
        let s = LpSolver::new(&sigma).unwrap();
        let phi = Constraint::fk("r0", ["k1", "k2", "k3"], "r3", ["k1", "k2", "k3"]);
        let v = s.implies(&phi);
        assert!(v.is_implied());
        v.proof().unwrap().verify(&sigma, None).unwrap();
        assert!(!s
            .implies(&Constraint::fk(
                "r3",
                ["k1", "k2", "k3"],
                "r0",
                ["k1", "k2", "k3"]
            ))
            .is_implied());
    }
}
