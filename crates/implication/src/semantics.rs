//! Flat instances: the semantic domain for constraint implication.
//!
//! Basic XML constraints only ever mention `ext(τ)` extents and attribute
//! (or unique-sub-element) values, never tree shape, and every finite
//! family of typed extents is realized by some `DTD^C`'s data tree. So
//! implication over data trees coincides with implication over these flat
//! instances (see the crate docs). Countermodels, brute-force search, and
//! the chase all operate here; [`instance_to_tree`] rebuilds a real data
//! tree from an instance.
//!
//! ### The `id` pseudo-attribute
//!
//! Throughout the implication engine, the ID attribute of a type (written
//! `τ.id` in the paper, whatever its concrete name in a given DTD) is
//! represented by the pseudo-attribute name **`id`**: an element's ID value
//! is its `Field::Attr("id")` single value. Solvers normalize concrete ID
//! attribute names to this convention when given a structure.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

use xic_constraints::{Constraint, DtdStructure, Field};
use xic_model::{AttrValue, DataTree, Name, TreeBuilder};

/// The pseudo-attribute holding ID values (see module docs).
pub fn id_field() -> Field {
    Field::attr("id")
}

/// One element of an extent: its single-valued fields (attributes or unique
/// sub-elements, including the `id` pseudo-attribute) and its set-valued
/// attributes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Element {
    /// Single-valued fields and their values.
    pub single: BTreeMap<Field, u32>,
    /// Set-valued attributes and their value sets.
    pub sets: BTreeMap<Name, BTreeSet<u32>>,
}

impl Element {
    /// The element's ID value (the `id` pseudo-attribute), if any.
    pub fn id(&self) -> Option<u32> {
        self.single.get(&id_field()).copied()
    }

    /// Sets the ID value.
    pub fn set_id(&mut self, v: u32) {
        self.single.insert(id_field(), v);
    }

    /// The tuple of values over `fields`; `None` if any is undefined.
    pub fn tuple(&self, fields: &[Field]) -> Option<Vec<u32>> {
        fields.iter().map(|f| self.single.get(f).copied()).collect()
    }
}

/// A finite flat instance: for each element type, its extent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Instance {
    /// `ext(τ)` for each type.
    pub exts: BTreeMap<Name, Vec<Element>>,
}

impl Instance {
    /// An empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// The extent of `tau` (empty slice if absent).
    pub fn ext(&self, tau: &str) -> &[Element] {
        self.exts.get(tau).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Adds an element to `ext(tau)` and returns its index.
    pub fn push(&mut self, tau: impl Into<Name>, e: Element) -> usize {
        let v = self.exts.entry(tau.into()).or_default();
        v.push(e);
        v.len() - 1
    }

    /// Total number of elements across all extents.
    pub fn size(&self) -> usize {
        self.exts.values().map(Vec::len).sum()
    }

    /// Is `fields` a key of `tau` in this instance (no two distinct
    /// elements share a fully-defined tuple)?
    pub fn is_key(&self, tau: &Name, fields: &[Field]) -> bool {
        let ext = self.ext(tau);
        let mut seen: HashMap<Vec<u32>, usize> = HashMap::new();
        for (i, e) in ext.iter().enumerate() {
            if let Some(t) = e.tuple(fields) {
                if let Some(&j) = seen.get(&t) {
                    if j != i {
                        return false;
                    }
                }
                seen.insert(t, i);
            }
        }
        true
    }

    /// The set of `fields`-tuples over `ext(tau)` (skipping undefined).
    fn tuples(&self, tau: &Name, fields: &[Field]) -> HashSet<Vec<u32>> {
        self.ext(tau)
            .iter()
            .filter_map(|e| e.tuple(fields))
            .collect()
    }

    /// The set of ID values over `ext(tau)`.
    fn ids_of(&self, tau: &Name) -> HashSet<u32> {
        self.ext(tau).iter().filter_map(Element::id).collect()
    }

    /// Does the instance satisfy constraint `c`?
    ///
    /// Satisfaction follows the constraint *forms* of §2.2 (see the crate
    /// docs): foreign keys carry target keyness, inverse constraints carry
    /// their named keys, `L_id` references carry the partner's ID
    /// constraint, and `L_id` inverses additionally carry the `⊆_S`
    /// containments into the partners' IDs.
    pub fn satisfies(&self, c: &Constraint) -> bool {
        match c {
            Constraint::Key { tau, fields } => self.is_key(tau, fields),
            Constraint::ForeignKey {
                tau,
                fields,
                target,
                target_fields,
            } => {
                self.is_key(target, target_fields)
                    && self.ext(tau).iter().all(|e| match e.tuple(fields) {
                        Some(t) => self.tuples(target, target_fields).contains(&t),
                        None => false,
                    })
            }
            Constraint::SetForeignKey {
                tau,
                attr,
                target,
                target_field,
            } => {
                let targets = self.tuples(target, std::slice::from_ref(target_field));
                self.is_key(target, std::slice::from_ref(target_field))
                    && self.ext(tau).iter().all(|e| {
                        e.sets
                            .get(attr)
                            .is_some_and(|s| s.iter().all(|&v| targets.contains(&vec![v])))
                    })
            }
            Constraint::InverseU {
                tau,
                key,
                attr,
                target,
                target_key,
                target_attr,
            } => {
                self.is_key(tau, std::slice::from_ref(key))
                    && self.is_key(target, std::slice::from_ref(target_key))
                    && self.inverse_holds(tau, key, attr, target, target_key, target_attr)
                    && self.inverse_holds(target, target_key, target_attr, tau, key, attr)
            }
            Constraint::Id { tau } => self.id_holds(tau),
            Constraint::FkToId { tau, attr, target } => {
                let ids = self.ids_of(target);
                self.id_holds(target)
                    && self.ext(tau).iter().all(|e| {
                        e.single
                            .get(&Field::Attr(attr.clone()))
                            .is_some_and(|v| ids.contains(v))
                    })
            }
            Constraint::SetFkToId { tau, attr, target } => {
                let ids = self.ids_of(target);
                self.id_holds(target)
                    && self.ext(tau).iter().all(|e| {
                        e.sets
                            .get(attr)
                            .is_some_and(|s| s.iter().all(|v| ids.contains(v)))
                    })
            }
            Constraint::InverseId {
                tau,
                attr,
                target,
                target_attr,
            } => {
                self.satisfies(&Constraint::SetFkToId {
                    tau: tau.clone(),
                    attr: attr.clone(),
                    target: target.clone(),
                }) && self.satisfies(&Constraint::SetFkToId {
                    tau: target.clone(),
                    attr: target_attr.clone(),
                    target: tau.clone(),
                }) && self.id_inverse_holds(tau, attr, target, target_attr)
                    && self.id_inverse_holds(target, target_attr, tau, attr)
            }
        }
    }

    /// `τ.id →_id τ`: every `τ`-element has an ID value, and that value is
    /// held by no *other* element of any type.
    fn id_holds(&self, tau: &Name) -> bool {
        self.ext(tau).iter().all(|x| {
            let Some(xid) = x.id() else { return false };
            let mut holders = 0usize;
            for ext in self.exts.values() {
                holders += ext.iter().filter(|y| y.id() == Some(xid)).count();
            }
            holders == 1
        })
    }

    /// Does the instance satisfy every constraint of `sigma`?
    pub fn satisfies_all<'a, I: IntoIterator<Item = &'a Constraint>>(&self, sigma: I) -> bool {
        sigma.into_iter().all(|c| self.satisfies(c))
    }

    /// `∀x ∈ ext(τ) ∀y ∈ ext(τ') (x.key ∈ y.attr' → y.key' ∈ x.attr)`.
    fn inverse_holds(
        &self,
        tau: &Name,
        key: &Field,
        attr: &Name,
        target: &Name,
        target_key: &Field,
        target_attr: &Name,
    ) -> bool {
        self.ext(tau).iter().all(|x| {
            let Some(&xk) = x.single.get(key) else {
                return true;
            };
            self.ext(target).iter().all(|y| {
                let refers = y.sets.get(target_attr).is_some_and(|s| s.contains(&xk));
                if !refers {
                    return true;
                }
                match y.single.get(target_key) {
                    Some(&yk) => x.sets.get(attr).is_some_and(|s| s.contains(&yk)),
                    None => false,
                }
            })
        })
    }

    /// `∀x ∈ ext(τ) ∀y ∈ ext(τ') (x.id ∈ y.attr' → y.id ∈ x.attr)`.
    fn id_inverse_holds(&self, tau: &Name, attr: &Name, target: &Name, target_attr: &Name) -> bool {
        self.inverse_holds(tau, &id_field(), attr, target, &id_field(), target_attr)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (tau, ext) in &self.exts {
            writeln!(f, "ext({tau}):")?;
            for (i, e) in ext.iter().enumerate() {
                write!(f, "  #{i}")?;
                for (k, v) in &e.single {
                    write!(f, " {k}={v}")?;
                }
                for (k, s) in &e.sets {
                    write!(f, " @{k}={{")?;
                    for (j, v) in s.iter().enumerate() {
                        if j > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{v}")?;
                    }
                    write!(f, "}}")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Rebuilds a real data tree (plus a generated DTD structure) realizing an
/// instance: a fresh root whose content model is `(τ₁*, …, τₙ*)`, one child
/// per element, attributes/sub-elements per the instance's fields. The
/// `id` pseudo-attribute becomes an `ID`-kind attribute named `id`.
pub fn instance_to_tree(inst: &Instance) -> (DtdStructure, DataTree) {
    let root_name = "_root";
    let mut builder = DtdStructure::builder(root_name);
    let mut sub_types: BTreeSet<Name> = BTreeSet::new();
    type Shape = (BTreeSet<Field>, BTreeSet<Name>);
    let mut shapes: BTreeMap<Name, Shape> = BTreeMap::new();
    for (tau, ext) in &inst.exts {
        let entry = shapes.entry(tau.clone()).or_default();
        for e in ext {
            entry.0.extend(e.single.keys().cloned());
            entry.1.extend(e.sets.keys().cloned());
        }
    }
    for (singles, _) in shapes.values() {
        for f in singles {
            if let Field::Sub(e) = f {
                sub_types.insert(e.clone());
            }
        }
    }
    use xic_regex::ContentModel;
    let root_model = ContentModel::seq_all(
        shapes
            .keys()
            .map(|t| ContentModel::star(ContentModel::Elem(t.clone()))),
    );
    builder = builder.elem_model(root_name, root_model);
    for st in &sub_types {
        builder = builder.elem_model(st.clone(), ContentModel::S);
    }
    for (tau, (singles, sets)) in &shapes {
        let subs: Vec<&Name> = singles
            .iter()
            .filter_map(|f| match f {
                Field::Sub(e) => Some(e),
                Field::Attr(_) => None,
            })
            .collect();
        let model = ContentModel::seq_all(subs.iter().map(|e| ContentModel::Elem((*e).clone())));
        builder = builder.elem_model(tau.clone(), model);
        for f in singles {
            if let Field::Attr(l) = f {
                if l.as_str() == "id" {
                    builder = builder.id_attr(tau.clone(), l.clone());
                } else {
                    builder = builder.attr(tau.clone(), l.clone(), "S");
                }
            }
        }
        for l in sets {
            builder = builder.idrefs_attr(tau.clone(), l.clone());
        }
    }
    let structure = builder.build().expect("generated structure is well-formed");

    let mut tb = TreeBuilder::new();
    let root = tb.node(root_name);
    let mut undef = 0u32;
    for (tau, ext) in &inst.exts {
        let (singles, sets) = &shapes[tau];
        for e in ext {
            let n = tb.child_node(root, tau.clone()).expect("fresh node");
            for f in singles {
                // Definition 2.4 requires declared attributes present on
                // every element; absent fields get fresh unique values.
                let value = match e.single.get(f) {
                    Some(v) => format!("v{v}"),
                    None => {
                        undef += 1;
                        format!("undef{undef}")
                    }
                };
                match f {
                    Field::Attr(l) => {
                        tb.attr(n, l.clone(), AttrValue::single(value))
                            .expect("fresh attr");
                    }
                    Field::Sub(se) => {
                        tb.leaf(n, se.clone(), value).expect("fresh leaf");
                    }
                }
            }
            for l in sets {
                let vals: Vec<String> = e
                    .sets
                    .get(l)
                    .map(|s| s.iter().map(|v| format!("v{v}")).collect())
                    .unwrap_or_default();
                tb.attr(n, l.clone(), AttrValue::set(vals))
                    .expect("fresh attr");
            }
        }
    }
    let tree = tb.finish(root).expect("tree is well-formed");
    (structure, tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(l: &str) -> Field {
        Field::attr(l)
    }

    fn elem_single(pairs: &[(&str, u32)]) -> Element {
        Element {
            single: pairs.iter().map(|(l, v)| (f(l), *v)).collect(),
            ..Default::default()
        }
    }

    fn with_id(id: u32) -> Element {
        let mut e = Element::default();
        e.set_id(id);
        e
    }

    #[test]
    fn key_satisfaction() {
        let mut i = Instance::new();
        i.push("a", elem_single(&[("x", 1), ("y", 1)]));
        i.push("a", elem_single(&[("x", 2), ("y", 1)]));
        assert!(i.satisfies(&Constraint::unary_key("a", "x")));
        assert!(!i.satisfies(&Constraint::unary_key("a", "y")));
        assert!(i.satisfies(&Constraint::key("a", ["x", "y"])));
        assert!(i.satisfies(&Constraint::unary_key("zzz", "x")));
    }

    #[test]
    fn fk_carries_target_keyness() {
        let mut i = Instance::new();
        i.push("a", elem_single(&[("x", 1)]));
        i.push("b", elem_single(&[("y", 1)]));
        i.push("b", elem_single(&[("y", 1)]));
        assert!(!i.satisfies(&Constraint::unary_fk("a", "x", "b", "y")));
        let mut j = Instance::new();
        j.push("a", elem_single(&[("x", 1)]));
        j.push("b", elem_single(&[("y", 1)]));
        j.push("b", elem_single(&[("y", 2)]));
        assert!(j.satisfies(&Constraint::unary_fk("a", "x", "b", "y")));
        let mut k = Instance::new();
        k.push("a", elem_single(&[("x", 9)]));
        k.push("b", elem_single(&[("y", 1)]));
        assert!(!k.satisfies(&Constraint::unary_fk("a", "x", "b", "y")));
    }

    #[test]
    fn set_fk_and_id_constraints() {
        let mut i = Instance::new();
        let mut e = Element::default();
        e.sets.insert(Name::new("to"), BTreeSet::from([1, 2]));
        i.push("r", e);
        i.push("t", elem_single(&[("k", 1)]));
        i.push("t", elem_single(&[("k", 2)]));
        assert!(i.satisfies(&Constraint::set_fk("r", "to", "t", "k")));

        let mut j = Instance::new();
        j.push("p", with_id(1));
        j.push("q", with_id(1));
        // Cross-type collision violates →_id.
        assert!(!j.satisfies(&Constraint::Id { tau: "p".into() }));
        let mut k = Instance::new();
        k.push("p", with_id(1));
        k.push("q", with_id(2));
        assert!(k.satisfies(&Constraint::Id { tau: "p".into() }));
        // Duplicates *not involving* p's values leave Id(p) intact.
        let mut l = Instance::new();
        l.push("p", with_id(1));
        l.push("q", with_id(7));
        l.push("q", with_id(7));
        assert!(l.satisfies(&Constraint::Id { tau: "p".into() }));
        assert!(!l.satisfies(&Constraint::Id { tau: "q".into() }));
        // An element without an ID fails its type's Id constraint.
        let mut m = Instance::new();
        m.push("p", Element::default());
        assert!(!m.satisfies(&Constraint::Id { tau: "p".into() }));
    }

    #[test]
    fn inverse_id_semantics() {
        let mut i = Instance::new();
        let mut p = with_id(1);
        p.sets.insert(Name::new("in_dept"), BTreeSet::from([10]));
        i.push("person", p);
        let mut d = with_id(10);
        d.sets.insert(Name::new("has_staff"), BTreeSet::from([1]));
        i.push("dept", d);
        let inv = Constraint::InverseId {
            tau: "dept".into(),
            attr: "has_staff".into(),
            target: "person".into(),
            target_attr: "in_dept".into(),
        };
        assert!(i.satisfies(&inv));

        let mut j = i.clone();
        j.exts.get_mut("person").unwrap()[0]
            .sets
            .insert(Name::new("in_dept"), BTreeSet::new());
        assert!(!j.satisfies(&inv));

        let mut k = i.clone();
        k.exts.get_mut("dept").unwrap()[0]
            .sets
            .insert(Name::new("has_staff"), BTreeSet::from([1, 99]));
        assert!(!k.satisfies(&inv));
    }

    #[test]
    fn inverse_u_semantics() {
        let mut i = Instance::new();
        let mut a = elem_single(&[("k", 1)]);
        a.sets.insert(Name::new("r"), BTreeSet::from([5]));
        i.push("a", a);
        let mut b = elem_single(&[("k2", 5)]);
        b.sets.insert(Name::new("r2"), BTreeSet::from([1]));
        i.push("b", b);
        let inv = Constraint::InverseU {
            tau: "a".into(),
            key: f("k"),
            attr: "r".into(),
            target: "b".into(),
            target_key: f("k2"),
            target_attr: "r2".into(),
        };
        assert!(i.satisfies(&inv));
        i.exts.get_mut("b").unwrap()[0]
            .sets
            .insert(Name::new("r2"), BTreeSet::new());
        assert!(!i.satisfies(&inv));
    }

    #[test]
    fn instance_to_tree_realizes_extents() {
        let mut i = Instance::new();
        let mut p = with_id(1);
        p.single.insert(Field::sub("name"), 7);
        p.sets.insert(Name::new("in_dept"), BTreeSet::from([10]));
        i.push("person", p);
        i.push("dept", with_id(10));
        let (s, t) = instance_to_tree(&i);
        assert!(s.has_element("person"));
        assert_eq!(s.id_attr("person").unwrap().as_str(), "id");
        assert_eq!(t.ext("person").count(), 1);
        assert_eq!(t.ext("dept").count(), 1);
        let pn = t.ext("person").next().unwrap();
        assert_eq!(t.attr(pn, "id").unwrap().as_single().unwrap(), "v1");
        assert!(t.attr(pn, "in_dept").unwrap().contains("v10"));
        let name_child = t
            .node(pn)
            .child_nodes()
            .find(|&c| t.label(c).as_str() == "name")
            .unwrap();
        assert_eq!(t.node(name_child).text(), "v7");
    }

    #[test]
    fn display_lists_extents() {
        let mut i = Instance::new();
        let mut e = elem_single(&[("x", 1)]);
        e.set_id(3);
        e.sets.insert(Name::new("s"), BTreeSet::from([1, 2]));
        i.push("a", e);
        let out = i.to_string();
        assert!(out.contains("ext(a):"));
        assert!(out.contains("@id=3"));
        assert!(out.contains("@s={1,2}"));
    }
}
