//! The chase: a sound, resource-bounded semi-decision procedure for
//! general `L` implication (§3.3, Theorem 3.6).
//!
//! Implication of arbitrary multi-attribute keys and foreign keys is
//! **undecidable** (Theorem 3.6 / Corollary 3.7, by reduction from
//! implication of functional and inclusion dependencies). One therefore
//! cannot ship a decision procedure; this module ships the classical
//! tableau chase instead:
//!
//! * key constraints act as equality-generating dependencies (two tuples
//!   agreeing on the key are merged);
//! * foreign keys act as tuple-generating (inclusion) dependencies (a
//!   missing referent is created with fresh labelled nulls);
//! * a query is seeded with its canonical witness (two tuples agreeing on
//!   the would-be key, or one tuple whose reference must be satisfied) and
//!   chased to a fixpoint.
//!
//! If the chase terminates, the result is a universal model and the answer
//! is exact: [`ChaseOutcome::Implied`], or [`ChaseOutcome::NotImplied`]
//! with the terminal instance as a finite countermodel. Because of
//! undecidability the chase need not terminate — cyclic inclusion
//! dependencies over overlapping columns grow forever — and the
//! configurable [`ChaseLimits`] turn that divergence into
//! [`ChaseOutcome::ResourceLimit`]. Experiment E4 exhibits exactly such a
//! family and contrasts it with [`crate::LpSolver`], which decides the
//! same queries instantly once the primary-key restriction holds
//! (Theorem 3.8).

use std::collections::BTreeMap;

use xic_constraints::{Constraint, Field};
use xic_model::Name;
use xic_obs::Obs;

use crate::semantics::{Element, Instance};

/// Resource bounds for the chase.
#[derive(Clone, Copy, Debug)]
pub struct ChaseLimits {
    /// Maximum number of rule firings.
    pub max_steps: usize,
    /// Maximum total tuples across all extents.
    pub max_tuples: usize,
}

impl Default for ChaseLimits {
    fn default() -> Self {
        ChaseLimits {
            max_steps: 10_000,
            max_tuples: 10_000,
        }
    }
}

/// Outcome of a chase-based implication query.
#[derive(Clone, Debug)]
pub enum ChaseOutcome {
    /// The chase proved `Σ ⊨ φ` (and `Σ ⊨_f φ`).
    Implied,
    /// The chase terminated without forcing `φ`; the terminal instance is
    /// a finite countermodel.
    NotImplied(Instance),
    /// Resource limits hit before a fixpoint — no answer (the instance
    /// family may be one on which the problem is undecidable).
    ResourceLimit,
}

impl ChaseOutcome {
    /// True iff the outcome is `Implied`.
    pub fn is_implied(&self) -> bool {
        matches!(self, ChaseOutcome::Implied)
    }
}

/// Union-find over value ids.
#[derive(Clone, Debug, Default)]
struct Uf {
    parent: Vec<usize>,
}

impl Uf {
    fn fresh(&mut self) -> usize {
        let v = self.parent.len();
        self.parent.push(v);
        v
    }

    fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] != v {
            self.parent[v] = self.parent[self.parent[v]];
            v = self.parent[v];
        }
        v
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// A tuple of labelled nulls.
type Tuple = BTreeMap<Field, usize>;

/// The chase engine over a set of `L` constraints.
pub struct Chase {
    sigma: Vec<Constraint>,
    limits: ChaseLimits,
    obs: Obs,
}

struct State {
    exts: BTreeMap<Name, Vec<Tuple>>,
    uf: Uf,
    steps: usize,
}

impl State {
    fn tuples(&self) -> usize {
        self.exts.values().map(Vec::len).sum()
    }

    fn tuple_eq(&mut self, t: &Tuple, fields: &[Field], u: &Tuple, ufields: &[Field]) -> bool {
        fields
            .iter()
            .zip(ufields)
            .all(|(f, g)| match (t.get(f).copied(), u.get(g).copied()) {
                (Some(a), Some(b)) => self.uf.find(a) == self.uf.find(b),
                _ => false,
            })
    }
}

impl Chase {
    /// A chase over `sigma` with the given limits. Only `L` constraints
    /// (keys and foreign keys) participate; other forms are rejected.
    pub fn new(sigma: &[Constraint], limits: ChaseLimits) -> Result<Self, String> {
        for c in sigma {
            if !matches!(c, Constraint::Key { .. } | Constraint::ForeignKey { .. }) {
                return Err(format!("chase handles L constraints only, got {c}"));
            }
        }
        Ok(Chase {
            sigma: sigma.to_vec(),
            limits,
            obs: Obs::off(),
        })
    }

    /// Attaches an observability handle: each query records a `chase`
    /// span and its rule firings on the `chase.steps` counter. Outcomes
    /// are unaffected.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// All fields mentioned for `tau` anywhere in `Σ ∪ {φ}`.
    fn fields_of(&self, tau: &Name, phi: &Constraint) -> Vec<Field> {
        let mut out: Vec<Field> = Vec::new();
        let mut add = |t: &Name, fs: &[Field]| {
            if t == tau {
                for f in fs {
                    if !out.contains(f) {
                        out.push(f.clone());
                    }
                }
            }
        };
        for c in self.sigma.iter().chain(std::iter::once(phi)) {
            match c {
                Constraint::Key { tau: t, fields } => add(t, fields),
                Constraint::ForeignKey {
                    tau: t,
                    fields,
                    target,
                    target_fields,
                } => {
                    add(t, fields);
                    add(target, target_fields);
                }
                _ => {}
            }
        }
        out
    }

    /// Decides `Σ ⊨ φ` for a key or foreign-key `φ` via the chase.
    pub fn implies(&self, phi: &Constraint) -> ChaseOutcome {
        let _chase = self.obs.span("chase");
        match phi {
            Constraint::Key { tau, fields } => self.key_query(tau, fields, phi),
            Constraint::ForeignKey {
                tau,
                fields,
                target,
                target_fields,
            } => {
                // The FK form carries "Y is a key of τ'": both parts must
                // be implied.
                match self.key_query(target, target_fields, phi) {
                    ChaseOutcome::Implied => {}
                    other => return other,
                }
                self.fk_query(tau, fields, target, target_fields, phi)
            }
            other => {
                debug_assert!(false, "chase got non-L constraint {other}");
                ChaseOutcome::ResourceLimit
            }
        }
    }

    /// Seeds two `tau`-tuples agreeing on `fields` and chases; `φ` is
    /// implied iff the two tuples merge.
    fn key_query(&self, tau: &Name, fields: &[Field], phi: &Constraint) -> ChaseOutcome {
        let mut st = State {
            exts: BTreeMap::new(),
            uf: Uf::default(),
            steps: 0,
        };
        let all_fields = self.fields_of(tau, phi);
        let shared: Tuple = fields.iter().map(|f| (f.clone(), st.uf.fresh())).collect();
        let mk = |uf: &mut Uf| -> Tuple {
            all_fields
                .iter()
                .map(|f| {
                    (
                        f.clone(),
                        shared.get(f).copied().unwrap_or_else(|| uf.fresh()),
                    )
                })
                .collect()
        };
        let t1 = mk(&mut st.uf);
        let t2 = mk(&mut st.uf);
        st.exts.insert(tau.clone(), vec![t1, t2]);
        match self.run(&mut st, phi) {
            Some(()) => {
                // Did the two seeds merge? They merged iff ext(tau) lost a
                // tuple whose seed-identity we track by position: we track
                // by checking whether any two remaining tau-tuples still
                // violate the key — simpler and equivalent: the key is
                // implied iff it *holds* in the terminal instance only
                // vacuously… Instead: the chase merged them iff fewer than
                // 2 tuples share the seed key values now.
                let inst = self.to_instance(&mut st);
                if inst.is_key(tau, fields) {
                    ChaseOutcome::Implied
                } else {
                    ChaseOutcome::NotImplied(inst)
                }
            }
            None => ChaseOutcome::ResourceLimit,
        }
    }

    /// Seeds one `tau`-tuple and chases; the FK is implied iff a matching
    /// `target`-tuple appears.
    fn fk_query(
        &self,
        tau: &Name,
        fields: &[Field],
        target: &Name,
        target_fields: &[Field],
        phi: &Constraint,
    ) -> ChaseOutcome {
        let mut st = State {
            exts: BTreeMap::new(),
            uf: Uf::default(),
            steps: 0,
        };
        let all_fields = self.fields_of(tau, phi);
        let t: Tuple = all_fields
            .iter()
            .map(|f| (f.clone(), st.uf.fresh()))
            .collect();
        st.exts.insert(tau.clone(), vec![t]);
        match self.run(&mut st, phi) {
            Some(()) => {
                let seed = st.exts[tau][0].clone();
                let matched = st
                    .exts
                    .get(target)
                    .cloned()
                    .unwrap_or_default()
                    .iter()
                    .any(|u| st.tuple_eq(&seed, fields, u, target_fields));
                if matched {
                    ChaseOutcome::Implied
                } else {
                    ChaseOutcome::NotImplied(self.to_instance(&mut st))
                }
            }
            None => ChaseOutcome::ResourceLimit,
        }
    }

    /// Runs rules to fixpoint; `None` on resource exhaustion. Rule
    /// applications are batched per pass (the chase is Church–Rosser for
    /// EGDs+INDs, so batching does not change the terminal instance up to
    /// isomorphism).
    fn run(&self, st: &mut State, phi: &Constraint) -> Option<()> {
        let r = self.run_inner(st, phi);
        self.obs.add("chase.steps", st.steps as u64);
        r
    }

    fn run_inner(&self, st: &mut State, phi: &Constraint) -> Option<()> {
        loop {
            if st.steps > self.limits.max_steps || st.tuples() > self.limits.max_tuples {
                return None;
            }
            let mut fired = false;

            // EGDs to local fixpoint: keys merge tuples. One pass per key
            // per round; hash on canonical key values.
            for c in &self.sigma {
                let Constraint::Key { tau, fields } = c else {
                    continue;
                };
                loop {
                    let ext = st.exts.get(tau).cloned().unwrap_or_default();
                    let mut by_key: BTreeMap<Vec<usize>, usize> = BTreeMap::new();
                    let mut merge: Option<(usize, usize)> = None;
                    for (i, t) in ext.iter().enumerate() {
                        let key: Option<Vec<usize>> = fields
                            .iter()
                            .map(|f| t.get(f).map(|&v| st.uf.find(v)))
                            .collect();
                        let Some(key) = key else { continue };
                        if let Some(&j) = by_key.get(&key) {
                            merge = Some((j, i));
                            break;
                        }
                        by_key.insert(key, i);
                    }
                    let Some((i, j)) = merge else { break };
                    let (ti, tj) = (ext[i].clone(), ext[j].clone());
                    for (f, a) in &ti {
                        if let Some(b) = tj.get(f) {
                            st.uf.union(*a, *b);
                        }
                    }
                    st.exts.get_mut(tau).expect("extent").remove(j);
                    st.steps += 1;
                    fired = true;
                    if st.steps > self.limits.max_steps {
                        return None;
                    }
                }
            }

            // TGDs in one batched pass per FK: index targets by canonical
            // key values, add every missing referent.
            for c in &self.sigma {
                let Constraint::ForeignKey {
                    tau,
                    fields,
                    target,
                    target_fields,
                } = c
                else {
                    continue;
                };
                let ext = st.exts.get(tau).cloned().unwrap_or_default();
                let targets = st.exts.get(target).cloned().unwrap_or_default();
                let mut have: std::collections::HashSet<Vec<usize>> = targets
                    .iter()
                    .filter_map(|u| {
                        target_fields
                            .iter()
                            .map(|g| u.get(g).map(|&v| st.uf.find(v)))
                            .collect()
                    })
                    .collect();
                for t in &ext {
                    let want: Option<Vec<usize>> = fields
                        .iter()
                        .map(|f| t.get(f).map(|&v| st.uf.find(v)))
                        .collect();
                    let Some(want) = want else { continue };
                    if have.contains(&want) {
                        continue;
                    }
                    // Create the referent with fresh nulls elsewhere.
                    let all = self.fields_of(target, phi);
                    let mut u = Tuple::new();
                    for f in &all {
                        u.insert(f.clone(), st.uf.fresh());
                    }
                    for (f, g) in fields.iter().zip(target_fields) {
                        let v = t[f];
                        let w = u[g];
                        st.uf.union(v, w);
                    }
                    st.exts.entry(target.clone()).or_default().push(u);
                    have.insert(want);
                    st.steps += 1;
                    fired = true;
                    if st.steps > self.limits.max_steps || st.tuples() > self.limits.max_tuples {
                        return None;
                    }
                }
            }
            if !fired {
                return Some(());
            }
        }
    }

    /// Converts the chase state into a flat instance (canonical value
    /// representatives become concrete values).
    fn to_instance(&self, st: &mut State) -> Instance {
        let mut inst = Instance::new();
        let exts = st.exts.clone();
        for (tau, ext) in exts {
            for t in ext {
                let mut e = Element::default();
                for (f, v) in t {
                    e.single.insert(f, st.uf.find(v) as u32);
                }
                inst.push(tau.clone(), e);
            }
        }
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: &str, fs: &[&str]) -> Constraint {
        Constraint::key(t, fs.iter().copied())
    }
    fn fk(t: &str, xs: &[&str], u: &str, ys: &[&str]) -> Constraint {
        Constraint::fk(t, xs.iter().copied(), u, ys.iter().copied())
    }

    #[test]
    fn fk_transitivity_via_chase() {
        let sigma = vec![
            key("b", &["y"]),
            key("c", &["z"]),
            fk("a", &["x"], "b", &["y"]),
            fk("b", &["y"], "c", &["z"]),
        ];
        let chase = Chase::new(&sigma, ChaseLimits::default()).unwrap();
        assert!(chase.implies(&fk("a", &["x"], "c", &["z"])).is_implied());
        match chase.implies(&fk("c", &["z"], "a", &["x"])) {
            // Not implied — and a's "x" must even be a key for the query…
            ChaseOutcome::NotImplied(m) => {
                assert!(m.satisfies_all(&sigma), "{m}");
            }
            other => panic!("expected NotImplied, got {other:?}"),
        }
    }

    #[test]
    fn key_implied_through_fk_merging() {
        // Superkey reasoning: if (a) is a key, (a, b) is implied to be one.
        let sigma = vec![key("r", &["a"])];
        let chase = Chase::new(&sigma, ChaseLimits::default()).unwrap();
        assert!(chase.implies(&key("r", &["a", "b"])).is_implied());
        // But (b) alone is not.
        assert!(!chase.implies(&key("r", &["b"])).is_implied());
    }

    #[test]
    fn multi_attribute_fk_requires_joint_columns() {
        let sigma = vec![
            key("p", &["a", "b"]),
            fk("e", &["x", "y"], "p", &["a", "b"]),
        ];
        let chase = Chase::new(&sigma, ChaseLimits::default()).unwrap();
        assert!(chase
            .implies(&fk("e", &["y", "x"], "p", &["b", "a"]))
            .is_implied());
        assert!(!chase
            .implies(&fk("e", &["x", "y"], "p", &["b", "a"]))
            .is_implied());
    }

    #[test]
    fn divergent_family_hits_resource_limit() {
        // key R[A] plus R[B] ⊆ R[A]: every tuple demands a fresh referent;
        // the chase grows forever (the undecidability phenomenon).
        let sigma = vec![key("R", &["A"]), fk("R", &["B"], "R", &["A"])];
        let chase = Chase::new(
            &sigma,
            ChaseLimits {
                max_steps: 500,
                max_tuples: 500,
            },
        )
        .unwrap();
        match chase.implies(&key("R", &["B"])) {
            ChaseOutcome::ResourceLimit => {}
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn terminating_self_reference() {
        // key R[A]; R[A] ⊆ R[A] is trivially satisfied by the seed itself.
        let sigma = vec![key("R", &["A"])];
        let chase = Chase::new(&sigma, ChaseLimits::default()).unwrap();
        assert!(chase.implies(&fk("R", &["A"], "R", &["A"])).is_implied());
    }

    #[test]
    fn rejects_non_l() {
        assert!(Chase::new(
            &[Constraint::Id { tau: "a".into() }],
            ChaseLimits::default()
        )
        .is_err());
    }

    #[test]
    fn countermodels_violate_phi() {
        let sigma = vec![key("b", &["y"]), fk("a", &["x"], "b", &["y"])];
        let chase = Chase::new(&sigma, ChaseLimits::default()).unwrap();
        let phi = key("a", &["x"]);
        match chase.implies(&phi) {
            ChaseOutcome::NotImplied(m) => {
                assert!(m.satisfies_all(&sigma), "{m}");
                assert!(!m.satisfies(&phi), "{m}");
            }
            other => panic!("expected NotImplied, got {other:?}"),
        }
    }
}
