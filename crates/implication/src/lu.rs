//! Implication and finite implication of `L_u` constraints (§3.2).
//!
//! * **Unrestricted implication** (Theorem 3.2(1)): close the key set under
//!   `UFK-K`/`SFK-K`/`Inv-SFK`, then answer foreign-key queries by
//!   reachability over the declared unary-FK digraph (`UFK-trans`), with
//!   `UK-FK` for the reflexive case and `USFK-trans` for set-valued
//!   sources.
//! * **Finite implication** (Theorem 3.2(2), the cycle rules `C_k`): on top
//!   of the same closure, build the *cardinality graph* `H` — FK edges
//!   `τ.l ⇒ τ'.l'` (`|ext(τ).l| ≤ |ext(τ').l'|`) plus same-type edges
//!   `τ.f ⇒ τ.g` for every key `g` of `τ`
//!   (`|ext(τ).f| ≤ |ext(τ)| = |ext(τ).g|`). Every FK edge inside a
//!   strongly connected component of `H` lies on a cardinality cycle, so
//!   in finite models its inclusion is an equality and the **reversed** FK
//!   is implied; queries then use reachability over declared ∪ reversed
//!   edges. This is the CKV'90 phenomenon transplanted to `L_u`: the two
//!   problems differ exactly when an `H`-cycle uses a same-type edge.
//! * **Primary-key restriction** (Theorem 3.4): with at most one key per
//!   type, same-type edges degenerate to self-loops, every `H`-cycle is a
//!   pure FK cycle (already handled by transitivity), and the two problems
//!   coincide — [`LuSolver::check_primary`] validates the restriction and
//!   the test-suite asserts the coincidence.
//!
//! All positive answers carry `I_u`/`I_u^f` derivations; negative
//! finite-implication answers attach a countermodel found by bounded
//! search when one is small enough.

use std::collections::HashMap;

use xic_constraints::{Constraint, Field};
use xic_model::Name;
use xic_obs::Obs;

use crate::bruteforce::{find_countermodel, Bounds};
use crate::proof::{Proof, Rule};
use crate::Verdict;

/// Which implication problem to decide.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// `Σ ⊨ φ` over all (possibly infinite) instances.
    Unrestricted,
    /// `Σ ⊨_f φ` over finite instances only.
    Finite,
}

/// A constraint outside `L_u` was passed to the solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotLu(pub String);

impl std::fmt::Display for NotLu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "constraint is not in L_u: {}", self.0)
    }
}

impl std::error::Error for NotLu {}

/// A violation of the primary-key restriction (Theorem 3.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrimaryViolation {
    /// Two distinct keys on one element type.
    TwoKeys {
        /// The element type.
        tau: Name,
        /// First key field.
        a: String,
        /// Second key field.
        b: String,
    },
    /// Two foreign keys into one type through different attributes.
    TwoTargets {
        /// The referenced type.
        tau: Name,
        /// First referenced field.
        a: String,
        /// Second referenced field.
        b: String,
    },
}

impl std::fmt::Display for PrimaryViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrimaryViolation::TwoKeys { tau, a, b } => {
                write!(f, "primary-key restriction: {tau} has two keys {a} and {b}")
            }
            PrimaryViolation::TwoTargets { tau, a, b } => write!(
                f,
                "primary-key restriction: {tau} is referenced through both {a} and {b}"
            ),
        }
    }
}

impl std::error::Error for PrimaryViolation {}

/// An attribute node `τ.f` of the FK / cardinality graphs.
type NodeId = usize;

#[derive(Clone, Debug)]
struct Graph {
    nodes: Vec<(Name, Field)>,
    index: HashMap<(Name, Field), NodeId>,
}

impl Graph {
    fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn node(&mut self, tau: &Name, f: &Field) -> NodeId {
        let key = (tau.clone(), f.clone());
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(key.clone());
        self.index.insert(key, i);
        i
    }

    fn get(&self, tau: &Name, f: &Field) -> Option<NodeId> {
        self.index.get(&(tau.clone(), f.clone())).copied()
    }
}

/// One FK edge with the index of its hypothesis in `sigma`.
#[derive(Clone, Copy, Debug)]
struct FkEdge {
    src: NodeId,
    dst: NodeId,
    hyp: usize,
}

/// The `L_u` implication solver (Theorems 3.2 and 3.4, Corollary 3.3).
///
/// ```
/// use xic_constraints::Constraint;
/// use xic_implication::lu::{LuSolver, Mode};
///
/// // Cor 3.3's divergence: Σ = {t.a → t, t.b → t, t.a ⊆ t.b}.
/// let sigma = vec![
///     Constraint::unary_key("t", "a"),
///     Constraint::unary_key("t", "b"),
///     Constraint::unary_fk("t", "a", "t", "b"),
/// ];
/// let solver = LuSolver::new(&sigma).unwrap();
/// let phi = Constraint::unary_fk("t", "b", "t", "a");
/// // Finitely implied (counting argument)…
/// let fin = solver.implies(&phi, Mode::Finite).unwrap();
/// assert!(fin.is_implied());
/// fin.proof().unwrap().verify(&sigma, None).unwrap();
/// // …but not implied over unrestricted instances.
/// assert!(!solver.implies(&phi, Mode::Unrestricted).unwrap().is_implied());
/// ```
pub struct LuSolver {
    sigma: Vec<Constraint>,
    base: Proof,
    /// Key facts: (τ, field) → step index in `base`.
    keys: HashMap<(Name, Field), usize>,
    graph: Graph,
    /// Declared FK edges.
    edges: Vec<FkEdge>,
    /// Adjacency (declared edges only).
    adj: Vec<Vec<usize>>,
    /// Reverse adjacency over declared FK edges.
    radj: Vec<Vec<usize>>,
    /// SCC id per node in the cardinality graph `H`.
    h_scc: Vec<usize>,
    /// Adjacency of `H` (edge target, plus how the edge is justified).
    h_adj: Vec<Vec<(NodeId, HEdge)>>,
    /// Inverse facts (Σ, with hypothesis step), keyed symmetrically.
    inverses: HashMap<InvKey, usize>,
    obs: Obs,
}

/// Justification of an `H`-edge: a declared FK, or a same-type key step.
#[derive(Clone, Copy, Debug)]
enum HEdge {
    Fk(usize),  // index into `edges`
    Key(usize), // step index of the key fact for the edge's target
}

type InvKey = (Name, Field, Name, Name, Field, Name);

fn inv_key(c: &Constraint) -> Option<InvKey> {
    match c {
        Constraint::InverseU {
            tau,
            key,
            attr,
            target,
            target_key,
            target_attr,
        } => Some((
            tau.clone(),
            key.clone(),
            attr.clone(),
            target.clone(),
            target_key.clone(),
            target_attr.clone(),
        )),
        _ => None,
    }
}

impl LuSolver {
    /// Builds the solver; rejects constraints outside `L_u`.
    pub fn new(sigma: &[Constraint]) -> Result<Self, NotLu> {
        use xic_constraints::Language;
        for c in sigma {
            if !c.in_language(Language::Lu) {
                return Err(NotLu(c.to_string()));
            }
        }
        let sigma = sigma.to_vec();
        let mut base = Proof::default();
        let mut keys: HashMap<(Name, Field), usize> = HashMap::new();
        let mut graph = Graph::new();
        let mut edges: Vec<FkEdge> = Vec::new();
        let mut inverses: HashMap<InvKey, usize> = HashMap::new();

        // Hypotheses + key closure (UFK-K, SFK-K, Inv-SFK) + inverse
        // symmetry; nodes for every mentioned attribute.
        for c in &sigma {
            let h = base.push(c.clone(), Rule::Hypothesis, vec![]);
            match c {
                Constraint::Key { tau, fields } => {
                    graph.node(tau, &fields[0]);
                    keys.entry((tau.clone(), fields[0].clone())).or_insert(h);
                }
                Constraint::ForeignKey {
                    tau,
                    fields,
                    target,
                    target_fields,
                } => {
                    let src = graph.node(tau, &fields[0]);
                    let dst = graph.node(target, &target_fields[0]);
                    edges.push(FkEdge { src, dst, hyp: h });
                    keys.entry((target.clone(), target_fields[0].clone()))
                        .or_insert_with(|| {
                            base.push(
                                Constraint::Key {
                                    tau: target.clone(),
                                    fields: target_fields.clone(),
                                },
                                Rule::UfkK,
                                vec![h],
                            )
                        });
                }
                Constraint::SetForeignKey {
                    target,
                    target_field,
                    ..
                } => {
                    graph.node(target, target_field);
                    keys.entry((target.clone(), target_field.clone()))
                        .or_insert_with(|| {
                            base.push(
                                Constraint::Key {
                                    tau: target.clone(),
                                    fields: vec![target_field.clone()],
                                },
                                Rule::SfkK,
                                vec![h],
                            )
                        });
                }
                Constraint::InverseU {
                    tau,
                    key,
                    target,
                    target_key,
                    ..
                } => {
                    graph.node(tau, key);
                    graph.node(target, target_key);
                    keys.entry((tau.clone(), key.clone())).or_insert_with(|| {
                        base.push(
                            Constraint::Key {
                                tau: tau.clone(),
                                fields: vec![key.clone()],
                            },
                            Rule::InvSfk,
                            vec![h],
                        )
                    });
                    keys.entry((target.clone(), target_key.clone()))
                        .or_insert_with(|| {
                            base.push(
                                Constraint::Key {
                                    tau: target.clone(),
                                    fields: vec![target_key.clone()],
                                },
                                Rule::InvSfk,
                                vec![h],
                            )
                        });
                    inverses.insert(inv_key(c).expect("inverse"), h);
                    // Symmetric orientation.
                    let sym = match c {
                        Constraint::InverseU {
                            tau,
                            key,
                            attr,
                            target,
                            target_key,
                            target_attr,
                        } => Constraint::InverseU {
                            tau: target.clone(),
                            key: target_key.clone(),
                            attr: target_attr.clone(),
                            target: tau.clone(),
                            target_key: key.clone(),
                            target_attr: attr.clone(),
                        },
                        _ => unreachable!(),
                    };
                    let sk = inv_key(&sym).expect("inverse");
                    inverses
                        .entry(sk)
                        .or_insert_with(|| base.push(sym, Rule::InvUSym, vec![h]));
                }
                _ => unreachable!("validated above"),
            }
        }

        let n = graph.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            adj[e.src].push(i);
        }

        // Cardinality graph H: FK edges plus same-type edges into keys.
        // Group keys by type so construction stays linear in |Σ|.
        let mut h_adj: Vec<Vec<(NodeId, HEdge)>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            h_adj[e.src].push((e.dst, HEdge::Fk(i)));
        }
        let mut keys_by_type: HashMap<&Name, Vec<(&Field, usize)>> = HashMap::new();
        for ((ktau, kf), &step) in &keys {
            keys_by_type.entry(ktau).or_default().push((kf, step));
        }
        #[allow(clippy::needless_range_loop)] // u indexes two parallel arrays
        for u in 0..n {
            let (tau, f) = &graph.nodes[u];
            for &(kf, step) in keys_by_type.get(tau).map(Vec::as_slice).unwrap_or(&[]) {
                if kf != f {
                    if let Some(v) = graph.get(tau, kf) {
                        h_adj[u].push((v, HEdge::Key(step)));
                    }
                }
            }
        }
        let h_scc = scc(&h_adj, n);
        // Reverse adjacency over FK edges (for finite-mode reversals).
        let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            radj[e.dst].push(i);
        }

        Ok(LuSolver {
            sigma,
            base,
            keys,
            graph,
            edges,
            adj,
            radj,
            h_scc,
            h_adj,
            inverses,
            obs: Obs::off(),
        })
    }

    /// Attaches an observability handle: subsequent queries record an
    /// `implication.query` span and, when implied, the derivation length
    /// on the `implication.rules` counter. Verdicts are unaffected.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The constraint set `Σ`.
    pub fn sigma(&self) -> &[Constraint] {
        &self.sigma
    }

    /// Checks the primary-key restriction over `Σ ∪ {φ}` (Theorem 3.4):
    /// at most one key per element type (after closure) and at most one
    /// referenced field per type.
    pub fn check_primary(&self, phi: Option<&Constraint>) -> Result<(), PrimaryViolation> {
        let mut key_of: HashMap<&Name, &Field> = HashMap::new();
        let mut extra: Vec<(Name, Field)> = Vec::new();
        let mut phi_target: Option<(Name, Field)> = None;
        match phi {
            Some(Constraint::Key { tau, fields }) if fields.len() == 1 => {
                extra.push((tau.clone(), fields[0].clone()));
            }
            Some(Constraint::ForeignKey {
                target,
                target_fields,
                ..
            }) if target_fields.len() == 1 => {
                extra.push((target.clone(), target_fields[0].clone()));
                phi_target = Some((target.clone(), target_fields[0].clone()));
            }
            Some(Constraint::SetForeignKey {
                target,
                target_field,
                ..
            }) => {
                extra.push((target.clone(), target_field.clone()));
                phi_target = Some((target.clone(), target_field.clone()));
            }
            _ => {}
        }
        for ((tau, f), _) in self.keys.iter() {
            extra.push((tau.clone(), f.clone()));
        }
        for (tau, f) in &extra {
            match key_of.get(tau) {
                Some(&g) if g != f => {
                    return Err(PrimaryViolation::TwoKeys {
                        tau: tau.clone(),
                        a: g.to_string(),
                        b: f.to_string(),
                    })
                }
                _ => {
                    key_of.insert(tau, f);
                }
            }
        }
        // Referenced fields per type must agree.
        let mut target_of: HashMap<&Name, &Field> = HashMap::new();
        let mut targets: Vec<(&Name, &Field)> = Vec::new();
        if let Some((t, f)) = &phi_target {
            target_of.insert(t, f);
        }
        for c in &self.sigma {
            match c {
                Constraint::ForeignKey {
                    target,
                    target_fields,
                    ..
                } => targets.push((target, &target_fields[0])),
                Constraint::SetForeignKey {
                    target,
                    target_field,
                    ..
                } => targets.push((target, target_field)),
                _ => {}
            }
        }
        for (tau, f) in targets {
            match target_of.get(tau) {
                Some(&g) if g != f => {
                    return Err(PrimaryViolation::TwoTargets {
                        tau: tau.clone(),
                        a: g.to_string(),
                        b: f.to_string(),
                    })
                }
                _ => {
                    target_of.insert(tau, f);
                }
            }
        }
        Ok(())
    }

    /// Decides `Σ ⊨ φ` / `Σ ⊨_f φ` **without** building a derivation or a
    /// countermodel — the fast path for bulk querying (used by the
    /// benchmarks), versus [`LuSolver::implies`]'s proof construction and
    /// bounded countermodel search. Key and inverse queries are `O(1)`
    /// after construction; foreign-key queries are one BFS (`O(V+E)`);
    /// set-valued foreign-key queries run one BFS per matching `⊆_S` fact
    /// in `Σ`.
    pub fn decide(&self, phi: &Constraint, mode: Mode) -> Result<bool, NotLu> {
        use xic_constraints::Language;
        if !phi.in_language(Language::Lu) {
            return Err(NotLu(phi.to_string()));
        }
        Ok(match phi {
            Constraint::Key { tau, fields } => {
                self.keys.contains_key(&(tau.clone(), fields[0].clone()))
            }
            Constraint::ForeignKey {
                tau,
                fields,
                target,
                target_fields,
            } => {
                let src = (tau.clone(), fields[0].clone());
                let dst = (target.clone(), target_fields[0].clone());
                if src == dst {
                    self.keys.contains_key(&src)
                } else {
                    match (
                        self.graph.get(tau, &fields[0]),
                        self.graph.get(target, &target_fields[0]),
                    ) {
                        (Some(s), Some(d)) => self.fk_path(s, d, mode).is_some(),
                        _ => false,
                    }
                }
            }
            Constraint::SetForeignKey {
                tau,
                attr,
                target,
                target_field,
            } => self.sigma.iter().any(|c| match c {
                Constraint::SetForeignKey {
                    tau: t,
                    attr: a,
                    target: mid,
                    target_field: mf,
                } if t == tau && a == attr => {
                    (mid == target && mf == target_field)
                        || match (
                            self.graph.get(mid, mf),
                            self.graph.get(target, target_field),
                        ) {
                            (Some(s), Some(d)) => self.fk_path(s, d, mode).is_some(),
                            _ => false,
                        }
                }
                _ => false,
            }),
            Constraint::InverseU { .. } => inv_key(phi)
                .map(|k| self.inverses.contains_key(&k))
                .unwrap_or(false),
            _ => unreachable!("validated above"),
        })
    }

    /// Answers `Σ ⊨ φ` (`Mode::Unrestricted`) or `Σ ⊨_f φ`
    /// (`Mode::Finite`).
    pub fn implies(&self, phi: &Constraint, mode: Mode) -> Result<Verdict, NotLu> {
        use xic_constraints::Language;
        if !phi.in_language(Language::Lu) {
            return Err(NotLu(phi.to_string()));
        }
        let _q = self.obs.span("implication.query");
        let verdict = match phi {
            Constraint::Key { tau, fields } => {
                match self.keys.get(&(tau.clone(), fields[0].clone())) {
                    Some(&i) => Verdict::Implied(self.prefix(i)),
                    None => Verdict::NotImplied(self.countermodel(phi, mode)),
                }
            }
            Constraint::ForeignKey {
                tau,
                fields,
                target,
                target_fields,
            } => {
                let want_src = (tau.clone(), fields[0].clone());
                let want_dst = (target.clone(), target_fields[0].clone());
                if want_src == want_dst {
                    // Reflexive: UK-FK when the attribute is a key.
                    match self.keys.get(&want_src) {
                        Some(&i) => {
                            let mut p = self.prefix(i);
                            p.push(phi.clone(), Rule::UkFk, vec![i]);
                            Verdict::Implied(p)
                        }
                        None => Verdict::NotImplied(self.countermodel(phi, mode)),
                    }
                } else {
                    match (
                        self.graph.get(tau, &fields[0]),
                        self.graph.get(target, &target_fields[0]),
                    ) {
                        (Some(s), Some(d)) => match self.fk_path(s, d, mode) {
                            Some(path) => {
                                let (mut p, step) = self.prove_path(s, &path);
                                // The proof must *conclude* the inclusion:
                                // truncate when it is an earlier fact.
                                if step != p.steps.len() - 1 {
                                    p = Proof {
                                        steps: p.steps[..=step].to_vec(),
                                    };
                                }
                                Verdict::Implied(p)
                            }
                            None => Verdict::NotImplied(self.countermodel(phi, mode)),
                        },
                        _ => Verdict::NotImplied(self.countermodel(phi, mode)),
                    }
                }
            }
            Constraint::SetForeignKey {
                tau,
                attr,
                target,
                target_field,
            } => {
                // USFK-trans: a declared ⊆_S step followed by an FK path.
                let mut found: Option<Proof> = None;
                for c in &self.sigma {
                    let Constraint::SetForeignKey {
                        tau: t,
                        attr: a,
                        target: mid,
                        target_field: mf,
                    } = c
                    else {
                        continue;
                    };
                    if t != tau || a != attr {
                        continue;
                    }
                    if mid == target && mf == target_field {
                        let i = self.hyp_index(c);
                        found = Some(self.prefix(i));
                        break;
                    }
                    let (Some(s), Some(d)) = (
                        self.graph.get(mid, mf),
                        self.graph.get(target, target_field),
                    ) else {
                        continue;
                    };
                    if let Some(path) = self.fk_path(s, d, mode) {
                        let (mut p, fk_step) = self.prove_path(s, &path);
                        let sfk_hyp = self.hyp_index(c);
                        p.push(phi.clone(), Rule::UsfkTrans, vec![sfk_hyp, fk_step]);
                        found = Some(p);
                        break;
                    }
                }
                match found {
                    Some(p) => Verdict::Implied(p),
                    None => Verdict::NotImplied(self.countermodel(phi, mode)),
                }
            }
            Constraint::InverseU { .. } => match inv_key(phi).and_then(|k| self.inverses.get(&k)) {
                Some(&i) => Verdict::Implied(self.prefix(i)),
                None => Verdict::NotImplied(self.countermodel(phi, mode)),
            },
            _ => unreachable!("validated above"),
        };
        crate::record_verdict(&self.obs, &verdict);
        Ok(verdict)
    }

    /// Step index of a hypothesis constraint in the base proof.
    fn hyp_index(&self, c: &Constraint) -> usize {
        self.base
            .steps
            .iter()
            .position(|s| s.rule == Rule::Hypothesis && &s.conclusion == c)
            .expect("hypothesis present")
    }

    fn prefix(&self, i: usize) -> Proof {
        Proof {
            steps: self.base.steps[..=i].to_vec(),
        }
    }

    /// BFS for an FK path `s →* d` over declared edges, plus (in finite
    /// mode) reversed edges for FK edges inside an `H`-SCC. Returns the
    /// edge sequence, each tagged with its direction.
    fn fk_path(&self, s: NodeId, d: NodeId, mode: Mode) -> Option<Vec<(usize, bool)>> {
        let n = self.graph.nodes.len();
        let mut prev: Vec<Option<(NodeId, usize, bool)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            if u == d {
                // Reconstruct.
                let mut path = Vec::new();
                let mut cur = d;
                while cur != s {
                    let (p, e, rev) = prev[cur].expect("on path");
                    path.push((e, rev));
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &e in &self.adj[u] {
                let v = self.edges[e].dst;
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = Some((u, e, false));
                    queue.push_back(v);
                }
            }
            if mode == Mode::Finite {
                // Reversed edges: any declared FK edge (v → u) whose
                // endpoints share an H-SCC may be traversed backwards.
                for &e in &self.radj[u] {
                    let edge = self.edges[e];
                    if self.h_scc[edge.src] == self.h_scc[edge.dst] && !seen[edge.src] {
                        seen[edge.src] = true;
                        prev[edge.src] = Some((u, e, true));
                        queue.push_back(edge.src);
                    }
                }
            }
        }
        None
    }

    /// Builds the `I_u`/`I_u^f` proof for an FK path starting at node `s`.
    /// Returns the (untruncated) proof together with the index of the step
    /// concluding the path's inclusion, which may lie mid-proof when the
    /// path is a single declared edge.
    fn prove_path(&self, s: NodeId, path: &[(usize, bool)]) -> (Proof, usize) {
        let mut p = self.base.clone();
        let mut acc: Option<usize> = None; // step proving s ⊆ current node
        let mut cur = s;
        for &(e, rev) in path {
            let edge = self.edges[e];
            let (step_idx, next) = if !rev {
                debug_assert_eq!(edge.src, cur);
                (edge.hyp, edge.dst)
            } else {
                debug_assert_eq!(edge.dst, cur);
                (self.reverse_edge_step(&mut p, e), edge.src)
            };
            acc = Some(match acc {
                None => step_idx,
                Some(a) => {
                    let (t1, f1) = self.graph.nodes[s].clone();
                    let (t3, f3) = self.graph.nodes[next].clone();
                    p.push(
                        Constraint::ForeignKey {
                            tau: t1,
                            fields: vec![f1],
                            target: t3,
                            target_fields: vec![f3],
                        },
                        Rule::UfkTrans,
                        vec![a, step_idx],
                    )
                }
            });
            cur = next;
        }
        let acc = acc.expect("nonempty path");
        (p, acc)
    }

    /// Appends a `C_k` step reversing edge `e` (whose endpoints share an
    /// `H`-SCC) and returns its index.
    fn reverse_edge_step(&self, p: &mut Proof, e: usize) -> usize {
        let edge = self.edges[e];
        // H-path from edge.dst back to edge.src inside the SCC.
        let hpath = self
            .h_path(edge.dst, edge.src)
            .expect("endpoints share an H-SCC");
        let mut premises = vec![edge.hyp];
        for h in hpath {
            premises.push(match h {
                HEdge::Fk(i) => self.edges[i].hyp,
                HEdge::Key(step) => step,
            });
        }
        let (dt, df) = self.graph.nodes[edge.dst].clone();
        let (st, sf) = self.graph.nodes[edge.src].clone();
        p.push(
            Constraint::ForeignKey {
                tau: dt,
                fields: vec![df],
                target: st,
                target_fields: vec![sf],
            },
            Rule::Cycle,
            premises,
        )
    }

    /// BFS in the cardinality graph, restricted to one SCC.
    fn h_path(&self, s: NodeId, d: NodeId) -> Option<Vec<HEdge>> {
        if s == d {
            return Some(vec![]);
        }
        let n = self.graph.nodes.len();
        let scc = self.h_scc[s];
        let mut prev: Vec<Option<(NodeId, HEdge)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &(v, h) in &self.h_adj[u] {
                if self.h_scc[v] != scc || seen[v] {
                    continue;
                }
                seen[v] = true;
                prev[v] = Some((u, h));
                if v == d {
                    let mut path = Vec::new();
                    let mut cur = d;
                    while cur != s {
                        let (p, h) = prev[cur].expect("on path");
                        path.push(h);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(v);
            }
        }
        None
    }

    /// Countermodel search. For finite mode, a `Some` result is a genuine
    /// finite countermodel; for unrestricted mode a finite countermodel may
    /// not exist (Cor 3.3), in which case `None` is returned even though
    /// the non-implication is correct.
    fn countermodel(&self, phi: &Constraint, _mode: Mode) -> Option<crate::Instance> {
        let m = find_countermodel(
            &self.sigma,
            phi,
            Bounds {
                max_per_type: 2,
                max_values: 3,
                budget: 300_000,
            },
        )?;
        Some(m)
    }
}

/// Kosaraju SCC on an adjacency list with labelled edges.
fn scc(adj: &[Vec<(NodeId, HEdge)>], n: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for s in 0..n {
        if seen[s] {
            continue;
        }
        // Iterative DFS with explicit stack producing finish order.
        let mut stack = vec![(s, 0usize)];
        seen[s] = true;
        while let Some(&(u, i)) = stack.last() {
            if i < adj[u].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let (v, _) = adj[u][i];
                if !seen[v] {
                    seen[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    // Transpose.
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, outs) in adj.iter().enumerate() {
        for &(v, _) in outs {
            radj[v].push(u);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut c = 0;
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s] = c;
        while let Some(u) = stack.pop() {
            for &v in &radj[u] {
                if comp[v] == usize::MAX {
                    comp[v] = c;
                    stack.push(v);
                }
            }
        }
        c += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::examples::book_dtdc;

    fn key(t: &str, a: &str) -> Constraint {
        Constraint::unary_key(t, a)
    }
    fn fk(t: &str, a: &str, u: &str, b: &str) -> Constraint {
        Constraint::unary_fk(t, a, u, b)
    }

    #[test]
    fn declared_and_reflexive() {
        let sigma = vec![key("a", "x")];
        let s = LuSolver::new(&sigma).unwrap();
        let v = s.implies(&key("a", "x"), Mode::Unrestricted).unwrap();
        assert!(v.is_implied());
        let refl = fk("a", "x", "a", "x");
        let v = s.implies(&refl, Mode::Unrestricted).unwrap();
        assert!(v.is_implied());
        v.proof().unwrap().verify(&sigma, None).unwrap();
        // Reflexive FK on a non-key attribute is NOT implied (the FK form
        // carries target keyness).
        assert!(!s
            .implies(&fk("a", "y", "a", "y"), Mode::Unrestricted)
            .unwrap()
            .is_implied());
    }

    #[test]
    fn transitivity_and_derived_keys() {
        let sigma = vec![
            fk("a", "x", "b", "y"),
            fk("b", "y", "c", "z"),
            fk("c", "z", "d", "w"),
        ];
        let s = LuSolver::new(&sigma).unwrap();
        for mode in [Mode::Unrestricted, Mode::Finite] {
            let v = s.implies(&fk("a", "x", "d", "w"), mode).unwrap();
            assert!(v.is_implied(), "{mode:?}");
            v.proof().unwrap().verify(&sigma, None).unwrap();
        }
        // UFK-K: every FK target is a key.
        for (t, a) in [("b", "y"), ("c", "z"), ("d", "w")] {
            let v = s.implies(&key(t, a), Mode::Unrestricted).unwrap();
            assert!(v.is_implied());
            v.proof().unwrap().verify(&sigma, None).unwrap();
        }
        // Sources are not keys.
        assert!(!s
            .implies(&key("a", "x"), Mode::Unrestricted)
            .unwrap()
            .is_implied());
        // No reverse path.
        let v = s.implies(&fk("d", "w", "a", "x"), Mode::Finite).unwrap();
        assert!(!v.is_implied());
    }

    #[test]
    fn divergence_of_finite_and_unrestricted() {
        // Σ = {t.a → t, t.b → t, t.a ⊆ t.b}: finite implies t.b ⊆ t.a.
        let sigma = vec![key("t", "a"), key("t", "b"), fk("t", "a", "t", "b")];
        let s = LuSolver::new(&sigma).unwrap();
        let phi = fk("t", "b", "t", "a");
        let fin = s.implies(&phi, Mode::Finite).unwrap();
        assert!(fin.is_implied());
        fin.proof().unwrap().verify(&sigma, None).unwrap();
        let unr = s.implies(&phi, Mode::Unrestricted).unwrap();
        assert!(!unr.is_implied());
    }

    #[test]
    fn longer_cardinality_cycle() {
        // a.x ⊆ b.y, b.z ⊆ a.w, all four keys: H-cycle via same-type edges
        // forces both reversals finitely but not unrestrictedly.
        let sigma = vec![
            key("a", "x"),
            key("a", "w"),
            key("b", "y"),
            key("b", "z"),
            fk("a", "x", "b", "y"),
            fk("b", "z", "a", "w"),
        ];
        let s = LuSolver::new(&sigma).unwrap();
        for phi in [fk("b", "y", "a", "x"), fk("a", "w", "b", "z")] {
            let fin = s.implies(&phi, Mode::Finite).unwrap();
            assert!(fin.is_implied(), "{phi}");
            fin.proof().unwrap().verify(&sigma, None).unwrap();
            assert!(!s.implies(&phi, Mode::Unrestricted).unwrap().is_implied());
        }
        // Compositions across the reversed edges also hold finitely:
        // b.y ⊆ b.z? b.y ⇐ a.x; hmm — check a cross composition that uses
        // a reversal then a declared edge: b.y ⊆ a.x then a.x… only edges
        // from a.x go to b.y. Check a.w ⊆ a.w-style reflexives instead.
        let v = s.implies(&fk("a", "w", "a", "w"), Mode::Finite).unwrap();
        assert!(v.is_implied());
    }

    #[test]
    fn set_fk_transitivity() {
        let sigma = vec![
            Constraint::set_fk("r", "to", "b", "y"),
            fk("b", "y", "c", "z"),
        ];
        let s = LuSolver::new(&sigma).unwrap();
        let phi = Constraint::set_fk("r", "to", "c", "z");
        for mode in [Mode::Unrestricted, Mode::Finite] {
            let v = s.implies(&phi, mode).unwrap();
            assert!(v.is_implied(), "{mode:?}");
            v.proof().unwrap().verify(&sigma, None).unwrap();
        }
        // SFK-K on the intermediate target.
        assert!(s
            .implies(&key("b", "y"), Mode::Unrestricted)
            .unwrap()
            .is_implied());
        // But not the unrelated direction.
        assert!(!s
            .implies(&Constraint::set_fk("r", "to", "r", "to2"), Mode::Finite)
            .unwrap()
            .is_implied());
        // No SFK composition after a set-valued hop: c.z ⊆_S … is not even
        // well-formed; and r.to ⊆ c.z (single-valued form) is not implied.
        assert!(!s
            .implies(&fk("r", "to", "c", "z"), Mode::Finite)
            .unwrap()
            .is_implied());
    }

    #[test]
    fn inverse_keys_and_symmetry() {
        let inv = Constraint::InverseU {
            tau: "a".into(),
            key: Field::attr("k"),
            attr: "r".into(),
            target: "b".into(),
            target_key: Field::attr("k2"),
            target_attr: "r2".into(),
        };
        let sigma = vec![inv.clone()];
        let s = LuSolver::new(&sigma).unwrap();
        for phi in [key("a", "k"), key("b", "k2")] {
            let v = s.implies(&phi, Mode::Unrestricted).unwrap();
            assert!(v.is_implied(), "{phi}");
            v.proof().unwrap().verify(&sigma, None).unwrap();
        }
        let sym = Constraint::InverseU {
            tau: "b".into(),
            key: Field::attr("k2"),
            attr: "r2".into(),
            target: "a".into(),
            target_key: Field::attr("k"),
            target_attr: "r".into(),
        };
        let v = s.implies(&sym, Mode::Finite).unwrap();
        assert!(v.is_implied());
        v.proof().unwrap().verify(&sigma, None).unwrap();
        // A different inverse is not implied.
        let other = Constraint::InverseU {
            tau: "a".into(),
            key: Field::attr("k"),
            attr: "r".into(),
            target: "b".into(),
            target_key: Field::attr("k2"),
            target_attr: "zzz".into(),
        };
        assert!(!s.implies(&other, Mode::Finite).unwrap().is_implied());
    }

    #[test]
    fn primary_restriction_checks() {
        let sigma = vec![key("t", "a"), key("t", "b"), fk("t", "a", "t", "b")];
        let s = LuSolver::new(&sigma).unwrap();
        assert!(matches!(
            s.check_primary(None),
            Err(PrimaryViolation::TwoKeys { .. })
        ));
        let sigma = vec![
            fk("a", "x", "c", "k"),
            fk("b", "y", "c", "k2"),
            key("c", "k"),
            key("c", "k2"),
        ];
        let s = LuSolver::new(&sigma).unwrap();
        assert!(s.check_primary(None).is_err());
        let sigma = vec![fk("a", "x", "b", "y"), fk("b", "y", "a", "x")];
        let s = LuSolver::new(&sigma).unwrap();
        assert!(s.check_primary(None).is_ok());
    }

    #[test]
    fn primary_modes_coincide_on_pure_fk_cycles() {
        // Under the primary restriction a pure FK cycle is handled by
        // transitivity in both modes (Theorem 3.4).
        let sigma = vec![
            fk("a", "x", "b", "y"),
            fk("b", "y", "c", "z"),
            fk("c", "z", "a", "x"),
        ];
        let s = LuSolver::new(&sigma).unwrap();
        s.check_primary(None).unwrap();
        let queries = [
            fk("b", "y", "a", "x"),
            fk("c", "z", "b", "y"),
            fk("a", "x", "c", "z"),
            key("a", "x"),
            fk("a", "x", "a", "x"),
        ];
        for phi in queries {
            let u = s.implies(&phi, Mode::Unrestricted).unwrap().is_implied();
            let f = s.implies(&phi, Mode::Finite).unwrap().is_implied();
            assert_eq!(u, f, "{phi}");
            assert!(u, "{phi}");
        }
    }

    #[test]
    fn set_fk_through_finite_reversal() {
        // r.to ⊆_S t.b, plus the divergence gadget on t: finite mode can
        // continue the set-valued chain through the reversed edge
        // t.b ⊆ t.a, unrestricted mode cannot.
        let sigma = vec![
            Constraint::set_fk("r", "to", "t", "b"),
            key("t", "a"),
            key("t", "b"),
            fk("t", "a", "t", "b"),
        ];
        let s = LuSolver::new(&sigma).unwrap();
        let phi = Constraint::set_fk("r", "to", "t", "a");
        let fin = s.implies(&phi, Mode::Finite).unwrap();
        assert!(fin.is_implied());
        fin.proof().unwrap().verify(&sigma, None).unwrap();
        assert!(!s.implies(&phi, Mode::Unrestricted).unwrap().is_implied());
        // decide() agrees with implies() on both modes.
        assert!(s.decide(&phi, Mode::Finite).unwrap());
        assert!(!s.decide(&phi, Mode::Unrestricted).unwrap());
    }

    #[test]
    fn decide_matches_implies_exhaustively() {
        let sigma = vec![
            key("a", "x"),
            key("a", "y"),
            fk("a", "x", "a", "y"),
            fk("b", "z", "a", "x"),
            Constraint::set_fk("r", "s", "b", "z"),
        ];
        let s = LuSolver::new(&sigma).unwrap();
        let attrs = [("a", "x"), ("a", "y"), ("b", "z"), ("r", "s")];
        for mode in [Mode::Finite, Mode::Unrestricted] {
            for (t1, a1) in attrs {
                let k = key(t1, a1);
                assert_eq!(
                    s.decide(&k, mode).unwrap(),
                    s.implies(&k, mode).unwrap().is_implied(),
                    "{k} {mode:?}"
                );
                for (t2, a2) in attrs {
                    let f = fk(t1, a1, t2, a2);
                    assert_eq!(
                        s.decide(&f, mode).unwrap(),
                        s.implies(&f, mode).unwrap().is_implied(),
                        "{f} {mode:?}"
                    );
                    let sf = Constraint::set_fk(t1, a1, t2, a2);
                    assert_eq!(
                        s.decide(&sf, mode).unwrap(),
                        s.implies(&sf, mode).unwrap().is_implied(),
                        "{sf} {mode:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn countermodels_when_small() {
        let sigma = vec![key("b", "y"), fk("a", "x", "b", "y")];
        let s = LuSolver::new(&sigma).unwrap();
        let phi = fk("b", "y", "a", "x");
        let v = s.implies(&phi, Mode::Finite).unwrap();
        assert!(!v.is_implied());
        let m = v.countermodel().expect("small countermodel");
        assert!(m.satisfies_all(&sigma));
        assert!(!m.satisfies(&phi));
    }

    #[test]
    fn sub_element_fields_flow_through_the_solver() {
        // §3.4: keys and foreign keys over unique sub-elements behave
        // exactly like attribute fields in the implication theory.
        let name = Field::sub("name");
        let dname = Field::sub("dname");
        let sigma = vec![
            Constraint::Key {
                tau: "person".into(),
                fields: vec![name.clone()],
            },
            Constraint::ForeignKey {
                tau: "dept".into(),
                fields: vec![dname.clone()],
                target: "person".into(),
                target_fields: vec![name.clone()],
            },
        ];
        let s = LuSolver::new(&sigma).unwrap();
        // UFK-K over a sub-element target.
        let v = s
            .implies(
                &Constraint::Key {
                    tau: "person".into(),
                    fields: vec![name.clone()],
                },
                Mode::Finite,
            )
            .unwrap();
        assert!(v.is_implied());
        // Reflexive UK-FK over the sub-element key.
        let refl = Constraint::ForeignKey {
            tau: "person".into(),
            fields: vec![name.clone()],
            target: "person".into(),
            target_fields: vec![name],
        };
        let v = s.implies(&refl, Mode::Unrestricted).unwrap();
        assert!(v.is_implied());
        v.proof().unwrap().verify(&sigma, None).unwrap();
        // dname is not thereby a key of dept.
        assert!(!s
            .implies(
                &Constraint::Key {
                    tau: "dept".into(),
                    fields: vec![dname],
                },
                Mode::Finite
            )
            .unwrap()
            .is_implied());
    }

    #[test]
    fn rejects_non_lu() {
        assert!(LuSolver::new(&[Constraint::Id { tau: "a".into() }]).is_err());
        assert!(LuSolver::new(&[Constraint::key("a", ["x", "y"])]).is_err());
        let s = LuSolver::new(&[]).unwrap();
        assert!(s
            .implies(&Constraint::key("a", ["x", "y"]), Mode::Finite)
            .is_err());
    }

    #[test]
    fn book_sigma_queries() {
        let d = book_dtdc();
        let s = LuSolver::new(d.constraints()).unwrap();
        // ref.to ⊆_S entry.isbn is declared; entry.isbn is a key.
        assert!(s
            .implies(
                &Constraint::set_fk("ref", "to", "entry", "isbn"),
                Mode::Finite
            )
            .unwrap()
            .is_implied());
        assert!(s
            .implies(&key("entry", "isbn"), Mode::Unrestricted)
            .unwrap()
            .is_implied());
        // isbn is not a key of book (the motivating scoping point of §1).
        assert!(!s
            .implies(&key("book", "isbn"), Mode::Unrestricted)
            .unwrap()
            .is_implied());
    }

    use xic_constraints::Field;
}
